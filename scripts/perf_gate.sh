#!/usr/bin/env bash
# Perf gate: compare the speedup lines of a fresh `BENCH_JSON` run
# against the committed trajectory (BENCH_throughput.json) and fail on
# regressions.
#
#   scripts/perf_gate.sh FRESH.json [COMMITTED.json]
#
# Every line in FRESH carrying a `"speedup"` field is matched by
# `"name"` against the *last* committed line of the same name (the
# trajectory is append-only, so the last line is the current baseline).
# The gate fails when a fresh speedup drops below
# `PERF_GATE_TOLERANCE × committed` (default tolerance 0.8, i.e. a
# > 20 % regression). Names with no committed baseline are reported and
# skipped so new benches can land before their first trajectory entry.
#
# Only the ratio is gated — absolute req/s and median_ns vary with the
# runner — and the comparison is one-sided: faster than the committed
# baseline always passes.
set -euo pipefail

fresh="${1:?usage: scripts/perf_gate.sh FRESH.json [COMMITTED.json]}"
committed="${2:-$(dirname "$0")/../BENCH_throughput.json}"
tolerance="${PERF_GATE_TOLERANCE:-0.8}"

[ -r "$fresh" ] || { echo "perf gate: cannot read fresh results: $fresh" >&2; exit 2; }
[ -r "$committed" ] || { echo "perf gate: cannot read committed trajectory: $committed" >&2; exit 2; }

speedup_of() { sed -n 's/.*"speedup":\([0-9.eE+-]*\).*/\1/p' <<<"$1"; }

status=0
checked=0
while IFS= read -r line; do
    name=$(sed -n 's/.*"name":"\([^"]*\)".*/\1/p' <<<"$line")
    new=$(speedup_of "$line")
    [ -n "$name" ] && [ -n "$new" ] || continue
    base_line=$(grep -F "\"name\":\"$name\"" "$committed" | grep '"speedup":' | tail -n 1 || true)
    if [ -z "$base_line" ]; then
        echo "perf gate: $name = ${new}x — no committed baseline, skipping"
        continue
    fi
    base=$(speedup_of "$base_line")
    checked=$((checked + 1))
    if awk -v n="$new" -v b="$base" -v t="$tolerance" 'BEGIN { exit !(n + 0 >= b * t) }'; then
        echo "perf gate: $name = ${new}x — ok (committed ${base}x, tolerance ${tolerance})"
    else
        echo "perf gate: $name = ${new}x — REGRESSION below ${tolerance} x committed ${base}x" >&2
        status=1
    fi
done < <(grep '"speedup":' "$fresh")

if [ "$checked" -eq 0 ]; then
    echo "perf gate: no speedup lines in $fresh matched the committed trajectory" >&2
    exit 2
fi
exit $status
