//! Property-based tests of the estimator over random circuits.

use proptest::prelude::*;

use leqa::{Estimator, EstimatorOptions, ZoneRounding};
use leqa_circuit::{decompose::lower_to_ft, Qodg};
use leqa_fabric::{FabricDims, PhysicalParams};
use leqa_workloads::{random_circuit, RandomCircuitConfig};

fn qodg_for(seed: u64, qubits: u32, gates: u64) -> Qodg {
    let circuit = random_circuit(RandomCircuitConfig {
        qubits,
        gates,
        seed,
        ..Default::default()
    });
    let ft = lower_to_ft(&circuit).expect("random circuits lower cleanly");
    Qodg::from_ft_circuit(&ft)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn estimate_is_finite_positive_and_deterministic(
        seed in 0u64..1000, qubits in 3u32..40, gates in 1u64..120
    ) {
        let qodg = qodg_for(seed, qubits, gates);
        let estimator = Estimator::new(FabricDims::dac13(), PhysicalParams::dac13());
        let a = estimator.estimate(&qodg).expect("fits");
        let b = estimator.estimate(&qodg).expect("fits");
        prop_assert!(a.latency.is_valid());
        prop_assert!(a.latency.as_f64() > 0.0);
        prop_assert_eq!(a.latency, b.latency);
    }

    #[test]
    fn estimate_at_least_the_bare_critical_path(
        seed in 0u64..1000, qubits in 3u32..40, gates in 1u64..120
    ) {
        // Routing latencies only ever add to node delays, so the estimate
        // must dominate the critical path computed with bare gate delays.
        use leqa_circuit::{FtOp, QodgNode};
        let qodg = qodg_for(seed, qubits, gates);
        let params = PhysicalParams::dac13();
        let delays = *params.gate_delays();
        let bare = qodg.critical_path(|node| match node {
            QodgNode::Op(FtOp::Cnot { .. }) => delays.cnot(),
            QodgNode::Op(FtOp::OneQubit { kind, .. }) => delays.one_qubit(*kind),
            _ => leqa_fabric::Micros::ZERO,
        });
        let est = Estimator::new(FabricDims::dac13(), params)
            .estimate(&qodg)
            .expect("fits");
        prop_assert!(est.latency.as_f64() >= bare.length.as_f64() - 1e-6);
    }

    #[test]
    fn appending_a_gate_never_reduces_the_estimate(
        seed in 0u64..500, qubits in 3u32..24, gates in 1u64..60
    ) {
        // The prefix circuit's QODG is a sub-DAG of the full one, with the
        // same IIG or a lighter one... the IIG changes, so only test the
        // purely serial case: appending to a single-wire chain.
        use leqa_circuit::{FtCircuit, OneQubitKind, QubitId};
        let _ = (seed, qubits); // exercised above; keep ranges for shrinkage
        let estimator = Estimator::new(FabricDims::dac13(), PhysicalParams::dac13());
        let mut ft = FtCircuit::new(1);
        let mut prev = 0.0;
        for i in 0..gates.min(20) {
            let kind = if i % 2 == 0 { OneQubitKind::H } else { OneQubitKind::T };
            ft.push_one_qubit(kind, QubitId(0)).expect("in range");
            let qodg = Qodg::from_ft_circuit(&ft);
            let est = estimator.estimate(&qodg).expect("fits");
            prop_assert!(est.latency.as_f64() > prev);
            prev = est.latency.as_f64();
        }
    }

    #[test]
    fn rounding_modes_bracket_each_other(
        seed in 0u64..500, qubits in 4u32..32, gates in 10u64..100
    ) {
        // Floor ≤ Ceil zone side ⇒ the coverage probability and thus
        // L_CNOT differ, but all three modes stay within a factor of 2.
        let qodg = qodg_for(seed, qubits, gates);
        let mut latencies = Vec::new();
        for rounding in [ZoneRounding::Floor, ZoneRounding::Round, ZoneRounding::Ceil] {
            let est = Estimator::with_options(
                FabricDims::dac13(),
                PhysicalParams::dac13(),
                EstimatorOptions { zone_rounding: rounding, ..Default::default() },
            )
            .estimate(&qodg)
            .expect("fits");
            latencies.push(est.latency.as_f64());
        }
        let min = latencies.iter().cloned().fold(f64::MAX, f64::min);
        let max = latencies.iter().cloned().fold(0.0, f64::max);
        prop_assert!(max / min < 2.0, "rounding spread {min}..{max}");
    }

    #[test]
    fn more_esq_terms_never_lowers_l_cnot(
        seed in 0u64..500, qubits in 4u32..32, gates in 10u64..100
    ) {
        // d_q is non-decreasing in q, so adding terms (weight at higher
        // congestion) cannot decrease the weighted average L_CNOT.
        let qodg = qodg_for(seed, qubits, gates);
        let l_cnot = |terms: usize| {
            Estimator::with_options(
                FabricDims::dac13(),
                PhysicalParams::dac13(),
                EstimatorOptions { max_esq_terms: terms, ..Default::default() },
            )
            .estimate(&qodg)
            .expect("fits")
            .l_cnot_avg
            .as_f64()
        };
        let few = l_cnot(3);
        let more = l_cnot(30);
        prop_assert!(more >= few - 1e-9, "terms 3 -> {few}, terms 30 -> {more}");
    }
}
