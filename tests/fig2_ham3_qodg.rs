//! Reproduces Fig. 2: the ham3 circuit for size-3 Hamming optimal coding
//! and the QODG constructed from it.

use leqa_circuit::{decompose::lower_to_ft, Iig, OneQubitKind, Qodg, QubitId};
use leqa_fabric::Micros;
use leqa_workloads::ham::ham3;

#[test]
fn ham3_lowers_to_19_ft_gates() {
    // Fig. 2a numbers its FT gates 1..19: one Toffoli (15 gates after the
    // Shende–Markov expansion) plus 4 CNOTs.
    let ft = lower_to_ft(&ham3()).expect("ham3 lowers cleanly");
    assert_eq!(ft.ops().len(), 19);
    assert_eq!(ft.num_qubits(), 3);

    // Gate multiset of the figure: 2 H, 4 T, 3 T†, and 6+4 CNOTs.
    let one_qubit = ft.one_qubit_counts();
    assert_eq!(one_qubit[OneQubitKind::H.index()], 2);
    assert_eq!(one_qubit[OneQubitKind::T.index()], 4);
    assert_eq!(one_qubit[OneQubitKind::Tdg.index()], 3);
    assert_eq!(ft.cnot_count(), 10);
}

#[test]
fn ham3_qodg_has_start_end_and_19_op_nodes() {
    let ft = lower_to_ft(&ham3()).expect("ham3 lowers cleanly");
    let qodg = Qodg::from_ft_circuit(&ft);
    assert_eq!(qodg.op_count(), 19);
    assert_eq!(qodg.node_count(), 21); // + start + end

    // The start node feeds the first-level nodes; the end node is fed by
    // the last-level nodes; every edge points forward (it is a DAG in
    // program order).
    assert!(qodg.preds(qodg.start()).is_empty());
    assert!(!qodg.preds(qodg.end()).is_empty());
    for i in 0..qodg.node_count() {
        for p in qodg.preds(leqa_circuit::NodeId(i)) {
            assert!(p.0 < i);
        }
    }
}

#[test]
fn ham3_qodg_critical_path_is_a_full_chain_subset() {
    let ft = lower_to_ft(&ham3()).expect("ham3 lowers cleanly");
    let qodg = Qodg::from_ft_circuit(&ft);
    let cp = qodg.critical_path(|_| Micros::new(1.0));
    // On 3 wires with 19 ops the longest chain is most of the program but
    // cannot exceed it.
    assert!(cp.op_count() >= 10 && cp.op_count() <= 19);
    assert_eq!(cp.length.as_f64(), cp.op_count() as f64);
}

#[test]
fn ham3_iig_connects_all_three_qubits() {
    let ft = lower_to_ft(&ham3()).expect("ham3 lowers cleanly");
    let iig = Iig::from_ft_circuit(&ft);
    for i in 0..3 {
        assert_eq!(iig.degree(QubitId(i)), 2);
        assert!(iig.strength(QubitId(i)) > 0);
    }
    assert_eq!(iig.total_weight(), 10); // one per CNOT
}
