//! Differential tests: the CSR graph structures and the
//! `ProgramProfile`-based estimation pipeline against a *retained naive
//! reference* — the seed's per-node data structures (hash-map IIG
//! adjacency, nested-`Vec` QODG predecessor lists) and the per-call
//! estimation flow, sharing only the numeric kernels. Every quantity is
//! compared **bit-for-bit** across the full workload suite (QFT, adders,
//! Shor slices, the table suite's families, random circuits), plus a
//! property test over random circuits.

use std::collections::HashMap;

use leqa::coverage::CoverageHistogram;
use leqa::sweep::sweep_fabrics;
use leqa::{queue, tsp, Estimator, EstimatorOptions, ProgramProfile};
use leqa_circuit::{decompose::lower_to_ft, FtOp, Iig, NodeId, Qodg, QodgNode, QubitId};
use leqa_fabric::{FabricDims, Micros, OneQubitKind, PhysicalParams};
use leqa_workloads::qft::qft;
use leqa_workloads::shor::shor_skeleton;
use leqa_workloads::{adder, random_circuit, Benchmark, RandomCircuitConfig};
use proptest::prelude::*;

// ── The retained naive reference ─────────────────────────────────────────

/// The seed's IIG: one hash map per qubit.
struct NaiveIig {
    adj: Vec<HashMap<QubitId, u64>>,
    total_weight: u64,
}

impl NaiveIig {
    fn from_qodg(qodg: &Qodg) -> Self {
        let mut adj: Vec<HashMap<QubitId, u64>> = vec![HashMap::new(); qodg.num_qubits() as usize];
        let mut total_weight = 0;
        for (_, op) in qodg.op_nodes() {
            if let FtOp::Cnot { control, target } = op {
                *adj[control.index()].entry(target).or_insert(0) += 1;
                *adj[target.index()].entry(control).or_insert(0) += 1;
                total_weight += 1;
            }
        }
        NaiveIig { adj, total_weight }
    }

    fn degree(&self, q: QubitId) -> u64 {
        self.adj[q.index()].len() as u64
    }

    fn strength(&self, q: QubitId) -> u64 {
        self.adj[q.index()].values().sum()
    }

    fn weight(&self, a: QubitId, b: QubitId) -> u64 {
        self.adj[a.index()].get(&b).copied().unwrap_or(0)
    }

    fn edge_count(&self) -> usize {
        self.adj.iter().map(|m| m.len()).sum::<usize>() / 2
    }
}

/// The seed's QODG predecessor lists: one `Vec` per node.
fn naive_preds(qodg: &Qodg) -> Vec<Vec<NodeId>> {
    // Rebuild from the node payloads with the seed's exact merging logic.
    let start = NodeId(0);
    let mut preds: Vec<Vec<NodeId>> = vec![Vec::new()];
    let mut last: Vec<Option<NodeId>> = vec![None; qodg.num_qubits() as usize];
    for (id, op) in qodg.op_nodes() {
        let mut p: Vec<NodeId> = Vec::with_capacity(2);
        for q in op.qubits() {
            let pred = last[q.index()].unwrap_or(start);
            if !p.contains(&pred) {
                p.push(pred);
            }
            last[q.index()] = Some(id);
        }
        preds.push(p);
    }
    let mut end_preds: Vec<NodeId> = Vec::new();
    for l in last.iter().flatten() {
        if !end_preds.contains(l) {
            end_preds.push(*l);
        }
    }
    if end_preds.is_empty() {
        end_preds.push(start);
    }
    preds.push(end_preds);
    preds
}

/// The seed's per-call estimation flow over the naive IIG (shared numeric
/// kernels, naive graph traversals): returns
/// `(latency, l_cnot_avg, d_uncong, esq, zone_side, cnot_census)`.
fn naive_estimate(
    qodg: &Qodg,
    dims: FabricDims,
    params: &PhysicalParams,
    options: EstimatorOptions,
) -> Option<(Micros, Micros, Micros, Vec<f64>, u32, u64)> {
    let qubit_count = qodg.num_qubits() as u64;
    if options.max_esq_terms == 0 || qubit_count > dims.area() {
        return None;
    }
    let iig = NaiveIig::from_qodg(qodg);

    // Eq. 7 over the naive adjacency.
    let mut zone_num = 0.0;
    let mut zone_den = 0.0;
    // Eq. 12 terms, speed factored out (the profile's formulation).
    let mut uncong_num = 0.0;
    for i in 0..qodg.num_qubits() {
        let q = QubitId(i);
        let strength = iig.strength(q) as f64;
        if strength > 0.0 {
            let m = iig.degree(q);
            zone_num += strength * leqa::presence::zone_area(m);
            zone_den += strength;
            uncong_num += strength * (tsp::expected_hamiltonian_path(m) / m as f64);
        }
    }

    let (l_cnot_avg, d_uncong, esq, zone_side) = if zone_den > 0.0 {
        let b = zone_num / zone_den;
        let d_uncong = Micros::new(uncong_num / zone_den / params.qubit_speed());
        let hist = CoverageHistogram::new(dims, b, options.zone_rounding);
        let esq = hist.expected_surfaces(qubit_count, options.max_esq_terms);
        let mut num = 0.0;
        let mut den = 0.0;
        for (k, &e) in esq.iter().enumerate() {
            let q = (k + 1) as u64;
            let d_q = queue::routing_delay(q, params.channel_capacity(), d_uncong);
            num += e * d_q.as_f64();
            den += e;
        }
        let l = if den > 0.0 {
            Micros::new(num / den)
        } else {
            Micros::ZERO
        };
        (l, d_uncong, esq, hist.zone_side())
    } else {
        (Micros::ZERO, Micros::ZERO, Vec::new(), 0)
    };

    let l_one_qubit_avg = params.one_qubit_routing_latency();
    let delays = *params.gate_delays();
    let include_routing = options.update_critical_path;
    let critical = qodg.critical_path(|node| match node {
        QodgNode::Op(FtOp::Cnot { .. }) => {
            delays.cnot()
                + if include_routing {
                    l_cnot_avg
                } else {
                    Micros::ZERO
                }
        }
        QodgNode::Op(FtOp::OneQubit { kind, .. }) => {
            delays.one_qubit(*kind)
                + if include_routing {
                    l_one_qubit_avg
                } else {
                    Micros::ZERO
                }
        }
        _ => Micros::ZERO,
    });

    let mut latency = (delays.cnot() + l_cnot_avg) * critical.cnot_count as f64;
    for kind in OneQubitKind::ALL {
        let n = critical.one_qubit_counts[kind.index()] as f64;
        latency += (delays.one_qubit(kind) + l_one_qubit_avg) * n;
    }
    Some((
        latency,
        l_cnot_avg,
        d_uncong,
        esq,
        zone_side,
        critical.cnot_count,
    ))
}

// ── Workload suite ───────────────────────────────────────────────────────

/// The differential workload suite: QFT, adders, Shor slices, table-suite
/// families, random circuits.
fn workloads() -> Vec<(String, Qodg)> {
    let mut out = Vec::new();
    for n in [16u32, 32, 64] {
        let ft = lower_to_ft(&qft(n, 8)).expect("qft lowers");
        out.push((format!("qft{n}"), Qodg::from_ft_circuit(&ft)));
    }
    let ft = lower_to_ft(&adder::adder8()).expect("adder lowers");
    out.push(("8bitadder".into(), Qodg::from_ft_circuit(&ft)));
    let ft = lower_to_ft(&adder::mod1048576_adder()).expect("adder lowers");
    out.push(("mod2^20adder".into(), Qodg::from_ft_circuit(&ft)));
    for (n, rounds) in [(8u32, 2u32), (12, 3)] {
        let ft = lower_to_ft(&shor_skeleton(n, rounds)).expect("shor lowers");
        out.push((format!("shor{n}x{rounds}"), Qodg::from_ft_circuit(&ft)));
    }
    for name in ["gf2^16mult", "ham15", "hwb15ps"] {
        let bench = Benchmark::by_name(name).expect("known");
        let ft = lower_to_ft(&bench.circuit()).expect("suite lowers");
        out.push((name.into(), Qodg::from_ft_circuit(&ft)));
    }
    for seed in [1u64, 7, 99] {
        let c = random_circuit(RandomCircuitConfig {
            qubits: 24,
            gates: 400,
            seed,
            ..Default::default()
        });
        let ft = lower_to_ft(&c).expect("random lowers");
        out.push((format!("random{seed}"), Qodg::from_ft_circuit(&ft)));
    }
    out
}

fn candidate_dims(qubits: u64) -> Vec<FabricDims> {
    let min_side = (qubits as f64).sqrt().ceil() as u32;
    (0..12)
        .map(|i| min_side + i * 3)
        .map(|s| FabricDims::new(s, s).expect("valid"))
        .collect()
}

// ── Graph differentials ──────────────────────────────────────────────────

fn assert_iig_matches(name: &str, qodg: &Qodg) {
    let csr = Iig::from_qodg(qodg);
    let naive = NaiveIig::from_qodg(qodg);
    assert_eq!(csr.total_weight(), naive.total_weight, "{name}: total");
    assert_eq!(csr.edge_count(), naive.edge_count(), "{name}: edges");
    for i in 0..qodg.num_qubits() {
        let q = QubitId(i);
        assert_eq!(csr.degree(q), naive.degree(q), "{name}: degree q{i}");
        assert_eq!(csr.strength(q), naive.strength(q), "{name}: strength q{i}");
        for (other, w) in csr.neighbors(q) {
            assert_eq!(w, naive.weight(q, other), "{name}: weight q{i}–{other}");
        }
        assert_eq!(
            csr.neighbors(q).count() as u64,
            naive.degree(q),
            "{name}: neighbour count q{i}"
        );
    }
}

fn assert_qodg_matches(name: &str, qodg: &Qodg) {
    let naive = naive_preds(qodg);
    assert_eq!(naive.len(), qodg.node_count(), "{name}: node count");
    let mut edges = 0;
    for (i, expected) in naive.iter().enumerate() {
        assert_eq!(
            qodg.preds(NodeId(i)),
            expected.as_slice(),
            "{name}: preds of node {i}"
        );
        edges += expected.len();
    }
    assert_eq!(qodg.edge_count(), edges, "{name}: edge count");
}

#[test]
fn csr_graphs_match_naive_reference_on_suite() {
    for (name, qodg) in workloads() {
        assert_iig_matches(&name, &qodg);
        assert_qodg_matches(&name, &qodg);
    }
}

// ── Estimate differentials ───────────────────────────────────────────────

fn assert_estimates_match(name: &str, qodg: &Qodg, options: EstimatorOptions) {
    let params = PhysicalParams::dac13();
    let profile = ProgramProfile::new(qodg);
    let candidates = candidate_dims(qodg.num_qubits() as u64);
    let sweep = sweep_fabrics(qodg, &params, options, candidates.clone());

    for (dims, point) in candidates.iter().zip(&sweep) {
        let estimator = Estimator::with_options(*dims, params.clone(), options);
        let direct = estimator.estimate(qodg).ok();
        let via_profile = estimator.estimate_with_profile(&profile).ok();
        let naive = naive_estimate(qodg, *dims, &params, options);

        match (direct, via_profile, &point.estimate, naive) {
            (Some(d), Some(p), Some(s), Some((latency, l_cnot, d_uncong, esq, side, cnots))) => {
                // Direct vs profile-based: bit-identical everywhere.
                assert_eq!(d.latency, p.latency, "{name}@{dims:?}: latency");
                assert_eq!(d.critical, p.critical, "{name}@{dims:?}: critical");
                assert_eq!(d.esq, p.esq, "{name}@{dims:?}: esq");
                // Direct vs sweep engine: bit-identical everywhere.
                assert_eq!(d.latency, s.latency, "{name}@{dims:?}: sweep latency");
                assert_eq!(d.critical, s.critical, "{name}@{dims:?}: sweep critical");
                assert_eq!(d.l_cnot_avg, s.l_cnot_avg, "{name}@{dims:?}: sweep L_CNOT");
                assert_eq!(d.esq, s.esq, "{name}@{dims:?}: sweep esq");
                // Direct vs the retained naive reference: bit-identical.
                assert_eq!(d.latency, latency, "{name}@{dims:?}: naive latency");
                assert_eq!(d.l_cnot_avg, l_cnot, "{name}@{dims:?}: naive L_CNOT");
                assert_eq!(d.d_uncong, d_uncong, "{name}@{dims:?}: naive d_uncong");
                assert_eq!(d.esq, esq, "{name}@{dims:?}: naive esq");
                assert_eq!(d.zone_side, side, "{name}@{dims:?}: naive zone side");
                assert_eq!(
                    d.critical.cnot_count, cnots,
                    "{name}@{dims:?}: naive census"
                );
            }
            (None, None, None, None) => {}
            other => panic!("{name}@{dims:?}: fit disagreement {other:?}"),
        }
    }
}

#[test]
fn estimates_bit_identical_across_suite() {
    for (name, qodg) in workloads() {
        assert_estimates_match(&name, &qodg, EstimatorOptions::default());
    }
}

#[test]
fn estimates_bit_identical_without_critical_path_update() {
    let options = EstimatorOptions {
        update_critical_path: false,
        ..Default::default()
    };
    for (name, qodg) in workloads().into_iter().take(4) {
        assert_estimates_match(&name, &qodg, options);
    }
}

#[test]
fn estimates_bit_identical_with_floor_rounding_and_short_esq() {
    let options = EstimatorOptions {
        max_esq_terms: 7,
        zone_rounding: leqa::ZoneRounding::Floor,
        ..Default::default()
    };
    for (name, qodg) in workloads().into_iter().take(4) {
        assert_estimates_match(&name, &qodg, options);
    }
}

// ── Property test over random circuits ───────────────────────────────────

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_circuits_are_bit_identical_end_to_end(
        seed in 0u64..500, qubits in 3u32..28, gates in 1u64..120
    ) {
        let c = random_circuit(RandomCircuitConfig {
            qubits,
            gates,
            seed,
            ..Default::default()
        });
        let ft = lower_to_ft(&c).expect("random circuits lower cleanly");
        let qodg = Qodg::from_ft_circuit(&ft);
        assert_iig_matches("prop", &qodg);
        assert_qodg_matches("prop", &qodg);

        let params = PhysicalParams::dac13();
        let options = EstimatorOptions::default();
        let dims = FabricDims::dac13();
        let direct = Estimator::with_options(dims, params.clone(), options)
            .estimate(&qodg)
            .expect("fits the 60x60 fabric");
        let naive = naive_estimate(&qodg, dims, &params, options).expect("fits");
        prop_assert_eq!(direct.latency, naive.0);
        prop_assert_eq!(direct.l_cnot_avg, naive.1);
        prop_assert_eq!(direct.d_uncong, naive.2);

        let sweep = sweep_fabrics(&qodg, &params, options, [dims]);
        let point = sweep[0].estimate.as_ref().expect("fits");
        prop_assert_eq!(point.latency, direct.latency);
        prop_assert_eq!(&point.critical, &direct.critical);
    }
}
