//! End-to-end pipeline tests: text format → reversible circuit → FT
//! lowering → QODG/IIG → LEQA estimate and QSPR mapping.

use leqa::Estimator;
use leqa_circuit::{decompose::lower_to_ft, parser, Qodg};
use leqa_fabric::{FabricDims, PhysicalParams};
use qspr::Mapper;

const SOURCE: &str = "\
.name pipeline-demo
.qubits 6
toffoli 0 1 2
cnot 2 3
fredkin 3 4 5
mct 0 1 2 3 4
h 5
t 0
";

#[test]
fn parse_lower_estimate_map() {
    let circuit = parser::parse(SOURCE).expect("valid source");
    assert_eq!(circuit.name(), Some("pipeline-demo"));

    let ft = lower_to_ft(&circuit).expect("lowers cleanly");
    // mct with 4 controls adds 2 ancillas.
    assert_eq!(ft.num_qubits(), 8);

    let qodg = Qodg::from_ft_circuit(&ft);
    let dims = FabricDims::dac13();
    let params = PhysicalParams::dac13();

    let estimate = Estimator::new(dims, params.clone())
        .estimate(&qodg)
        .expect("fits the fabric");
    let actual = Mapper::new(dims, params)
        .map(&qodg)
        .expect("fits the fabric");

    assert!(estimate.latency.as_f64() > 0.0);
    assert!(actual.latency.as_f64() > 0.0);
    // On a tiny circuit the two disagree more than on the suite, but they
    // must be the same order of magnitude.
    let ratio = estimate.latency.as_f64() / actual.latency.as_f64();
    assert!((0.2..5.0).contains(&ratio), "ratio {ratio}");
}

#[test]
fn roundtrip_preserves_results() {
    let circuit = parser::parse(SOURCE).expect("valid source");
    let reparsed = parser::parse(&parser::write(&circuit)).expect("roundtrips");
    assert_eq!(circuit, reparsed);

    let dims = FabricDims::dac13();
    let params = PhysicalParams::dac13();
    let estimate = |c| {
        let ft = lower_to_ft(c).expect("lowers");
        let qodg = Qodg::from_ft_circuit(&ft);
        Estimator::new(dims, params.clone())
            .estimate(&qodg)
            .expect("fits")
            .latency
    };
    assert_eq!(estimate(&circuit), estimate(&reparsed));
}

#[test]
fn mapper_latency_never_below_dependency_lower_bound() {
    // The critical path with bare gate delays (plus the 1q shuttle) is a
    // hard lower bound on any schedule the mapper can produce.
    use leqa_circuit::{FtOp, QodgNode};

    let circuit = parser::parse(SOURCE).expect("valid source");
    let ft = lower_to_ft(&circuit).expect("lowers");
    let qodg = Qodg::from_ft_circuit(&ft);
    let params = PhysicalParams::dac13();
    let delays = *params.gate_delays();
    let shuttle = params.one_qubit_routing_latency();

    let bound = qodg.critical_path(|node| match node {
        QodgNode::Op(FtOp::Cnot { .. }) => delays.cnot(),
        QodgNode::Op(FtOp::OneQubit { kind, .. }) => delays.one_qubit(*kind) + shuttle,
        _ => leqa_fabric::Micros::ZERO,
    });

    let actual = Mapper::new(FabricDims::dac13(), params)
        .map(&qodg)
        .expect("fits");
    assert!(
        actual.latency.as_f64() >= bound.length.as_f64() - 1e-6,
        "mapper {} must be at least the dependency bound {}",
        actual.latency,
        bound.length
    );
}

#[test]
fn estimator_and_mapper_reject_oversized_programs_consistently() {
    let circuit = parser::parse(SOURCE).expect("valid source");
    let ft = lower_to_ft(&circuit).expect("lowers");
    let qodg = Qodg::from_ft_circuit(&ft);
    let tiny = FabricDims::new(2, 2).expect("valid dims");
    let params = PhysicalParams::dac13();

    assert!(Estimator::new(tiny, params.clone())
        .estimate(&qodg)
        .is_err());
    assert!(Mapper::new(tiny, params).map(&qodg).is_err());
}
