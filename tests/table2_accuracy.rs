//! The headline claim of the paper, as a regression test: LEQA estimates
//! the mapped latency with single-digit average error and bounded maximum
//! error across the benchmark suite.
//!
//! The paper reports 2.11% average / <9% maximum against its Java QSPR;
//! against this workspace's mapper the measured figures are ~2.7% / ~6.2%
//! (see EXPERIMENTS.md). The assertions use looser bounds so the test
//! stays robust to platform noise while still catching model regressions.

use leqa::Estimator;
use leqa_circuit::{decompose::lower_to_ft, Qodg};
use leqa_fabric::{FabricDims, PhysicalParams};
use leqa_workloads::{Benchmark, SUITE};
use qspr::Mapper;

fn error_pct(bench: &Benchmark) -> f64 {
    let dims = FabricDims::dac13();
    let params = PhysicalParams::dac13();
    let ft = lower_to_ft(&bench.circuit()).expect("suite lowers cleanly");
    let qodg = Qodg::from_ft_circuit(&ft);
    let actual = Mapper::new(dims, params.clone())
        .map(&qodg)
        .expect("fits")
        .latency
        .as_secs();
    let estimated = Estimator::new(dims, params)
        .estimate(&qodg)
        .expect("fits")
        .latency
        .as_secs();
    100.0 * (estimated - actual).abs() / actual
}

#[test]
fn small_and_mid_benchmarks_estimate_accurately() {
    // The fast two-thirds of the suite (everything below ~70k ops).
    let mut errors = Vec::new();
    for bench in SUITE.iter().filter(|b| b.paper.ops < 70_000) {
        let err = error_pct(bench);
        assert!(err < 15.0, "{}: error {err:.2}% exceeds 15%", bench.name);
        errors.push(err);
    }
    let avg = errors.iter().sum::<f64>() / errors.len() as f64;
    assert!(avg < 8.0, "average error {avg:.2}% exceeds 8%");
}

#[test]
#[ignore = "runs the full suite incl. the ~1M-op gf2^256mult; enable with --ignored"]
fn full_suite_reproduces_table2() {
    let mut errors = Vec::new();
    for bench in &SUITE {
        let err = error_pct(bench);
        assert!(err < 15.0, "{}: error {err:.2}% exceeds 15%", bench.name);
        errors.push(err);
    }
    let avg = errors.iter().sum::<f64>() / errors.len() as f64;
    assert!(avg < 8.0, "average error {avg:.2}% exceeds 8%");
}
