//! Property-based tests of the detailed mapper over random circuits.

use proptest::prelude::*;

use leqa_circuit::{decompose::lower_to_ft, FtOp, Qodg, QodgNode};
use leqa_fabric::{FabricDims, Micros, PhysicalParams};
use leqa_workloads::{random_circuit, RandomCircuitConfig};
use qspr::{Mapper, MapperConfig, PlacementStrategy};

fn qodg_for(seed: u64, qubits: u32, gates: u64) -> Qodg {
    let circuit = random_circuit(RandomCircuitConfig {
        qubits,
        gates,
        seed,
        ..Default::default()
    });
    let ft = lower_to_ft(&circuit).expect("random circuits lower cleanly");
    Qodg::from_ft_circuit(&ft)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn latency_dominates_the_dependency_bound(
        seed in 0u64..1000, qubits in 3u32..32, gates in 1u64..100
    ) {
        let qodg = qodg_for(seed, qubits, gates);
        let params = PhysicalParams::dac13();
        let delays = *params.gate_delays();
        let shuttle = params.one_qubit_routing_latency();
        let bound = qodg.critical_path(|node| match node {
            QodgNode::Op(FtOp::Cnot { .. }) => delays.cnot(),
            QodgNode::Op(FtOp::OneQubit { kind, .. }) => delays.one_qubit(*kind) + shuttle,
            _ => Micros::ZERO,
        });
        let actual = Mapper::new(FabricDims::dac13(), params)
            .map(&qodg)
            .expect("fits");
        prop_assert!(
            actual.latency.as_f64() >= bound.length.as_f64() - 1e-6,
            "mapper {} below bound {}", actual.latency, bound.length
        );
    }

    #[test]
    fn mapping_is_deterministic(
        seed in 0u64..1000, qubits in 3u32..24, gates in 1u64..60
    ) {
        let qodg = qodg_for(seed, qubits, gates);
        let mapper = Mapper::new(FabricDims::dac13(), PhysicalParams::dac13());
        let a = mapper.map(&qodg).expect("fits");
        let b = mapper.map(&qodg).expect("fits");
        prop_assert_eq!(a.latency, b.latency);
        prop_assert_eq!(a.stats, b.stats);
        prop_assert_eq!(a.placement, b.placement);
    }

    #[test]
    fn op_census_matches_the_program(
        seed in 0u64..1000, qubits in 3u32..24, gates in 1u64..60
    ) {
        let qodg = qodg_for(seed, qubits, gates);
        let result = Mapper::new(FabricDims::dac13(), PhysicalParams::dac13())
            .map(&qodg)
            .expect("fits");
        let cnots = qodg.op_nodes().filter(|(_, op)| op.is_cnot()).count() as u64;
        prop_assert_eq!(result.stats.cnot_ops, cnots);
        prop_assert_eq!(
            result.stats.one_qubit_ops + result.stats.cnot_ops,
            qodg.op_count() as u64
        );
    }

    #[test]
    fn congested_channels_only_slow_things_down(
        seed in 0u64..300, qubits in 4u32..20, gates in 10u64..60
    ) {
        // Shrinking the channel capacity can only increase latency.
        let qodg = qodg_for(seed, qubits, gates);
        let latency = |capacity: u32| {
            let params = PhysicalParams::dac13()
                .to_builder()
                .channel_capacity(capacity)
                .build()
                .expect("valid");
            Mapper::new(FabricDims::dac13(), params)
                .map(&qodg)
                .expect("fits")
                .latency
                .as_f64()
        };
        prop_assert!(latency(1) >= latency(5) - 1e-6);
    }

    #[test]
    fn placement_strategies_all_complete(
        seed in 0u64..300, qubits in 3u32..20, gates in 1u64..40
    ) {
        let qodg = qodg_for(seed, qubits, gates);
        for strategy in [
            PlacementStrategy::IigCluster,
            PlacementStrategy::RowMajor,
            PlacementStrategy::Random,
        ] {
            let mapper = Mapper::with_config(MapperConfig {
                dims: FabricDims::dac13(),
                params: PhysicalParams::dac13(),
                placement: strategy,
                router: Default::default(),
                movement: Default::default(),
                seed,
            });
            let r = mapper.map(&qodg).expect("fits");
            prop_assert!(r.latency.is_valid());
        }
    }
}
