//! Umbrella crate for the LEQA reproduction suite.
//!
//! This crate exists to host the workspace's runnable [examples] and
//! cross-crate integration tests; the functionality lives in the member
//! crates, re-exported here for convenience:
//!
//! * [`api`] — the supported application entry point: `Session`,
//!   request/response DTOs with JSON I/O, the unified error taxonomy,
//! * [`leqa`] — the latency estimator (the paper's contribution, Algorithm 1),
//! * [`leqa_fabric`] — the tiled-quantum-architecture substrate,
//! * [`leqa_circuit`] — circuits, decomposition passes, QODG and IIG,
//! * [`leqa_workloads`] — the benchmark-suite generators,
//! * [`qspr`] — the detailed scheduling/placement/routing baseline mapper.
//!
//! [examples]: https://doc.rust-lang.org/cargo/reference/cargo-targets.html#examples

#![forbid(unsafe_code)]

pub use leqa;
pub use leqa_api as api;
pub use leqa_circuit;
pub use leqa_fabric;
pub use leqa_workloads;
pub use qspr;
