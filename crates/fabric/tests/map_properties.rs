//! Property tests for the defect map: whatever the defect draw, a route
//! reported by [`FabricMap::route_avoiding`] must be a real path over
//! the *live* part of the fabric — every hop a live channel, every cell
//! it touches a live cell, ending where it said it would.

use leqa_fabric::{FabricDims, FabricMap, Ulb};
use proptest::prelude::*;

/// Walks a routed channel path from `from`, asserting each hop is a live
/// adjacent channel into a live cell, and returns the final cell.
fn walk_and_check(map: &FabricMap, from: Ulb, path: &[leqa_fabric::Channel]) -> Ulb {
    let mut at = from;
    assert!(map.cell_enabled(at), "route starts on a dead cell {at:?}");
    for &channel in path {
        assert!(
            map.channel_enabled(channel),
            "route uses dead channel {channel:?}"
        );
        let (a, b) = (channel.origin(), channel.far_end());
        assert!(
            at == a || at == b,
            "channel {channel:?} does not touch the current cell {at:?}"
        );
        at = if at == a { b } else { a };
        assert!(map.cell_enabled(at), "route enters dead cell {at:?}");
    }
    at
}

proptest! {
    /// Routes around random defects never traverse a disabled cell or
    /// channel, and arrive where they claim to.
    #[test]
    fn routes_avoid_every_disabled_cell_and_channel(
        side in 4u32..12,
        density in 0.0f64..0.45,
        seed in 0u64..1000,
        fx in 0u32..12, fy in 0u32..12, tx in 0u32..12, ty in 0u32..12,
    ) {
        let dims = FabricDims::new(side, side).unwrap();
        let map = FabricMap::with_random_defects(dims, density, density, seed).unwrap();
        let from = Ulb::new(fx % side, fy % side);
        let to = Ulb::new(tx % side, ty % side);
        // Dead endpoints cannot route by definition; skip those draws.
        if map.cell_enabled(from) && map.cell_enabled(to) {
            let mut path = Vec::new();
            if map.route_avoiding(from, to, &mut path) {
                let end = walk_and_check(&map, from, &path);
                prop_assert_eq!(end, to);
                // BFS routes are shortest over the live subgraph, so never
                // shorter than the unobstructed Manhattan distance.
                prop_assert!(path.len() as u32 >= from.manhattan_distance(to));
            } else {
                prop_assert!(path.is_empty(), "failed routes must clear the buffer");
            }
        }
    }

    /// On a pristine map every pair routes, at exactly the Manhattan
    /// distance — defect avoidance degenerates to plain shortest paths.
    #[test]
    fn pristine_maps_route_everything_minimally(
        side in 2u32..12,
        fx in 0u32..12, fy in 0u32..12, tx in 0u32..12, ty in 0u32..12,
    ) {
        let dims = FabricDims::new(side, side).unwrap();
        let map = FabricMap::pristine(dims);
        let from = Ulb::new(fx % side, fy % side);
        let to = Ulb::new(tx % side, ty % side);
        let mut path = Vec::new();
        prop_assert!(map.route_avoiding(from, to, &mut path));
        prop_assert_eq!(path.len() as u32, from.manhattan_distance(to));
        let end = walk_and_check(&map, from, &path);
        prop_assert_eq!(end, to);
    }

    /// The defect draw is a pure function of (dims, densities, seed):
    /// two draws with the same inputs agree cell for cell, channel for
    /// channel — the contract the Monte Carlo engine's reproducibility
    /// rests on.
    #[test]
    fn defect_draws_are_deterministic(
        side in 2u32..10,
        density in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let dims = FabricDims::new(side, side).unwrap();
        let a = FabricMap::with_random_defects(dims, density, density, seed).unwrap();
        let b = FabricMap::with_random_defects(dims, density, density, seed).unwrap();
        prop_assert_eq!(a, b);
    }
}
