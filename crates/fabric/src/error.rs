//! Error type for fabric construction and addressing.

use std::error::Error;
use std::fmt;

/// Errors produced when building or addressing a fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FabricError {
    /// A fabric dimension was zero.
    ZeroDimension,
    /// A coordinate fell outside the fabric.
    OutOfBounds {
        /// Offending x coordinate (0-based).
        x: u32,
        /// Offending y coordinate (0-based).
        y: u32,
        /// Fabric width.
        width: u32,
        /// Fabric height.
        height: u32,
    },
    /// Two ULBs that were expected to be adjacent are not.
    NotAdjacent,
    /// A physical parameter was non-finite or out of its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::ZeroDimension => write!(f, "fabric dimensions must be positive"),
            FabricError::OutOfBounds {
                x,
                y,
                width,
                height,
            } => write!(f, "ulb ({x}, {y}) is outside the {width}x{height} fabric"),
            FabricError::NotAdjacent => write!(f, "ulbs are not adjacent"),
            FabricError::InvalidParameter { name } => {
                write!(f, "physical parameter `{name}` is invalid")
            }
        }
    }
}

impl Error for FabricError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            FabricError::ZeroDimension.to_string(),
            "fabric dimensions must be positive"
        );
        assert_eq!(
            FabricError::OutOfBounds {
                x: 9,
                y: 2,
                width: 4,
                height: 4
            }
            .to_string(),
            "ulb (9, 2) is outside the 4x4 fabric"
        );
        assert_eq!(
            FabricError::InvalidParameter { name: "v" }.to_string(),
            "physical parameter `v` is invalid"
        );
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<FabricError>();
    }
}
