//! Latency units.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A latency (or duration) in microseconds.
///
/// The paper quotes all physical parameters in µs (Table 1) and all benchmark
/// latencies in seconds; this newtype keeps the unit visible in signatures
/// (C-NEWTYPE) while staying a plain `f64` underneath.
///
/// # Examples
///
/// ```
/// use leqa_fabric::Micros;
///
/// let gate = Micros::new(4930.0);
/// let routing = Micros::new(200.0);
/// assert_eq!((gate + routing).as_f64(), 5130.0);
/// assert!((gate.as_secs() - 0.00493).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Micros(f64);

impl Micros {
    /// Zero duration.
    pub const ZERO: Micros = Micros(0.0);

    /// Creates a duration from a microsecond count.
    #[inline]
    pub const fn new(us: f64) -> Self {
        Micros(us)
    }

    /// Creates a duration from seconds.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        Micros(secs * 1e6)
    }

    /// The raw microsecond count.
    #[inline]
    pub const fn as_f64(self) -> f64 {
        self.0
    }

    /// This duration expressed in seconds (the unit of Table 2).
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 / 1e6
    }

    /// Whether the value is a finite, non-negative duration.
    #[inline]
    pub fn is_valid(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: Micros) -> Micros {
        Micros(self.0.max(other.0))
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: Micros) -> Micros {
        Micros(self.0.min(other.0))
    }
}

impl fmt::Display for Micros {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}µs", self.0)
    }
}

impl Add for Micros {
    type Output = Micros;
    #[inline]
    fn add(self, rhs: Micros) -> Micros {
        Micros(self.0 + rhs.0)
    }
}

impl AddAssign for Micros {
    #[inline]
    fn add_assign(&mut self, rhs: Micros) {
        self.0 += rhs.0;
    }
}

impl Sub for Micros {
    type Output = Micros;
    #[inline]
    fn sub(self, rhs: Micros) -> Micros {
        Micros(self.0 - rhs.0)
    }
}

impl SubAssign for Micros {
    #[inline]
    fn sub_assign(&mut self, rhs: Micros) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Micros {
    type Output = Micros;
    #[inline]
    fn mul(self, rhs: f64) -> Micros {
        Micros(self.0 * rhs)
    }
}

impl Mul<Micros> for f64 {
    type Output = Micros;
    #[inline]
    fn mul(self, rhs: Micros) -> Micros {
        Micros(self * rhs.0)
    }
}

impl Div<f64> for Micros {
    type Output = Micros;
    #[inline]
    fn div(self, rhs: f64) -> Micros {
        Micros(self.0 / rhs)
    }
}

impl Div<Micros> for Micros {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Micros) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Micros {
    fn sum<I: Iterator<Item = Micros>>(iter: I) -> Micros {
        Micros(iter.map(|m| m.0).sum())
    }
}

impl From<f64> for Micros {
    #[inline]
    fn from(us: f64) -> Self {
        Micros(us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let a = Micros::new(100.0);
        let b = Micros::new(50.0);
        assert_eq!((a + b).as_f64(), 150.0);
        assert_eq!((a - b).as_f64(), 50.0);
        assert_eq!((a * 2.0).as_f64(), 200.0);
        assert_eq!((2.0 * a).as_f64(), 200.0);
        assert_eq!((a / 2.0).as_f64(), 50.0);
        assert_eq!(a / b, 2.0);
    }

    #[test]
    fn seconds_conversion() {
        let d = Micros::from_secs(1.617);
        assert!((d.as_f64() - 1.617e6).abs() < 1e-6);
        assert!((d.as_secs() - 1.617).abs() < 1e-12);
    }

    #[test]
    fn ordering_and_extrema() {
        let a = Micros::new(3.0);
        let b = Micros::new(7.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn sum_of_iterator() {
        let total: Micros = (1..=4).map(|i| Micros::new(i as f64)).sum();
        assert_eq!(total.as_f64(), 10.0);
    }

    #[test]
    fn validity() {
        assert!(Micros::new(0.0).is_valid());
        assert!(!Micros::new(-1.0).is_valid());
        assert!(!Micros::new(f64::NAN).is_valid());
        assert!(!Micros::new(f64::INFINITY).is_valid());
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(Micros::new(12.5).to_string(), "12.5µs");
    }

    #[test]
    fn add_assign_and_sub_assign() {
        let mut m = Micros::new(10.0);
        m += Micros::new(5.0);
        assert_eq!(m.as_f64(), 15.0);
        m -= Micros::new(3.0);
        assert_eq!(m.as_f64(), 12.0);
    }
}
