//! Deterministic dimension-ordered (XY) routing on the ULB grid.
//!
//! The detailed mapper moves logical qubits along X-then-Y paths, one channel
//! traversal per grid step. XY routing is the routing discipline used by the
//! tile-based quantum microarchitectures the paper builds on (QLA-style
//! fabrics); it is deadlock-free and makes paths reproducible, which keeps the
//! ground-truth oracle deterministic.

use crate::{Channel, Ulb};

/// The sequence of ULBs visited when moving from `from` to `to` with
/// X-then-Y routing, **excluding** `from`, **including** `to`.
///
/// An empty vector means the qubit is already at its destination.
///
/// # Examples
///
/// ```
/// use leqa_fabric::{route, Ulb};
///
/// let hops = route::xy_route(Ulb::new(0, 0), Ulb::new(2, 1));
/// assert_eq!(
///     hops,
///     vec![Ulb::new(1, 0), Ulb::new(2, 0), Ulb::new(2, 1)]
/// );
/// ```
pub fn xy_route(from: Ulb, to: Ulb) -> Vec<Ulb> {
    let mut hops = Vec::with_capacity(from.manhattan_distance(to) as usize);
    let mut cur = from;
    while cur.x != to.x {
        cur.x = if to.x > cur.x { cur.x + 1 } else { cur.x - 1 };
        hops.push(cur);
    }
    while cur.y != to.y {
        cur.y = if to.y > cur.y { cur.y + 1 } else { cur.y - 1 };
        hops.push(cur);
    }
    hops
}

/// The channels traversed by the XY route from `from` to `to`, in order.
///
/// # Examples
///
/// ```
/// use leqa_fabric::{route, Ulb};
///
/// let channels = route::xy_channels(Ulb::new(0, 0), Ulb::new(0, 2));
/// assert_eq!(channels.len(), 2);
/// ```
pub fn xy_channels(from: Ulb, to: Ulb) -> Vec<Channel> {
    let mut channels = Vec::with_capacity(from.manhattan_distance(to) as usize);
    xy_channels_into(from, to, &mut channels);
    channels
}

/// Fills `out` with the channels of the XY route from `from` to `to`, in
/// order, clearing it first — the allocation-free form of
/// [`xy_channels`] for hot loops that reuse one route buffer.
pub fn xy_channels_into(from: Ulb, to: Ulb, out: &mut Vec<Channel>) {
    out.clear();
    out.reserve(from.manhattan_distance(to) as usize);
    let mut prev = from;
    let mut cur = from;
    while cur.x != to.x {
        cur.x = if to.x > cur.x { cur.x + 1 } else { cur.x - 1 };
        out.push(Channel::between(prev, cur).expect("consecutive xy hops are adjacent"));
        prev = cur;
    }
    while cur.y != to.y {
        cur.y = if to.y > cur.y { cur.y + 1 } else { cur.y - 1 };
        out.push(Channel::between(prev, cur).expect("consecutive xy hops are adjacent"));
        prev = cur;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_route_on_self() {
        assert!(xy_route(Ulb::new(3, 3), Ulb::new(3, 3)).is_empty());
        assert!(xy_channels(Ulb::new(3, 3), Ulb::new(3, 3)).is_empty());
    }

    #[test]
    fn route_goes_x_first() {
        let hops = xy_route(Ulb::new(2, 2), Ulb::new(0, 3));
        assert_eq!(hops, vec![Ulb::new(1, 2), Ulb::new(0, 2), Ulb::new(0, 3)]);
    }

    proptest! {
        #[test]
        fn route_length_equals_manhattan_distance(
            fx in 0u32..32, fy in 0u32..32, tx in 0u32..32, ty in 0u32..32
        ) {
            let from = Ulb::new(fx, fy);
            let to = Ulb::new(tx, ty);
            let hops = xy_route(from, to);
            prop_assert_eq!(hops.len() as u32, from.manhattan_distance(to));
            prop_assert_eq!(xy_channels(from, to).len(), hops.len());
        }

        #[test]
        fn route_ends_at_destination_and_steps_are_adjacent(
            fx in 0u32..32, fy in 0u32..32, tx in 0u32..32, ty in 0u32..32
        ) {
            let from = Ulb::new(fx, fy);
            let to = Ulb::new(tx, ty);
            let hops = xy_route(from, to);
            let mut prev = from;
            for &h in &hops {
                prop_assert!(prev.is_adjacent(h));
                prev = h;
            }
            prop_assert_eq!(prev, to);
        }
    }
}

/// The sequence of ULBs visited when moving from `from` to `to` with
/// Y-then-X routing, **excluding** `from`, **including** `to`.
///
/// The mirror discipline of [`xy_route`]; a router may pick per-transfer
/// between the two to dodge congestion (both are minimal and
/// deadlock-free when used consistently per message).
pub fn yx_route(from: Ulb, to: Ulb) -> Vec<Ulb> {
    let mut hops = Vec::with_capacity(from.manhattan_distance(to) as usize);
    let mut cur = from;
    while cur.y != to.y {
        cur.y = if to.y > cur.y { cur.y + 1 } else { cur.y - 1 };
        hops.push(cur);
    }
    while cur.x != to.x {
        cur.x = if to.x > cur.x { cur.x + 1 } else { cur.x - 1 };
        hops.push(cur);
    }
    hops
}

/// The channels traversed by the YX route from `from` to `to`, in order.
pub fn yx_channels(from: Ulb, to: Ulb) -> Vec<Channel> {
    let mut channels = Vec::with_capacity(from.manhattan_distance(to) as usize);
    yx_channels_into(from, to, &mut channels);
    channels
}

/// Fills `out` with the channels of the YX route from `from` to `to`, in
/// order, clearing it first — the allocation-free form of
/// [`yx_channels`].
pub fn yx_channels_into(from: Ulb, to: Ulb, out: &mut Vec<Channel>) {
    out.clear();
    out.reserve(from.manhattan_distance(to) as usize);
    let mut prev = from;
    let mut cur = from;
    while cur.y != to.y {
        cur.y = if to.y > cur.y { cur.y + 1 } else { cur.y - 1 };
        out.push(Channel::between(prev, cur).expect("consecutive yx hops are adjacent"));
        prev = cur;
    }
    while cur.x != to.x {
        cur.x = if to.x > cur.x { cur.x + 1 } else { cur.x - 1 };
        out.push(Channel::between(prev, cur).expect("consecutive yx hops are adjacent"));
        prev = cur;
    }
}

#[cfg(test)]
mod yx_tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn yx_goes_y_first() {
        let hops = yx_route(Ulb::new(2, 2), Ulb::new(0, 3));
        assert_eq!(hops, vec![Ulb::new(2, 3), Ulb::new(1, 3), Ulb::new(0, 3)]);
    }

    proptest! {
        #[test]
        fn yx_is_minimal_and_reaches_destination(
            fx in 0u32..32, fy in 0u32..32, tx in 0u32..32, ty in 0u32..32
        ) {
            let from = Ulb::new(fx, fy);
            let to = Ulb::new(tx, ty);
            let hops = yx_route(from, to);
            prop_assert_eq!(hops.len() as u32, from.manhattan_distance(to));
            prop_assert_eq!(hops.last().copied().unwrap_or(from), to);
            prop_assert_eq!(yx_channels(from, to).len(), hops.len());
        }

        #[test]
        fn xy_and_yx_use_the_same_channel_multiset_only_on_lines(
            fx in 0u32..16, fy in 0u32..16, t in 0u32..16
        ) {
            // On a straight line the two disciplines coincide.
            let from = Ulb::new(fx, fy);
            let to = Ulb::new(t, fy);
            prop_assert_eq!(xy_channels(from, to), yx_channels(from, to));
        }

        #[test]
        fn into_variants_match_and_clear_stale_contents(
            fx in 0u32..16, fy in 0u32..16, tx in 0u32..16, ty in 0u32..16
        ) {
            let from = Ulb::new(fx, fy);
            let to = Ulb::new(tx, ty);
            // Pre-soil the buffer: `_into` must clear before filling.
            let mut buf = xy_channels(Ulb::new(9, 9), Ulb::new(0, 0));
            xy_channels_into(from, to, &mut buf);
            prop_assert_eq!(&buf, &xy_channels(from, to));
            yx_channels_into(from, to, &mut buf);
            prop_assert_eq!(&buf, &yx_channels(from, to));
        }
    }
}
