//! Physical parameters of the TQA (Table 1 of the paper).
//!
//! Gate delays come from a ULB fabric-designer tool for an ion-trap fabric
//! with the \[\[7,1,3\]\] Steane code: the non-transversal `T`/`T†` gates are the
//! slowest. These numbers are plain inputs to both the estimator and the
//! detailed mapper; swapping them retargets the whole suite to another
//! technology or QECC ("does not limit the functionality of LEQA", §4.1).

use crate::{FabricError, Micros};

/// The one-qubit fault-tolerant operation types of the paper's universal set
/// `{CNOT, H, T, T†, S, S†, X, Y, Z}` (§2), minus the two-qubit CNOT which is
/// treated separately throughout (Eq. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum OneQubitKind {
    /// Hadamard.
    H,
    /// π/4 rotation.
    T,
    /// −π/4 rotation (T-dagger).
    Tdg,
    /// Phase gate.
    S,
    /// Inverse phase gate.
    Sdg,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
}

impl OneQubitKind {
    /// All one-qubit kinds, in a fixed order (usable as a dense index).
    pub const ALL: [OneQubitKind; 8] = [
        OneQubitKind::H,
        OneQubitKind::T,
        OneQubitKind::Tdg,
        OneQubitKind::S,
        OneQubitKind::Sdg,
        OneQubitKind::X,
        OneQubitKind::Y,
        OneQubitKind::Z,
    ];

    /// Dense index into [`OneQubitKind::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        match self {
            OneQubitKind::H => 0,
            OneQubitKind::T => 1,
            OneQubitKind::Tdg => 2,
            OneQubitKind::S => 3,
            OneQubitKind::Sdg => 4,
            OneQubitKind::X => 5,
            OneQubitKind::Y => 6,
            OneQubitKind::Z => 7,
        }
    }

    /// Short mnemonic as used in circuit listings (`H`, `T`, `T+`, …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            OneQubitKind::H => "H",
            OneQubitKind::T => "T",
            OneQubitKind::Tdg => "T+",
            OneQubitKind::S => "S",
            OneQubitKind::Sdg => "S+",
            OneQubitKind::X => "X",
            OneQubitKind::Y => "Y",
            OneQubitKind::Z => "Z",
        }
    }
}

impl std::fmt::Display for OneQubitKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Per-operation logical gate delays (the `d_g` and `d_CNOT` of Eq. 1).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GateDelays {
    one_qubit: [Micros; 8],
    cnot: Micros,
}

impl GateDelays {
    /// Builds a delay table from a per-kind closure and a CNOT delay.
    pub fn from_fn(mut one_qubit: impl FnMut(OneQubitKind) -> Micros, cnot: Micros) -> Self {
        let mut table = [Micros::ZERO; 8];
        for kind in OneQubitKind::ALL {
            table[kind.index()] = one_qubit(kind);
        }
        GateDelays {
            one_qubit: table,
            cnot,
        }
    }

    /// Delay of a one-qubit FT operation (`d_g`).
    #[inline]
    pub fn one_qubit(&self, kind: OneQubitKind) -> Micros {
        self.one_qubit[kind.index()]
    }

    /// Delay of the CNOT FT operation (`d_CNOT`).
    #[inline]
    pub fn cnot(&self) -> Micros {
        self.cnot
    }

    /// Whether every delay is finite and non-negative.
    pub fn is_valid(&self) -> bool {
        self.cnot.is_valid() && self.one_qubit.iter().all(|d| d.is_valid())
    }
}

/// The full physical parameter set of Table 1.
///
/// # Examples
///
/// ```
/// use leqa_fabric::{Micros, OneQubitKind, PhysicalParams};
///
/// let p = PhysicalParams::dac13();
/// assert_eq!(p.gate_delays().one_qubit(OneQubitKind::H), Micros::new(5440.0));
/// assert_eq!(p.gate_delays().cnot(), Micros::new(4930.0));
/// assert_eq!(p.t_move(), Micros::new(100.0));
/// assert_eq!(p.channel_capacity(), 5);
/// assert_eq!(p.qubit_speed(), 0.001);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PhysicalParams {
    gate_delays: GateDelays,
    t_move: Micros,
    channel_capacity: u32,
    qubit_speed: f64,
}

impl PhysicalParams {
    /// The parameter set of Table 1 (ion trap, \[\[7,1,3\]\] Steane code).
    ///
    /// `d_S`/`d_S†` are not listed in Table 1; they are transversal in the
    /// Steane code like the Paulis, so we use the Pauli delay (5240 µs) and
    /// record the choice in DESIGN.md.
    pub fn dac13() -> Self {
        let delays = GateDelays::from_fn(
            |kind| match kind {
                OneQubitKind::H => Micros::new(5440.0),
                OneQubitKind::T | OneQubitKind::Tdg => Micros::new(10940.0),
                OneQubitKind::S
                | OneQubitKind::Sdg
                | OneQubitKind::X
                | OneQubitKind::Y
                | OneQubitKind::Z => Micros::new(5240.0),
            },
            Micros::new(4930.0),
        );
        PhysicalParams {
            gate_delays: delays,
            t_move: Micros::new(100.0),
            channel_capacity: 5,
            qubit_speed: 0.001,
        }
    }

    /// Starts building a custom parameter set from this one.
    pub fn to_builder(&self) -> PhysicalParamsBuilder {
        PhysicalParamsBuilder {
            inner: self.clone(),
        }
    }

    /// The logical gate delay table.
    #[inline]
    pub fn gate_delays(&self) -> &GateDelays {
        &self.gate_delays
    }

    /// `T_move`: the time for a logical qubit to hop between neighbouring
    /// ULBs/channels/crossbars.
    #[inline]
    pub fn t_move(&self) -> Micros {
        self.t_move
    }

    /// `N_c`: the capacity of a routing channel (qubits that can use it
    /// concurrently without congestion).
    #[inline]
    pub fn channel_capacity(&self) -> u32 {
        self.channel_capacity
    }

    /// `v`: speed of a logical qubit through the routing channels, in ULB
    /// edges per microsecond. Also the knob that tunes LEQA to a particular
    /// mapper (§3.2).
    #[inline]
    pub fn qubit_speed(&self) -> f64 {
        self.qubit_speed
    }

    /// The empirical average routing latency of a one-qubit operation,
    /// `L_g^avg = 2 · T_move` (§3).
    #[inline]
    pub fn one_qubit_routing_latency(&self) -> Micros {
        self.t_move * 2.0
    }
}

/// Builder for [`PhysicalParams`] (C-BUILDER).
///
/// # Examples
///
/// ```
/// use leqa_fabric::{Micros, PhysicalParams};
///
/// # fn main() -> Result<(), leqa_fabric::FabricError> {
/// let fast_movement = PhysicalParams::dac13()
///     .to_builder()
///     .t_move(Micros::new(50.0))
///     .qubit_speed(0.002)
///     .build()?;
/// assert_eq!(fast_movement.t_move(), Micros::new(50.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PhysicalParamsBuilder {
    inner: PhysicalParams,
}

impl PhysicalParamsBuilder {
    /// Replaces the gate delay table.
    pub fn gate_delays(mut self, delays: GateDelays) -> Self {
        self.inner.gate_delays = delays;
        self
    }

    /// Sets `T_move`.
    pub fn t_move(mut self, t_move: Micros) -> Self {
        self.inner.t_move = t_move;
        self
    }

    /// Sets the channel capacity `N_c`.
    pub fn channel_capacity(mut self, capacity: u32) -> Self {
        self.inner.channel_capacity = capacity;
        self
    }

    /// Sets the qubit speed `v`.
    pub fn qubit_speed(mut self, v: f64) -> Self {
        self.inner.qubit_speed = v;
        self
    }

    /// Validates and finishes the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::InvalidParameter`] if a delay is negative or
    /// non-finite, the channel capacity is zero, or the qubit speed is not a
    /// positive finite number.
    pub fn build(self) -> Result<PhysicalParams, FabricError> {
        let p = self.inner;
        if !p.gate_delays.is_valid() {
            return Err(FabricError::InvalidParameter {
                name: "gate_delays",
            });
        }
        if !p.t_move.is_valid() {
            return Err(FabricError::InvalidParameter { name: "t_move" });
        }
        if p.channel_capacity == 0 {
            return Err(FabricError::InvalidParameter {
                name: "channel_capacity",
            });
        }
        if !(p.qubit_speed.is_finite() && p.qubit_speed > 0.0) {
            return Err(FabricError::InvalidParameter {
                name: "qubit_speed",
            });
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let p = PhysicalParams::dac13();
        let d = p.gate_delays();
        assert_eq!(d.one_qubit(OneQubitKind::H).as_f64(), 5440.0);
        assert_eq!(d.one_qubit(OneQubitKind::T).as_f64(), 10940.0);
        assert_eq!(d.one_qubit(OneQubitKind::Tdg).as_f64(), 10940.0);
        assert_eq!(d.one_qubit(OneQubitKind::X).as_f64(), 5240.0);
        assert_eq!(d.one_qubit(OneQubitKind::Y).as_f64(), 5240.0);
        assert_eq!(d.one_qubit(OneQubitKind::Z).as_f64(), 5240.0);
        assert_eq!(d.cnot().as_f64(), 4930.0);
        assert_eq!(p.t_move().as_f64(), 100.0);
        assert_eq!(p.channel_capacity(), 5);
        assert_eq!(p.qubit_speed(), 0.001);
    }

    #[test]
    fn l_g_avg_is_twice_t_move() {
        let p = PhysicalParams::dac13();
        assert_eq!(p.one_qubit_routing_latency().as_f64(), 200.0);
    }

    #[test]
    fn builder_overrides() {
        let p = PhysicalParams::dac13()
            .to_builder()
            .channel_capacity(2)
            .qubit_speed(0.01)
            .build()
            .unwrap();
        assert_eq!(p.channel_capacity(), 2);
        assert_eq!(p.qubit_speed(), 0.01);
    }

    #[test]
    fn builder_rejects_bad_values() {
        assert!(matches!(
            PhysicalParams::dac13()
                .to_builder()
                .channel_capacity(0)
                .build(),
            Err(FabricError::InvalidParameter {
                name: "channel_capacity"
            })
        ));
        assert!(matches!(
            PhysicalParams::dac13()
                .to_builder()
                .qubit_speed(f64::NAN)
                .build(),
            Err(FabricError::InvalidParameter {
                name: "qubit_speed"
            })
        ));
        assert!(matches!(
            PhysicalParams::dac13()
                .to_builder()
                .t_move(Micros::new(-1.0))
                .build(),
            Err(FabricError::InvalidParameter { name: "t_move" })
        ));
    }

    #[test]
    fn kind_indices_are_dense() {
        for (i, k) in OneQubitKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut names: Vec<&str> = OneQubitKind::ALL.iter().map(|k| k.mnemonic()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 8);
    }
}
