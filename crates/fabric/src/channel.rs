//! Routing channels between adjacent ULBs.
//!
//! The TQA separates ULBs by routing channels (Fig. 1); a logical qubit moving
//! from one ULB to an adjacent one traverses exactly one channel, taking
//! `T_move`. A channel is *uncongested* while at most `N_c` qubits occupy it
//! (§3.1); beyond that, qubits pipeline through it.

use crate::{FabricDims, FabricError, Ulb};

/// Orientation of a channel on the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ChannelOrientation {
    /// Connects `(x, y)` with `(x + 1, y)`.
    Horizontal,
    /// Connects `(x, y)` with `(x, y + 1)`.
    Vertical,
}

/// A routing channel between two adjacent ULBs, stored in normalized form
/// (the lexicographically smaller endpoint plus an orientation).
///
/// # Examples
///
/// ```
/// use leqa_fabric::{Channel, Ulb};
///
/// # fn main() -> Result<(), leqa_fabric::FabricError> {
/// let c = Channel::between(Ulb::new(2, 1), Ulb::new(1, 1))?;
/// assert_eq!(c, Channel::between(Ulb::new(1, 1), Ulb::new(2, 1))?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Channel {
    origin: Ulb,
    orientation: ChannelOrientation,
}

impl Channel {
    /// The channel between two adjacent ULBs (in either order).
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::NotAdjacent`] if the ULBs are not grid
    /// neighbours.
    pub fn between(a: Ulb, b: Ulb) -> Result<Self, FabricError> {
        if !a.is_adjacent(b) {
            return Err(FabricError::NotAdjacent);
        }
        let (origin, orientation) = if a.y == b.y {
            (Ulb::new(a.x.min(b.x), a.y), ChannelOrientation::Horizontal)
        } else {
            (Ulb::new(a.x, a.y.min(b.y)), ChannelOrientation::Vertical)
        };
        Ok(Channel {
            origin,
            orientation,
        })
    }

    /// The lexicographically smaller endpoint.
    #[inline]
    pub fn origin(self) -> Ulb {
        self.origin
    }

    /// The other endpoint.
    #[inline]
    pub fn far_end(self) -> Ulb {
        match self.orientation {
            ChannelOrientation::Horizontal => Ulb::new(self.origin.x + 1, self.origin.y),
            ChannelOrientation::Vertical => Ulb::new(self.origin.x, self.origin.y + 1),
        }
    }

    /// The channel's orientation.
    #[inline]
    pub fn orientation(self) -> ChannelOrientation {
        self.orientation
    }

    /// Dense index of this channel on a fabric, for flat occupancy vectors.
    ///
    /// Horizontal channels occupy indices `0 .. (a-1)·b`, vertical channels
    /// follow. See [`ChannelId::count`] for the total.
    pub fn id(self, dims: FabricDims) -> ChannelId {
        let a = dims.width() as usize;
        let b = dims.height() as usize;
        let idx = match self.orientation {
            ChannelOrientation::Horizontal => {
                debug_assert!(self.origin.x + 1 < dims.width());
                self.origin.y as usize * (a - 1) + self.origin.x as usize
            }
            ChannelOrientation::Vertical => {
                debug_assert!(self.origin.y + 1 < dims.height());
                (a - 1) * b + self.origin.y as usize * a + self.origin.x as usize
            }
        };
        ChannelId(idx)
    }
}

impl std::fmt::Display for Channel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}–{}", self.origin(), self.far_end())
    }
}

/// Dense index of a [`Channel`] on a specific fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChannelId(pub usize);

impl ChannelId {
    /// Total number of channels on a fabric:
    /// `(a-1)·b` horizontal plus `a·(b-1)` vertical.
    pub fn count(dims: FabricDims) -> usize {
        let a = dims.width() as usize;
        let b = dims.height() as usize;
        (a - 1) * b + a * (b - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_is_order_independent() {
        let a = Ulb::new(3, 4);
        let b = Ulb::new(3, 5);
        assert_eq!(
            Channel::between(a, b).unwrap(),
            Channel::between(b, a).unwrap()
        );
    }

    #[test]
    fn rejects_non_adjacent() {
        assert_eq!(
            Channel::between(Ulb::new(0, 0), Ulb::new(1, 1)),
            Err(FabricError::NotAdjacent)
        );
        assert_eq!(
            Channel::between(Ulb::new(0, 0), Ulb::new(0, 0)),
            Err(FabricError::NotAdjacent)
        );
    }

    #[test]
    fn endpoints() {
        let c = Channel::between(Ulb::new(2, 2), Ulb::new(3, 2)).unwrap();
        assert_eq!(c.origin(), Ulb::new(2, 2));
        assert_eq!(c.far_end(), Ulb::new(3, 2));
        assert_eq!(c.orientation(), ChannelOrientation::Horizontal);
    }

    #[test]
    fn ids_are_dense_and_unique() {
        let dims = FabricDims::new(5, 4).unwrap();
        let mut seen = vec![false; ChannelId::count(dims)];
        for u in dims.ulbs() {
            for n in dims.neighbors(u) {
                let id = Channel::between(u, n).unwrap().id(dims).0;
                assert!(id < seen.len(), "id {id} out of range");
                seen[id] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every id must be hit");
    }

    #[test]
    fn channel_count_formula() {
        let dims = FabricDims::new(3, 3).unwrap();
        // 2*3 horizontal + 3*2 vertical = 12
        assert_eq!(ChannelId::count(dims), 12);
    }
}
