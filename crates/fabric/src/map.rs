//! Defect and heterogeneity map over a fabric.
//!
//! The paper's model (and the rest of this crate) assumes a pristine,
//! uniform grid: every ULB works, every channel works, and one set of
//! [`PhysicalParams`](crate::PhysicalParams) holds everywhere. Real
//! fabrics ship with dead cells, dead channels and regional parameter
//! drift. A [`FabricMap`] records that reality:
//!
//! * **Disabled cells/channels** — either drawn from a seeded hand-rolled
//!   RNG ([`FabricMap::with_random_defects`]) or marked one by one from an
//!   explicit mask ([`FabricMap::disable_cell`] /
//!   [`FabricMap::disable_channel`]; the JSON grammar lives in the API
//!   layer, see `WORKLOADS.md`).
//! * **Region overlays** — axis-aligned rectangles that override
//!   `t_move`, `qubit_speed` and/or `channel_capacity` inside the region
//!   ([`RegionOverlay`]); later overlays win where they overlap.
//!
//! A map with no defects and no overlays is *pristine*
//! ([`FabricMap::is_pristine`]); consumers use that as the fast-path
//! gate so defect-free runs stay bit-identical to the legacy uniform
//! code paths.

use crate::{Channel, ChannelId, FabricDims, FabricError, Ulb};

/// A tiny, deterministic, hand-rolled PRNG (splitmix64).
///
/// Used for seeded defect generation and anywhere the workspace needs
/// reproducible randomness without external crates. The sequence for a
/// given seed is part of the defect-mask contract: the same seed always
/// yields the same fabric.
///
/// # Examples
///
/// ```
/// use leqa_fabric::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Mixes a word into a fresh seed (for deriving per-trial streams).
    #[must_use]
    pub fn mix(seed: u64, word: u64) -> u64 {
        let mut rng = SplitMix64::new(seed ^ word.wrapping_mul(0xA076_1D64_78BD_642F));
        rng.next_u64()
    }
}

/// An axis-aligned rectangular parameter override.
///
/// Coordinates are inclusive on both ends; the rectangle must lie on the
/// fabric. Each field is optional — `None` leaves the base parameter in
/// force. Where overlays overlap, the **last** one pushed wins, field by
/// field.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionOverlay {
    /// Left column (inclusive).
    pub x0: u32,
    /// Top row (inclusive).
    pub y0: u32,
    /// Right column (inclusive).
    pub x1: u32,
    /// Bottom row (inclusive).
    pub y1: u32,
    /// Override for `T_move` in microseconds, if any.
    pub t_move_us: Option<f64>,
    /// Override for the qubit movement speed `v`, if any.
    pub qubit_speed: Option<f64>,
    /// Override for the channel capacity `N_c`, if any.
    pub channel_capacity: Option<u32>,
}

impl RegionOverlay {
    /// Whether the region covers a cell.
    #[inline]
    #[must_use]
    pub fn contains(&self, ulb: Ulb) -> bool {
        ulb.x >= self.x0 && ulb.x <= self.x1 && ulb.y >= self.y0 && ulb.y <= self.y1
    }
}

/// The folded per-cell parameter overrides at one point of the fabric
/// (see [`FabricMap::overrides_at`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CellOverrides {
    /// Effective `T_move` override in microseconds, if any overlay set one.
    pub t_move_us: Option<f64>,
    /// Effective qubit-speed override, if any overlay set one.
    pub qubit_speed: Option<f64>,
    /// Effective channel-capacity override, if any overlay set one.
    pub channel_capacity: Option<u32>,
}

/// Defect and heterogeneity map over one fabric.
///
/// # Examples
///
/// ```
/// use leqa_fabric::{FabricDims, FabricMap, Ulb};
///
/// # fn main() -> Result<(), leqa_fabric::FabricError> {
/// let dims = FabricDims::new(4, 3)?;
/// let mut map = FabricMap::pristine(dims);
/// assert!(map.is_pristine());
///
/// map.disable_cell(Ulb::new(1, 1))?;
/// assert!(!map.cell_enabled(Ulb::new(1, 1)));
/// assert_eq!(map.live_cells(), 11);
///
/// // Routing bends around the dead cell.
/// let mut path = Vec::new();
/// assert!(map.route_avoiding(Ulb::new(0, 1), Ulb::new(2, 1), &mut path));
/// assert_eq!(path.len(), 4); // detour: 2 hops become 4
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FabricMap {
    dims: FabricDims,
    dead_cells: Vec<bool>,
    dead_channels: Vec<bool>,
    dead_cell_count: u64,
    dead_channel_count: u64,
    overlays: Vec<RegionOverlay>,
}

impl FabricMap {
    /// A map with every cell and channel enabled and no overlays.
    #[must_use]
    pub fn pristine(dims: FabricDims) -> Self {
        FabricMap {
            dims,
            dead_cells: vec![false; dims.area() as usize],
            dead_channels: vec![false; ChannelId::count(dims)],
            dead_cell_count: 0,
            dead_channel_count: 0,
            overlays: Vec::new(),
        }
    }

    /// A map with cells and channels knocked out independently at the
    /// given densities by the seeded hand-rolled RNG ([`SplitMix64`]).
    ///
    /// Cells are drawn first in row-major order, then channels in dense
    /// [`ChannelId`] order, one uniform draw each — the exact sequence is
    /// part of the mask contract (same seed ⇒ same fabric).
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::InvalidParameter`] unless both densities
    /// are finite and in `[0, 1]`.
    pub fn with_random_defects(
        dims: FabricDims,
        cell_density: f64,
        channel_density: f64,
        seed: u64,
    ) -> Result<Self, FabricError> {
        let check = |d: f64, name: &'static str| {
            if d.is_finite() && (0.0..=1.0).contains(&d) {
                Ok(())
            } else {
                Err(FabricError::InvalidParameter { name })
            }
        };
        check(cell_density, "cell_density")?;
        check(channel_density, "channel_density")?;
        let mut map = FabricMap::pristine(dims);
        let mut rng = SplitMix64::new(seed);
        for i in 0..map.dead_cells.len() {
            if rng.next_f64() < cell_density {
                map.dead_cells[i] = true;
                map.dead_cell_count += 1;
            }
        }
        for i in 0..map.dead_channels.len() {
            if rng.next_f64() < channel_density {
                map.dead_channels[i] = true;
                map.dead_channel_count += 1;
            }
        }
        Ok(map)
    }

    /// The fabric this map describes.
    #[inline]
    #[must_use]
    pub fn dims(&self) -> FabricDims {
        self.dims
    }

    /// Marks a cell defective (idempotent).
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::OutOfBounds`] for coordinates off the
    /// fabric.
    pub fn disable_cell(&mut self, ulb: Ulb) -> Result<(), FabricError> {
        self.dims.check(ulb)?;
        let i = self.dims.index_of(ulb);
        if !self.dead_cells[i] {
            self.dead_cells[i] = true;
            self.dead_cell_count += 1;
        }
        Ok(())
    }

    /// Marks a channel defective (idempotent).
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::OutOfBounds`] when the channel's far end
    /// is off this fabric.
    pub fn disable_channel(&mut self, channel: Channel) -> Result<(), FabricError> {
        self.dims.check(channel.origin())?;
        self.dims.check(channel.far_end())?;
        let i = channel.id(self.dims).0;
        if !self.dead_channels[i] {
            self.dead_channels[i] = true;
            self.dead_channel_count += 1;
        }
        Ok(())
    }

    /// Adds a parameter overlay (later overlays win where they overlap).
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::OutOfBounds`] when the rectangle leaves
    /// the fabric and [`FabricError::InvalidParameter`] when a corner is
    /// inverted or an override value is non-positive or non-finite.
    pub fn push_overlay(&mut self, overlay: RegionOverlay) -> Result<(), FabricError> {
        if overlay.x0 > overlay.x1 || overlay.y0 > overlay.y1 {
            return Err(FabricError::InvalidParameter { name: "overlay" });
        }
        self.dims.check(Ulb::new(overlay.x1, overlay.y1))?;
        if let Some(t) = overlay.t_move_us {
            if !(t.is_finite() && t > 0.0) {
                return Err(FabricError::InvalidParameter { name: "t_move_us" });
            }
        }
        if let Some(v) = overlay.qubit_speed {
            if !(v.is_finite() && v > 0.0) {
                return Err(FabricError::InvalidParameter {
                    name: "qubit_speed",
                });
            }
        }
        if overlay.channel_capacity == Some(0) {
            return Err(FabricError::InvalidParameter {
                name: "channel_capacity",
            });
        }
        self.overlays.push(overlay);
        Ok(())
    }

    /// Whether a cell is usable.
    #[inline]
    #[must_use]
    pub fn cell_enabled(&self, ulb: Ulb) -> bool {
        !self.dead_cells[self.dims.index_of(ulb)]
    }

    /// Whether a channel is usable.
    #[inline]
    #[must_use]
    pub fn channel_enabled(&self, channel: Channel) -> bool {
        !self.dead_channels[channel.id(self.dims).0]
    }

    /// Usable cells.
    #[inline]
    #[must_use]
    pub fn live_cells(&self) -> u64 {
        self.dims.area() - self.dead_cell_count
    }

    /// Defective cells.
    #[inline]
    #[must_use]
    pub fn dead_cells(&self) -> u64 {
        self.dead_cell_count
    }

    /// Usable channels.
    #[inline]
    #[must_use]
    pub fn live_channels(&self) -> u64 {
        ChannelId::count(self.dims) as u64 - self.dead_channel_count
    }

    /// Defective channels.
    #[inline]
    #[must_use]
    pub fn dead_channels(&self) -> u64 {
        self.dead_channel_count
    }

    /// The overlays in push order (the application order).
    #[must_use]
    pub fn overlays(&self) -> &[RegionOverlay] {
        &self.overlays
    }

    /// Whether the map carries any defects at all.
    #[inline]
    #[must_use]
    pub fn has_defects(&self) -> bool {
        self.dead_cell_count > 0 || self.dead_channel_count > 0
    }

    /// Whether the map is indistinguishable from no map: no defects and
    /// no overlays. Consumers branch on this to keep defect-free runs
    /// bit-identical to the legacy uniform code paths.
    #[inline]
    #[must_use]
    pub fn is_pristine(&self) -> bool {
        !self.has_defects() && self.overlays.is_empty()
    }

    /// The folded overlay overrides at a cell (last overlay wins per
    /// field; all `None` outside every overlay).
    #[must_use]
    pub fn overrides_at(&self, ulb: Ulb) -> CellOverrides {
        let mut folded = CellOverrides::default();
        for overlay in &self.overlays {
            if overlay.contains(ulb) {
                if overlay.t_move_us.is_some() {
                    folded.t_move_us = overlay.t_move_us;
                }
                if overlay.qubit_speed.is_some() {
                    folded.qubit_speed = overlay.qubit_speed;
                }
                if overlay.channel_capacity.is_some() {
                    folded.channel_capacity = overlay.channel_capacity;
                }
            }
        }
        folded
    }

    /// Effective capacity of a channel: the overlay override at its
    /// origin cell, or `base`.
    #[must_use]
    pub fn channel_capacity_at(&self, channel: Channel, base: u32) -> u32 {
        self.overrides_at(channel.origin())
            .channel_capacity
            .unwrap_or(base)
    }

    /// Effective `T_move` of a channel in microseconds: the overlay
    /// override at its origin cell, or `base_us`.
    #[must_use]
    pub fn channel_t_move_at(&self, channel: Channel, base_us: f64) -> f64 {
        self.overrides_at(channel.origin())
            .t_move_us
            .unwrap_or(base_us)
    }

    /// Mean usable channel capacity per channel *site* (dead channels
    /// count as zero capacity): the effective `N_c` the congestion model
    /// should see on this fabric.
    #[must_use]
    pub fn mean_channel_capacity(&self, base: u32) -> f64 {
        let total = ChannelId::count(self.dims);
        if total == 0 {
            return base as f64;
        }
        let mut sum = 0.0;
        for channel in self.channels() {
            if self.channel_enabled(channel) {
                sum += self.channel_capacity_at(channel, base) as f64;
            }
        }
        sum / total as f64
    }

    /// Mean qubit speed over the *live* cells (base speed where no
    /// overlay applies). Falls back to `base` when every cell is dead.
    #[must_use]
    pub fn mean_qubit_speed(&self, base: f64) -> f64 {
        self.mean_over_live_cells(base, |o| o.qubit_speed)
    }

    /// Mean `T_move` in microseconds over the *live* cells (base value
    /// where no overlay applies). Falls back to `base_us` when every
    /// cell is dead.
    #[must_use]
    pub fn mean_t_move_us(&self, base_us: f64) -> f64 {
        self.mean_over_live_cells(base_us, |o| o.t_move_us)
    }

    fn mean_over_live_cells(&self, base: f64, pick: impl Fn(&CellOverrides) -> Option<f64>) -> f64 {
        if self.live_cells() == 0 {
            return base;
        }
        if self.overlays.is_empty() {
            return base;
        }
        let mut sum = 0.0;
        for ulb in self.dims.ulbs() {
            if self.cell_enabled(ulb) {
                sum += pick(&self.overrides_at(ulb)).unwrap_or(base);
            }
        }
        sum / self.live_cells() as f64
    }

    /// Iterates every channel of the fabric in dense [`ChannelId`]
    /// order (horizontal rows first, then vertical).
    pub fn channels(&self) -> impl Iterator<Item = Channel> + '_ {
        let dims = self.dims;
        let (a, b) = (dims.width(), dims.height());
        let horizontal = (0..b).flat_map(move |y| {
            (0..a.saturating_sub(1)).map(move |x| {
                Channel::between(Ulb::new(x, y), Ulb::new(x + 1, y))
                    .expect("adjacent by construction")
            })
        });
        let vertical = (0..b.saturating_sub(1)).flat_map(move |y| {
            (0..a).map(move |x| {
                Channel::between(Ulb::new(x, y), Ulb::new(x, y + 1))
                    .expect("adjacent by construction")
            })
        });
        horizontal.chain(vertical)
    }

    /// Shortest route between two cells that uses only enabled cells and
    /// channels, via deterministic breadth-first search (neighbour order:
    /// −x, +x, −y, +y; first-found parent wins, so ties resolve
    /// identically on every run). Channels are appended to `out` in
    /// travel order after clearing it.
    ///
    /// Returns `false` (leaving `out` empty) when either endpoint is
    /// disabled or no defect-free path exists. `from == to` on an
    /// enabled cell is trivially routable with an empty path.
    pub fn route_avoiding(&self, from: Ulb, to: Ulb, out: &mut Vec<Channel>) -> bool {
        out.clear();
        if !self.cell_enabled(from) || !self.cell_enabled(to) {
            return false;
        }
        if from == to {
            return true;
        }
        let n = self.dims.area() as usize;
        const NO_PARENT: u32 = u32::MAX;
        let mut parent = vec![NO_PARENT; n];
        let mut queue = std::collections::VecDeque::new();
        let start = self.dims.index_of(from);
        let goal = self.dims.index_of(to);
        parent[start] = start as u32;
        queue.push_back(start);
        'search: while let Some(i) = queue.pop_front() {
            let here = self.dims.ulb_at(i);
            for next in self.dims.neighbors(here) {
                let j = self.dims.index_of(next);
                if parent[j] != NO_PARENT || !self.cell_enabled(next) {
                    continue;
                }
                let channel = Channel::between(here, next).expect("neighbors are adjacent");
                if !self.channel_enabled(channel) {
                    continue;
                }
                parent[j] = i as u32;
                if j == goal {
                    break 'search;
                }
                queue.push_back(j);
            }
        }
        if parent[goal] == NO_PARENT {
            return false;
        }
        // Walk parents goal→start, emit channels, then reverse into
        // travel order.
        let mut i = goal;
        while i != start {
            let p = parent[i] as usize;
            let channel = Channel::between(self.dims.ulb_at(p), self.dims.ulb_at(i))
                .expect("parent steps are adjacent");
            out.push(channel);
            i = p;
        }
        out.reverse();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims(w: u32, h: u32) -> FabricDims {
        FabricDims::new(w, h).unwrap()
    }

    #[test]
    fn pristine_map_is_pristine() {
        let map = FabricMap::pristine(dims(5, 4));
        assert!(map.is_pristine());
        assert_eq!(map.live_cells(), 20);
        assert_eq!(map.live_channels(), ChannelId::count(dims(5, 4)) as u64);
        assert!(map.cell_enabled(Ulb::new(4, 3)));
    }

    #[test]
    fn splitmix_is_deterministic_and_uniformish() {
        let mut rng = SplitMix64::new(42);
        let draws: Vec<f64> = (0..1000).map(|_| rng.next_f64()).collect();
        assert!(draws.iter().all(|&d| (0.0..1.0).contains(&d)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
        let mut again = SplitMix64::new(42);
        assert_eq!(again.next_f64(), draws[0]);
    }

    #[test]
    fn random_defects_match_density_and_seed() {
        let d = dims(20, 20);
        let a = FabricMap::with_random_defects(d, 0.25, 0.25, 9).unwrap();
        let b = FabricMap::with_random_defects(d, 0.25, 0.25, 9).unwrap();
        assert_eq!(a, b);
        let frac = a.dead_cells() as f64 / d.area() as f64;
        assert!((0.1..0.4).contains(&frac), "cell defect fraction {frac}");
        let c = FabricMap::with_random_defects(d, 0.25, 0.25, 10).unwrap();
        assert_ne!(a, c);
        assert!(FabricMap::with_random_defects(d, 0.0, 0.0, 1)
            .unwrap()
            .is_pristine());
        assert!(FabricMap::with_random_defects(d, 1.5, 0.0, 1).is_err());
        assert!(FabricMap::with_random_defects(d, 0.0, f64::NAN, 1).is_err());
    }

    #[test]
    fn disable_checks_bounds_and_is_idempotent() {
        let mut map = FabricMap::pristine(dims(3, 3));
        assert!(map.disable_cell(Ulb::new(9, 0)).is_err());
        map.disable_cell(Ulb::new(1, 1)).unwrap();
        map.disable_cell(Ulb::new(1, 1)).unwrap();
        assert_eq!(map.dead_cells(), 1);
        let ch = Channel::between(Ulb::new(0, 0), Ulb::new(1, 0)).unwrap();
        map.disable_channel(ch).unwrap();
        map.disable_channel(ch).unwrap();
        assert_eq!(map.dead_channels(), 1);
        assert!(!map.channel_enabled(ch));
    }

    #[test]
    fn overlays_fold_last_wins() {
        let mut map = FabricMap::pristine(dims(6, 6));
        map.push_overlay(RegionOverlay {
            x0: 0,
            y0: 0,
            x1: 3,
            y1: 3,
            t_move_us: Some(50.0),
            qubit_speed: None,
            channel_capacity: Some(2),
        })
        .unwrap();
        map.push_overlay(RegionOverlay {
            x0: 2,
            y0: 2,
            x1: 5,
            y1: 5,
            t_move_us: Some(200.0),
            qubit_speed: Some(0.002),
            channel_capacity: None,
        })
        .unwrap();
        assert!(!map.is_pristine());
        let at = |x, y| map.overrides_at(Ulb::new(x, y));
        assert_eq!(at(1, 1).t_move_us, Some(50.0));
        assert_eq!(at(2, 2).t_move_us, Some(200.0)); // overlap: last wins
        assert_eq!(at(2, 2).channel_capacity, Some(2)); // field-wise fold
        assert_eq!(at(5, 5).qubit_speed, Some(0.002));
        assert_eq!(at(5, 0), CellOverrides::default());
        let ch = Channel::between(Ulb::new(0, 0), Ulb::new(1, 0)).unwrap();
        assert_eq!(map.channel_capacity_at(ch, 5), 2);
        assert_eq!(map.channel_t_move_at(ch, 100.0), 50.0);
    }

    #[test]
    fn overlay_validation() {
        let mut map = FabricMap::pristine(dims(4, 4));
        let base = RegionOverlay {
            x0: 1,
            y0: 1,
            x1: 2,
            y1: 2,
            t_move_us: None,
            qubit_speed: None,
            channel_capacity: None,
        };
        assert!(map
            .push_overlay(RegionOverlay {
                x1: 0,
                ..base.clone()
            })
            .is_err());
        assert!(map
            .push_overlay(RegionOverlay {
                x1: 4,
                ..base.clone()
            })
            .is_err());
        assert!(map
            .push_overlay(RegionOverlay {
                t_move_us: Some(-1.0),
                ..base.clone()
            })
            .is_err());
        assert!(map
            .push_overlay(RegionOverlay {
                channel_capacity: Some(0),
                ..base.clone()
            })
            .is_err());
        assert!(map.push_overlay(base).is_ok());
    }

    #[test]
    fn mean_aggregates() {
        let d = dims(4, 4);
        let mut map = FabricMap::pristine(d);
        assert_eq!(map.mean_channel_capacity(5), 5.0);
        assert_eq!(map.mean_qubit_speed(0.001), 0.001);
        // Kill one channel: mean capacity drops by 5/24.
        let ch = Channel::between(Ulb::new(0, 0), Ulb::new(1, 0)).unwrap();
        map.disable_channel(ch).unwrap();
        let total = ChannelId::count(d) as f64;
        let expect = 5.0 * (total - 1.0) / total;
        assert!((map.mean_channel_capacity(5) - expect).abs() < 1e-12);
    }

    #[test]
    fn channels_iterates_in_dense_id_order() {
        let map = FabricMap::pristine(dims(4, 3));
        let ids: Vec<usize> = map.channels().map(|c| c.id(map.dims()).0).collect();
        let expect: Vec<usize> = (0..ChannelId::count(map.dims())).collect();
        assert_eq!(ids, expect);
    }

    #[test]
    fn route_avoiding_detours_around_dead_cell() {
        let mut map = FabricMap::pristine(dims(3, 3));
        map.disable_cell(Ulb::new(1, 1)).unwrap();
        let mut path = Vec::new();
        assert!(map.route_avoiding(Ulb::new(0, 1), Ulb::new(2, 1), &mut path));
        assert_eq!(path.len(), 4);
        // Path is contiguous and avoids the dead cell.
        for c in &path {
            assert_ne!(c.origin(), Ulb::new(1, 1));
            assert_ne!(c.far_end(), Ulb::new(1, 1));
        }
    }

    #[test]
    fn route_avoiding_dead_channel() {
        let mut map = FabricMap::pristine(dims(2, 2));
        let direct = Channel::between(Ulb::new(0, 0), Ulb::new(1, 0)).unwrap();
        map.disable_channel(direct).unwrap();
        let mut path = Vec::new();
        assert!(map.route_avoiding(Ulb::new(0, 0), Ulb::new(1, 0), &mut path));
        assert_eq!(path.len(), 3);
        assert!(path.iter().all(|&c| c != direct));
    }

    #[test]
    fn route_avoiding_reports_disconnection() {
        // Wall of dead cells splits a 3-wide fabric.
        let mut map = FabricMap::pristine(dims(3, 3));
        for y in 0..3 {
            map.disable_cell(Ulb::new(1, y)).unwrap();
        }
        let mut path = Vec::new();
        assert!(!map.route_avoiding(Ulb::new(0, 0), Ulb::new(2, 2), &mut path));
        assert!(path.is_empty());
        // Dead endpoints are unroutable too.
        assert!(!map.route_avoiding(Ulb::new(1, 0), Ulb::new(0, 0), &mut path));
        // Same-cell routing on a live cell is trivially fine.
        assert!(map.route_avoiding(Ulb::new(0, 0), Ulb::new(0, 0), &mut path));
        assert!(path.is_empty());
    }

    #[test]
    fn route_avoiding_matches_manhattan_on_pristine_fabric() {
        let map = FabricMap::pristine(dims(7, 5));
        let mut path = Vec::new();
        for from in map.dims().ulbs() {
            for to in [Ulb::new(0, 0), Ulb::new(6, 4), Ulb::new(3, 2)] {
                assert!(map.route_avoiding(from, to, &mut path));
                assert_eq!(path.len() as u32, from.manhattan_distance(to));
            }
        }
    }
}
