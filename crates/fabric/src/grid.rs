//! The ULB grid: dimensions, coordinates, distances and iteration.

use crate::FabricError;

/// Coordinate of a Universal Logic Block on the fabric, 0-based.
///
/// The paper indexes ULBs 1-based (`x ∈ [1, a]`, Eq. 5); this crate uses
/// 0-based coordinates internally and the LEQA coverage code performs the
/// 1-based summation itself, so no conversion leaks into user code.
///
/// # Examples
///
/// ```
/// use leqa_fabric::Ulb;
///
/// let u = Ulb::new(2, 3);
/// assert_eq!(u.manhattan_distance(Ulb::new(5, 1)), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Ulb {
    /// Column, 0-based.
    pub x: u32,
    /// Row, 0-based.
    pub y: u32,
}

impl Ulb {
    /// Creates a ULB coordinate.
    #[inline]
    pub const fn new(x: u32, y: u32) -> Self {
        Ulb { x, y }
    }

    /// Manhattan (L1) distance to another ULB, in grid steps.
    ///
    /// One grid step corresponds to one routing-channel traversal, which the
    /// physical model charges `T_move` for.
    #[inline]
    pub fn manhattan_distance(self, other: Ulb) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }

    /// Whether `other` is one of the (at most four) grid neighbours.
    #[inline]
    pub fn is_adjacent(self, other: Ulb) -> bool {
        self.manhattan_distance(other) == 1
    }
}

impl std::fmt::Display for Ulb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// Dimensions of the TQA: an `a × b` grid of 1×1 ULBs (so the fabric area
/// `A = a·b` equals the ULB count, Eq. 3).
///
/// # Examples
///
/// ```
/// use leqa_fabric::{FabricDims, Ulb};
///
/// # fn main() -> Result<(), leqa_fabric::FabricError> {
/// let dims = FabricDims::new(4, 3)?;
/// assert_eq!(dims.area(), 12);
/// assert!(dims.contains(Ulb::new(3, 2)));
/// assert!(!dims.contains(Ulb::new(4, 0)));
/// assert_eq!(dims.ulbs().count(), 12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FabricDims {
    width: u32,
    height: u32,
}

impl FabricDims {
    /// Creates fabric dimensions of `width` (the paper's `a`) by `height`
    /// (the paper's `b`).
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::ZeroDimension`] if either dimension is 0.
    pub fn new(width: u32, height: u32) -> Result<Self, FabricError> {
        if width == 0 || height == 0 {
            return Err(FabricError::ZeroDimension);
        }
        Ok(FabricDims { width, height })
    }

    /// The fabric used throughout the paper's evaluation: 60 × 60 = 3600 ULBs.
    pub fn dac13() -> Self {
        FabricDims {
            width: 60,
            height: 60,
        }
    }

    /// Grid width (the paper's `a`).
    #[inline]
    pub const fn width(self) -> u32 {
        self.width
    }

    /// Grid height (the paper's `b`).
    #[inline]
    pub const fn height(self) -> u32 {
        self.height
    }

    /// Total ULB count `A = a·b`.
    #[inline]
    pub const fn area(self) -> u64 {
        self.width as u64 * self.height as u64
    }

    /// Whether a coordinate lies on the fabric.
    #[inline]
    pub fn contains(self, ulb: Ulb) -> bool {
        ulb.x < self.width && ulb.y < self.height
    }

    /// Checks a coordinate, returning it on success.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::OutOfBounds`] if the coordinate is off-fabric.
    pub fn check(self, ulb: Ulb) -> Result<Ulb, FabricError> {
        if self.contains(ulb) {
            Ok(ulb)
        } else {
            Err(FabricError::OutOfBounds {
                x: ulb.x,
                y: ulb.y,
                width: self.width,
                height: self.height,
            })
        }
    }

    /// Dense row-major index of a ULB (for flat occupancy vectors).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the ULB is off-fabric.
    #[inline]
    pub fn index_of(self, ulb: Ulb) -> usize {
        debug_assert!(self.contains(ulb));
        ulb.y as usize * self.width as usize + ulb.x as usize
    }

    /// Inverse of [`index_of`](Self::index_of).
    #[inline]
    pub fn ulb_at(self, index: usize) -> Ulb {
        Ulb::new(
            (index % self.width as usize) as u32,
            (index / self.width as usize) as u32,
        )
    }

    /// Iterates over every ULB in row-major order.
    pub fn ulbs(self) -> UlbIter {
        UlbIter {
            dims: self,
            next: 0,
        }
    }

    /// The (up to four) grid neighbours of a ULB, clipped to the fabric.
    pub fn neighbors(self, ulb: Ulb) -> impl Iterator<Item = Ulb> {
        let dims = self;
        let candidates = [
            (ulb.x.checked_sub(1), Some(ulb.y)),
            (ulb.x.checked_add(1), Some(ulb.y)),
            (Some(ulb.x), ulb.y.checked_sub(1)),
            (Some(ulb.x), ulb.y.checked_add(1)),
        ];
        candidates
            .into_iter()
            .filter_map(move |(x, y)| match (x, y) {
                (Some(x), Some(y)) if dims.contains(Ulb::new(x, y)) => Some(Ulb::new(x, y)),
                _ => None,
            })
    }

    /// Iterates over ULBs in order of increasing Manhattan distance from
    /// `center` (ring by ring), clipped to the fabric.
    ///
    /// Used by the detailed mapper to find the nearest free ULB for a
    /// one-qubit operation, the behaviour the paper's `L_g^avg = 2·T_move`
    /// empirical value abstracts.
    pub fn rings(self, center: Ulb) -> impl Iterator<Item = Ulb> {
        let dims = self;
        let max_radius = dims.width + dims.height;
        (0..=max_radius).flat_map(move |r| {
            ring_offsets(r).filter_map(move |(dx, dy)| {
                let x = center.x as i64 + dx;
                let y = center.y as i64 + dy;
                if x >= 0 && y >= 0 {
                    let u = Ulb::new(x as u32, y as u32);
                    dims.contains(u).then_some(u)
                } else {
                    None
                }
            })
        })
    }
}

/// Offsets at exactly Manhattan radius `r`, deterministic order.
fn ring_offsets(r: u32) -> impl Iterator<Item = (i64, i64)> {
    let r = r as i64;
    (0..(if r == 0 { 1 } else { 4 * r })).map(move |k| {
        if r == 0 {
            (0, 0)
        } else {
            // Walk the diamond perimeter: start at (r, 0), go counter-clockwise.
            let side = k / r;
            let step = k % r;
            match side {
                0 => (r - step, step),
                1 => (-step, r - step),
                2 => (step - r, -step),
                _ => (step, step - r),
            }
        }
    })
}

/// Iterator over the ULBs of a fabric in row-major order.
#[derive(Debug, Clone)]
pub struct UlbIter {
    dims: FabricDims,
    next: usize,
}

impl Iterator for UlbIter {
    type Item = Ulb;

    fn next(&mut self) -> Option<Ulb> {
        if (self.next as u64) < self.dims.area() {
            let u = self.dims.ulb_at(self.next);
            self.next += 1;
            Some(u)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = (self.dims.area() as usize).saturating_sub(self.next);
        (rest, Some(rest))
    }
}

impl ExactSizeIterator for UlbIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_dims() {
        assert_eq!(FabricDims::new(0, 5), Err(FabricError::ZeroDimension));
        assert_eq!(FabricDims::new(5, 0), Err(FabricError::ZeroDimension));
    }

    #[test]
    fn dac13_is_60_by_60() {
        let d = FabricDims::dac13();
        assert_eq!((d.width(), d.height()), (60, 60));
        assert_eq!(d.area(), 3600);
    }

    #[test]
    fn manhattan_distance_is_symmetric_and_zero_on_self() {
        let a = Ulb::new(1, 7);
        let b = Ulb::new(4, 2);
        assert_eq!(a.manhattan_distance(b), b.manhattan_distance(a));
        assert_eq!(a.manhattan_distance(a), 0);
        assert_eq!(a.manhattan_distance(b), 3 + 5);
    }

    #[test]
    fn index_roundtrip() {
        let d = FabricDims::new(7, 5).unwrap();
        for u in d.ulbs() {
            assert_eq!(d.ulb_at(d.index_of(u)), u);
        }
    }

    #[test]
    fn ulb_iteration_covers_fabric_once() {
        let d = FabricDims::new(4, 3).unwrap();
        let all: Vec<Ulb> = d.ulbs().collect();
        assert_eq!(all.len(), 12);
        assert_eq!(all[0], Ulb::new(0, 0));
        assert_eq!(all[11], Ulb::new(3, 2));
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 12);
    }

    #[test]
    fn neighbors_clip_to_fabric() {
        let d = FabricDims::new(3, 3).unwrap();
        let corner: Vec<Ulb> = d.neighbors(Ulb::new(0, 0)).collect();
        assert_eq!(corner.len(), 2);
        let center: Vec<Ulb> = d.neighbors(Ulb::new(1, 1)).collect();
        assert_eq!(center.len(), 4);
    }

    #[test]
    fn check_rejects_out_of_bounds() {
        let d = FabricDims::new(2, 2).unwrap();
        assert!(d.check(Ulb::new(1, 1)).is_ok());
        assert!(matches!(
            d.check(Ulb::new(2, 0)),
            Err(FabricError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn rings_enumerate_by_distance() {
        let d = FabricDims::new(9, 9).unwrap();
        let center = Ulb::new(4, 4);
        let ordered: Vec<Ulb> = d.rings(center).take(30).collect();
        // Distances must be non-decreasing.
        let dist: Vec<u32> = ordered
            .iter()
            .map(|u| u.manhattan_distance(center))
            .collect();
        assert!(dist.windows(2).all(|w| w[0] <= w[1]));
        // Radius-1 ring has 4 cells, radius-2 has 8.
        assert_eq!(dist.iter().filter(|&&x| x == 1).count(), 4);
        assert_eq!(dist.iter().filter(|&&x| x == 2).count(), 8);
    }

    #[test]
    fn rings_cover_whole_fabric_exactly_once() {
        let d = FabricDims::new(5, 4).unwrap();
        let mut seen: Vec<Ulb> = d.rings(Ulb::new(0, 0)).collect();
        assert_eq!(seen.len() as u64, d.area());
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len() as u64, d.area());
    }

    #[test]
    fn adjacency() {
        assert!(Ulb::new(1, 1).is_adjacent(Ulb::new(1, 2)));
        assert!(!Ulb::new(1, 1).is_adjacent(Ulb::new(2, 2)));
        assert!(!Ulb::new(1, 1).is_adjacent(Ulb::new(1, 1)));
    }
}
