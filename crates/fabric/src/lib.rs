//! Tiled quantum architecture (TQA) substrate for the LEQA reproduction.
//!
//! The paper (Dousti & Pedram, DAC 2013) models the quantum circuit fabric as
//! an `a × b` grid of Universal Logic Blocks (ULBs) separated by routing
//! channels of capacity `N_c` (Fig. 1). This crate provides:
//!
//! * [`FabricDims`] — the grid itself and its geometry,
//! * [`Ulb`] — a ULB coordinate, with Manhattan distance and neighbourhood,
//! * [`Channel`] / [`ChannelId`] — the routing channels between adjacent
//!   ULBs, with a dense index for occupancy bookkeeping,
//! * [`route::xy_route`] — deterministic dimension-ordered (X-then-Y) paths,
//! * [`FabricMap`] — defect/heterogeneity overlay (dead cells and
//!   channels, per-region parameter overrides, defect-avoiding routing),
//! * [`PhysicalParams`] / [`GateDelays`] — the physical parameter set of
//!   Table 1 (\[\[7,1,3\]\] Steane code on an ion-trap fabric),
//! * [`Micros`] — a newtype for latencies in microseconds.
//!
//! # Examples
//!
//! ```
//! use leqa_fabric::{FabricDims, PhysicalParams, Ulb};
//!
//! # fn main() -> Result<(), leqa_fabric::FabricError> {
//! let dims = FabricDims::new(60, 60)?; // the paper's 3600-ULB fabric
//! assert_eq!(dims.area(), 3600);
//!
//! let a = Ulb::new(0, 0);
//! let b = Ulb::new(3, 4);
//! assert_eq!(a.manhattan_distance(b), 7);
//!
//! let params = PhysicalParams::dac13();
//! assert_eq!(params.channel_capacity(), 5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod error;
mod grid;
mod map;
mod params;
pub mod route;
mod units;

pub use channel::{Channel, ChannelId, ChannelOrientation};
pub use error::FabricError;
pub use grid::{FabricDims, Ulb, UlbIter};
pub use map::{CellOverrides, FabricMap, RegionOverlay, SplitMix64};
pub use params::{GateDelays, OneQubitKind, PhysicalParams, PhysicalParamsBuilder};
pub use units::Micros;
