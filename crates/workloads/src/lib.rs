//! Benchmark-circuit generators reproducing the LEQA evaluation suite.
//!
//! The paper takes its 18 benchmarks from D. Maslov's reversible-benchmark
//! page (reference \[12\], a 2012 snapshot that is no longer distributable).
//! This crate regenerates each family procedurally:
//!
//! * [`gf2::gf2_mult`] — GF(2^n) multipliers as Mastrovito Toffoli networks:
//!   `n²` Toffolis (one per partial product) plus `w·(n−1)` reduction CNOTs
//!   for a reduction polynomial with `w` non-trivial taps. With the paper's
//!   pentanomial default (`w = 3`, trinomial for n = 20) the lowered op
//!   counts **exactly** match Table 3 for every `gf2^n mult` row.
//! * [`adder`] — ripple-carry adders (a genuine Cuccaro construction plus
//!   the suite's tuned 8-bit and mod-2^20 variants).
//! * [`hwb::hwb`] — hidden-weighted-bit-style controlled-permutation
//!   networks with the published qubit/op counts.
//! * [`ham`] — Hamming-code benchmarks, including the ham3 circuit of
//!   Fig. 2.
//! * [`random_circuit`] — seeded random circuits for property tests and
//!   sweeps.
//! * [`suite`] — the named 18-benchmark table suite with the paper's
//!   published numbers attached for comparison.
//!
//! See DESIGN.md §4 for the substitution argument: LEQA consumes only graph
//! statistics (dependency structure, interaction degrees, two-qubit-op
//! multiplicities), so a generator that reproduces the family structure,
//! qubit count and op count preserves the quantities under test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adder;
pub mod gf2;
pub mod ham;
pub mod hwb;
mod mix;
pub mod qft;
mod random;
pub mod shor;
pub mod suite;

pub use mix::MixSpec;
pub use random::{random_circuit, RandomCircuitConfig};
pub use suite::{Benchmark, PaperRow, SUITE};

use leqa_circuit::Circuit;

/// Resolves a workload name to its circuit: either one of the 18 named
/// suite benchmarks ([`Benchmark::by_name`]) or a parametric generator
/// spelled inline (the grammar shared by `--bench`, the API's
/// `{"bench": …}` program spec and experiment workload axes — see
/// `WORKLOADS.md`):
///
/// * `qft_N` — the approximate QFT on `N` qubits with the default
///   rotation cutoff (`min(N, 16)`, the Shor-extrapolation setting),
/// * `qft_N_K` — the same with an explicit cutoff `K ≥ 2`,
/// * `random_Q_G` — a seeded random circuit on `Q ≥ 3` qubits with `G`
///   gates (default mix: 25% Toffoli, 35% CNOT, seed 42),
/// * `random_Q_G_S` — the same with an explicit RNG seed `S`.
///
/// Returns `None` for unknown names or out-of-range parameters, so
/// callers can produce their own "unknown benchmark" diagnostics.
///
/// # Examples
///
/// ```
/// use leqa_workloads::circuit_by_name;
///
/// assert_eq!(circuit_by_name("qft_64").unwrap().num_qubits(), 64);
/// assert!(circuit_by_name("8bitadder").is_some());
/// assert_eq!(circuit_by_name("random_12_200").unwrap().gates().len(), 200);
/// assert!(circuit_by_name("nope").is_none());
/// ```
#[must_use]
pub fn circuit_by_name(name: &str) -> Option<Circuit> {
    Some(match parse_workload_name(name)? {
        ParsedWorkload::Suite(bench) => bench.circuit(),
        ParsedWorkload::Qft { n, max_k } => qft::qft(n, max_k),
        ParsedWorkload::Random {
            qubits,
            gates,
            seed,
        } => random_circuit(RandomCircuitConfig {
            qubits,
            gates,
            seed,
            ..RandomCircuitConfig::default()
        }),
    })
}

/// Whether a name is in the [`circuit_by_name`] grammar, **without**
/// generating the circuit — the cheap validator for dry-run paths
/// (e.g. `leqa experiment --dry-run`) where building a huge parametric
/// workload just to check its name would defeat the point.
///
/// # Examples
///
/// ```
/// use leqa_workloads::workload_name_is_known;
///
/// assert!(workload_name_is_known("qft_100000")); // no circuit built
/// assert!(!workload_name_is_known("nope"));
/// ```
#[must_use]
pub fn workload_name_is_known(name: &str) -> bool {
    parse_workload_name(name).is_some()
}

/// A workload name resolved to its generator and parameters, before any
/// circuit is built.
enum ParsedWorkload {
    Suite(&'static Benchmark),
    Qft { n: u32, max_k: u32 },
    Random { qubits: u32, gates: u64, seed: u64 },
}

fn parse_workload_name(name: &str) -> Option<ParsedWorkload> {
    if let Some(bench) = Benchmark::by_name(name) {
        return Some(ParsedWorkload::Suite(bench));
    }
    if let Some(rest) = name.strip_prefix("qft_") {
        let mut parts = rest.split('_');
        let n: u32 = parts.next()?.parse().ok()?;
        let max_k: u32 = match parts.next() {
            Some(k) => k.parse().ok()?,
            None => n.min(16),
        };
        if parts.next().is_some() || n == 0 || max_k < 2 {
            return None;
        }
        return Some(ParsedWorkload::Qft { n, max_k });
    }
    if let Some(rest) = name.strip_prefix("random_") {
        let mut parts = rest.split('_');
        let qubits: u32 = parts.next()?.parse().ok()?;
        let gates: u64 = parts.next()?.parse().ok()?;
        let seed: u64 = match parts.next() {
            Some(s) => s.parse().ok()?,
            None => 42,
        };
        if parts.next().is_some() || qubits < 3 {
            return None;
        }
        return Some(ParsedWorkload::Random {
            qubits,
            gates,
            seed,
        });
    }
    None
}

#[cfg(test)]
mod name_tests {
    use super::*;

    #[test]
    fn qft_names_resolve_with_and_without_cutoff() {
        let default = circuit_by_name("qft_8").unwrap();
        let explicit = circuit_by_name("qft_8_8").unwrap();
        assert_eq!(default, explicit); // min(8, 16) == 8
        assert_ne!(circuit_by_name("qft_8_2").unwrap(), default);
    }

    #[test]
    fn malformed_parametric_names_are_rejected() {
        for bad in ["qft_", "qft_0", "qft_8_1", "qft_8_2_9", "qft_x", "qft_8_"] {
            assert!(circuit_by_name(bad).is_none(), "{bad}");
        }
    }

    #[test]
    fn random_names_resolve_with_and_without_seed() {
        let default = circuit_by_name("random_12_200").unwrap();
        let explicit = circuit_by_name("random_12_200_42").unwrap();
        assert_eq!(default, explicit); // default seed is 42
        assert_eq!(default.num_qubits(), 12);
        assert_eq!(default.gates().len(), 200);
        assert_ne!(circuit_by_name("random_12_200_7").unwrap(), default);
    }

    #[test]
    fn random_names_are_deterministic() {
        assert_eq!(
            circuit_by_name("random_8_50_3"),
            circuit_by_name("random_8_50_3")
        );
    }

    #[test]
    fn name_validator_agrees_with_the_generator() {
        for name in [
            "qft_8",
            "qft_8_5",
            "8bitadder",
            "random_12_200",
            "random_12_200_7",
            "nope",
            "qft_0",
            "random_2_10",
        ] {
            assert_eq!(
                workload_name_is_known(name),
                circuit_by_name(name).is_some(),
                "{name}"
            );
        }
        // The validator's point: huge parametric names check in O(1).
        assert!(workload_name_is_known("qft_1000000"));
        assert!(workload_name_is_known("random_1000000_1000000000"));
    }

    #[test]
    fn malformed_random_names_are_rejected() {
        // Under 3 qubits the generator cannot place Toffolis; a malformed
        // or out-of-range name must return None (never panic).
        for bad in [
            "random_",
            "random_2_10",
            "random_8",
            "random_8_x",
            "random_8_10_1_9",
            "random_x_10",
        ] {
            assert!(circuit_by_name(bad).is_none(), "{bad}");
        }
    }
}
