//! Benchmark-circuit generators reproducing the LEQA evaluation suite.
//!
//! The paper takes its 18 benchmarks from D. Maslov's reversible-benchmark
//! page (reference [12], a 2012 snapshot that is no longer distributable).
//! This crate regenerates each family procedurally:
//!
//! * [`gf2::gf2_mult`] — GF(2^n) multipliers as Mastrovito Toffoli networks:
//!   `n²` Toffolis (one per partial product) plus `w·(n−1)` reduction CNOTs
//!   for a reduction polynomial with `w` non-trivial taps. With the paper's
//!   pentanomial default (`w = 3`, trinomial for n = 20) the lowered op
//!   counts **exactly** match Table 3 for every `gf2^n mult` row.
//! * [`adder`] — ripple-carry adders (a genuine Cuccaro construction plus
//!   the suite's tuned 8-bit and mod-2^20 variants).
//! * [`hwb::hwb`] — hidden-weighted-bit-style controlled-permutation
//!   networks with the published qubit/op counts.
//! * [`ham`] — Hamming-code benchmarks, including the ham3 circuit of
//!   Fig. 2.
//! * [`random_circuit`] — seeded random circuits for property tests and
//!   sweeps.
//! * [`suite`] — the named 18-benchmark table suite with the paper's
//!   published numbers attached for comparison.
//!
//! See DESIGN.md §4 for the substitution argument: LEQA consumes only graph
//! statistics (dependency structure, interaction degrees, two-qubit-op
//! multiplicities), so a generator that reproduces the family structure,
//! qubit count and op count preserves the quantities under test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adder;
pub mod gf2;
pub mod ham;
pub mod hwb;
mod mix;
pub mod qft;
mod random;
pub mod shor;
pub mod suite;

pub use mix::MixSpec;
pub use random::{random_circuit, RandomCircuitConfig};
pub use suite::{Benchmark, PaperRow, SUITE};
