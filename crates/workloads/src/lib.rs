//! Benchmark-circuit generators reproducing the LEQA evaluation suite.
//!
//! The paper takes its 18 benchmarks from D. Maslov's reversible-benchmark
//! page (reference \[12\], a 2012 snapshot that is no longer distributable).
//! This crate regenerates each family procedurally:
//!
//! * [`gf2::gf2_mult`] — GF(2^n) multipliers as Mastrovito Toffoli networks:
//!   `n²` Toffolis (one per partial product) plus `w·(n−1)` reduction CNOTs
//!   for a reduction polynomial with `w` non-trivial taps. With the paper's
//!   pentanomial default (`w = 3`, trinomial for n = 20) the lowered op
//!   counts **exactly** match Table 3 for every `gf2^n mult` row.
//! * [`adder`] — ripple-carry adders (a genuine Cuccaro construction plus
//!   the suite's tuned 8-bit and mod-2^20 variants).
//! * [`hwb::hwb`] — hidden-weighted-bit-style controlled-permutation
//!   networks with the published qubit/op counts.
//! * [`ham`] — Hamming-code benchmarks, including the ham3 circuit of
//!   Fig. 2.
//! * [`random_circuit`] — seeded random circuits for property tests and
//!   sweeps.
//! * [`suite`] — the named 18-benchmark table suite with the paper's
//!   published numbers attached for comparison.
//!
//! See DESIGN.md §4 for the substitution argument: LEQA consumes only graph
//! statistics (dependency structure, interaction degrees, two-qubit-op
//! multiplicities), so a generator that reproduces the family structure,
//! qubit count and op count preserves the quantities under test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adder;
pub mod gf2;
pub mod ham;
pub mod hwb;
mod mix;
pub mod qft;
mod random;
pub mod shor;
pub mod suite;

pub use mix::MixSpec;
pub use random::{random_circuit, RandomCircuitConfig};
pub use suite::{Benchmark, PaperRow, SUITE};

use leqa_circuit::Circuit;

/// Resolves a workload name to its circuit: either one of the 18 named
/// suite benchmarks ([`Benchmark::by_name`]) or a parametric generator
/// spelled inline:
///
/// * `qft_N` — the approximate QFT on `N` qubits with the default
///   rotation cutoff (`min(N, 16)`, the Shor-extrapolation setting),
/// * `qft_N_K` — the same with an explicit cutoff `K ≥ 2`.
///
/// Returns `None` for unknown names or out-of-range parameters, so
/// callers can produce their own "unknown benchmark" diagnostics.
///
/// # Examples
///
/// ```
/// use leqa_workloads::circuit_by_name;
///
/// assert_eq!(circuit_by_name("qft_64").unwrap().num_qubits(), 64);
/// assert!(circuit_by_name("8bitadder").is_some());
/// assert!(circuit_by_name("nope").is_none());
/// ```
#[must_use]
pub fn circuit_by_name(name: &str) -> Option<Circuit> {
    if let Some(bench) = Benchmark::by_name(name) {
        return Some(bench.circuit());
    }
    let mut parts = name.strip_prefix("qft_")?.split('_');
    let n: u32 = parts.next()?.parse().ok()?;
    let max_k: u32 = match parts.next() {
        Some(k) => k.parse().ok()?,
        None => n.min(16),
    };
    if parts.next().is_some() || n == 0 || max_k < 2 {
        return None;
    }
    Some(qft::qft(n, max_k))
}

#[cfg(test)]
mod name_tests {
    use super::*;

    #[test]
    fn qft_names_resolve_with_and_without_cutoff() {
        let default = circuit_by_name("qft_8").unwrap();
        let explicit = circuit_by_name("qft_8_8").unwrap();
        assert_eq!(default, explicit); // min(8, 16) == 8
        assert_ne!(circuit_by_name("qft_8_2").unwrap(), default);
    }

    #[test]
    fn malformed_parametric_names_are_rejected() {
        for bad in ["qft_", "qft_0", "qft_8_1", "qft_8_2_9", "qft_x", "qft_8_"] {
            assert!(circuit_by_name(bad).is_none(), "{bad}");
        }
    }
}
