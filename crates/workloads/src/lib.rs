//! Benchmark-circuit generators reproducing the LEQA evaluation suite.
//!
//! The paper takes its 18 benchmarks from D. Maslov's reversible-benchmark
//! page (reference \[12\], a 2012 snapshot that is no longer distributable).
//! This crate regenerates each family procedurally:
//!
//! * [`gf2::gf2_mult`] — GF(2^n) multipliers as Mastrovito Toffoli networks:
//!   `n²` Toffolis (one per partial product) plus `w·(n−1)` reduction CNOTs
//!   for a reduction polynomial with `w` non-trivial taps. With the paper's
//!   pentanomial default (`w = 3`, trinomial for n = 20) the lowered op
//!   counts **exactly** match Table 3 for every `gf2^n mult` row.
//! * [`adder`] — ripple-carry adders (a genuine Cuccaro construction plus
//!   the suite's tuned 8-bit and mod-2^20 variants).
//! * [`hwb::hwb`] — hidden-weighted-bit-style controlled-permutation
//!   networks with the published qubit/op counts.
//! * [`ham`] — Hamming-code benchmarks, including the ham3 circuit of
//!   Fig. 2.
//! * [`random_circuit`] — seeded random circuits for property tests and
//!   sweeps.
//! * [`suite`] — the named 18-benchmark table suite with the paper's
//!   published numbers attached for comparison.
//!
//! See DESIGN.md §4 for the substitution argument: LEQA consumes only graph
//! statistics (dependency structure, interaction degrees, two-qubit-op
//! multiplicities), so a generator that reproduces the family structure,
//! qubit count and op count preserves the quantities under test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adder;
pub mod gf2;
pub mod ham;
pub mod hwb;
mod mix;
pub mod qft;
mod random;
pub mod shor;
pub mod suite;

pub use mix::MixSpec;
pub use random::{random_circuit, RandomCircuitConfig};
pub use suite::{Benchmark, PaperRow, SUITE};

use leqa_circuit::Circuit;

/// Resolves a workload name to its circuit: either one of the 18 named
/// suite benchmarks ([`Benchmark::by_name`]) or a parametric generator
/// spelled inline (the grammar shared by `--bench`, the API's
/// `{"bench": …}` program spec and experiment workload axes — see
/// `WORKLOADS.md`):
///
/// * `qft_N` — the approximate QFT on `N` qubits with the default
///   rotation cutoff (`min(N, 16)`, the Shor-extrapolation setting),
/// * `qft_N_K` — the same with an explicit cutoff `K ≥ 2`,
/// * `random_Q_G` — a seeded random circuit on `Q ≥ 3` qubits with `G`
///   gates (default mix: 25% Toffoli, 35% CNOT, seed 42),
/// * `random_Q_G_S` — the same with an explicit RNG seed `S`,
/// * `shor_N` — the Shor modular-exponentiation skeleton on an `N`-bit
///   register with the default `max(1, N/8)` exponent rounds
///   ([`shor::default_rounds`]),
/// * `shor_N_R` — the same with an explicit round count `R ≥ 1`.
///
/// Returns `None` for unknown names or out-of-range parameters, so
/// callers can produce their own "unknown benchmark" diagnostics; use
/// [`check_workload_name`] to distinguish an unknown name from a
/// recognized family with invalid parameters (e.g. `shor_0`).
///
/// Beware that materializing a cryptographic-scale `shor_N` (N ≥ 1024,
/// tens of millions of lowered ops) is expensive; the streaming path
/// ([`stream_by_name`]) exists so callers never have to.
///
/// # Examples
///
/// ```
/// use leqa_workloads::circuit_by_name;
///
/// assert_eq!(circuit_by_name("qft_64").unwrap().num_qubits(), 64);
/// assert!(circuit_by_name("8bitadder").is_some());
/// assert_eq!(circuit_by_name("random_12_200").unwrap().gates().len(), 200);
/// assert!(circuit_by_name("nope").is_none());
/// ```
#[must_use]
pub fn circuit_by_name(name: &str) -> Option<Circuit> {
    Some(match parse_workload_name(name).ok()? {
        ParsedWorkload::Suite(bench) => bench.circuit(),
        ParsedWorkload::Qft { n, max_k } => qft::qft(n, max_k),
        ParsedWorkload::Random {
            qubits,
            gates,
            seed,
        } => random_circuit(RandomCircuitConfig {
            qubits,
            gates,
            seed,
            ..RandomCircuitConfig::default()
        }),
        ParsedWorkload::Shor { n, rounds } => shor::shor_skeleton(n, rounds),
    })
}

/// Resolves a workload name to its lazily generated, already-lowered gate
/// stream, for workloads that support streaming (currently the `shor_N` /
/// `shor_N_R` family). Returns `None` for every other name — including
/// valid materialized-only workloads — so callers fall back to
/// [`circuit_by_name`].
#[must_use]
pub fn stream_by_name(name: &str) -> Option<shor::ShorStream> {
    match parse_workload_name(name).ok()? {
        ParsedWorkload::Shor { n, rounds } => shor::ShorStream::new(n, rounds),
        _ => None,
    }
}

/// Why a workload name failed to resolve — the typed diagnosis behind
/// [`check_workload_name`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WorkloadNameError {
    /// The name matches no suite benchmark and no generator family.
    Unknown,
    /// The name is in a recognized generator family, but its parameters
    /// are out of range (e.g. `shor_0`, or a `shor_N_R` whose lowered
    /// width overflows the qubit index space).
    Invalid {
        /// Human-readable reason, suitable for an error message.
        reason: String,
    },
}

/// Validates a workload name without generating the circuit,
/// distinguishing unknown names from recognized-but-invalid parameters.
///
/// # Errors
///
/// [`WorkloadNameError::Unknown`] for names outside the grammar,
/// [`WorkloadNameError::Invalid`] for in-family names with out-of-range
/// parameters.
///
/// # Examples
///
/// ```
/// use leqa_workloads::{check_workload_name, WorkloadNameError};
///
/// assert!(check_workload_name("shor_1024").is_ok());
/// assert_eq!(check_workload_name("nope"), Err(WorkloadNameError::Unknown));
/// assert!(matches!(
///     check_workload_name("shor_0"),
///     Err(WorkloadNameError::Invalid { .. })
/// ));
/// ```
pub fn check_workload_name(name: &str) -> Result<(), WorkloadNameError> {
    parse_workload_name(name).map(|_| ())
}

/// Whether a name is in the [`circuit_by_name`] grammar, **without**
/// generating the circuit — the cheap validator for dry-run paths
/// (e.g. `leqa experiment --dry-run`) where building a huge parametric
/// workload just to check its name would defeat the point.
///
/// # Examples
///
/// ```
/// use leqa_workloads::workload_name_is_known;
///
/// assert!(workload_name_is_known("qft_100000")); // no circuit built
/// assert!(!workload_name_is_known("nope"));
/// ```
#[must_use]
pub fn workload_name_is_known(name: &str) -> bool {
    parse_workload_name(name).is_ok()
}

/// A workload name resolved to its generator and parameters, before any
/// circuit is built.
enum ParsedWorkload {
    Suite(&'static Benchmark),
    Qft { n: u32, max_k: u32 },
    Random { qubits: u32, gates: u64, seed: u64 },
    Shor { n: u32, rounds: u32 },
}

fn parse_workload_name(name: &str) -> Result<ParsedWorkload, WorkloadNameError> {
    fn unknown<T>(v: Option<T>) -> Result<T, WorkloadNameError> {
        v.ok_or(WorkloadNameError::Unknown)
    }

    if let Some(bench) = Benchmark::by_name(name) {
        return Ok(ParsedWorkload::Suite(bench));
    }
    if let Some(rest) = name.strip_prefix("qft_") {
        let mut parts = rest.split('_');
        let n: u32 = unknown(unknown(parts.next())?.parse().ok())?;
        let max_k: u32 = match parts.next() {
            Some(k) => unknown(k.parse().ok())?,
            None => n.min(16),
        };
        if parts.next().is_some() || n == 0 || max_k < 2 {
            return Err(WorkloadNameError::Unknown);
        }
        return Ok(ParsedWorkload::Qft { n, max_k });
    }
    if let Some(rest) = name.strip_prefix("random_") {
        let mut parts = rest.split('_');
        let qubits: u32 = unknown(unknown(parts.next())?.parse().ok())?;
        let gates: u64 = unknown(unknown(parts.next())?.parse().ok())?;
        let seed: u64 = match parts.next() {
            Some(s) => unknown(s.parse().ok())?,
            None => 42,
        };
        if parts.next().is_some() || qubits < 3 {
            return Err(WorkloadNameError::Unknown);
        }
        return Ok(ParsedWorkload::Random {
            qubits,
            gates,
            seed,
        });
    }
    if let Some(rest) = name.strip_prefix("shor_") {
        let mut parts = rest.split('_');
        let n: u32 = unknown(unknown(parts.next())?.parse().ok())?;
        let rounds: u32 = match parts.next() {
            Some(r) => unknown(r.parse().ok())?,
            None => shor::default_rounds(n),
        };
        if parts.next().is_some() {
            return Err(WorkloadNameError::Unknown);
        }
        if n == 0 {
            return Err(WorkloadNameError::Invalid {
                reason: format!("workload `{name}`: register width must be positive"),
            });
        }
        if rounds == 0 {
            return Err(WorkloadNameError::Invalid {
                reason: format!("workload `{name}`: needs at least one exponent round"),
            });
        }
        if shor::shor_lowered_qubits(n, rounds).is_none()
            || shor::shor_lowered_op_count(n, rounds).is_none()
        {
            return Err(WorkloadNameError::Invalid {
                reason: format!(
                    "workload `{name}`: lowered width 2*{n}+2+{rounds}+2*{n}*{rounds} \
                     overflows the qubit index space"
                ),
            });
        }
        return Ok(ParsedWorkload::Shor { n, rounds });
    }
    Err(WorkloadNameError::Unknown)
}

#[cfg(test)]
mod name_tests {
    use super::*;

    #[test]
    fn qft_names_resolve_with_and_without_cutoff() {
        let default = circuit_by_name("qft_8").unwrap();
        let explicit = circuit_by_name("qft_8_8").unwrap();
        assert_eq!(default, explicit); // min(8, 16) == 8
        assert_ne!(circuit_by_name("qft_8_2").unwrap(), default);
    }

    #[test]
    fn malformed_parametric_names_are_rejected() {
        for bad in ["qft_", "qft_0", "qft_8_1", "qft_8_2_9", "qft_x", "qft_8_"] {
            assert!(circuit_by_name(bad).is_none(), "{bad}");
        }
    }

    #[test]
    fn random_names_resolve_with_and_without_seed() {
        let default = circuit_by_name("random_12_200").unwrap();
        let explicit = circuit_by_name("random_12_200_42").unwrap();
        assert_eq!(default, explicit); // default seed is 42
        assert_eq!(default.num_qubits(), 12);
        assert_eq!(default.gates().len(), 200);
        assert_ne!(circuit_by_name("random_12_200_7").unwrap(), default);
    }

    #[test]
    fn random_names_are_deterministic() {
        assert_eq!(
            circuit_by_name("random_8_50_3"),
            circuit_by_name("random_8_50_3")
        );
    }

    #[test]
    fn shor_names_resolve_with_and_without_rounds() {
        let default = circuit_by_name("shor_8").unwrap();
        let explicit = circuit_by_name("shor_8_1").unwrap();
        assert_eq!(default, explicit); // max(1, 8/8) == 1
        assert_eq!(default.num_qubits(), 2 * 8 + 2 + 1);
        let more = circuit_by_name("shor_8_3").unwrap();
        assert_eq!(more.num_qubits(), 2 * 8 + 2 + 3);
        assert_ne!(more, default);
    }

    #[test]
    fn shor_invalid_parameters_get_a_typed_diagnosis() {
        // Degenerate edge: zero register width (the old panic path).
        assert!(circuit_by_name("shor_0").is_none());
        let err = check_workload_name("shor_0").unwrap_err();
        assert!(
            matches!(&err, WorkloadNameError::Invalid { reason }
                if reason.contains("shor_0") && reason.contains("positive")),
            "{err:?}"
        );
        // Zero rounds.
        assert!(matches!(
            check_workload_name("shor_8_0"),
            Err(WorkloadNameError::Invalid { .. })
        ));
        // Overflow edge: 2·n·rounds wraps u32 — must be Invalid, not a
        // panic or a silent wrap.
        let huge = format!("shor_{}_{}", u32::MAX, u32::MAX);
        let err = check_workload_name(&huge).unwrap_err();
        assert!(
            matches!(&err, WorkloadNameError::Invalid { reason }
                if reason.contains("shor_") && reason.contains("overflows")),
            "{err:?}"
        );
        // Out-of-grammar spellings stay Unknown.
        for bad in ["shor_", "shor_x", "shor_8_1_9", "shor_8_"] {
            assert_eq!(
                check_workload_name(bad),
                Err(WorkloadNameError::Unknown),
                "{bad}"
            );
        }
    }

    #[test]
    fn stream_resolution_covers_exactly_the_shor_family() {
        let stream = stream_by_name("shor_16_2").unwrap();
        assert_eq!(stream.name(), "shor16x2");
        assert_eq!(stream.register_width(), 16);
        assert_eq!(stream.rounds(), 2);
        // Defaults match the materialized grammar.
        assert_eq!(
            stream_by_name("shor_16").unwrap().rounds(),
            shor::default_rounds(16)
        );
        // Cryptographic scale resolves in O(1), no circuit built.
        assert!(stream_by_name("shor_2048").unwrap().ft_op_count() > 10_000_000);
        for not_streamable in ["qft_8", "random_12_200", "8bitadder", "nope", "shor_0"] {
            assert!(stream_by_name(not_streamable).is_none(), "{not_streamable}");
        }
    }

    #[test]
    fn name_validator_agrees_with_the_generator() {
        for name in [
            "qft_8",
            "qft_8_5",
            "8bitadder",
            "random_12_200",
            "random_12_200_7",
            "nope",
            "qft_0",
            "random_2_10",
            "shor_8",
            "shor_8_2",
            "shor_0",
            "shor_8_0",
            "shor_x",
        ] {
            assert_eq!(
                workload_name_is_known(name),
                circuit_by_name(name).is_some(),
                "{name}"
            );
        }
        // The validator's point: huge parametric names check in O(1).
        assert!(workload_name_is_known("qft_1000000"));
        assert!(workload_name_is_known("random_1000000_1000000000"));
        assert!(workload_name_is_known("shor_2048"));
        assert!(workload_name_is_known("shor_4096_512"));
    }

    #[test]
    fn malformed_random_names_are_rejected() {
        // Under 3 qubits the generator cannot place Toffolis; a malformed
        // or out-of-range name must return None (never panic).
        for bad in [
            "random_",
            "random_2_10",
            "random_8",
            "random_8_x",
            "random_8_10_1_9",
            "random_x_10",
        ] {
            assert!(circuit_by_name(bad).is_none(), "{bad}");
        }
    }
}
