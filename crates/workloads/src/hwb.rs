//! Hidden-weighted-bit (`hwbNps`) benchmarks.
//!
//! The hidden-weighted-bit function cyclically rotates the input by its
//! Hamming weight; its synthesized circuits are controlled-permutation
//! networks dominated by Toffolis and small multi-controlled Toffolis. The
//! original `hwbNps` netlists ("ps" = partially synthesized) are no longer
//! distributable; each [`hwb`] size rebuilds a circuit with **exactly** the
//! qubit and FT-op counts of Table 3 from a [`MixSpec`] recipe (see
//! DESIGN.md §4 for how the published `(Q, N)` pair pins the mix of
//! 3-control MCTs, Toffolis and CNOTs).

use leqa_circuit::Circuit;

use crate::MixSpec;

/// The recipe behind an `hwbNps` benchmark size.
///
/// Returns `None` for sizes the paper does not evaluate; use
/// [`hwb_with_spec`] for custom sizes.
pub fn hwb_spec(n: u32) -> Option<MixSpec> {
    // (base wires, 3-control MCTs, Toffolis, CNOTs), derived from Table 3's
    // (Q, N): ancillas = Q − n pins the MCT count; the op remainder pins
    // Toffolis and CNOTs.
    let (mct3, toffoli, cnot) = match n {
        15 => (32, 163, 0),
        16 => (39, 137, 1),
        20 => (63, 237, 5),
        50 => (320, 731, 5),
        100 => (1006, 1497, 10),
        200 => (2945, 2864, 5),
        _ => return None,
    };
    Some(MixSpec {
        name: format!("hwb{n}ps"),
        base_wires: n,
        mct: vec![(3, mct3)],
        toffoli,
        cnot,
        not: 0,
        // hwb's weight-controlled rotations touch wires about half a
        // register apart.
        locality: (n / 2).max(4),
        seed: 0x4857_4200 + n as u64,
    })
}

/// Generates the `hwbNps` benchmark for a Table 3 size.
///
/// # Panics
///
/// Panics if `n` is not one of the paper's sizes (15, 16, 20, 50, 100,
/// 200); use [`hwb_with_spec`] for other sizes.
///
/// # Examples
///
/// ```
/// use leqa_circuit::decompose::{lowered_ancilla_count, lowered_op_count};
/// use leqa_workloads::hwb::hwb;
///
/// let c = hwb(15);
/// assert_eq!(lowered_op_count(&c), 3885);
/// assert_eq!(c.num_qubits() as u64 + lowered_ancilla_count(&c), 47);
/// ```
pub fn hwb(n: u32) -> Circuit {
    hwb_spec(n)
        .unwrap_or_else(|| panic!("hwb{n}ps is not a Table 3 size"))
        .build()
}

/// Generates an hwb-style circuit from a custom recipe.
pub fn hwb_with_spec(spec: MixSpec) -> Circuit {
    spec.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use leqa_circuit::decompose::lower_to_ft;

    #[test]
    fn table3_counts_match_exactly() {
        let rows = [
            (15u32, 47u64, 3_885u64),
            (16, 55, 3_811),
            (20, 83, 6_395),
            (50, 370, 25_370),
            (100, 1_106, 67_735),
            (200, 3_145, 175_490),
        ];
        for (n, qubits, ops) in rows {
            let spec = hwb_spec(n).unwrap();
            assert_eq!(spec.predicted_qubits(), qubits, "hwb{n}ps qubits");
            assert_eq!(spec.predicted_ops(), ops, "hwb{n}ps ops");
        }
    }

    #[test]
    fn lowered_circuit_matches_prediction() {
        let spec = hwb_spec(15).unwrap();
        let ft = lower_to_ft(&spec.build()).unwrap();
        assert_eq!(ft.ops().len() as u64, 3_885);
        assert_eq!(ft.num_qubits() as u64, 47);
    }

    #[test]
    fn unknown_size_is_none() {
        assert!(hwb_spec(17).is_none());
    }

    #[test]
    #[should_panic(expected = "not a Table 3 size")]
    fn hwb_panics_on_unknown_size() {
        hwb(17);
    }

    #[test]
    fn circuits_are_reproducible() {
        assert_eq!(hwb(16), hwb(16));
    }
}
