//! Seeded random circuits for property tests, fuzzing and sweeps.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use leqa_circuit::{Circuit, Gate, QubitId};
use leqa_fabric::OneQubitKind;

/// Configuration for [`random_circuit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomCircuitConfig {
    /// Number of wires (≥ 3 so Toffolis fit).
    pub qubits: u32,
    /// Number of gates to emit.
    pub gates: u64,
    /// Fraction of gates that are Toffolis (0..=1).
    pub toffoli_fraction: f64,
    /// Fraction of gates that are CNOTs (0..=1; the rest are one-qubit).
    pub cnot_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomCircuitConfig {
    fn default() -> Self {
        RandomCircuitConfig {
            qubits: 16,
            gates: 200,
            toffoli_fraction: 0.25,
            cnot_fraction: 0.35,
            seed: 42,
        }
    }
}

/// Generates a random reversible circuit.
///
/// The gate mix is Toffoli/CNOT/one-qubit with the configured fractions;
/// operands are uniform distinct wires. Deterministic for a fixed seed.
///
/// # Panics
///
/// Panics if `qubits < 3` or the fractions are outside `[0, 1]` or sum to
/// more than 1.
///
/// # Examples
///
/// ```
/// use leqa_workloads::{random_circuit, RandomCircuitConfig};
///
/// let c = random_circuit(RandomCircuitConfig::default());
/// assert_eq!(c.gates().len(), 200);
/// ```
pub fn random_circuit(config: RandomCircuitConfig) -> Circuit {
    assert!(config.qubits >= 3, "need at least 3 wires for Toffolis");
    assert!(
        (0.0..=1.0).contains(&config.toffoli_fraction)
            && (0.0..=1.0).contains(&config.cnot_fraction)
            && config.toffoli_fraction + config.cnot_fraction <= 1.0 + 1e-12,
        "fractions must be probabilities summing to at most 1"
    );

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut c = Circuit::with_name(config.qubits, format!("random{}", config.seed));

    let one_qubit_kinds = OneQubitKind::ALL;
    for _ in 0..config.gates {
        let roll: f64 = rng.gen();
        let gate = if roll < config.toffoli_fraction {
            let (a, b, t) = three_distinct(&mut rng, config.qubits);
            Gate::toffoli(a, b, t).expect("distinct")
        } else if roll < config.toffoli_fraction + config.cnot_fraction {
            let (a, b) = two_distinct(&mut rng, config.qubits);
            Gate::cnot(a, b).expect("distinct")
        } else {
            let kind = one_qubit_kinds[rng.gen_range(0..one_qubit_kinds.len())];
            Gate::one_qubit(kind, QubitId(rng.gen_range(0..config.qubits)))
        };
        c.push(gate).expect("in range");
    }
    c
}

fn two_distinct(rng: &mut StdRng, qubits: u32) -> (QubitId, QubitId) {
    let a = rng.gen_range(0..qubits);
    let mut b = rng.gen_range(0..qubits - 1);
    if b >= a {
        b += 1;
    }
    (QubitId(a), QubitId(b))
}

fn three_distinct(rng: &mut StdRng, qubits: u32) -> (QubitId, QubitId, QubitId) {
    let (a, b) = two_distinct(rng, qubits);
    loop {
        let t = QubitId(rng.gen_range(0..qubits));
        if t != a && t != b {
            return (a, b, t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic() {
        let cfg = RandomCircuitConfig::default();
        assert_eq!(random_circuit(cfg), random_circuit(cfg));
    }

    #[test]
    fn gate_count_matches() {
        let cfg = RandomCircuitConfig {
            gates: 500,
            ..Default::default()
        };
        assert_eq!(random_circuit(cfg).gates().len(), 500);
    }

    #[test]
    fn all_one_qubit_mix() {
        let cfg = RandomCircuitConfig {
            toffoli_fraction: 0.0,
            cnot_fraction: 0.0,
            ..Default::default()
        };
        let c = random_circuit(cfg);
        assert_eq!(c.stats().one_qubit, 200);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn too_few_wires() {
        random_circuit(RandomCircuitConfig {
            qubits: 2,
            ..Default::default()
        });
    }

    #[test]
    #[should_panic(expected = "probabilities")]
    fn bad_fractions() {
        random_circuit(RandomCircuitConfig {
            toffoli_fraction: 0.8,
            cnot_fraction: 0.8,
            ..Default::default()
        });
    }

    proptest! {
        #[test]
        fn operands_always_valid(seed in 0u64..500, qubits in 3u32..32) {
            let cfg = RandomCircuitConfig {
                qubits,
                gates: 50,
                seed,
                ..Default::default()
            };
            let c = random_circuit(cfg);
            for g in c.gates() {
                let qs = g.qubits();
                for q in &qs {
                    prop_assert!(q.0 < qubits);
                }
                // distinct operands
                let mut sorted = qs.clone();
                sorted.sort();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), qs.len());
            }
        }
    }
}
