//! Structured gate-mix builder.
//!
//! Several of the paper's benchmarks (the `hwbNps` family, `ham15`, the
//! adders) are only published as aggregate statistics — qubit count and
//! FT-op count (Table 3). [`MixSpec`] rebuilds a circuit from such a
//! recipe: a number of primary wires plus exact counts of multi-controlled
//! Toffolis, plain Toffolis, CNOTs and NOTs. Operands are chosen with a
//! sliding locality window driven by a seeded RNG, giving the mix the
//! neighbourhood structure (local chains with occasional long hops) that
//! synthesized permutation circuits exhibit.
//!
//! The arithmetic behind each recipe: a `k`-control MCT lowers to
//! `(2k − 3)` Toffolis (15 FT ops each) and adds `(k − 2)` ancillas, so the
//! published `(Q, N)` pair pins the gate mix — see DESIGN.md §4.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use leqa_circuit::{Circuit, Gate, QubitId};

/// Recipe for a structured benchmark circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixSpec {
    /// Circuit name (shows up in reports).
    pub name: String,
    /// Primary (non-ancilla) wires.
    pub base_wires: u32,
    /// `(controls, count)` pairs of multi-controlled Toffolis (controls ≥ 3).
    pub mct: Vec<(u32, u32)>,
    /// Plain 3-input Toffolis.
    pub toffoli: u32,
    /// CNOTs.
    pub cnot: u32,
    /// NOTs.
    pub not: u32,
    /// Operand locality window (wires); clamped to the wire count.
    pub locality: u32,
    /// RNG seed for operand selection (fixed → reproducible circuits).
    pub seed: u64,
}

impl MixSpec {
    /// Predicted FT-op count after lowering:
    /// `15·(toffoli + Σ (2k−3)·count) + cnot + not`.
    pub fn predicted_ops(&self) -> u64 {
        let mct_toffolis: u64 = self
            .mct
            .iter()
            .map(|&(k, c)| (2 * k as u64 - 3) * c as u64)
            .sum();
        15 * (self.toffoli as u64 + mct_toffolis) + self.cnot as u64 + self.not as u64
    }

    /// Predicted qubit count after lowering:
    /// `base_wires + Σ (k−2)·count`.
    pub fn predicted_qubits(&self) -> u64 {
        let ancillas: u64 = self
            .mct
            .iter()
            .map(|&(k, c)| (k as u64 - 2) * c as u64)
            .sum();
        self.base_wires as u64 + ancillas
    }

    /// Builds the circuit.
    ///
    /// # Panics
    ///
    /// Panics if `base_wires` is smaller than the largest gate's operand
    /// count (controls + 1).
    pub fn build(&self) -> Circuit {
        let max_operands = self
            .mct
            .iter()
            .map(|&(k, _)| k + 1)
            .chain([3, 2, 1])
            .max()
            .unwrap_or(1);
        assert!(
            self.base_wires >= max_operands,
            "{} wires cannot host a {}-operand gate",
            self.base_wires,
            max_operands
        );

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut circuit = Circuit::with_name(self.base_wires, self.name.clone());

        // Build a type schedule that spreads each class evenly through the
        // program, then emit gates with windowed operands.
        let schedule = self.schedule();
        let window = self.locality.clamp(max_operands, self.base_wires);
        let mut cursor = 0u32;

        for kind in schedule {
            let operands = pick_operands(
                &mut rng,
                self.base_wires,
                window,
                &mut cursor,
                kind.operand_count(),
            );
            let gate = match kind {
                GateKind::Mct(_) => {
                    let (target, controls) = operands.split_last().expect("≥1 operand");
                    Gate::mct(controls.to_vec(), *target).expect("distinct operands")
                }
                GateKind::Toffoli => {
                    Gate::toffoli(operands[0], operands[1], operands[2]).expect("distinct")
                }
                GateKind::Cnot => Gate::cnot(operands[0], operands[1]).expect("distinct"),
                GateKind::Not => Gate::not(operands[0]),
            };
            circuit.push(gate).expect("operands in range");
        }
        circuit
    }

    /// Interleaves the gate classes evenly (largest-remainder round robin).
    fn schedule(&self) -> Vec<GateKind> {
        let mut classes: Vec<(GateKind, u64)> = Vec::new();
        for &(k, count) in &self.mct {
            classes.push((GateKind::Mct(k), count as u64));
        }
        classes.push((GateKind::Toffoli, self.toffoli as u64));
        classes.push((GateKind::Cnot, self.cnot as u64));
        classes.push((GateKind::Not, self.not as u64));
        classes.retain(|&(_, c)| c > 0);

        let total: u64 = classes.iter().map(|&(_, c)| c).sum();
        let mut out = Vec::with_capacity(total as usize);
        let mut emitted: Vec<u64> = vec![0; classes.len()];
        for step in 0..total {
            // Largest-remainder pick: the class furthest behind its
            // proportional share, never exceeding its budget.
            let mut best: Option<usize> = None;
            let mut best_deficit = i128::MIN;
            for (i, &(_, c)) in classes.iter().enumerate() {
                if emitted[i] >= c {
                    continue;
                }
                let deficit = c as i128 * (step as i128 + 1) - emitted[i] as i128 * total as i128;
                if deficit > best_deficit {
                    best_deficit = deficit;
                    best = Some(i);
                }
            }
            let i = best.expect("budgets sum to total");
            emitted[i] += 1;
            out.push(classes[i].0);
        }
        out
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GateKind {
    Mct(u32),
    Toffoli,
    Cnot,
    Not,
}

impl GateKind {
    fn operand_count(self) -> u32 {
        match self {
            GateKind::Mct(k) => k + 1,
            GateKind::Toffoli => 3,
            GateKind::Cnot => 2,
            GateKind::Not => 1,
        }
    }
}

/// Picks `count` distinct wires inside a window that slowly sweeps the
/// register, mimicking the ripple/permutation locality of synthesized
/// circuits.
fn pick_operands(
    rng: &mut StdRng,
    wires: u32,
    window: u32,
    cursor: &mut u32,
    count: u32,
) -> Vec<QubitId> {
    debug_assert!(window >= count && wires >= window);
    let base = *cursor % wires;
    *cursor = cursor.wrapping_add(1 + rng.gen_range(0..3));

    let mut picked: Vec<u32> = Vec::with_capacity(count as usize);
    while picked.len() < count as usize {
        let offset = rng.gen_range(0..window);
        let wire = (base + offset) % wires;
        if !picked.contains(&wire) {
            picked.push(wire);
        }
    }
    picked.into_iter().map(QubitId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use leqa_circuit::decompose::{lower_to_ft, lowered_op_count};

    fn spec() -> MixSpec {
        MixSpec {
            name: "mix-test".into(),
            base_wires: 15,
            mct: vec![(3, 4), (4, 2)],
            toffoli: 10,
            cnot: 7,
            not: 3,
            locality: 6,
            seed: 7,
        }
    }

    #[test]
    fn predicted_ops_match_lowering() {
        let s = spec();
        let c = s.build();
        assert_eq!(lowered_op_count(&c), s.predicted_ops());
        let ft = lower_to_ft(&c).unwrap();
        assert_eq!(ft.ops().len() as u64, s.predicted_ops());
    }

    #[test]
    fn predicted_qubits_match_lowering() {
        let s = spec();
        let ft = lower_to_ft(&s.build()).unwrap();
        assert_eq!(ft.num_qubits() as u64, s.predicted_qubits());
        // 15 + 4·1 + 2·2 = 23
        assert_eq!(s.predicted_qubits(), 23);
    }

    #[test]
    fn gate_counts_match_spec() {
        let s = spec();
        let stats = s.build().stats();
        assert_eq!(stats.mct, 6);
        assert_eq!(stats.toffoli, 10);
        assert_eq!(stats.cnot, 7);
        assert_eq!(stats.one_qubit, 3);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = spec().build();
        let b = spec().build();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_changes_operands() {
        let a = spec().build();
        let mut s2 = spec();
        s2.seed = 99;
        let b = s2.build();
        assert_ne!(a, b);
    }

    #[test]
    fn operands_respect_wire_range() {
        let c = spec().build();
        for g in c.gates() {
            for q in g.qubits() {
                assert!(q.0 < 15);
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot host")]
    fn too_few_wires_panics() {
        MixSpec {
            name: "bad".into(),
            base_wires: 3,
            mct: vec![(5, 1)],
            toffoli: 0,
            cnot: 0,
            not: 0,
            locality: 3,
            seed: 0,
        }
        .build();
    }

    #[test]
    fn schedule_interleaves_classes() {
        // With equal counts, no class should be fully exhausted in the
        // first half of the program.
        let s = MixSpec {
            name: "interleave".into(),
            base_wires: 8,
            mct: vec![],
            toffoli: 20,
            cnot: 20,
            not: 0,
            locality: 4,
            seed: 1,
        };
        let c = s.build();
        let first_half = &c.gates()[..20];
        let toffolis = first_half
            .iter()
            .filter(|g| matches!(g, Gate::Toffoli { .. }))
            .count();
        assert!(toffolis > 2 && toffolis < 18, "got {toffolis}");
    }
}
