//! Approximate quantum Fourier transform workloads.
//!
//! The QFT is the core subroutine of Shor's algorithm — the workload the
//! paper's extrapolation argument (§4.2) targets. The exact QFT uses
//! controlled rotations `R_k` outside the fault-tolerant gate set; the
//! standard FT compilation replaces each controlled-`R_k` with a
//! CNOT-conjugated phase ladder over `{T, T†, S, S†, Z}` (exact for
//! `k ≤ 3`, Solovay–Kitaev-style approximation beyond — modelled here as
//! a fixed-depth T ladder, which preserves the gate-count structure LEQA
//! consumes).

use leqa_circuit::{Circuit, Gate, QubitId};
use leqa_fabric::OneQubitKind;

/// Generates an `n`-qubit approximate QFT circuit.
///
/// Structure per qubit `i`: a Hadamard, then controlled rotations from
/// every later qubit `j`, each compiled as CNOT–phase–CNOT–phase with a
/// rotation ladder whose depth shrinks with distance (`k = j − i + 1`,
/// capped at `max_k`). Distant rotations below the cap are dropped — the
/// usual *approximate* QFT that keeps the circuit polynomial.
///
/// # Panics
///
/// Panics if `n == 0` or `max_k < 2`.
///
/// # Examples
///
/// ```
/// use leqa_workloads::qft::qft;
///
/// let c = qft(8, 5);
/// assert_eq!(c.num_qubits(), 8);
/// assert!(c.gates().len() > 8); // H per qubit + rotation ladders
/// ```
pub fn qft(n: u32, max_k: u32) -> Circuit {
    assert!(n > 0, "qft needs at least one qubit");
    assert!(max_k >= 2, "rotation cutoff must be at least 2");
    let q = QubitId;
    let mut c = Circuit::with_name(n, format!("qft{n}"));

    for i in 0..n {
        c.push(Gate::one_qubit(OneQubitKind::H, q(i)))
            .expect("in range");
        for j in (i + 1)..n {
            let k = j - i + 1;
            if k > max_k {
                break; // approximate QFT: drop negligible rotations
            }
            emit_controlled_phase(&mut c, q(j), q(i), k);
        }
    }
    // Final bit-reversal as a swap network (3 CNOTs per swap).
    for i in 0..n / 2 {
        let (a, b) = (q(i), q(n - 1 - i));
        c.push(Gate::cnot(a, b).expect("distinct"))
            .expect("in range");
        c.push(Gate::cnot(b, a).expect("distinct"))
            .expect("in range");
        c.push(Gate::cnot(a, b).expect("distinct"))
            .expect("in range");
    }
    c
}

/// Controlled-`R_k` compiled over the FT set: phase kickback via two
/// CNOTs with `R_{k+1}`-grade single-qubit rotations on both wires.
///
/// `R_2` (controlled-S) and `R_3` (controlled-T) are exact in this
/// pattern; deeper rotations use a T-ladder of length `k − 3` as the
/// Solovay–Kitaev stand-in (each extra level costs a constant factor in
/// practice; a linear ladder keeps dependence structure realistic without
/// exploding the circuit).
fn emit_controlled_phase(c: &mut Circuit, control: QubitId, target: QubitId, k: u32) {
    let rotation = |c: &mut Circuit, wire: QubitId, inverse: bool| {
        let (fine, fine_inv) = (OneQubitKind::T, OneQubitKind::Tdg);
        let kind = if inverse { fine_inv } else { fine };
        match k {
            2 => {
                // Half of controlled-S: S = T², one T per half.
                c.push(Gate::one_qubit(kind, wire)).expect("in range");
            }
            _ => {
                // T-grade plus an approximation ladder for k > 3.
                for _ in 0..(k - 2) {
                    c.push(Gate::one_qubit(kind, wire)).expect("in range");
                }
            }
        }
    };

    rotation(c, control, false);
    rotation(c, target, false);
    c.push(Gate::cnot(control, target).expect("distinct"))
        .expect("in range");
    rotation(c, target, true);
    c.push(Gate::cnot(control, target).expect("distinct"))
        .expect("in range");
}

#[cfg(test)]
mod tests {
    use super::*;
    use leqa_circuit::decompose::lower_to_ft;
    use leqa_circuit::Iig;

    #[test]
    fn qubit_count_and_name() {
        let c = qft(6, 4);
        assert_eq!(c.num_qubits(), 6);
        assert_eq!(c.name(), Some("qft6"));
    }

    #[test]
    fn every_gate_is_ft_level() {
        // QFT compiles straight to {1q, CNOT}: lowering adds no ancillas
        // and the op count equals the gate count.
        let c = qft(8, 5);
        let ft = lower_to_ft(&c).unwrap();
        assert_eq!(ft.num_qubits(), 8);
        assert_eq!(ft.ops().len(), c.gates().len());
    }

    #[test]
    fn approximation_cap_bounds_interactions() {
        // With max_k = 3, qubit i only interacts with i±1, i±2 (plus the
        // swap network partner).
        let c = qft(12, 3);
        let ft = lower_to_ft(&c).unwrap();
        let iig = Iig::from_ft_circuit(&ft);
        for i in 0..12u32 {
            assert!(
                iig.degree(QubitId(i)) <= 5,
                "qubit {i} has degree {}",
                iig.degree(QubitId(i))
            );
        }
    }

    #[test]
    fn exact_small_qft_structure() {
        // n=2, max_k=2: H(0), CR_2(1→0), H(1), swap.
        let c = qft(2, 2);
        let stats = c.stats();
        assert_eq!(stats.one_qubit, 2 + 3); // 2 H + 3 phase rotations
        assert_eq!(stats.cnot, 2 + 3); // kickback pair + swap
    }

    #[test]
    fn gate_count_grows_linearly_with_cutoff_fixed() {
        let small = qft(16, 4).gates().len();
        let large = qft(32, 4).gates().len();
        // Fixed cutoff → O(n) gates: doubling n roughly doubles gates.
        let ratio = large as f64 / small as f64;
        assert!((1.6..2.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "at least one qubit")]
    fn zero_qubits_panics() {
        qft(0, 3);
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn tiny_cutoff_panics() {
        qft(4, 1);
    }
}
