//! Hamming-coding benchmarks: `ham3` (Fig. 2) and `ham15`.

use leqa_circuit::{Circuit, Gate, QubitId};

use crate::MixSpec;

/// The ham3 circuit of Fig. 2a: size-3 Hamming optimal coding, already in
/// FT gates — one 3-input Toffoli (which Fig. 2 shows expanded into the
/// 15-gate network) plus four CNOTs, for the figure's 19 QODG operation
/// nodes.
///
/// The figure's scan does not fully resolve the CNOT endpoints; this
/// transcription keeps the published structure (counts and the
/// Toffoli-in-the-middle shape), which is what the Fig. 2 integration test
/// checks.
///
/// # Examples
///
/// ```
/// use leqa_circuit::decompose::lowered_op_count;
/// use leqa_workloads::ham::ham3;
///
/// assert_eq!(lowered_op_count(&ham3()), 19);
/// ```
pub fn ham3() -> Circuit {
    let q = QubitId;
    let mut c = Circuit::with_name(3, "ham3");
    c.push(Gate::cnot(q(1), q(0)).expect("distinct"))
        .expect("in range");
    c.push(Gate::cnot(q(2), q(1)).expect("distinct"))
        .expect("in range");
    c.push(Gate::toffoli(q(0), q(1), q(2)).expect("distinct"))
        .expect("in range");
    c.push(Gate::cnot(q(1), q(0)).expect("distinct"))
        .expect("in range");
    c.push(Gate::cnot(q(2), q(1)).expect("distinct"))
        .expect("in range");
    c
}

/// The recipe behind the `ham15` benchmark (size-15 Hamming coding):
/// Table 3 gives `Q = 146`, `N = 5308`, which pins a mix of 51 3-control
/// and 40 4-control MCTs plus 13 CNOTs over the 15 primary wires.
pub fn ham15_spec() -> MixSpec {
    MixSpec {
        name: "ham15".into(),
        base_wires: 15,
        mct: vec![(3, 51), (4, 40)],
        toffoli: 0,
        cnot: 13,
        not: 0,
        // Hamming parity checks couple data wires to parity wires across
        // the register.
        locality: 15,
        seed: 0x4841_4D15,
    }
}

/// Generates the `ham15` benchmark.
///
/// # Examples
///
/// ```
/// use leqa_circuit::decompose::lowered_op_count;
/// use leqa_workloads::ham::ham15;
///
/// assert_eq!(lowered_op_count(&ham15()), 5308);
/// ```
pub fn ham15() -> Circuit {
    ham15_spec().build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use leqa_circuit::decompose::{lower_to_ft, lowered_op_count};
    use leqa_circuit::{Iig, Qodg};

    #[test]
    fn ham3_has_19_ft_ops() {
        let ft = lower_to_ft(&ham3()).unwrap();
        assert_eq!(ft.ops().len(), 19);
        assert_eq!(ft.num_qubits(), 3);
    }

    #[test]
    fn ham3_qodg_matches_fig2() {
        let ft = lower_to_ft(&ham3()).unwrap();
        let qodg = Qodg::from_ft_circuit(&ft);
        // 19 op nodes plus start and end.
        assert_eq!(qodg.node_count(), 21);
        assert_eq!(qodg.op_count(), 19);
    }

    #[test]
    fn ham3_iig_is_a_triangle() {
        // All three qubits interact pairwise (Toffoli lowers to CNOTs
        // between every pair it touches, plus the explicit CNOTs).
        let ft = lower_to_ft(&ham3()).unwrap();
        let iig = Iig::from_ft_circuit(&ft);
        for i in 0..3 {
            assert_eq!(iig.degree(QubitId(i)), 2, "qubit {i}");
        }
    }

    #[test]
    fn ham15_counts_match_table3() {
        let spec = ham15_spec();
        assert_eq!(spec.predicted_qubits(), 146);
        assert_eq!(spec.predicted_ops(), 5_308);
        assert_eq!(lowered_op_count(&ham15()), 5_308);
    }

    #[test]
    fn ham15_lowering_matches_prediction() {
        let ft = lower_to_ft(&ham15()).unwrap();
        assert_eq!(ft.num_qubits(), 146);
        assert_eq!(ft.ops().len(), 5_308);
    }
}
