//! The named 18-benchmark evaluation suite (Tables 2 and 3), with the
//! paper's published numbers attached for side-by-side reporting.

use leqa_circuit::Circuit;

use crate::{adder, gf2, ham, hwb};

/// One row of the paper's published results (Tables 2 and 3 combined).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Qubit count (Table 3).
    pub qubits: u64,
    /// FT operation count (Table 3).
    pub ops: u64,
    /// QSPR's "actual delay" in seconds (Table 2).
    pub actual_delay_s: f64,
    /// LEQA's "estimated delay" in seconds (Table 2).
    pub estimated_delay_s: f64,
    /// Absolute error in percent (Table 2).
    pub error_pct: f64,
    /// QSPR runtime in seconds (Table 3).
    pub qspr_runtime_s: f64,
    /// LEQA runtime in seconds (Table 3).
    pub leqa_runtime_s: f64,
    /// Speedup factor (Table 3).
    pub speedup: f64,
}

/// Which generator family a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Family {
    Adder8,
    Gf2(u32),
    Hwb(u32),
    Ham15,
    ModAdder,
}

/// A named benchmark of the evaluation suite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Benchmark {
    /// The paper's benchmark name.
    pub name: &'static str,
    /// The paper's published numbers for this benchmark.
    pub paper: PaperRow,
    family: Family,
}

impl Benchmark {
    /// Generates the benchmark circuit (reversible level; lower it with
    /// [`leqa_circuit::decompose::lower_to_ft`]).
    pub fn circuit(&self) -> Circuit {
        match self.family {
            Family::Adder8 => adder::adder8(),
            Family::Gf2(n) => gf2::gf2_mult(n),
            Family::Hwb(n) => hwb::hwb(n),
            Family::Ham15 => ham::ham15(),
            Family::ModAdder => adder::mod1048576_adder(),
        }
    }

    /// Looks a benchmark up by its paper name.
    pub fn by_name(name: &str) -> Option<&'static Benchmark> {
        SUITE.iter().find(|b| b.name == name)
    }
}

macro_rules! row {
    ($name:literal, $family:expr, $qubits:literal, $ops:literal,
     $actual:literal, $est:literal, $err:literal,
     $qspr_rt:literal, $leqa_rt:literal, $speedup:literal) => {
        Benchmark {
            name: $name,
            family: $family,
            paper: PaperRow {
                qubits: $qubits,
                ops: $ops,
                actual_delay_s: $actual,
                estimated_delay_s: $est,
                error_pct: $err,
                qspr_runtime_s: $qspr_rt,
                leqa_runtime_s: $leqa_rt,
                speedup: $speedup,
            },
        }
    };
}

/// The 18 benchmarks in Table 3's order (sorted by operation count).
pub const SUITE: [Benchmark; 18] = [
    row!(
        "8bitadder",
        Family::Adder8,
        24,
        822,
        1.617,
        1.667,
        3.10,
        0.9,
        0.115,
        8.2
    ),
    row!(
        "gf2^16mult",
        Family::Gf2(16),
        48,
        3885,
        4.460,
        4.524,
        1.45,
        3.0,
        0.289,
        10.3
    ),
    row!(
        "hwb15ps",
        Family::Hwb(15),
        47,
        3885,
        19.40,
        19.93,
        2.76,
        2.7,
        0.256,
        10.7
    ),
    row!(
        "hwb16ps",
        Family::Hwb(16),
        55,
        3811,
        18.52,
        19.03,
        2.76,
        2.9,
        0.250,
        11.5
    ),
    row!(
        "gf2^18mult",
        Family::Gf2(18),
        54,
        4911,
        5.085,
        5.109,
        0.46,
        3.5,
        0.276,
        12.6
    ),
    row!(
        "gf2^19mult",
        Family::Gf2(19),
        57,
        5469,
        5.393,
        5.407,
        0.25,
        3.7,
        0.259,
        14.2
    ),
    row!(
        "gf2^20mult",
        Family::Gf2(20),
        60,
        6019,
        5.654,
        5.660,
        0.11,
        5.1,
        0.301,
        17.1
    ),
    row!(
        "ham15",
        Family::Ham15,
        146,
        5308,
        25.18,
        25.30,
        0.51,
        4.3,
        0.257,
        16.6
    ),
    row!(
        "hwb20ps",
        Family::Hwb(20),
        83,
        6395,
        30.26,
        31.06,
        2.66,
        3.8,
        0.272,
        13.9
    ),
    row!(
        "hwb50ps",
        Family::Hwb(50),
        370,
        25370,
        123.6,
        127.4,
        3.10,
        11.8,
        0.450,
        26.3
    ),
    row!(
        "gf2^50mult",
        Family::Gf2(50),
        150,
        37647,
        14.74,
        14.95,
        1.44,
        16.9,
        0.398,
        42.5
    ),
    row!(
        "mod1048576adder",
        Family::ModAdder,
        1180,
        37070,
        202.7,
        195.8,
        3.38,
        20.2,
        0.382,
        52.8
    ),
    row!(
        "gf2^64mult",
        Family::Gf2(64),
        192,
        61629,
        19.04,
        19.35,
        1.64,
        29.4,
        0.461,
        63.8
    ),
    row!(
        "hwb100ps",
        Family::Hwb(100),
        1106,
        67735,
        342.7,
        340.2,
        0.72,
        26.7,
        0.575,
        46.4
    ),
    row!(
        "gf2^100mult",
        Family::Gf2(100),
        300,
        150297,
        30.15,
        29.98,
        0.57,
        65.2,
        0.859,
        76.0
    ),
    row!(
        "hwb200ps",
        Family::Hwb(200),
        3145,
        175490,
        963.8,
        883.9,
        8.29,
        66.7,
        0.915,
        72.9
    ),
    row!(
        "gf2^128mult",
        Family::Gf2(128),
        384,
        246141,
        38.86,
        38.38,
        1.24,
        106.0,
        1.381,
        78.3
    ),
    row!(
        "gf2^256mult",
        Family::Gf2(256),
        768,
        983805,
        79.36,
        76.54,
        3.55,
        524.8,
        4.576,
        114.7
    ),
];

#[cfg(test)]
mod tests {
    use super::*;
    use leqa_circuit::decompose::{lowered_ancilla_count, lowered_op_count};

    #[test]
    fn suite_has_18_benchmarks_in_paper_order() {
        assert_eq!(SUITE.len(), 18);
        assert_eq!(SUITE[0].name, "8bitadder");
        assert_eq!(SUITE[17].name, "gf2^256mult");
        // Table 3 is *roughly* sorted by operation count (hwb16ps sits one
        // row out of order in the paper itself); check the overall trend.
        assert!(SUITE[17].paper.ops > SUITE[0].paper.ops * 1000);
    }

    #[test]
    fn generated_counts_match_paper_exactly() {
        for b in &SUITE {
            let c = b.circuit();
            let ops = lowered_op_count(&c);
            let qubits = c.num_qubits() as u64 + lowered_ancilla_count(&c);
            assert_eq!(ops, b.paper.ops, "{} op count", b.name);
            assert_eq!(qubits, b.paper.qubits, "{} qubit count", b.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(Benchmark::by_name("gf2^256mult").is_some());
        assert!(Benchmark::by_name("nonexistent").is_none());
    }

    #[test]
    fn paper_average_error_is_as_published() {
        // Table 2 reports an average absolute error of 2.11%.
        let avg: f64 = SUITE.iter().map(|b| b.paper.error_pct).sum::<f64>() / SUITE.len() as f64;
        assert!((avg - 2.11).abs() < 0.01, "average error {avg}");
    }

    #[test]
    fn paper_errors_match_delays() {
        for b in &SUITE {
            let err = 100.0 * (b.paper.estimated_delay_s - b.paper.actual_delay_s).abs()
                / b.paper.actual_delay_s;
            assert!(
                (err - b.paper.error_pct).abs() < 0.06,
                "{}: recomputed {err:.2}% vs published {:.2}%",
                b.name,
                b.paper.error_pct
            );
        }
    }

    #[test]
    fn paper_speedups_match_runtimes() {
        for b in &SUITE {
            let speedup = b.paper.qspr_runtime_s / b.paper.leqa_runtime_s;
            assert!(
                (speedup - b.paper.speedup).abs() / b.paper.speedup < 0.05,
                "{}: recomputed {speedup:.1} vs published {:.1}",
                b.name,
                b.paper.speedup
            );
        }
    }
}
