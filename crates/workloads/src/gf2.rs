//! GF(2^n) multiplication benchmarks.
//!
//! The classical Mastrovito multiplier computes `c(x) = a(x)·b(x) mod p(x)`
//! over GF(2). Its reversible form — the construction behind the
//! `gf2^n mult` benchmarks — uses one Toffoli per partial product
//! `a_i·b_j` (accumulated into the output register indexed mod `n`) and a
//! tail of CNOTs that fold the modular reduction of `p(x)` into the output
//! cells: `(n − 1)` CNOTs per non-trivial reduction tap.
//!
//! With a pentanomial reduction (`x^n ≡ x^3 + x^2 + x + 1`, three
//! non-trivial taps) the lowered FT-op count is `15·n² + 3·(n−1)`, which
//! matches **every** `gf2^n mult` row of Table 3 exactly, except
//! `gf2^20 mult` where the paper's count implies the irreducible trinomial
//! `x^20 + x^3 + 1` (one tap). [`gf2_mult`] picks those defaults;
//! [`gf2_mult_with_taps`] exposes the tap set.

use leqa_circuit::{Circuit, Gate, QubitId};

/// Generates the `gf2^n mult` benchmark with the paper-matching reduction
/// polynomial (trinomial for `n = 20`, pentanomial otherwise).
///
/// The circuit uses `3n` qubits: `a` in wires `0..n`, `b` in `n..2n` and
/// the product register `c` in `2n..3n`.
///
/// # Panics
///
/// Panics if `n < 2` (a field extension needs at least degree 2).
///
/// # Examples
///
/// ```
/// use leqa_circuit::decompose::lowered_op_count;
/// use leqa_workloads::gf2::gf2_mult;
///
/// let c = gf2_mult(16);
/// assert_eq!(c.num_qubits(), 48);
/// assert_eq!(lowered_op_count(&c), 3885); // Table 3's gf2^16mult
/// ```
pub fn gf2_mult(n: u32) -> Circuit {
    let taps: &[u32] = if n == 20 { &[3] } else { &[1, 2, 3] };
    gf2_mult_with_taps(n, taps)
}

/// Generates a GF(2^n) multiplier with an explicit set of non-trivial
/// reduction taps (each tap `t` folds `c_k` into `c_{(k+t) mod n}`).
///
/// # Panics
///
/// Panics if `n < 2`, if a tap is 0 or ≥ `n`, or if taps repeat.
pub fn gf2_mult_with_taps(n: u32, taps: &[u32]) -> Circuit {
    assert!(n >= 2, "field degree must be at least 2");
    for (i, &t) in taps.iter().enumerate() {
        assert!(t > 0 && t < n, "tap {t} out of range for degree {n}");
        assert!(!taps[i + 1..].contains(&t), "tap {t} repeated");
    }

    let mut circuit = Circuit::with_name(3 * n, format!("gf2^{n}mult"));
    let a = |i: u32| QubitId(i);
    let b = |j: u32| QubitId(n + j);
    let c = |k: u32| QubitId(2 * n + k);

    // Partial products: one Toffoli per (i, j) pair, accumulated into the
    // output cell of the (pre-reduction) degree class.
    for i in 0..n {
        for j in 0..n {
            let k = (i + j) % n;
            circuit
                .push(Gate::toffoli(a(i), b(j), c(k)).expect("distinct registers"))
                .expect("wires in range");
        }
    }

    // Reduction folding: (n − 1) CNOTs per tap.
    for &t in taps {
        for k in 1..n {
            let from = c(k);
            let to = c((k + t) % n);
            if from != to {
                circuit
                    .push(Gate::cnot(from, to).expect("distinct cells"))
                    .expect("wires in range");
            }
        }
    }

    circuit
}

#[cfg(test)]
mod tests {
    use super::*;
    use leqa_circuit::decompose::{lower_to_ft, lowered_op_count};

    #[test]
    fn qubit_count_is_3n() {
        for n in [4u32, 16, 20, 50] {
            assert_eq!(gf2_mult(n).num_qubits(), 3 * n);
        }
    }

    #[test]
    fn table3_op_counts_match_exactly() {
        // (n, ops from Table 3)
        let rows = [
            (16u32, 3_885u64),
            (18, 4_911),
            (19, 5_469),
            (20, 6_019),
            (50, 37_647),
            (64, 61_629),
            (100, 150_297),
            (128, 246_141),
            (256, 983_805),
        ];
        for (n, ops) in rows {
            assert_eq!(lowered_op_count(&gf2_mult(n)), ops, "gf2^{n}mult op count");
        }
    }

    #[test]
    fn lowering_adds_no_ancillas() {
        let ft = lower_to_ft(&gf2_mult(8)).unwrap();
        assert_eq!(ft.num_qubits(), 24);
    }

    #[test]
    fn structure_toffolis_then_cnots() {
        let circ = gf2_mult(4);
        let s = circ.stats();
        assert_eq!(s.toffoli, 16);
        assert_eq!(s.cnot, 3 * 3);
        assert_eq!(s.total(), 16 + 9);
    }

    #[test]
    fn every_a_b_pair_interacts_once() {
        let circ = gf2_mult(5);
        let mut toffoli_pairs = 0;
        for g in circ.gates() {
            if let Gate::Toffoli { .. } = g {
                toffoli_pairs += 1;
            }
        }
        assert_eq!(toffoli_pairs, 25);
    }

    #[test]
    #[should_panic(expected = "field degree")]
    fn rejects_tiny_degree() {
        gf2_mult(1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_tap() {
        gf2_mult_with_taps(8, &[8]);
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn rejects_repeated_tap() {
        gf2_mult_with_taps(8, &[2, 2]);
    }

    #[test]
    fn name_is_set() {
        assert_eq!(gf2_mult(16).name(), Some("gf2^16mult"));
    }
}
