//! Adder benchmarks: a genuine Cuccaro ripple-carry construction plus the
//! suite's tuned `8bitadder` and `mod1048576adder` (mod-2^20) variants.

use leqa_circuit::{Circuit, Gate, QubitId};

use crate::MixSpec;

/// A genuine Cuccaro ripple-carry adder computing `b ← a + b` on
/// `2n + 2` qubits (one borrowed carry-in ancilla, the carry-out wire at
/// the end).
///
/// Gate census: `2n` Toffolis and `4n + 1` CNOTs (MAJ/UMA ladders plus the
/// carry-out copy). This is the *algorithmic* adder; the Table 3
/// `8bitadder` row corresponds to an older, less optimized netlist — see
/// [`adder8`].
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use leqa_workloads::adder::cuccaro_adder;
///
/// let c = cuccaro_adder(8);
/// assert_eq!(c.num_qubits(), 18);
/// let s = c.stats();
/// assert_eq!(s.toffoli, 16);
/// assert_eq!(s.cnot, 33);
/// ```
pub fn cuccaro_adder(n: u32) -> Circuit {
    assert!(n > 0, "adder width must be positive");
    // Layout: wire 0 = carry-in ancilla, 1..=n = a, n+1..=2n = b,
    // 2n+1 = carry out.
    let carry_in = QubitId(0);
    let a = |i: u32| QubitId(1 + i);
    let b = |i: u32| QubitId(1 + n + i);
    let carry_out = QubitId(2 * n + 1);

    let mut c = Circuit::with_name(2 * n + 2, format!("cuccaro{n}"));
    let maj = |c: &mut Circuit, x: QubitId, y: QubitId, z: QubitId| {
        c.push(Gate::cnot(z, y).expect("distinct")).expect("range");
        c.push(Gate::cnot(z, x).expect("distinct")).expect("range");
        c.push(Gate::toffoli(x, y, z).expect("distinct"))
            .expect("range");
    };
    let uma = |c: &mut Circuit, x: QubitId, y: QubitId, z: QubitId| {
        c.push(Gate::toffoli(x, y, z).expect("distinct"))
            .expect("range");
        c.push(Gate::cnot(z, x).expect("distinct")).expect("range");
        c.push(Gate::cnot(x, y).expect("distinct")).expect("range");
    };

    // Forward MAJ ladder.
    maj(&mut c, carry_in, b(0), a(0));
    for i in 1..n {
        maj(&mut c, a(i - 1), b(i), a(i));
    }
    // Carry out.
    c.push(Gate::cnot(a(n - 1), carry_out).expect("distinct"))
        .expect("range");
    // Backward UMA ladder.
    for i in (1..n).rev() {
        uma(&mut c, a(i - 1), b(i), a(i));
    }
    uma(&mut c, carry_in, b(0), a(0));
    c
}

/// The recipe behind Table 3's `8bitadder` (`Q = 24`, `N = 822`): an
/// 18-wire ripple-carry base (the Cuccaro layout) plus six 3-control MCTs
/// (carry-lookahead cells), 36 Toffolis and 12 CNOTs.
pub fn adder8_spec() -> MixSpec {
    MixSpec {
        name: "8bitadder".into(),
        base_wires: 18,
        mct: vec![(3, 6)],
        toffoli: 36,
        cnot: 12,
        not: 0,
        // Ripple-carry locality: gates touch adjacent bit positions.
        locality: 5,
        seed: 0x4144_4408,
    }
}

/// Generates the `8bitadder` benchmark.
///
/// # Examples
///
/// ```
/// use leqa_circuit::decompose::lowered_op_count;
/// use leqa_workloads::adder::adder8;
///
/// assert_eq!(lowered_op_count(&adder8()), 822);
/// ```
pub fn adder8() -> Circuit {
    adder8_spec().build()
}

/// The recipe behind Table 3's `mod1048576adder` (a mod-2^20 adder,
/// `Q = 1180`, `N = 37070`): a 60-wire three-register base with 224
/// 7-control MCTs (the modular comparator/subtractor cells whose ancilla
/// ladders dominate the qubit count), 7 Toffolis and 5 CNOTs.
pub fn mod1048576_spec() -> MixSpec {
    MixSpec {
        name: "mod1048576adder".into(),
        base_wires: 60,
        mct: vec![(7, 224)],
        toffoli: 7,
        cnot: 5,
        not: 0,
        // Comparator cells span a 20-bit register.
        locality: 20,
        seed: 0x4D4F_4420,
    }
}

/// Generates the `mod1048576adder` benchmark.
///
/// # Examples
///
/// ```
/// use leqa_circuit::decompose::lowered_op_count;
/// use leqa_workloads::adder::mod1048576_adder;
///
/// assert_eq!(lowered_op_count(&mod1048576_adder()), 37_070);
/// ```
pub fn mod1048576_adder() -> Circuit {
    mod1048576_spec().build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use leqa_circuit::decompose::{lower_to_ft, lowered_op_count};

    #[test]
    fn cuccaro_gate_census() {
        for n in [1u32, 4, 8, 16] {
            let c = cuccaro_adder(n);
            let s = c.stats();
            assert_eq!(s.toffoli as u32, 2 * n, "toffolis for n={n}");
            assert_eq!(s.cnot as u32, 4 * n + 1, "cnots for n={n}");
            assert_eq!(c.num_qubits(), 2 * n + 2);
        }
    }

    #[test]
    fn cuccaro_lowers_without_ancillas() {
        let ft = lower_to_ft(&cuccaro_adder(8)).unwrap();
        assert_eq!(ft.num_qubits(), 18);
        assert_eq!(ft.ops().len(), 16 * 15 + 33);
    }

    #[test]
    fn adder8_matches_table3() {
        let spec = adder8_spec();
        assert_eq!(spec.predicted_qubits(), 24);
        assert_eq!(spec.predicted_ops(), 822);
        assert_eq!(lowered_op_count(&adder8()), 822);
    }

    #[test]
    fn mod_adder_matches_table3() {
        let spec = mod1048576_spec();
        assert_eq!(spec.predicted_qubits(), 1_180);
        assert_eq!(spec.predicted_ops(), 37_070);
    }

    #[test]
    fn mod_adder_lowering_matches_prediction() {
        let ft = lower_to_ft(&mod1048576_adder()).unwrap();
        assert_eq!(ft.num_qubits(), 1_180);
        assert_eq!(ft.ops().len(), 37_070);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_panics() {
        cuccaro_adder(0);
    }
}
