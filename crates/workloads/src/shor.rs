//! A Shor's-algorithm skeleton: the workload behind the paper's §4.2
//! extrapolation argument.
//!
//! Full Shor-`n` modular exponentiation is ~`O(n³)` gates — far beyond
//! what anyone maps in one piece. This generator builds the *inner loop*
//! the architecture papers (e.g. ref. \[10\]) analyse: a cascade of
//! controlled modular additions, each realized as a Cuccaro ripple-carry
//! adder with its MAJ/UMA cells controlled by an exponent qubit (one
//! ancilla-free controlled-adder round per exponent bit window).
//!
//! The result is a realistic large circuit family with adder-style
//! locality plus a global control fan-out — useful for stress-testing
//! both tools beyond the Maslov suite.

use leqa_circuit::{Circuit, Gate, QubitId};

/// Generates a Shor-skeleton circuit: `rounds` controlled modular-adder
/// rounds over an `n`-bit register.
///
/// Layout: wire 0 = carry ancilla, `1..=n` = accumulator `a`,
/// `n+1..=2n` = addend `b`, `2n+1` = carry-out, `2n+2..2n+2+rounds` =
/// exponent (control) qubits. Qubit count `2n + 2 + rounds`; gate count
/// grows as `rounds · n`.
///
/// # Panics
///
/// Panics if `n == 0` or `rounds == 0`.
///
/// # Examples
///
/// ```
/// use leqa_workloads::shor::shor_skeleton;
///
/// let c = shor_skeleton(8, 4);
/// assert_eq!(c.num_qubits(), 8 * 2 + 2 + 4);
/// ```
pub fn shor_skeleton(n: u32, rounds: u32) -> Circuit {
    assert!(n > 0, "register width must be positive");
    assert!(rounds > 0, "need at least one exponent round");

    let carry_in = QubitId(0);
    let a = |i: u32| QubitId(1 + i);
    let b = |i: u32| QubitId(1 + n + i);
    let carry_out = QubitId(2 * n + 1);
    let exponent = |r: u32| QubitId(2 * n + 2 + r);

    let mut c = Circuit::with_name(2 * n + 2 + rounds, format!("shor{n}x{rounds}"));

    for r in 0..rounds {
        let ctl = exponent(r);
        // Controlled-MAJ: the CNOTs become Toffolis under the exponent
        // control; the Toffoli becomes a 3-control MCT.
        let cmaj = |c: &mut Circuit, x: QubitId, y: QubitId, z: QubitId| {
            c.push(Gate::toffoli(ctl, z, y).expect("distinct"))
                .expect("range");
            c.push(Gate::toffoli(ctl, z, x).expect("distinct"))
                .expect("range");
            c.push(Gate::mct(vec![ctl, x, y], z).expect("distinct"))
                .expect("range");
        };
        let cuma = |c: &mut Circuit, x: QubitId, y: QubitId, z: QubitId| {
            c.push(Gate::mct(vec![ctl, x, y], z).expect("distinct"))
                .expect("range");
            c.push(Gate::toffoli(ctl, z, x).expect("distinct"))
                .expect("range");
            c.push(Gate::toffoli(ctl, x, y).expect("distinct"))
                .expect("range");
        };

        cmaj(&mut c, carry_in, b(0), a(0));
        for i in 1..n {
            cmaj(&mut c, a(i - 1), b(i), a(i));
        }
        c.push(Gate::toffoli(ctl, a(n - 1), carry_out).expect("distinct"))
            .expect("range");
        for i in (1..n).rev() {
            cuma(&mut c, a(i - 1), b(i), a(i));
        }
        cuma(&mut c, carry_in, b(0), a(0));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use leqa_circuit::decompose::{lower_to_ft, lowered_op_count};
    use leqa_circuit::Iig;

    #[test]
    fn qubit_and_gate_structure() {
        let c = shor_skeleton(4, 3);
        assert_eq!(c.num_qubits(), 4 * 2 + 2 + 3);
        let s = c.stats();
        // Per round: 2n controlled-MAJ/UMA cells with 2 Toffolis + 1 MCT3
        // each, plus the carry-out Toffoli.
        assert_eq!(s.mct, 3 * 2 * 4);
        assert_eq!(s.toffoli as u32, 3 * (2 * 2 * 4 + 1));
    }

    #[test]
    fn op_count_scales_linearly_in_rounds() {
        let one = lowered_op_count(&shor_skeleton(8, 1));
        let four = lowered_op_count(&shor_skeleton(8, 4));
        assert_eq!(four, 4 * one);
    }

    #[test]
    fn exponent_qubits_are_global_hubs() {
        let ft = lower_to_ft(&shor_skeleton(6, 2)).unwrap();
        let iig = Iig::from_ft_circuit(&ft);
        // Each exponent qubit touches most of the register.
        let ctl = QubitId(6 * 2 + 2);
        assert!(iig.degree(ctl) >= 6, "degree {}", iig.degree(ctl));
    }

    #[test]
    fn lowering_adds_one_ancilla_per_mct() {
        let c = shor_skeleton(4, 1);
        let ft = lower_to_ft(&c).unwrap();
        // 2n MCT3 gates, each adds exactly one ancilla.
        assert_eq!(ft.num_qubits(), c.num_qubits() + 2 * 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_panics() {
        shor_skeleton(0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_rounds_panics() {
        shor_skeleton(4, 0);
    }
}
