//! A Shor's-algorithm skeleton: the workload behind the paper's §4.2
//! extrapolation argument.
//!
//! Full Shor-`n` modular exponentiation is ~`O(n³)` gates — far beyond
//! what anyone maps in one piece. This generator builds the *inner loop*
//! the architecture papers (e.g. ref. \[10\]) analyse: a cascade of
//! controlled modular additions, each realized as a Cuccaro ripple-carry
//! adder with its MAJ/UMA cells controlled by an exponent qubit (one
//! ancilla-free controlled-adder round per exponent bit window).
//!
//! The result is a realistic large circuit family with adder-style
//! locality plus a global control fan-out — useful for stress-testing
//! both tools beyond the Maslov suite.

use leqa_circuit::decompose::{LoweredGates, FT_OPS_PER_TOFFOLI};
use leqa_circuit::{Circuit, FtOp, Gate, QubitId};

/// Generates a Shor-skeleton circuit: `rounds` controlled modular-adder
/// rounds over an `n`-bit register.
///
/// Layout: wire 0 = carry ancilla, `1..=n` = accumulator `a`,
/// `n+1..=2n` = addend `b`, `2n+1` = carry-out, `2n+2..2n+2+rounds` =
/// exponent (control) qubits. Qubit count `2n + 2 + rounds`; gate count
/// grows as `rounds · n`.
///
/// # Panics
///
/// Panics if `n == 0` or `rounds == 0`.
///
/// # Examples
///
/// ```
/// use leqa_workloads::shor::shor_skeleton;
///
/// let c = shor_skeleton(8, 4);
/// assert_eq!(c.num_qubits(), 8 * 2 + 2 + 4);
/// ```
pub fn shor_skeleton(n: u32, rounds: u32) -> Circuit {
    assert!(n > 0, "register width must be positive");
    assert!(rounds > 0, "need at least one exponent round");

    let carry_in = QubitId(0);
    let a = |i: u32| QubitId(1 + i);
    let b = |i: u32| QubitId(1 + n + i);
    let carry_out = QubitId(2 * n + 1);
    let exponent = |r: u32| QubitId(2 * n + 2 + r);

    let mut c = Circuit::with_name(2 * n + 2 + rounds, format!("shor{n}x{rounds}"));

    for r in 0..rounds {
        let ctl = exponent(r);
        // Controlled-MAJ: the CNOTs become Toffolis under the exponent
        // control; the Toffoli becomes a 3-control MCT.
        let cmaj = |c: &mut Circuit, x: QubitId, y: QubitId, z: QubitId| {
            c.push(Gate::toffoli(ctl, z, y).expect("distinct"))
                .expect("range");
            c.push(Gate::toffoli(ctl, z, x).expect("distinct"))
                .expect("range");
            c.push(Gate::mct(vec![ctl, x, y], z).expect("distinct"))
                .expect("range");
        };
        let cuma = |c: &mut Circuit, x: QubitId, y: QubitId, z: QubitId| {
            c.push(Gate::mct(vec![ctl, x, y], z).expect("distinct"))
                .expect("range");
            c.push(Gate::toffoli(ctl, z, x).expect("distinct"))
                .expect("range");
            c.push(Gate::toffoli(ctl, x, y).expect("distinct"))
                .expect("range");
        };

        cmaj(&mut c, carry_in, b(0), a(0));
        for i in 1..n {
            cmaj(&mut c, a(i - 1), b(i), a(i));
        }
        c.push(Gate::toffoli(ctl, a(n - 1), carry_out).expect("distinct"))
            .expect("range");
        for i in (1..n).rev() {
            cuma(&mut c, a(i - 1), b(i), a(i));
        }
        cuma(&mut c, carry_in, b(0), a(0));
    }
    c
}

/// The `(x, y, z)` operand triple of adder cell `i` in an `n`-bit round
/// (cell 0 consumes the carry ancilla; cell `i` chains off `a(i-1)`).
fn cell(n: u32, i: u32) -> (QubitId, QubitId, QubitId) {
    let a = |i: u32| QubitId(1 + i);
    let b = |i: u32| QubitId(1 + n + i);
    if i == 0 {
        (QubitId(0), b(0), a(0))
    } else {
        (a(i - 1), b(i), a(i))
    }
}

/// Lazily yields exactly the gate sequence [`shor_skeleton`] materializes,
/// in the same order, without building the `Circuit`. This is what lets
/// cryptographic-scale rounds (`shor_1024`, `shor_2048` — tens of
/// millions of lowered ops) feed the streaming profile pipeline with
/// `O(1)` gates in memory.
///
/// # Panics
///
/// Panics if `n == 0` or `rounds == 0`, matching [`shor_skeleton`].
pub fn shor_gates(n: u32, rounds: u32) -> impl Iterator<Item = Gate> {
    assert!(n > 0, "register width must be positive");
    assert!(rounds > 0, "need at least one exponent round");
    let carry_out = QubitId(2 * n + 1);
    let a = move |i: u32| QubitId(1 + i);
    (0..rounds).flat_map(move |r| {
        let ctl = QubitId(2 * n + 2 + r);
        let cmaj = move |(x, y, z): (QubitId, QubitId, QubitId)| {
            [
                Gate::toffoli(ctl, z, y).expect("distinct"),
                Gate::toffoli(ctl, z, x).expect("distinct"),
                Gate::mct(vec![ctl, x, y], z).expect("distinct"),
            ]
        };
        let cuma = move |(x, y, z): (QubitId, QubitId, QubitId)| {
            [
                Gate::mct(vec![ctl, x, y], z).expect("distinct"),
                Gate::toffoli(ctl, z, x).expect("distinct"),
                Gate::toffoli(ctl, x, y).expect("distinct"),
            ]
        };
        (0..n)
            .flat_map(move |i| cmaj(cell(n, i)))
            .chain(std::iter::once(
                Gate::toffoli(ctl, a(n - 1), carry_out).expect("distinct"),
            ))
            .chain((0..n).rev().flat_map(move |i| cuma(cell(n, i))))
    })
}

/// The default round count of the `shor_N` workload grammar:
/// `max(1, N / 8)` exponent rounds, the window the paper's §4.2
/// extrapolation argument analyses per exponent-bit group.
pub fn default_rounds(n: u32) -> u32 {
    (n / 8).max(1)
}

/// Closed-form lowered qubit count of `shor_skeleton(n, rounds)` after
/// [`lower_to_ft`](leqa_circuit::decompose::lower_to_ft): the `2n + 2 +
/// rounds` skeleton wires plus one ancilla per 3-control MCT (there are
/// `2n` per round). `None` if the parameters are out of range (`n == 0`,
/// `rounds == 0`) or the width overflows the `u32` qubit index space.
pub fn shor_lowered_qubits(n: u32, rounds: u32) -> Option<u32> {
    if n == 0 || rounds == 0 {
        return None;
    }
    // u128 so even u32::MAX × u32::MAX cannot wrap before the range check.
    let n = n as u128;
    let rounds = rounds as u128;
    let width = 2 * n + 2 + rounds + 2 * n * rounds;
    u32::try_from(width).ok()
}

/// Closed-form lowered op count of `shor_skeleton(n, rounds)`: per round,
/// `2n` controlled-MAJ/UMA cells of two Toffolis plus one 3-control MCT
/// (`(2·3−3)` Toffolis) each, plus the carry-out Toffoli — all at
/// [`FT_OPS_PER_TOFFOLI`] ops per Toffoli. `None` on out-of-range
/// parameters or `u64` overflow.
pub fn shor_lowered_op_count(n: u32, rounds: u32) -> Option<u64> {
    if n == 0 || rounds == 0 {
        return None;
    }
    let per_tof = FT_OPS_PER_TOFFOLI as u64;
    // Each cell: 2 Toffolis + 1 MCT3 (2k−3 = 3 Toffolis) = 5 Toffolis.
    let per_round = (2 * n as u64)
        .checked_mul(5 * per_tof)?
        .checked_add(per_tof)?;
    per_round.checked_mul(rounds as u64)
}

/// A lazily generated, already-lowered Shor-skeleton workload: the
/// generator-backed gate source behind `shor_N` streaming estimates.
///
/// [`ops`](Self::ops) yields the exact [`FtOp`] stream
/// `lower_to_ft(&shor_skeleton(n, rounds))` would materialize (pinned by
/// differential tests), while holding only a bounded per-gate buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShorStream {
    n: u32,
    rounds: u32,
}

impl ShorStream {
    /// Creates the stream, validating the parameters: `None` if `n == 0`,
    /// `rounds == 0`, or the lowered width/op count overflows.
    pub fn new(n: u32, rounds: u32) -> Option<Self> {
        shor_lowered_qubits(n, rounds)?;
        shor_lowered_op_count(n, rounds)?;
        Some(ShorStream { n, rounds })
    }

    /// Register width `n`.
    pub fn register_width(&self) -> u32 {
        self.n
    }

    /// Exponent round count.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// The workload's display name, identical to the materialized
    /// circuit's: `shor{n}x{rounds}`.
    pub fn name(&self) -> String {
        format!("shor{}x{}", self.n, self.rounds)
    }

    /// Lowered qubit count (skeleton wires plus lowering ancillas).
    pub fn num_qubits(&self) -> u32 {
        shor_lowered_qubits(self.n, self.rounds).expect("validated in new")
    }

    /// Lowered FT op count, without generating the stream.
    pub fn ft_op_count(&self) -> u64 {
        shor_lowered_op_count(self.n, self.rounds).expect("validated in new")
    }

    /// A fresh pass over the lowered op stream. The profile and
    /// critical-path passes of a streaming estimate each take one.
    pub fn ops(&self) -> impl Iterator<Item = FtOp> {
        LoweredGates::new(
            2 * self.n + 2 + self.rounds,
            shor_gates(self.n, self.rounds),
        )
        .map(|op| op.expect("width validated in ShorStream::new"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leqa_circuit::decompose::{lower_to_ft, lowered_op_count};
    use leqa_circuit::Iig;

    #[test]
    fn qubit_and_gate_structure() {
        let c = shor_skeleton(4, 3);
        assert_eq!(c.num_qubits(), 4 * 2 + 2 + 3);
        let s = c.stats();
        // Per round: 2n controlled-MAJ/UMA cells with 2 Toffolis + 1 MCT3
        // each, plus the carry-out Toffoli.
        assert_eq!(s.mct, 3 * 2 * 4);
        assert_eq!(s.toffoli as u32, 3 * (2 * 2 * 4 + 1));
    }

    #[test]
    fn op_count_scales_linearly_in_rounds() {
        let one = lowered_op_count(&shor_skeleton(8, 1));
        let four = lowered_op_count(&shor_skeleton(8, 4));
        assert_eq!(four, 4 * one);
    }

    #[test]
    fn exponent_qubits_are_global_hubs() {
        let ft = lower_to_ft(&shor_skeleton(6, 2)).unwrap();
        let iig = Iig::from_ft_circuit(&ft);
        // Each exponent qubit touches most of the register.
        let ctl = QubitId(6 * 2 + 2);
        assert!(iig.degree(ctl) >= 6, "degree {}", iig.degree(ctl));
    }

    #[test]
    fn lowering_adds_one_ancilla_per_mct() {
        let c = shor_skeleton(4, 1);
        let ft = lower_to_ft(&c).unwrap();
        // 2n MCT3 gates, each adds exactly one ancilla.
        assert_eq!(ft.num_qubits(), c.num_qubits() + 2 * 4);
    }

    #[test]
    fn lazy_gates_match_the_materialized_skeleton() {
        for (n, rounds) in [(1, 1), (4, 3), (8, 2), (6, 1)] {
            let lazy: Vec<_> = shor_gates(n, rounds).collect();
            assert_eq!(lazy, shor_skeleton(n, rounds).gates(), "shor({n},{rounds})");
        }
    }

    #[test]
    fn stream_ops_match_the_materialized_lowering() {
        for (n, rounds) in [(1, 1), (4, 3), (6, 2)] {
            let stream = ShorStream::new(n, rounds).unwrap();
            let ft = lower_to_ft(&shor_skeleton(n, rounds)).unwrap();
            let ops: Vec<FtOp> = stream.ops().collect();
            assert_eq!(ops, ft.ops(), "shor({n},{rounds})");
            assert_eq!(stream.num_qubits(), ft.num_qubits());
            assert_eq!(stream.ft_op_count(), ft.ops().len() as u64);
            assert_eq!(Some(stream.name().as_str()), ft.name());
        }
    }

    #[test]
    fn closed_forms_match_the_generic_counters() {
        for (n, rounds) in [(1, 1), (4, 3), (8, 2)] {
            let c = shor_skeleton(n, rounds);
            assert_eq!(
                shor_lowered_op_count(n, rounds),
                Some(lowered_op_count(&c)),
                "shor({n},{rounds}) ops"
            );
            assert_eq!(
                shor_lowered_qubits(n, rounds).map(u64::from),
                Some(c.num_qubits() as u64 + leqa_circuit::decompose::lowered_ancilla_count(&c)),
                "shor({n},{rounds}) qubits"
            );
        }
    }

    #[test]
    fn closed_forms_reject_degenerate_and_overflowing_parameters() {
        assert_eq!(shor_lowered_qubits(0, 1), None);
        assert_eq!(shor_lowered_qubits(4, 0), None);
        assert!(ShorStream::new(0, 1).is_none());
        assert!(ShorStream::new(4, 0).is_none());
        // 2·n·rounds alone exceeds u32::MAX: the width check must catch it
        // instead of wrapping.
        assert_eq!(shor_lowered_qubits(u32::MAX, u32::MAX), None);
        assert!(ShorStream::new(u32::MAX, u32::MAX).is_none());
    }

    #[test]
    fn cryptographic_scale_counts() {
        // shor_1024 (128 default rounds): tens of millions of lowered ops,
        // generated without materializing anything.
        let stream = ShorStream::new(1024, default_rounds(1024)).unwrap();
        assert_eq!(default_rounds(1024), 128);
        assert_eq!(stream.ft_op_count(), 128 * (150 * 1024 + 15));
        assert!(stream.ft_op_count() > 10_000_000);
        assert_eq!(stream.num_qubits(), 2 * 1024 + 2 + 128 + 2 * 1024 * 128);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_panics() {
        shor_skeleton(0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_rounds_panics() {
        shor_skeleton(4, 0);
    }
}
