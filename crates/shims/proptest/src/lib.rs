//! Offline shim for the subset of the `proptest` crate API this workspace
//! uses: the `proptest!` macro with numeric range strategies, the
//! `prop_assert*` macros, and `ProptestConfig::with_cases`.
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! seeds: each test runs its strategies through a deterministic generator
//! seeded from the test name, so failures reproduce exactly on rerun.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SeedableRng};

/// Creates the deterministic generator `proptest!` uses (macro-internal;
/// referenced via `$crate::` so consumer crates need no `rand` dependency).
pub fn new_rng(seed: u64) -> TestRng {
    TestRng::seed_from_u64(seed)
}

/// Per-test configuration (the subset of `proptest::test_runner::Config`
/// the workspace uses).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value-generation strategy (the subset of `proptest::strategy::Strategy`
/// the workspace uses: plain numeric ranges).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Deterministic per-test seed derived from the test's name (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Everything a `proptest!` test body needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Defines property tests. Supports the two forms the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_property(x in 0u32..10, y in 1.0f64..2.0) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::new_rng($crate::seed_for(stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    let run = || { $body };
                    if let Err(panic) = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(run),
                    ) {
                        eprintln!(
                            "proptest case {}/{} of `{}` failed with inputs:",
                            case + 1,
                            config.cases,
                            stringify!($name),
                        );
                        $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)+
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respected(x in 3u32..9, y in 0u64..=4, f in 0.5f64..1.5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((0.5..1.5).contains(&f), "f = {f}");
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(a in 0usize..5, b in 0usize..5) {
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, a + b + 1);
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(super::seed_for("a"), super::seed_for("b"));
        assert_eq!(super::seed_for("a"), super::seed_for("a"));
    }
}
