//! Offline shim for the subset of the `criterion` crate API this workspace
//! uses: `Criterion::{bench_function, benchmark_group}`, groups with
//! `sample_size`/`bench_with_input`/`finish`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Timing model: each benchmark warms up briefly, then runs batches of
//! iterations until `measurement_time` elapses and reports the median
//! per-iteration time. No statistical analysis or HTML reports — results go
//! to stdout, and optionally to a JSON-lines file for baseline recording:
//! set `BENCH_JSON=path.json` and every completed benchmark appends
//! `{"name": ..., "median_ns": ..., "iters": ...}` (see PERF.md).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Benchmarks one function under `name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.measurement_time, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            measurement_time: Duration::from_millis(400),
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Compatibility no-op: the shim sizes samples by wall-clock budget
    /// rather than a fixed count, so this only shortens the budget for
    /// small requested sizes the way callers intend it (fast benches).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if n <= 10 {
            self.measurement_time = Duration::from_millis(200);
        }
        self
    }

    /// Overrides the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f` against a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, self.measurement_time, &mut |b| f(b, input));
        self
    }

    /// Benchmarks a plain function under `id`.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, self.measurement_time, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to benchmark closures; [`iter`](Bencher::iter) does the timing.
pub struct Bencher {
    budget: Duration,
    /// Median nanoseconds per iteration, filled by `iter`.
    median_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine` repeatedly and records the median per-iteration
    /// time. The routine's output is black-boxed so it is not optimized
    /// away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch sizing: grow the batch until one batch takes
        // ≥ ~1 ms (or a cap), so Instant overhead stays negligible.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }

        let mut samples: Vec<f64> = Vec::new();
        let mut iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < self.budget || samples.is_empty() {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / batch as f64);
            iters += batch;
            if samples.len() >= 200 {
                break;
            }
        }
        samples.sort_by(f64::total_cmp);
        self.median_ns = samples[samples.len() / 2];
        self.iters = iters;
    }
}

fn run_one(name: &str, budget: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        budget,
        median_ns: f64::NAN,
        iters: 0,
    };
    f(&mut bencher);
    println!(
        "{name:<48} time: {:>12}   ({} iterations)",
        format_ns(bencher.median_ns),
        bencher.iters
    );
    if let Ok(path) = std::env::var("BENCH_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(
                file,
                "{{\"name\":\"{}\",\"median_ns\":{},\"iters\":{}}}",
                name.replace('"', "'"),
                bencher.median_ns,
                bencher.iters
            );
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| std::hint::black_box(2u64 + 2));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter("x"), &3u64, |b, &x| {
            b.iter(|| std::hint::black_box(x * 2));
        });
        group.finish();
    }

    #[test]
    fn format_ns_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with('s'));
    }
}
