//! Offline shim for the subset of the `rand` crate API this workspace uses.
//!
//! See `crates/shims/README.md`. The generator is SplitMix64 — deterministic
//! per seed, statistically good enough for Monte-Carlo validation and
//! property tests, and dependency-free.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness (the subset of `rand_core::RngCore` we need).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed (the subset of
/// `rand::SeedableRng` we need).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a bounded range. Mirrors
/// `rand::distributions::uniform::SampleUniform` so type inference flows the
/// same way as with the real crate (a `Range<T>` constrains `T` directly).
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

/// Sampling of a uniform value out of a range, used by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// Types that can be drawn uniformly from their "standard" distribution
/// ([`Rng::gen`]): the unit interval for floats, the full domain for ints.
pub trait Standard: Sized {
    /// Draws one standard sample.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Standard for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _: bool) -> Self {
        lo + f64::standard(rng) * (hi - lo)
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits over [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods over any [`RngCore`] (the subset of
/// `rand::Rng` we need).
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Standard-distribution sample (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (SplitMix64; see the crate docs for
    /// how this differs from upstream `rand`'s `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Slice shuffling (the subset of `rand::seq::SliceRandom` we need).
    pub trait SliceRandom {
        /// Item type of the slice.
        type Item;

        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (va, vb, vc): (u64, u64, u64) = (a.gen(), b.gen(), c.gen());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&y));
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle is a fixed point with negligible probability"
        );
    }

    #[test]
    fn unit_samples_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            lo |= u < 0.1;
            hi |= u > 0.9;
        }
        assert!(lo && hi, "samples should reach both tails");
    }
}
