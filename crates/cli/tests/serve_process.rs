//! Process-level tests of `leqa serve`: the stdio transport driven as a
//! real child process, the TCP transport driven through the bundled
//! `leqa-client`, and the serve-specific exit codes.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};

use leqa_api::{ControlFrame, EstimateRequest, ProgramSpec, Request, Session};

fn estimate_line(name: &str) -> String {
    Request::Estimate(EstimateRequest::new(ProgramSpec::bench(name)))
        .to_json()
        .encode()
}

#[test]
fn stdio_round_trip_is_byte_identical_and_exits_cleanly() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_leqa"))
        .args(["serve", "--stdio"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon starts");
    let mut stdin = child.stdin.take().expect("piped stdin");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));

    let mut roundtrip = |line: &str| -> String {
        writeln!(stdin, "{line}").expect("write request line");
        stdin.flush().expect("flush");
        let mut reply = String::new();
        stdout.read_line(&mut reply).expect("read reply line");
        reply.trim_end_matches('\n').to_string()
    };

    // Two estimates: the second must be served from the daemon's cache,
    // byte-identical to the same sequence on a direct session.
    let direct = Session::builder().build().unwrap();
    let req = EstimateRequest::new(ProgramSpec::bench("qft_8"));
    for _ in 0..2 {
        let reply = roundtrip(&estimate_line("qft_8"));
        let expected = direct.estimate(&req).unwrap().to_json().encode();
        assert_eq!(reply, expected);
    }

    let stats = roundtrip(&ControlFrame::Stats.to_json().encode());
    assert!(stats.contains("\"requests\":{\"estimate\":2,"), "{stats}");
    assert!(stats.contains("\"cache_hits\":1"), "{stats}");

    let ack = roundtrip(&ControlFrame::Shutdown.to_json().encode());
    assert!(ack.contains("\"op\":\"shutdown\""), "{ack}");

    let out = child.wait_with_output().expect("daemon exits");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn stdio_daemon_exits_cleanly_on_pipe_close() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_leqa"))
        .args(["serve", "--stdio"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("daemon starts");
    let mut stdin = child.stdin.take().expect("piped stdin");
    writeln!(stdin, "{}", estimate_line("qft_8")).unwrap();
    drop(stdin); // EOF: the supervisor hung up.
    let out = child.wait_with_output().expect("daemon exits");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"op\":\"estimate\""));
}

#[test]
fn serve_without_a_transport_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_leqa"))
        .arg("serve")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--stdio or --listen"));
}

/// Spawns `leqa serve --listen 127.0.0.1:0` and parses the announced
/// address from its stdout.
fn spawn_tcp_daemon() -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_leqa"))
        .args(["serve", "--listen", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon starts");
    let mut line = String::new();
    BufReader::new(child.stdout.as_mut().expect("piped stdout"))
        .read_line(&mut line)
        .expect("announcement line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .expect("announcement format")
        .to_string();
    (child, addr)
}

#[test]
fn tcp_daemon_serves_the_bundled_client_and_shuts_down() {
    let (child, addr) = spawn_tcp_daemon();

    let out = Command::new(env!("CARGO_BIN_EXE_leqa-client"))
        .args([
            addr.as_str(),
            &estimate_line("qft_8"),
            &ControlFrame::Stats.to_json().encode(),
        ])
        .output()
        .expect("client runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let replies = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = replies.lines().collect();
    assert_eq!(lines.len(), 2, "{replies}");
    assert!(lines[0].starts_with("{\"schema_version\":1,\"op\":\"estimate\""));
    assert!(lines[1].starts_with("{\"schema_version\":1,\"op\":\"stats\""));

    // An error reply maps to the client's exit code (usage 2 here).
    let out = Command::new(env!("CARGO_BIN_EXE_leqa-client"))
        .args([addr.as_str(), &estimate_line("no-such-bench")])
        .output()
        .expect("client runs");
    assert_eq!(out.status.code(), Some(2));

    let out = Command::new(env!("CARGO_BIN_EXE_leqa-client"))
        .args([addr.as_str(), &ControlFrame::Shutdown.to_json().encode()])
        .output()
        .expect("client runs");
    assert!(out.status.success());

    let out = child.wait_with_output().expect("daemon exits");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
