//! Process-level tests of `leqa serve` and `leqa shard`: the stdio
//! transport driven as a real child process, the TCP transport driven
//! through the bundled `leqa-client` (line and pipelined frame modes,
//! overload retries), and the serve-specific exit codes.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};

use leqa_api::{json, ControlFrame, EstimateRequest, ProgramSpec, Request, Session, StatsResponse};

fn estimate_line(name: &str) -> String {
    Request::Estimate(EstimateRequest::new(ProgramSpec::bench(name)))
        .to_json()
        .encode()
}

#[test]
fn stdio_round_trip_is_byte_identical_and_exits_cleanly() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_leqa"))
        .args(["serve", "--stdio"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon starts");
    let mut stdin = child.stdin.take().expect("piped stdin");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));

    let mut roundtrip = |line: &str| -> String {
        writeln!(stdin, "{line}").expect("write request line");
        stdin.flush().expect("flush");
        let mut reply = String::new();
        stdout.read_line(&mut reply).expect("read reply line");
        reply.trim_end_matches('\n').to_string()
    };

    // Two estimates: the second must be served from the daemon's cache,
    // byte-identical to the same sequence on a direct session.
    let direct = Session::builder().build().unwrap();
    let req = EstimateRequest::new(ProgramSpec::bench("qft_8"));
    for _ in 0..2 {
        let reply = roundtrip(&estimate_line("qft_8"));
        let expected = direct.estimate(&req).unwrap().to_json().encode();
        assert_eq!(reply, expected);
    }

    let stats = roundtrip(&ControlFrame::Stats.to_json().encode());
    assert!(stats.contains("\"requests\":{\"estimate\":2,"), "{stats}");
    assert!(stats.contains("\"cache_hits\":1"), "{stats}");

    let ack = roundtrip(&ControlFrame::Shutdown.to_json().encode());
    assert!(ack.contains("\"op\":\"shutdown\""), "{ack}");

    let out = child.wait_with_output().expect("daemon exits");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn stdio_daemon_exits_cleanly_on_pipe_close() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_leqa"))
        .args(["serve", "--stdio"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("daemon starts");
    let mut stdin = child.stdin.take().expect("piped stdin");
    writeln!(stdin, "{}", estimate_line("qft_8")).unwrap();
    drop(stdin); // EOF: the supervisor hung up.
    let out = child.wait_with_output().expect("daemon exits");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"op\":\"estimate\""));
}

#[test]
fn serve_without_a_transport_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_leqa"))
        .arg("serve")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--stdio or --listen"));
}

/// Spawns a `leqa` daemon-style subcommand with `--listen 127.0.0.1:0`
/// plus `extra` flags and parses the announced address from its stdout.
fn spawn_listener(subcommand: &str, extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_leqa"))
        .args([subcommand, "--listen", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon starts");
    let mut line = String::new();
    BufReader::new(child.stdout.as_mut().expect("piped stdout"))
        .read_line(&mut line)
        .expect("announcement line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .expect("announcement format")
        .to_string();
    (child, addr)
}

fn spawn_tcp_daemon() -> (Child, String) {
    spawn_listener("serve", &[])
}

#[test]
fn tcp_daemon_serves_the_bundled_client_and_shuts_down() {
    let (child, addr) = spawn_tcp_daemon();

    let out = Command::new(env!("CARGO_BIN_EXE_leqa-client"))
        .args([
            addr.as_str(),
            &estimate_line("qft_8"),
            &ControlFrame::Stats.to_json().encode(),
        ])
        .output()
        .expect("client runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let replies = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = replies.lines().collect();
    assert_eq!(lines.len(), 2, "{replies}");
    assert!(lines[0].starts_with("{\"schema_version\":1,\"op\":\"estimate\""));
    assert!(lines[1].starts_with("{\"schema_version\":1,\"op\":\"stats\""));

    // An error reply maps to the client's exit code (usage 2 here).
    let out = Command::new(env!("CARGO_BIN_EXE_leqa-client"))
        .args([addr.as_str(), &estimate_line("no-such-bench")])
        .output()
        .expect("client runs");
    assert_eq!(out.status.code(), Some(2));

    let out = Command::new(env!("CARGO_BIN_EXE_leqa-client"))
        .args([addr.as_str(), &ControlFrame::Shutdown.to_json().encode()])
        .output()
        .expect("client runs");
    assert!(out.status.success());

    let out = child.wait_with_output().expect("daemon exits");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// One line-mode roundtrip on a raw TCP connection.
struct RawClient {
    reader: BufReader<std::net::TcpStream>,
    writer: std::net::TcpStream,
}

impl RawClient {
    fn connect(addr: &str) -> RawClient {
        let stream = std::net::TcpStream::connect(addr).expect("connect");
        RawClient {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn roundtrip(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").expect("write");
        self.writer.flush().expect("flush");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read");
        reply.trim_end_matches('\n').to_string()
    }
}

fn daemon_stats(probe: &mut RawClient) -> StatsResponse {
    let reply = probe.roundtrip(&ControlFrame::Stats.to_json().encode());
    StatsResponse::from_json(&json::parse(&reply).expect("stats json")).expect("stats frame")
}

/// Regression for the retry satellite: with `--retries 0` the client
/// exits 9 on the first `overloaded` refusal (the old behaviour); with
/// retries enabled it backs off and succeeds once the load drains. The
/// refusal window is held open deterministically by a FIFO-gated hog.
#[test]
#[cfg(unix)]
fn client_retries_overloaded_refusals_until_the_load_drains() {
    let (child, addr) = spawn_listener("serve", &["--max-inflight", "1"]);

    let dir = std::env::temp_dir().join(format!("leqa-client-retry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let fifo = dir.join("gate.qc");
    let status = Command::new("mkfifo").arg(&fifo).status().expect("mkfifo");
    assert!(status.success(), "mkfifo failed");

    // The hog blocks inside its program load (reading the FIFO), holding
    // the single inflight slot.
    let hog_line = Request::Estimate(EstimateRequest::new(ProgramSpec::path(
        fifo.to_str().expect("utf8 path"),
    )))
    .to_json()
    .encode();
    let hog_addr = addr.clone();
    let hog = std::thread::spawn(move || RawClient::connect(&hog_addr).roundtrip(&hog_line));

    let mut probe = RawClient::connect(&addr);
    while daemon_stats(&mut probe).inflight < 1 {
        std::thread::yield_now();
    }

    // Old behaviour, still reachable: first refusal is fatal.
    let out = Command::new(env!("CARGO_BIN_EXE_leqa-client"))
        .args(["--retries", "0", addr.as_str(), &estimate_line("qft_8")])
        .output()
        .expect("client runs");
    assert_eq!(out.status.code(), Some(9), "no-retry client exits 9");
    let baseline = daemon_stats(&mut probe).overloaded;

    // Retrying client: spawn it, *prove* it was refused at least once,
    // then release the gate so a later retry lands.
    let retrying = Command::new(env!("CARGO_BIN_EXE_leqa-client"))
        .args(["--retries", "12", addr.as_str(), &estimate_line("qft_8")])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("client starts");
    while daemon_stats(&mut probe).overloaded <= baseline {
        std::thread::yield_now();
    }
    std::fs::write(&fifo, ".qubits 2\ncnot 0 1\nh 0\n").expect("feed the fifo");

    let hog_reply = hog.join().expect("hog client");
    assert!(hog_reply.contains("\"op\":\"estimate\""), "{hog_reply}");
    let out = retrying.wait_with_output().expect("client exits");
    assert!(
        out.status.success(),
        "retrying client: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("\"op\":\"estimate\""),
        "retried reply printed"
    );

    let ack = probe.roundtrip(&ControlFrame::Shutdown.to_json().encode());
    assert!(ack.contains("\"op\":\"shutdown\""), "{ack}");
    let out = child.wait_with_output().expect("daemon exits");
    assert!(out.status.success());
    let _ = std::fs::remove_dir_all(&dir);
}

/// End-to-end tentpole smoke: a 2-replica `leqa shard` front-end serving
/// the pipelined frame-mode client, replies printed in input order and
/// unique-program replies byte-identical to a direct session.
#[test]
fn shard_serves_the_pipelined_client_end_to_end() {
    let (child, addr) = spawn_listener("shard", &["--replicas", "2"]);

    let lines = [
        estimate_line("qft_8"),
        estimate_line("qft_16"),
        estimate_line("8bitadder"),
        estimate_line("qft_8"),
        estimate_line("qft_24"),
    ];
    let out = Command::new(env!("CARGO_BIN_EXE_leqa-client"))
        .args(["--pipeline", "8", addr.as_str()])
        .args(&lines)
        .output()
        .expect("client runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let replies: Vec<&str> = stdout.lines().collect();
    assert_eq!(replies.len(), lines.len(), "{stdout}");

    // Input order is preserved even though completion is out of order;
    // unique programs must be byte-identical to a direct session. The
    // repeated qft_8 raced its first send through the pipeline, so it
    // may be the cold or the warm rendering — both are pinned.
    let direct = Session::builder().build().unwrap();
    let bytes = |name: &str| {
        direct
            .estimate(&EstimateRequest::new(ProgramSpec::bench(name)))
            .unwrap()
            .to_json()
            .encode()
    };
    let qft8_cold = bytes("qft_8");
    assert_eq!(replies[0], qft8_cold);
    assert_eq!(replies[1], bytes("qft_16"));
    assert_eq!(replies[2], bytes("8bitadder"));
    let qft8_warm = bytes("qft_8");
    assert!(
        replies[3] == qft8_warm || replies[3] == qft8_cold,
        "{}",
        replies[3]
    );
    assert_eq!(replies[4], bytes("qft_24"));

    // Merged stats across replicas account for all five estimates.
    let mut probe = RawClient::connect(&addr);
    let stats = daemon_stats(&mut probe);
    assert_eq!(stats.estimate, 5);

    let ack = probe.roundtrip(&ControlFrame::Shutdown.to_json().encode());
    assert!(ack.contains("\"op\":\"shutdown\""), "{ack}");
    let out = child.wait_with_output().expect("shard exits");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Retry satellite, transport path: against a daemon whose replies are
/// dropped by a deterministic fault plan, the retrying client reconnects
/// and converges with correct bytes; with retries disabled the same
/// fault is fatal with the `io` exit code (the give-up path).
#[test]
fn client_rides_out_chaotic_connection_drops_and_gives_up_without_retries() {
    let (child, addr) = spawn_listener("serve", &["--chaos", "seed=5,drop=0.4"]);

    let lines = [
        estimate_line("qft_8"),
        estimate_line("qft_16"),
        estimate_line("8bitadder"),
        estimate_line("qft_8"),
        estimate_line("qft_16"),
        estimate_line("8bitadder"),
    ];
    let out = Command::new(env!("CARGO_BIN_EXE_leqa-client"))
        .args(["--retries", "30", "--deadline-ms", "3000", addr.as_str()])
        .args(&lines)
        .output()
        .expect("client runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let replies: Vec<&str> = stdout.lines().collect();
    assert_eq!(replies.len(), lines.len(), "{stdout}");

    // A dropped reply still warmed the daemon's cache, so a retried
    // request may legitimately see the warm rendering: pin cold-or-warm.
    let direct = Session::builder().build().unwrap();
    for (i, name) in [
        "qft_8",
        "qft_16",
        "8bitadder",
        "qft_8",
        "qft_16",
        "8bitadder",
    ]
    .iter()
    .enumerate()
    {
        let req = EstimateRequest::new(ProgramSpec::bench(*name));
        let cold = direct.estimate(&req).unwrap().to_json().encode();
        let warm = direct.estimate(&req).unwrap().to_json().encode();
        assert!(
            replies[i] == cold || replies[i] == warm,
            "request {i}: {}",
            replies[i]
        );
    }

    // Give-up path: with every reply dropped and no retry budget, the
    // transport failure surfaces as exit 3 (`io`).
    let (mut drop_all, drop_addr) = spawn_listener("serve", &["--chaos", "seed=5,drop=1.0"]);
    let out = Command::new(env!("CARGO_BIN_EXE_leqa-client"))
        .args([
            "--retries",
            "0",
            drop_addr.as_str(),
            &estimate_line("qft_8"),
        ])
        .output()
        .expect("client runs");
    assert_eq!(out.status.code(), Some(3), "no-retry client exits io");

    // Both daemons drop every shutdown ack too; reap them directly.
    drop_all.kill().expect("kill drop-all daemon");
    let mut chaotic = child;
    let out = Command::new(env!("CARGO_BIN_EXE_leqa-client"))
        .args([
            "--retries",
            "30",
            "--deadline-ms",
            "3000",
            addr.as_str(),
            &ControlFrame::Shutdown.to_json().encode(),
        ])
        .output()
        .expect("client runs");
    if !out.status.success() {
        chaotic.kill().expect("kill chaotic daemon");
    }
    let _ = chaotic.wait();
    let _ = drop_all.wait();
}

/// Retry satellite, `unavailable` path: a shard whose only replica is a
/// dead attached address answers every request with the retryable
/// `unavailable` kind; after the retry budget is spent the client exits
/// with its stable code 11 (the give-up path).
#[test]
fn client_gives_up_on_a_dead_fleet_with_the_unavailable_exit_code() {
    // Port 9 (discard) on loopback is a dead replica: nothing listens.
    let (mut child, addr) = spawn_listener("shard", &["--attach", "127.0.0.1:9"]);

    let out = Command::new(env!("CARGO_BIN_EXE_leqa-client"))
        .args([
            "--retries",
            "2",
            "--deadline-ms",
            "2000",
            addr.as_str(),
            &estimate_line("qft_8"),
        ])
        .output()
        .expect("client runs");
    assert_eq!(out.status.code(), Some(11), "unavailable after retries");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"kind\":\"unavailable\""), "{stdout}");

    // The fleet is dead, so a shutdown broadcast cannot ack; reap it.
    child.kill().expect("kill shard");
    let _ = child.wait();
}

/// Warm-restart acceptance: a daemon restarted with the same
/// `--cache-dir` serves previously-seen programs from the snapshot
/// store (`store_hits > 0`, `profile_builds == 0`), and a deliberately
/// corrupted snapshot is detected and recomputed without crashing.
#[test]
fn daemon_restarts_warm_from_the_cache_dir_and_survives_corruption() {
    let dir = std::env::temp_dir().join(format!("leqa-serve-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_flag = dir.to_str().expect("utf8 path").to_string();
    let run_once = || -> (String, StatsResponse) {
        let (child, addr) = spawn_listener("serve", &["--cache-dir", &dir_flag]);
        let mut probe = RawClient::connect(&addr);
        let reply = probe.roundtrip(&estimate_line("qft_8"));
        let stats = daemon_stats(&mut probe);
        let ack = probe.roundtrip(&ControlFrame::Shutdown.to_json().encode());
        assert!(ack.contains("\"op\":\"shutdown\""), "{ack}");
        assert!(child
            .wait_with_output()
            .expect("daemon exits")
            .status
            .success());
        (reply, stats)
    };

    // Cold: the profile is built and snapshotted.
    let (cold_reply, cold_stats) = run_once();
    assert!(cold_reply.contains("\"op\":\"estimate\""), "{cold_reply}");
    assert_eq!(cold_stats.cache.profile_builds, 1, "{cold_stats:?}");
    assert_eq!(cold_stats.store_misses, 1, "{cold_stats:?}");

    // Warm restart: served from the store, no profile pass at all.
    let (warm_reply, warm_stats) = run_once();
    assert_eq!(warm_reply, cold_reply, "byte-identical across restart");
    assert_eq!(warm_stats.cache.profile_builds, 0, "{warm_stats:?}");
    assert!(warm_stats.store_hits > 0, "{warm_stats:?}");

    // Corrupt every snapshot byte-flip-style: the store must reject the
    // damage and the daemon must recompute, never crash or serve junk.
    let mut corrupted = 0;
    for entry in std::fs::read_dir(&dir).expect("store dir") {
        let path = entry.expect("dir entry").path();
        let mut bytes = std::fs::read(&path).expect("snapshot bytes");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("rewrite snapshot");
        corrupted += 1;
    }
    assert!(corrupted > 0, "the store should hold at least one snapshot");

    let (fixed_reply, fixed_stats) = run_once();
    assert_eq!(fixed_reply, cold_reply, "recomputed reply is identical");
    assert_eq!(fixed_stats.cache.profile_builds, 1, "{fixed_stats:?}");
    assert_eq!(fixed_stats.store_misses, 1, "{fixed_stats:?}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shard_without_replicas_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_leqa"))
        .args(["shard", "--listen", "127.0.0.1:0"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--replicas"));
}
