//! Process-level integration tests of the `leqa` binary: real argv, real
//! exit codes, real stdout/stderr.

use std::process::Command;

fn leqa(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_leqa"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn help_exits_zero_with_usage() {
    let out = leqa(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("USAGE"));
}

#[test]
fn unknown_command_exits_nonzero_with_usage_on_stderr() {
    let out = leqa(&["bogus"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown command"));
    assert!(err.contains("USAGE"));
}

#[test]
fn estimate_bench_end_to_end() {
    let out = leqa(&["estimate", "--bench", "8bitadder"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("estimated latency"));
}

#[test]
fn estimate_from_file_end_to_end() {
    let dir = std::env::temp_dir().join("leqa-cli-proc-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tiny.qc");
    std::fs::write(&path, ".qubits 2\ncnot 0 1\nh 0\n").unwrap();
    let out = leqa(&["compare", path.to_str().unwrap(), "--fabric", "8x8"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("absolute error"));
}

#[test]
fn missing_file_reports_io_error() {
    let out = leqa(&["estimate", "/nonexistent/path.qc"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("io error"));
}

#[test]
fn exit_codes_follow_the_error_taxonomy() {
    // Stable per-kind codes (API.md): usage 2, io 3, estimate 6, map 7.
    assert_eq!(leqa(&["bogus"]).status.code(), Some(2));
    assert_eq!(
        leqa(&["estimate", "/nonexistent/path.qc"]).status.code(),
        Some(3)
    );
    assert_eq!(
        leqa(&["estimate", "--bench", "ham15", "--fabric", "5x5"])
            .status
            .code(),
        Some(6)
    );
    assert_eq!(
        leqa(&["map", "--bench", "ham15", "--fabric", "5x5"])
            .status
            .code(),
        Some(7)
    );
}

#[test]
fn json_format_end_to_end() {
    let out = leqa(&["estimate", "--bench", "qft_8", "--format", "json"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.starts_with("{\"schema_version\":1,"));
    let doc = leqa_api::json::parse(text.trim_end()).expect("valid json on stdout");
    let resp = leqa_api::EstimateResponse::from_json(&doc).expect("valid estimate envelope");
    assert_eq!(resp.program.label, "qft_8");
    assert!(resp.latency_us > 0.0);
}

#[test]
fn gen_pipes_reparseable_text() {
    let out = leqa(&["gen", "--bench", "hwb15ps"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.starts_with(".name hwb15ps"));
    assert!(leqa_circuit::parser::parse(&text).is_ok());
}

#[test]
fn oversized_program_reports_mapping_error() {
    let out = leqa(&["map", "--bench", "ham15", "--fabric", "5x5"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("cannot be placed"));
}

#[test]
fn experiment_end_to_end_with_stable_exit_codes() {
    let dir = std::env::temp_dir().join("leqa-cli-proc-experiment");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = dir.join("grid.json");
    std::fs::write(
        &spec,
        r#"{"schema_version":1,"op":"experiment",
            "workloads":["qft_8"],"fabrics":[10,20]}"#,
    )
    .unwrap();
    let spec = spec.to_str().unwrap();

    // Dry run prints the plan and succeeds.
    let out = leqa(&["experiment", "--spec", spec, "--dry-run"]);
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("2 cells"));

    // A real run streams NDJSON: 2 cell records + 1 summary record.
    let out = leqa(&["experiment", "--spec", spec, "--format", "json"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3);
    assert!(lines[0].contains("\"op\":\"experiment_cell\""));
    assert!(lines[2].contains("\"op\":\"experiment_summary\""));

    // Stable exit codes: usage 2 (missing --spec / unknown workload),
    // io 3 (unreadable spec), invalid 5 (empty axis), json 8 (bad json).
    assert_eq!(leqa(&["experiment"]).status.code(), Some(2));
    assert_eq!(
        leqa(&["experiment", "--spec", "/nonexistent/spec.json"])
            .status
            .code(),
        Some(3)
    );
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{oops").unwrap();
    assert_eq!(
        leqa(&["experiment", "--spec", bad.to_str().unwrap()])
            .status
            .code(),
        Some(8)
    );
    let unknown = dir.join("unknown.json");
    std::fs::write(
        &unknown,
        r#"{"schema_version":1,"op":"experiment","workloads":["frob"],"fabrics":[10]}"#,
    )
    .unwrap();
    assert_eq!(
        leqa(&["experiment", "--spec", unknown.to_str().unwrap()])
            .status
            .code(),
        Some(2)
    );
    let empty = dir.join("empty.json");
    std::fs::write(
        &empty,
        r#"{"schema_version":1,"op":"experiment","workloads":["qft_8"],"fabrics":[]}"#,
    )
    .unwrap();
    assert_eq!(
        leqa(&["experiment", "--spec", empty.to_str().unwrap()])
            .status
            .code(),
        Some(5)
    );
}
