//! Golden-file tests: `--format json` output is byte-stable.
//!
//! The JSON envelopes are part of the service contract — object key
//! order is fixed, floats use shortest-round-trip formatting — so the
//! exact bytes for a fixed request must never drift silently. If an
//! intentional schema change lands, regenerate with e.g.
//!
//! ```text
//! cargo run -p leqa-cli --release -- estimate --bench 8bitadder --format json \
//!     > crates/cli/tests/golden/estimate_8bitadder.json
//! ```
//!
//! and bump `SCHEMA_VERSION` if the shape (not just values) changed.

fn run(args: &[&str]) -> String {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    leqa_cli::run(&argv, &mut out).expect("command succeeds");
    String::from_utf8(out).expect("utf8 output")
}

fn assert_golden(actual: &str, golden: &str, name: &str) {
    if actual != golden {
        let mismatch = actual
            .bytes()
            .zip(golden.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| actual.len().min(golden.len()));
        panic!(
            "{name}: output drifted from the golden file at byte {mismatch}\n\
             actual:  …{}…\n\
             golden:  …{}…",
            &actual[mismatch.saturating_sub(40)..(mismatch + 40).min(actual.len())],
            &golden[mismatch.saturating_sub(40)..(mismatch + 40).min(golden.len())],
        );
    }
}

#[test]
fn estimate_json_is_byte_stable() {
    assert_golden(
        &run(&["estimate", "--bench", "8bitadder", "--format", "json"]),
        include_str!("golden/estimate_8bitadder.json"),
        "estimate",
    );
}

#[test]
fn sweep_json_is_byte_stable() {
    assert_golden(
        &run(&[
            "sweep",
            "--bench",
            "8bitadder",
            "--sizes",
            "10,20,60",
            "--format",
            "json",
        ]),
        include_str!("golden/sweep_8bitadder.json"),
        "sweep",
    );
}

#[test]
fn zones_json_is_byte_stable() {
    assert_golden(
        &run(&[
            "zones",
            "--bench",
            "8bitadder",
            "--trace",
            "5",
            "--format",
            "json",
        ]),
        include_str!("golden/zones_8bitadder.json"),
        "zones",
    );
}

#[test]
fn golden_files_decode_under_the_current_schema() {
    // The stored bytes must themselves be valid, current-version envelopes
    // (guards against committing a stale golden after a schema bump).
    let est = leqa_api::json::parse(include_str!("golden/estimate_8bitadder.json").trim_end())
        .expect("golden estimate parses");
    leqa_api::EstimateResponse::from_json(&est).expect("golden estimate decodes");

    let sweep = leqa_api::json::parse(include_str!("golden/sweep_8bitadder.json").trim_end())
        .expect("golden sweep parses");
    leqa_api::SweepResponse::from_json(&sweep).expect("golden sweep decodes");

    let zones = leqa_api::json::parse(include_str!("golden/zones_8bitadder.json").trim_end())
        .expect("golden zones parses");
    leqa_api::ZonesResponse::from_json(&zones).expect("golden zones decodes");
}
