//! The `leqa` command-line tool. All logic lives in [`leqa_cli`]; this
//! binary only collects arguments and maps the unified error taxonomy to
//! the stable exit codes documented in API.md (usage 2, io 3, parse 4,
//! invalid 5, estimate 6, map 7, json 8, overloaded 9, internal 70).

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    match leqa_cli::run(&argv, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            if err.kind() == leqa_cli::ErrorKind::Usage {
                eprintln!("\n{}", leqa_cli::USAGE);
            }
            ExitCode::from(err.exit_code())
        }
    }
}
