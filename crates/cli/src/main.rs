//! The `leqa` command-line tool. All logic lives in [`leqa_cli`]; this
//! binary only collects arguments and maps errors to exit codes.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    match leqa_cli::run(&argv, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            if matches!(err, leqa_cli::CliError::Usage(_)) {
                eprintln!("\n{}", leqa_cli::USAGE);
            }
            ExitCode::FAILURE
        }
    }
}
