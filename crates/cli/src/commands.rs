//! Subcommand implementations: thin adapters over [`leqa_api`].
//!
//! Every command follows the same shape — resolve the [`Options`] into an
//! API request, run it through a [`Session`], and emit either the
//! machine-readable JSON envelope (`--format json`) or the text rendering
//! from [`leqa_api::render`]. No command touches the estimator or mapper
//! engines directly; the façade is the single entry point.

pub mod compare;
pub mod dot;
pub mod estimate;
pub mod experiment;
pub mod fabric;
pub mod gen;
pub mod map;
pub mod serve;
pub mod shard;
pub mod suite;
pub mod sweep;
pub mod zones;

use std::io::Write;

use leqa::EstimatorOptions;
use leqa_api::{json::Json, ProgramSpec, Session};

use crate::{CliError, Options, OutputFormat};

/// The program spec the options name: a file path if given, otherwise the
/// `--bench` workload.
pub(crate) fn program_spec(opts: &Options) -> ProgramSpec {
    match &opts.input {
        Some(path) => ProgramSpec::path(path),
        None => ProgramSpec::bench(opts.bench.as_deref().expect("parser enforced input")),
    }
}

/// Builds the session the options describe (fabric, terms, rounding).
pub(crate) fn session(opts: &Options) -> Result<Session, CliError> {
    let mut builder = Session::builder()
        .fabric(opts.fabric)
        .options(EstimatorOptions {
            max_esq_terms: opts.terms,
            zone_rounding: opts.rounding,
            update_critical_path: true,
        });
    if let Some(dir) = &opts.cache_dir {
        builder = builder.cache_dir(dir);
    }
    if let Some(ops) = opts.streaming_threshold {
        builder = builder.streaming_threshold(ops);
    }
    builder.build()
}

/// Writes either the JSON envelope (with a trailing newline) or the text
/// rendering, per `--format`.
pub(crate) fn emit(
    out: &mut dyn Write,
    format: OutputFormat,
    json: impl FnOnce() -> Json,
    text: impl FnOnce() -> String,
) -> Result<(), CliError> {
    match format {
        OutputFormat::Json => {
            out.write_all(json().encode().as_bytes())?;
            out.write_all(b"\n")?;
        }
        OutputFormat::Text => out.write_all(text().as_bytes())?,
    }
    Ok(())
}

#[cfg(test)]
pub(crate) mod test_util {
    use crate::Options;

    /// Options pointing at a suite benchmark.
    pub fn bench_opts(name: &str) -> Options {
        Options {
            bench: Some(name.to_string()),
            ..Default::default()
        }
    }

    /// Runs a command into a string.
    pub fn capture(
        f: impl FnOnce(&mut dyn std::io::Write) -> Result<(), crate::CliError>,
    ) -> String {
        let mut out = Vec::new();
        f(&mut out).expect("command succeeds");
        String::from_utf8(out).expect("utf8 output")
    }
}
