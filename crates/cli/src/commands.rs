//! Subcommand implementations.
//!
//! Each command takes resolved [`Options`](crate::Options) and a writer,
//! so the whole surface is testable without a process boundary.

pub mod compare;
pub mod dot;
pub mod estimate;
pub mod gen;
pub mod map;
pub mod suite;
pub mod sweep;
pub mod zones;

use std::io::Write;

use leqa_circuit::{decompose::lower_to_ft, parser, Qodg};

use crate::{CliError, Options};

/// Loads the circuit named by the options: a text file if `input` is set,
/// otherwise a suite benchmark via `--bench`.
pub(crate) fn load_qodg(opts: &Options) -> Result<(String, Qodg), CliError> {
    let (label, circuit) = if let Some(path) = &opts.input {
        let text = std::fs::read_to_string(path)?;
        let circuit = parser::parse(&text)?;
        (circuit.name().unwrap_or(path.as_str()).to_string(), circuit)
    } else {
        let name = opts.bench.as_deref().expect("parser enforced input");
        let bench = leqa_workloads::Benchmark::by_name(name).ok_or_else(|| {
            CliError::Usage(format!(
                "unknown benchmark `{name}`; names follow Table 3 (e.g. gf2^16mult)"
            ))
        })?;
        (name.to_string(), bench.circuit())
    };
    let ft = lower_to_ft(&circuit)?;
    Ok((label, Qodg::from_ft_circuit(&ft)))
}

/// Writes the standard program header line.
pub(crate) fn header(
    out: &mut dyn Write,
    label: &str,
    qodg: &Qodg,
    opts: &Options,
) -> Result<(), CliError> {
    writeln!(
        out,
        "{label}: {} logical qubits, {} FT ops on a {}x{} fabric",
        qodg.num_qubits(),
        qodg.op_count(),
        opts.fabric.width(),
        opts.fabric.height()
    )?;
    Ok(())
}

#[cfg(test)]
pub(crate) mod test_util {
    use crate::Options;

    /// Options pointing at a suite benchmark.
    pub fn bench_opts(name: &str) -> Options {
        Options {
            bench: Some(name.to_string()),
            ..Default::default()
        }
    }

    /// Runs a command into a string.
    pub fn capture(
        f: impl FnOnce(&mut dyn std::io::Write) -> Result<(), crate::CliError>,
    ) -> String {
        let mut out = Vec::new();
        f(&mut out).expect("command succeeds");
        String::from_utf8(out).expect("utf8 output")
    }
}
