//! Library backing the `leqa` command-line tool.
//!
//! The binary is a thin wrapper around [`run`]; every subcommand is a
//! thin adapter over the [`leqa_api`] session façade (build a request,
//! execute, render), so the CLI, JSON output and any future server share
//! one code path. Output is written to a caller-supplied
//! [`std::io::Write`], never directly to stdout.
//!
//! ```text
//! leqa estimate <circuit.qc> [--fabric AxB] [--terms N] [--rounding ceil|floor|round]
//! leqa map      <circuit.qc> [--fabric AxB] [--placement cluster|rowmajor|random] [--router xy|yx|adaptive] [--trace N]
//! leqa compare  <circuit.qc> | --bench NAME  [--fabric AxB]
//! leqa suite    [--filter SUBSTR] [--fabric AxB]
//! leqa sweep    <circuit.qc> --sizes 20,40,60 [...]
//! leqa gen      --bench NAME
//! leqa experiment --spec FILE.json [--dry-run]
//! leqa serve      (--stdio | --listen ADDR) [--max-connections N] [--max-inflight N]
//! ```
//!
//! Every subcommand accepts `--format json|text`; JSON output is one
//! versioned envelope per invocation (`experiment` streams NDJSON
//! records instead; schema in `API.md`). Failures exit
//! with the stable per-kind codes of
//! [`LeqaError::exit_code`](leqa_api::LeqaError::exit_code).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

use std::io::Write;

pub use args::{CliError, Command, Options, OutputFormat};
pub use leqa_api::{ErrorKind, LeqaError};

/// Usage text printed by `leqa help` and on argument errors.
pub const USAGE: &str = "\
leqa — latency estimation for quantum algorithms (DAC'13 reproduction)

USAGE:
  leqa estimate <circuit.qc> [--fabric AxB] [--terms N] [--rounding ceil|floor|round] [--streaming-threshold N]
  leqa map      <circuit.qc> [--fabric AxB] [--placement cluster|rowmajor|random] [--router xy|yx|adaptive] [--scheduler greedy|mobility] [--passes SPEC] [--trace N]
  leqa compare  (<circuit.qc> | --bench NAME) [--fabric AxB]
  leqa suite    [--filter SUBSTR] [--fabric AxB]
  leqa sweep    <circuit.qc> --sizes 20,40,60 [--fabric ignored]
  leqa gen      --bench NAME
  leqa dot      (<circuit.qc> | --bench NAME) [--graph qodg|iig]
  leqa zones    (<circuit.qc> | --bench NAME) [--trace N]
  leqa experiment --spec FILE.json [--dry-run]
  leqa serve    (--stdio | --listen ADDR) [--max-connections N] [--max-inflight N]
  leqa shard    --listen ADDR (--replicas N | --attach ADDR1,ADDR2) [serve caps]
  leqa fabric   [--fabric AxB] [--mask FILE.json | --density D [--seed N]]
  leqa help

Every command also accepts `--format json|text` (default text); JSON
output is one versioned envelope per invocation — except `experiment`,
which streams NDJSON (one record per grid cell, then a summary record).
See API.md for the schema and the exit-code table.

`experiment` runs a declarative design-space grid: the spec file
declares workloads × fabric sizes × physical-parameter variants ×
router/movement variants, with per-axis filters and a result selector
(see the Experiments section of API.md and examples/experiment_small.json).
`--dry-run` validates the spec and prints the expanded cell count.
With `\"mode\": \"montecarlo\"` the spec sweeps a defect-density grid
over seeded random fabrics and reports per-density routability with
confidence intervals plus the critical (percolation) density — see
examples/experiment_montecarlo.json.

`map --scheduler mobility` swaps the greedy ready-queue engine for the
slack-ordered mobility scheduler; `--passes SPEC` runs a pre-placement
pass pipeline over the lowered gate graph (`dce` dead-gate elimination,
`partition:K` region-based placement — comma-separated, grammar in
API.md). The experiment spec accepts the same knobs as a `schedulers`
axis and a top-level `passes` string.

`fabric` renders a fabric's defect map: an ASCII floor plan (`.` live
cell, `X` dead cell, `-`/`|` live channels with gaps for dead ones)
or a JSON inventory. `--mask FILE` loads an explicit mask (grammar in
WORKLOADS.md); `--density D` draws seeded random defects over
`--fabric`.

`serve` keeps one session resident and speaks newline-delimited JSON
over stdin/stdout (`--stdio`) or TCP (`--listen 127.0.0.1:PORT`; port 0
lets the OS pick — the bound address is announced as `listening on
ADDR`). Caps are optional (0 = unlimited); over-cap work is refused
with an `overloaded` error frame (exit/error code 9). Operators steer
the daemon with `{\"cmd\":\"stats\"}` and `{\"cmd\":\"shutdown\"}`
lines; the full wire reference is SERVER.md. A TCP connection can
upgrade to the `frame1` binary protocol (length-prefixed tagged frames,
pipelined out-of-order completion) with `{\"cmd\":\"upgrade\",
\"proto\":\"frame1\"}`. `leqa-client ADDR [LINE...]` is a minimal TCP
client for smoke tests (`--pipeline DEPTH` drives the frame protocol).

`shard` serves the same wire protocols from one listener backed by N
daemon replicas (spawned in-process with `--replicas N`, and/or
already-running daemons via `--attach`). Work routes by a content hash
of the program for cache affinity; `stats` merges across replicas;
replicas that drop out are failed over automatically.

`estimate --bench shor_N` at cryptographic scale streams: above
`--streaming-threshold` ops (default 1,000,000) the profile and critical
path are computed from the gate stream in bounded memory, bit-identical
to the materialized pipeline (see the streaming section of PERF.md).

Circuits use the line-based text format shared by LEQA and QSPR
(`.qubits N`, then one gate per line: h/t/tdg/s/sdg/x/y/z/cnot/toffoli/
fredkin/mct/mcf). `--bench` accepts the Table 3 names (e.g. gf2^16mult)
and parametric generators (e.g. qft_64). Fabric defaults to the paper's
60x60; physical parameters are Table 1's ion-trap/[[7,1,3]] values.
";

/// Parses `argv` (without the program name) and executes the command,
/// writing output to `out`.
///
/// # Errors
///
/// Returns [`LeqaError`] for bad arguments, unreadable files, parse
/// failures, or programs that do not fit the fabric. The caller maps the
/// error kind to an exit code via [`LeqaError::exit_code`].
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let command = args::parse(argv)?;
    match command {
        Command::Help => {
            out.write_all(USAGE.as_bytes()).map_err(CliError::from)?;
            Ok(())
        }
        Command::Estimate(opts) => commands::estimate::run(&opts, out),
        Command::Map(opts) => commands::map::run(&opts, out),
        Command::Compare(opts) => commands::compare::run(&opts, out),
        Command::Suite(opts) => commands::suite::run(&opts, out),
        Command::Sweep(opts) => commands::sweep::run(&opts, out),
        Command::Gen(opts) => commands::gen::run(&opts, out),
        Command::Dot(opts, graph) => commands::dot::run(&opts, graph, out),
        Command::Zones(opts) => commands::zones::run(&opts, out),
        Command::Experiment(opts) => commands::experiment::run(&opts, out),
        Command::Serve(opts) => commands::serve::run(&opts, out),
        Command::Shard(opts) => commands::shard::run(&opts, out),
        Command::Fabric(opts) => commands::fabric::run(&opts, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_prints_usage() {
        let mut out = Vec::new();
        run(&["help".to_string()], &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("USAGE"));
        assert!(text.contains("estimate"));
        assert!(text.contains("--format json|text"));
    }

    #[test]
    fn unknown_command_errors() {
        let mut out = Vec::new();
        let err = run(&["frobnicate".to_string()], &mut out).unwrap_err();
        assert!(err.to_string().contains("unknown command"));
        assert_eq!(err.kind(), ErrorKind::Usage);
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn no_command_errors() {
        let mut out = Vec::new();
        assert!(run(&[], &mut out).is_err());
    }
}
