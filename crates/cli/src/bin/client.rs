//! `leqa-client` — a minimal TCP client for the `leqa serve` daemon and
//! the `leqa shard` front-end, used by the CI smoke step and handy for
//! manual poking.
//!
//! ```text
//! leqa-client [FLAGS] ADDR [LINE ...]    # send each LINE, print each reply
//! leqa-client [FLAGS] ADDR -             # pipe stdin lines instead
//!
//! --frame           upgrade to the frame1 binary protocol (serial)
//! --pipeline DEPTH  frame1 with up to DEPTH requests in flight
//! --retries N       retry `overloaded` refusals N times (default 4)
//! ```
//!
//! `--pipeline` implies `--frame`; replies may complete out of order on
//! the wire but are always printed in input order. An `overloaded`
//! refusal is retried with a deterministic attempt-counted backoff
//! (sleep `2^attempt` ms — no wall-clock state on the wire), so a busy
//! daemon sheds load without the client giving up on the first refusal.
//!
//! Exits 0 when every line got a success reply; exit code 3 (`io`) when
//! the connection fails; otherwise the worst error-frame exit code seen
//! after retries (e.g. 9 only when a request stayed `overloaded` through
//! every retry) — so shell pipelines can branch on the taxonomy without
//! parsing JSON.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;

use leqa_api::{
    json, write_frame, ControlFrame, ErrorFrame, ErrorKind, FrameDecoder, FrameProto, UpgradeAck,
};

struct Cli {
    addr: String,
    lines: Vec<String>,
    frame: bool,
    pipeline: usize,
    retries: u32,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: leqa-client [--frame] [--pipeline DEPTH] [--retries N] ADDR [LINE ...] \
         (or `-` to read lines from stdin)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cli = Cli {
        addr: String::new(),
        lines: Vec::new(),
        frame: false,
        pipeline: 1,
        retries: 4,
    };
    let mut it = args.into_iter();
    let mut positionals: Vec<String> = Vec::new();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--frame" => cli.frame = true,
            "--pipeline" => {
                let Some(depth) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    return usage();
                };
                if depth == 0 {
                    return usage();
                }
                cli.frame = true;
                cli.pipeline = depth;
            }
            "--retries" => {
                let Some(n) = it.next().and_then(|v| v.parse::<u32>().ok()) else {
                    return usage();
                };
                cli.retries = n;
            }
            _ => positionals.push(arg),
        }
    }
    let Some((addr, lines)) = positionals.split_first() else {
        return usage();
    };
    cli.addr = addr.clone();
    cli.lines = lines.to_vec();

    match run(&cli) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(3)
        }
    }
}

/// The input lines, with `-` expanded to stdin and blanks dropped.
fn input_lines(lines: &[String]) -> std::io::Result<Vec<String>> {
    let raw: Vec<String> = if lines.len() == 1 && lines[0] == "-" {
        std::io::stdin().lock().lines().collect::<Result<_, _>>()?
    } else {
        lines.to_vec()
    };
    Ok(raw
        .into_iter()
        .map(|l| l.trim().to_string())
        .filter(|l| !l.is_empty())
        .collect())
}

/// The error-frame exit code a reply carries, if it is an error frame;
/// also flags whether it is specifically an `overloaded` refusal.
fn reply_error(reply: &str) -> Option<(u8, bool)> {
    let doc = json::parse(reply.trim_end()).ok()?;
    let frame = ErrorFrame::from_json(&doc).ok()?;
    Some((
        frame.error.exit_code(),
        frame.error.kind() == ErrorKind::Overloaded,
    ))
}

/// Deterministic attempt-counted backoff: `2^attempt` milliseconds. No
/// wall-clock state crosses the wire, so retried traffic stays
/// byte-identical and replayable.
fn backoff(attempt: u32) -> std::time::Duration {
    std::time::Duration::from_millis(1u64 << attempt.min(10))
}

fn run(cli: &Cli) -> std::io::Result<ExitCode> {
    let lines = input_lines(&cli.lines)?;
    if cli.frame {
        run_frames(&cli.addr, &lines, cli.pipeline, cli.retries)
    } else {
        run_lines(&cli.addr, &lines, cli.retries)
    }
}

/// NDJSON mode: strict request/reply alternation, one line at a time.
fn run_lines(addr: &str, lines: &[String], retries: u32) -> std::io::Result<ExitCode> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut worst = 0u8;

    for line in lines {
        let mut attempt = 0u32;
        loop {
            writer.write_all(line.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
            let mut reply = String::new();
            if reader.read_line(&mut reply)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection before replying",
                ));
            }
            match reply_error(&reply) {
                Some((_, true)) if attempt < retries => {
                    std::thread::sleep(backoff(attempt));
                    attempt += 1;
                }
                code => {
                    print!("{reply}");
                    if let Some((exit, _)) = code {
                        worst = worst.max(exit);
                    }
                    break;
                }
            }
        }
    }
    Ok(ExitCode::from(worst))
}

/// `frame1` mode: upgrade, then keep up to `depth` tagged requests in
/// flight (the tag is the input-line index). Replies complete in any
/// order; printing follows input order.
fn run_frames(
    addr: &str,
    lines: &[String],
    depth: usize,
    retries: u32,
) -> std::io::Result<ExitCode> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let upgrade = ControlFrame::Upgrade(FrameProto::Frame1).to_json().encode();
    stream.write_all(upgrade.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let ack = read_ack_line(&mut stream)?;
    json::parse(ack.trim())
        .map_err(|e| std::io::Error::other(e.to_string()))
        .and_then(|doc| {
            UpgradeAck::from_json(&doc).map_err(|e| std::io::Error::other(e.to_string()))
        })?;

    let total = lines.len();
    let mut decoder = FrameDecoder::new();
    let mut results: Vec<Option<String>> = vec![None; total];
    let mut attempts: Vec<u32> = vec![0; total];
    let mut next_send = 0usize;
    let mut next_print = 0usize;
    let mut inflight = 0usize;
    let mut done = 0usize;
    let mut worst = 0u8;

    while done < total {
        while inflight < depth && next_send < total {
            send(&mut stream, next_send, lines)?;
            next_send += 1;
            inflight += 1;
        }
        stream.flush()?;
        let (tag, payload) = read_frame(&mut stream, &mut decoder)?;
        let idx = tag as usize;
        if idx >= total || results[idx].is_some() {
            return Err(std::io::Error::other(format!(
                "server replied with unknown tag {tag}"
            )));
        }
        let reply = String::from_utf8_lossy(&payload).into_owned();
        if let Some((_, true)) = reply_error(&reply) {
            if attempts[idx] < retries {
                std::thread::sleep(backoff(attempts[idx]));
                attempts[idx] += 1;
                send(&mut stream, idx, lines)?;
                stream.flush()?;
                continue;
            }
        }
        results[idx] = Some(reply);
        inflight -= 1;
        done += 1;
        while next_print < total {
            let Some(reply) = &results[next_print] else {
                break;
            };
            println!("{reply}");
            if let Some((exit, _)) = reply_error(reply) {
                worst = worst.max(exit);
            }
            next_print += 1;
        }
    }
    Ok(ExitCode::from(worst))
}

fn send(stream: &mut TcpStream, idx: usize, lines: &[String]) -> std::io::Result<()> {
    write_frame(
        stream,
        u32::try_from(idx).expect("line count fits u32"),
        lines[idx].as_bytes(),
    )
    .map_err(|e| std::io::Error::other(e.to_string()))
}

/// Reads the NDJSON upgrade-ack line byte by byte; a buffered reader
/// here could swallow the start of the frame stream.
fn read_ack_line(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte)? {
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection during the upgrade handshake",
                ))
            }
            _ => {
                if byte[0] == b'\n' {
                    return String::from_utf8(line).map_err(std::io::Error::other);
                }
                line.push(byte[0]);
            }
        }
    }
}

/// Blocks until one complete frame is decoded.
fn read_frame(
    stream: &mut TcpStream,
    decoder: &mut FrameDecoder,
) -> std::io::Result<(u32, Vec<u8>)> {
    let mut buf = [0u8; 16 * 1024];
    loop {
        if let Some(frame) = decoder
            .next()
            .map_err(|fe| std::io::Error::other(fe.error.to_string()))?
        {
            return Ok(frame);
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-stream",
            ));
        }
        decoder.push(&buf[..n]);
    }
}
