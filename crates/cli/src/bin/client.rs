//! `leqa-client` — a minimal TCP client for the `leqa serve` daemon and
//! the `leqa shard` front-end, used by the CI smoke step and handy for
//! manual poking.
//!
//! ```text
//! leqa-client [FLAGS] ADDR [LINE ...]    # send each LINE, print each reply
//! leqa-client [FLAGS] ADDR -             # pipe stdin lines instead
//!
//! --frame           upgrade to the frame1 binary protocol (serial)
//! --pipeline DEPTH  frame1 with up to DEPTH requests in flight
//! --retries N       retry transient failures N times (default 4)
//! --deadline-ms MS  per-attempt reply deadline (default 0 = wait forever)
//! ```
//!
//! `--pipeline` implies `--frame`; replies may complete out of order on
//! the wire but are always printed in input order.
//!
//! Retries cover `overloaded` and `unavailable` error frames and — in
//! NDJSON mode, where the client can reconnect and resend the one line
//! it is waiting on — transient transport failures too: connection
//! resets, refused connects (a replica mid-restart), and expired
//! `--deadline-ms` reply deadlines. Backoff is `2^attempt` milliseconds
//! plus deterministic seeded jitter (SplitMix64 over the line index and
//! attempt — no wall-clock state, so retried traffic is replayable).
//! In frame mode a broken connection is fatal (the pipeline's in-flight
//! state is lost with it), but error-frame retries still apply.
//!
//! Exits 0 when every line got a success reply; exit code 3 (`io`) when
//! the connection fails beyond the retry budget; otherwise the worst
//! error-frame exit code seen after retries (e.g. 11 only when a request
//! stayed `unavailable` through every retry) — so shell pipelines can
//! branch on the taxonomy without parsing JSON.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use leqa_api::{
    json, write_frame, ControlFrame, ErrorFrame, ErrorKind, FrameDecoder, FrameProto, UpgradeAck,
};
use leqa_fabric::SplitMix64;

struct Cli {
    addr: String,
    lines: Vec<String>,
    frame: bool,
    pipeline: usize,
    retries: u32,
    deadline_ms: u64,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: leqa-client [--frame] [--pipeline DEPTH] [--retries N] [--deadline-ms MS] \
         ADDR [LINE ...] (or `-` to read lines from stdin)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cli = Cli {
        addr: String::new(),
        lines: Vec::new(),
        frame: false,
        pipeline: 1,
        retries: 4,
        deadline_ms: 0,
    };
    let mut it = args.into_iter();
    let mut positionals: Vec<String> = Vec::new();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--frame" => cli.frame = true,
            "--pipeline" => {
                let Some(depth) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    return usage();
                };
                if depth == 0 {
                    return usage();
                }
                cli.frame = true;
                cli.pipeline = depth;
            }
            "--retries" => {
                let Some(n) = it.next().and_then(|v| v.parse::<u32>().ok()) else {
                    return usage();
                };
                cli.retries = n;
            }
            "--deadline-ms" => {
                let Some(ms) = it.next().and_then(|v| v.parse::<u64>().ok()) else {
                    return usage();
                };
                cli.deadline_ms = ms;
            }
            _ => positionals.push(arg),
        }
    }
    let Some((addr, lines)) = positionals.split_first() else {
        return usage();
    };
    cli.addr = addr.clone();
    cli.lines = lines.to_vec();

    match run(&cli) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(3)
        }
    }
}

/// The input lines, with `-` expanded to stdin and blanks dropped.
fn input_lines(lines: &[String]) -> std::io::Result<Vec<String>> {
    let raw: Vec<String> = if lines.len() == 1 && lines[0] == "-" {
        std::io::stdin().lock().lines().collect::<Result<_, _>>()?
    } else {
        lines.to_vec()
    };
    Ok(raw
        .into_iter()
        .map(|l| l.trim().to_string())
        .filter(|l| !l.is_empty())
        .collect())
}

/// The error-frame exit code a reply carries, if it is an error frame;
/// also flags whether the kind is retryable (`overloaded`, or
/// `unavailable` — a fleet mid-restart).
fn reply_error(reply: &str) -> Option<(u8, bool)> {
    let doc = json::parse(reply.trim_end()).ok()?;
    let frame = ErrorFrame::from_json(&doc).ok()?;
    let retryable = matches!(
        frame.error.kind(),
        ErrorKind::Overloaded | ErrorKind::Unavailable
    );
    Some((frame.error.exit_code(), retryable))
}

/// Deterministic backoff: `2^attempt` milliseconds plus seeded jitter
/// drawn from SplitMix64 over (line index, attempt). No wall-clock
/// state crosses the wire, so retried traffic stays byte-identical and
/// replayable, while the jitter de-synchronizes clients that share a
/// fault window.
fn backoff(idx: usize, attempt: u32) -> Duration {
    let base = 1u64 << attempt.min(10);
    let word = ((idx as u64) << 32) | u64::from(attempt);
    let jitter = (SplitMix64::new(SplitMix64::mix(0x1ea4_c11e, word)).next_f64() * 4.0) as u64;
    Duration::from_millis(base + jitter)
}

/// Whether an I/O failure is worth a reconnect-and-retry: resets and
/// refusals (a replica mid-restart), torn lines, corrupt (non-UTF-8)
/// replies, and expired reply deadlines.
fn transient(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::InvalidData
    )
}

fn run(cli: &Cli) -> std::io::Result<ExitCode> {
    let lines = input_lines(&cli.lines)?;
    if cli.frame {
        run_frames(
            &cli.addr,
            &lines,
            cli.pipeline,
            cli.retries,
            cli.deadline_ms,
        )
    } else {
        run_lines(&cli.addr, &lines, cli.retries, cli.deadline_ms)
    }
}

/// NDJSON mode: strict request/reply alternation, one line at a time,
/// reconnecting across transient transport failures.
fn run_lines(
    addr: &str,
    lines: &[String],
    retries: u32,
    deadline_ms: u64,
) -> std::io::Result<ExitCode> {
    let mut conn: Option<BufReader<TcpStream>> = None;
    let mut worst = 0u8;

    for (idx, line) in lines.iter().enumerate() {
        let mut attempt = 0u32;
        let reply = loop {
            match attempt_line(&mut conn, addr, line, deadline_ms) {
                Ok(reply) => match reply_error(&reply) {
                    Some((_, true)) if attempt < retries => {
                        std::thread::sleep(backoff(idx, attempt));
                        attempt += 1;
                    }
                    _ => break reply,
                },
                Err(e) if transient(&e) && attempt < retries => {
                    conn = None;
                    std::thread::sleep(backoff(idx, attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        };
        print!("{reply}");
        if let Some((exit, _)) = reply_error(&reply) {
            worst = worst.max(exit);
        }
    }
    Ok(ExitCode::from(worst))
}

/// One NDJSON attempt: connect if needed, send the line, read one reply
/// line. With a deadline the socket polls in short ticks and the whole
/// read is bounded; an expired deadline surfaces as `TimedOut` (which
/// [`transient`] treats as retryable).
fn attempt_line(
    conn: &mut Option<BufReader<TcpStream>>,
    addr: &str,
    line: &str,
    deadline_ms: u64,
) -> std::io::Result<String> {
    // Take the connection out; it only goes back once the attempt ends
    // with the stream in a reusable (reply-boundary) state.
    let mut reader = match conn.take() {
        Some(reader) => reader,
        None => {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            if deadline_ms > 0 {
                stream.set_read_timeout(Some(Duration::from_millis(deadline_ms.clamp(1, 50))))?;
            }
            BufReader::new(stream)
        }
    };
    let stream = reader.get_mut();
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;

    if deadline_ms == 0 {
        let mut reply = String::new();
        // A line without its trailing newline is a torn reply (the
        // server died mid-write) — retryable, never printed.
        if reader.read_line(&mut reply)? == 0 || !reply.ends_with('\n') {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            ));
        }
        *conn = Some(reader);
        return Ok(reply);
    }

    // Deadline-bounded byte-by-byte read: a `read_line` could lose a
    // partial line to the timeout error, desynchronizing the stream, so
    // the buffer is kept here and the connection dropped on expiry.
    let start = Instant::now();
    let mut bytes = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        if start.elapsed() >= Duration::from_millis(deadline_ms) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                format!("no reply within the {deadline_ms} ms deadline"),
            ));
        }
        match reader.read(&mut byte) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection before replying",
                ));
            }
            Ok(_) => {
                bytes.push(byte[0]);
                if byte[0] == b'\n' {
                    let reply = String::from_utf8(bytes).map_err(|_| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            "reply is not valid UTF-8",
                        )
                    })?;
                    *conn = Some(reader);
                    return Ok(reply);
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// `frame1` mode: upgrade, then keep up to `depth` tagged requests in
/// flight (the tag is the input-line index). Replies complete in any
/// order; printing follows input order.
fn run_frames(
    addr: &str,
    lines: &[String],
    depth: usize,
    retries: u32,
    deadline_ms: u64,
) -> std::io::Result<ExitCode> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    if deadline_ms > 0 {
        stream.set_read_timeout(Some(Duration::from_millis(deadline_ms)))?;
    }
    let upgrade = ControlFrame::Upgrade(FrameProto::Frame1).to_json().encode();
    stream.write_all(upgrade.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let ack = read_ack_line(&mut stream)?;
    json::parse(ack.trim())
        .map_err(|e| std::io::Error::other(e.to_string()))
        .and_then(|doc| {
            UpgradeAck::from_json(&doc).map_err(|e| std::io::Error::other(e.to_string()))
        })?;

    let total = lines.len();
    let mut decoder = FrameDecoder::new();
    let mut results: Vec<Option<String>> = vec![None; total];
    let mut attempts: Vec<u32> = vec![0; total];
    let mut next_send = 0usize;
    let mut next_print = 0usize;
    let mut inflight = 0usize;
    let mut done = 0usize;
    let mut worst = 0u8;

    while done < total {
        while inflight < depth && next_send < total {
            send(&mut stream, next_send, lines)?;
            next_send += 1;
            inflight += 1;
        }
        stream.flush()?;
        let (tag, payload) = read_frame(&mut stream, &mut decoder)?;
        let idx = tag as usize;
        if idx >= total || results[idx].is_some() {
            return Err(std::io::Error::other(format!(
                "server replied with unknown tag {tag}"
            )));
        }
        let reply = String::from_utf8_lossy(&payload).into_owned();
        if let Some((_, true)) = reply_error(&reply) {
            if attempts[idx] < retries {
                std::thread::sleep(backoff(idx, attempts[idx]));
                attempts[idx] += 1;
                send(&mut stream, idx, lines)?;
                stream.flush()?;
                continue;
            }
        }
        results[idx] = Some(reply);
        inflight -= 1;
        done += 1;
        while next_print < total {
            let Some(reply) = &results[next_print] else {
                break;
            };
            println!("{reply}");
            if let Some((exit, _)) = reply_error(reply) {
                worst = worst.max(exit);
            }
            next_print += 1;
        }
    }
    Ok(ExitCode::from(worst))
}

fn send(stream: &mut TcpStream, idx: usize, lines: &[String]) -> std::io::Result<()> {
    write_frame(
        stream,
        u32::try_from(idx).expect("line count fits u32"),
        lines[idx].as_bytes(),
    )
    .map_err(|e| std::io::Error::other(e.to_string()))
}

/// Reads the NDJSON upgrade-ack line byte by byte; a buffered reader
/// here could swallow the start of the frame stream.
fn read_ack_line(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte)? {
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection during the upgrade handshake",
                ))
            }
            _ => {
                if byte[0] == b'\n' {
                    return String::from_utf8(line).map_err(std::io::Error::other);
                }
                line.push(byte[0]);
            }
        }
    }
}

/// Blocks until one complete frame is decoded. With `--deadline-ms` the
/// socket read timeout turns a stalled reply into a `TimedOut` error
/// (fatal here: a frame pipeline cannot resynchronize mid-stream).
fn read_frame(
    stream: &mut TcpStream,
    decoder: &mut FrameDecoder,
) -> std::io::Result<(u32, Vec<u8>)> {
    let mut buf = [0u8; 16 * 1024];
    loop {
        if let Some(frame) = decoder
            .next()
            .map_err(|fe| std::io::Error::other(fe.error.to_string()))?
        {
            return Ok(frame);
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-stream",
            ));
        }
        decoder.push(&buf[..n]);
    }
}
