//! `leqa-client` — a minimal line-oriented TCP client for the `leqa
//! serve` daemon, used by the CI smoke step and handy for manual poking.
//!
//! ```text
//! leqa-client ADDR [LINE ...]    # send each LINE, print each reply line
//! leqa-client ADDR -             # pipe stdin lines instead
//! ```
//!
//! Exits 0 when every line got a reply; exit code 3 (`io`) when the
//! connection fails; exit code 9 (`overloaded`) when any reply is an
//! `overloaded` error frame, and the error frame's own code for other
//! error replies — so shell pipelines can branch on the taxonomy
//! without parsing JSON.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;

use leqa_api::{json, ErrorFrame};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((addr, lines)) = args.split_first() else {
        eprintln!("usage: leqa-client ADDR [LINE ...] (or `-` to read lines from stdin)");
        return ExitCode::from(2);
    };
    match run(addr, lines) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(3)
        }
    }
}

/// Sends each line and prints each reply; returns the worst error-frame
/// exit code seen (0 when every reply was a success envelope).
fn run(addr: &str, lines: &[String]) -> std::io::Result<ExitCode> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut worst = 0u8;

    let mut roundtrip = |line: &str, reader: &mut BufReader<TcpStream>| -> std::io::Result<()> {
        if line.trim().is_empty() {
            return Ok(());
        }
        writer.write_all(line.trim().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut reply = String::new();
        if reader.read_line(&mut reply)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            ));
        }
        print!("{reply}");
        if let Ok(doc) = json::parse(reply.trim_end()) {
            if let Ok(frame) = ErrorFrame::from_json(&doc) {
                worst = worst.max(frame.error.exit_code());
            }
        }
        Ok(())
    };

    if lines.len() == 1 && lines[0] == "-" {
        for line in std::io::stdin().lock().lines() {
            roundtrip(&line?, &mut reader)?;
        }
    } else {
        for line in lines {
            roundtrip(line, &mut reader)?;
        }
    }
    Ok(ExitCode::from(worst))
}
