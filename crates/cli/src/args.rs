//! Hand-rolled argument parsing (no external dependencies).

use std::error::Error;
use std::fmt;

use leqa::ZoneRounding;
use leqa_fabric::FabricDims;
use qspr::{MovementModel, PlacementStrategy, RouterStrategy};

/// Errors surfaced to the CLI user.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Argument-level problem (unknown flag, missing value, bad syntax).
    Usage(String),
    /// The circuit file could not be read.
    Io(std::io::Error),
    /// The circuit failed to parse or lower.
    Circuit(leqa_circuit::CircuitError),
    /// Estimation failed (e.g. fabric too small).
    Estimate(leqa::EstimateError),
    /// Mapping failed (e.g. fabric too small).
    Map(qspr::MapError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Circuit(e) => write!(f, "circuit error: {e}"),
            CliError::Estimate(e) => write!(f, "estimation error: {e}"),
            CliError::Map(e) => write!(f, "mapping error: {e}"),
        }
    }
}

impl Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}
impl From<leqa_circuit::CircuitError> for CliError {
    fn from(e: leqa_circuit::CircuitError) -> Self {
        CliError::Circuit(e)
    }
}
impl From<leqa::EstimateError> for CliError {
    fn from(e: leqa::EstimateError) -> Self {
        CliError::Estimate(e)
    }
}
impl From<qspr::MapError> for CliError {
    fn from(e: qspr::MapError) -> Self {
        CliError::Map(e)
    }
}

/// Shared options resolved from flags.
#[derive(Debug, Clone)]
pub struct Options {
    /// Circuit file path (None for `--bench`-driven commands).
    pub input: Option<String>,
    /// Named suite benchmark (`--bench`).
    pub bench: Option<String>,
    /// Fabric dimensions (`--fabric AxB`, default 60x60).
    pub fabric: FabricDims,
    /// `E[S_q]` terms (`--terms`, default 20).
    pub terms: usize,
    /// Zone rounding (`--rounding`).
    pub rounding: ZoneRounding,
    /// Mapper placement (`--placement`).
    pub placement: PlacementStrategy,
    /// Mapper routing discipline (`--router`).
    pub router: RouterStrategy,
    /// Mapper movement model (`--movement`).
    pub movement: MovementModel,
    /// Trace rows to print (`--trace N`, 0 = off).
    pub trace: usize,
    /// Suite name filter (`--filter`).
    pub filter: Option<String>,
    /// Fabric sides for `sweep` (`--sizes`).
    pub sizes: Vec<u32>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            input: None,
            bench: None,
            fabric: FabricDims::dac13(),
            terms: 20,
            rounding: ZoneRounding::Ceil,
            placement: PlacementStrategy::IigCluster,
            router: RouterStrategy::Xy,
            movement: MovementModel::HomeBased,
            trace: 0,
            filter: None,
            sizes: Vec::new(),
        }
    }
}

/// A parsed command.
#[derive(Debug)]
pub enum Command {
    /// Print usage.
    Help,
    /// `leqa estimate`.
    Estimate(Options),
    /// `leqa map`.
    Map(Options),
    /// `leqa compare`.
    Compare(Options),
    /// `leqa suite`.
    Suite(Options),
    /// `leqa sweep`.
    Sweep(Options),
    /// `leqa gen`.
    Gen(Options),
    /// `leqa dot`.
    Dot(Options, crate::commands::dot::DotGraph),
    /// `leqa zones`.
    Zones(Options),
}

/// Parses the argument vector (program name excluded).
///
/// # Errors
///
/// Returns [`CliError::Usage`] for unknown commands/flags, missing values
/// or malformed values.
pub fn parse(argv: &[String]) -> Result<Command, CliError> {
    let mut it = argv.iter();
    let command = it
        .next()
        .ok_or_else(|| CliError::Usage("missing command; try `leqa help`".into()))?;

    if command == "help" || command == "--help" || command == "-h" {
        return Ok(Command::Help);
    }

    let mut opts = Options::default();
    let mut graph = crate::commands::dot::DotGraph::Qodg;
    let rest: Vec<&String> = it.collect();
    let mut i = 0;
    while i < rest.len() {
        let arg = rest[i].as_str();
        match arg {
            "--fabric" => {
                opts.fabric = parse_fabric(value(&rest, &mut i, "--fabric")?)?;
            }
            "--terms" => {
                opts.terms = value(&rest, &mut i, "--terms")?
                    .parse()
                    .map_err(|_| CliError::Usage("--terms needs a positive integer".into()))?;
            }
            "--rounding" => {
                opts.rounding = match value(&rest, &mut i, "--rounding")?.as_str() {
                    "ceil" => ZoneRounding::Ceil,
                    "floor" => ZoneRounding::Floor,
                    "round" => ZoneRounding::Round,
                    other => {
                        return Err(CliError::Usage(format!(
                            "unknown rounding `{other}` (ceil|floor|round)"
                        )))
                    }
                };
            }
            "--placement" => {
                opts.placement = match value(&rest, &mut i, "--placement")?.as_str() {
                    "cluster" => PlacementStrategy::IigCluster,
                    "rowmajor" => PlacementStrategy::RowMajor,
                    "random" => PlacementStrategy::Random,
                    other => {
                        return Err(CliError::Usage(format!(
                            "unknown placement `{other}` (cluster|rowmajor|random)"
                        )))
                    }
                };
            }
            "--router" => {
                opts.router = match value(&rest, &mut i, "--router")?.as_str() {
                    "xy" => RouterStrategy::Xy,
                    "yx" => RouterStrategy::Yx,
                    "adaptive" => RouterStrategy::Adaptive,
                    other => {
                        return Err(CliError::Usage(format!(
                            "unknown router `{other}` (xy|yx|adaptive)"
                        )))
                    }
                };
            }
            "--movement" => {
                opts.movement = match value(&rest, &mut i, "--movement")?.as_str() {
                    "home" => MovementModel::HomeBased,
                    "drift" => MovementModel::Drift,
                    other => {
                        return Err(CliError::Usage(format!(
                            "unknown movement model `{other}` (home|drift)"
                        )))
                    }
                };
            }
            "--trace" => {
                opts.trace = value(&rest, &mut i, "--trace")?
                    .parse()
                    .map_err(|_| CliError::Usage("--trace needs a non-negative integer".into()))?;
            }
            "--bench" => {
                opts.bench = Some(value(&rest, &mut i, "--bench")?.clone());
            }
            "--filter" => {
                opts.filter = Some(value(&rest, &mut i, "--filter")?.clone());
            }
            "--graph" => {
                graph = match value(&rest, &mut i, "--graph")?.as_str() {
                    "qodg" => crate::commands::dot::DotGraph::Qodg,
                    "iig" => crate::commands::dot::DotGraph::Iig,
                    other => {
                        return Err(CliError::Usage(format!(
                            "unknown graph `{other}` (qodg|iig)"
                        )))
                    }
                };
            }
            "--sizes" => {
                let list = value(&rest, &mut i, "--sizes")?;
                opts.sizes = list
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<u32>()
                            .map_err(|_| CliError::Usage(format!("bad size `{s}` in --sizes")))
                    })
                    .collect::<Result<_, _>>()?;
            }
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown flag `{flag}`")));
            }
            path => {
                if opts.input.is_some() {
                    return Err(CliError::Usage(format!("unexpected argument `{path}`")));
                }
                opts.input = Some(path.to_string());
            }
        }
        i += 1;
    }

    let need_input = |opts: &Options, what: &str| -> Result<(), CliError> {
        if opts.input.is_none() && opts.bench.is_none() {
            Err(CliError::Usage(format!(
                "`leqa {what}` needs a circuit file or --bench NAME"
            )))
        } else {
            Ok(())
        }
    };

    match command.as_str() {
        "estimate" => {
            need_input(&opts, "estimate")?;
            Ok(Command::Estimate(opts))
        }
        "map" => {
            need_input(&opts, "map")?;
            Ok(Command::Map(opts))
        }
        "compare" => {
            need_input(&opts, "compare")?;
            Ok(Command::Compare(opts))
        }
        "suite" => Ok(Command::Suite(opts)),
        "sweep" => {
            need_input(&opts, "sweep")?;
            if opts.sizes.is_empty() {
                return Err(CliError::Usage(
                    "`leqa sweep` needs --sizes S1,S2,...".into(),
                ));
            }
            Ok(Command::Sweep(opts))
        }
        "gen" => {
            if opts.bench.is_none() {
                return Err(CliError::Usage("`leqa gen` needs --bench NAME".into()));
            }
            Ok(Command::Gen(opts))
        }
        "dot" => {
            need_input(&opts, "dot")?;
            Ok(Command::Dot(opts, graph))
        }
        "zones" => {
            need_input(&opts, "zones")?;
            Ok(Command::Zones(opts))
        }
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`; try `leqa help`"
        ))),
    }
}

fn value<'a>(rest: &[&'a String], i: &mut usize, flag: &str) -> Result<&'a String, CliError> {
    *i += 1;
    rest.get(*i)
        .copied()
        .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
}

fn parse_fabric(spec: &str) -> Result<FabricDims, CliError> {
    let (a, b) = spec
        .split_once(['x', 'X'])
        .ok_or_else(|| CliError::Usage(format!("bad fabric `{spec}`; use AxB")))?;
    let a: u32 = a
        .parse()
        .map_err(|_| CliError::Usage(format!("bad fabric width `{a}`")))?;
    let b: u32 = b
        .parse()
        .map_err(|_| CliError::Usage(format!("bad fabric height `{b}`")))?;
    FabricDims::new(a, b).map_err(|e| CliError::Usage(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_estimate_with_flags() {
        let cmd = parse(&argv(&[
            "estimate",
            "c.qc",
            "--fabric",
            "40x30",
            "--terms",
            "10",
            "--rounding",
            "floor",
        ]))
        .unwrap();
        let Command::Estimate(opts) = cmd else {
            panic!("wrong command");
        };
        assert_eq!(opts.input.as_deref(), Some("c.qc"));
        assert_eq!((opts.fabric.width(), opts.fabric.height()), (40, 30));
        assert_eq!(opts.terms, 10);
        assert_eq!(opts.rounding, ZoneRounding::Floor);
    }

    #[test]
    fn parses_map_placement_and_trace() {
        let cmd = parse(&argv(&[
            "map",
            "c.qc",
            "--placement",
            "random",
            "--trace",
            "5",
        ]))
        .unwrap();
        let Command::Map(opts) = cmd else {
            panic!("wrong command");
        };
        assert_eq!(opts.placement, PlacementStrategy::Random);
        assert_eq!(opts.trace, 5);
    }

    #[test]
    fn compare_accepts_bench_instead_of_file() {
        let cmd = parse(&argv(&["compare", "--bench", "ham15"])).unwrap();
        let Command::Compare(opts) = cmd else {
            panic!("wrong command");
        };
        assert_eq!(opts.bench.as_deref(), Some("ham15"));
    }

    #[test]
    fn sweep_requires_sizes() {
        assert!(parse(&argv(&["sweep", "c.qc"])).is_err());
        let cmd = parse(&argv(&["sweep", "c.qc", "--sizes", "20, 30,40"])).unwrap();
        let Command::Sweep(opts) = cmd else {
            panic!("wrong command");
        };
        assert_eq!(opts.sizes, vec![20, 30, 40]);
    }

    #[test]
    fn gen_requires_bench() {
        assert!(parse(&argv(&["gen"])).is_err());
        assert!(parse(&argv(&["gen", "--bench", "gf2^16mult"])).is_ok());
    }

    #[test]
    fn rejects_bad_fabric() {
        assert!(parse(&argv(&["estimate", "c.qc", "--fabric", "60"])).is_err());
        assert!(parse(&argv(&["estimate", "c.qc", "--fabric", "0x9"])).is_err());
    }

    #[test]
    fn rejects_unknown_flag_and_extra_positional() {
        assert!(parse(&argv(&["estimate", "c.qc", "--wat"])).is_err());
        assert!(parse(&argv(&["estimate", "a.qc", "b.qc"])).is_err());
    }

    #[test]
    fn missing_input_is_an_error() {
        assert!(parse(&argv(&["estimate"])).is_err());
        assert!(parse(&argv(&["map"])).is_err());
    }
}
