//! Hand-rolled argument parsing (no external dependencies).
//!
//! Errors are [`LeqaError`]s from the unified taxonomy in `leqa-api`:
//! argument problems carry [`ErrorKind::Usage`](leqa_api::ErrorKind::Usage)
//! and exit with code 2 (see `API.md` for the full table).

use leqa::ZoneRounding;
use leqa_api::LeqaError;
use leqa_fabric::FabricDims;
use qspr::{MovementModel, PlacementStrategy, RouterStrategy, SchedulerStrategy};

/// The CLI error type: the workspace-wide taxonomy from `leqa-api`.
pub type CliError = LeqaError;

/// Output encoding selected with `--format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Human-readable tables (the default).
    #[default]
    Text,
    /// One machine-readable JSON document (schema in `API.md`).
    Json,
}

/// Shared options resolved from flags.
#[derive(Debug, Clone)]
pub struct Options {
    /// Circuit file path (None for `--bench`-driven commands).
    pub input: Option<String>,
    /// Named suite benchmark (`--bench`).
    pub bench: Option<String>,
    /// Fabric dimensions (`--fabric AxB`, default 60x60).
    pub fabric: FabricDims,
    /// `E[S_q]` terms (`--terms`, default 20).
    pub terms: usize,
    /// Zone rounding (`--rounding`).
    pub rounding: ZoneRounding,
    /// Mapper placement (`--placement`).
    pub placement: PlacementStrategy,
    /// Mapper routing discipline (`--router`).
    pub router: RouterStrategy,
    /// Mapper movement model (`--movement`).
    pub movement: MovementModel,
    /// Mapper scheduling engine (`--scheduler greedy|mobility`).
    pub scheduler: SchedulerStrategy,
    /// Pre-placement pass pipeline (`--passes SPEC`, e.g.
    /// `dce,partition:4`; grammar in `API.md`).
    pub passes: Option<String>,
    /// Trace rows to print (`--trace N`, 0 = off).
    pub trace: usize,
    /// Suite name filter (`--filter`).
    pub filter: Option<String>,
    /// Fabric sides for `sweep` (`--sizes`).
    pub sizes: Vec<u32>,
    /// Output encoding (`--format json|text`).
    pub format: OutputFormat,
    /// Experiment spec file (`--spec FILE`).
    pub spec: Option<String>,
    /// Expand the experiment grid without running it (`--dry-run`).
    pub dry_run: bool,
    /// Serve the NDJSON protocol over stdin/stdout (`--stdio`).
    pub stdio: bool,
    /// Serve the NDJSON protocol over TCP (`--listen ADDR`, e.g.
    /// `127.0.0.1:0` to let the OS pick a port).
    pub listen: Option<String>,
    /// Connection cap for `serve` (`--max-connections N`, 0 = unlimited).
    pub max_connections: u64,
    /// In-flight work-frame cap for `serve` (`--max-inflight N`,
    /// 0 = unlimited).
    pub max_inflight: u64,
    /// In-process daemon replicas for `shard` (`--replicas N`).
    pub replicas: usize,
    /// Already-running daemons for `shard` to route to
    /// (`--attach ADDR1,ADDR2`).
    pub attach: Vec<String>,
    /// Profile snapshot store directory for `serve`/`shard`
    /// (`--cache-dir DIR`): restarts come up warm (see SERVER.md).
    pub cache_dir: Option<String>,
    /// Deterministic fault-injection plan for `serve`/`shard` replicas
    /// (`--chaos SPEC`, e.g. `seed=7,drop=0.05,kill=200`; grammar in
    /// SERVER.md). Testing aid — faults are injected on the wire.
    pub chaos: Option<String>,
    /// Server read-poll interval in ms for `serve`/`shard`
    /// (`--read-poll-ms N`, 0 = default 100ms); also paces the shard's
    /// replica health probes.
    pub read_poll_ms: u64,
    /// Fabric mask file for `fabric` (`--mask FILE`, JSON; see
    /// `WORKLOADS.md`).
    pub mask: Option<String>,
    /// Random defect density for `fabric` (`--density D`, in [0, 1],
    /// applied to cells and channels alike).
    pub density: Option<f64>,
    /// Seed for random defect draws (`--seed N`).
    pub seed: u64,
    /// Op-count threshold above which generator-backed workloads are
    /// estimated through the memory-bounded streaming pipeline
    /// (`--streaming-threshold N`; default 1,000,000 ops — see PERF.md).
    pub streaming_threshold: Option<u64>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            input: None,
            bench: None,
            fabric: FabricDims::dac13(),
            terms: 20,
            rounding: ZoneRounding::Ceil,
            placement: PlacementStrategy::IigCluster,
            router: RouterStrategy::Xy,
            movement: MovementModel::HomeBased,
            scheduler: SchedulerStrategy::Greedy,
            passes: None,
            trace: 0,
            filter: None,
            sizes: Vec::new(),
            format: OutputFormat::Text,
            spec: None,
            dry_run: false,
            stdio: false,
            listen: None,
            max_connections: 0,
            max_inflight: 0,
            replicas: 0,
            attach: Vec::new(),
            cache_dir: None,
            chaos: None,
            read_poll_ms: 0,
            mask: None,
            density: None,
            seed: 0,
            streaming_threshold: None,
        }
    }
}

/// A parsed command.
#[derive(Debug)]
pub enum Command {
    /// Print usage.
    Help,
    /// `leqa estimate`.
    Estimate(Options),
    /// `leqa map`.
    Map(Options),
    /// `leqa compare`.
    Compare(Options),
    /// `leqa suite`.
    Suite(Options),
    /// `leqa sweep`.
    Sweep(Options),
    /// `leqa gen`.
    Gen(Options),
    /// `leqa dot`.
    Dot(Options, crate::commands::dot::DotGraph),
    /// `leqa zones`.
    Zones(Options),
    /// `leqa experiment`.
    Experiment(Options),
    /// `leqa serve`.
    Serve(Options),
    /// `leqa shard`.
    Shard(Options),
    /// `leqa fabric`.
    Fabric(Options),
}

/// Parses the argument vector (program name excluded).
///
/// # Errors
///
/// Returns a usage-kind [`LeqaError`] for unknown commands/flags, missing
/// values or malformed values.
pub fn parse(argv: &[String]) -> Result<Command, CliError> {
    let mut it = argv.iter();
    let command = it
        .next()
        .ok_or_else(|| LeqaError::usage("missing command; try `leqa help`"))?;

    if command == "help" || command == "--help" || command == "-h" {
        return Ok(Command::Help);
    }

    let mut opts = Options::default();
    let mut graph = crate::commands::dot::DotGraph::Qodg;
    let rest: Vec<&String> = it.collect();
    let mut i = 0;
    while i < rest.len() {
        let arg = rest[i].as_str();
        match arg {
            "--fabric" => {
                opts.fabric = parse_fabric(value(&rest, &mut i, "--fabric")?)?;
            }
            "--terms" => {
                opts.terms = value(&rest, &mut i, "--terms")?
                    .parse()
                    .map_err(|_| LeqaError::usage("--terms needs a positive integer"))?;
            }
            "--rounding" => {
                opts.rounding = match value(&rest, &mut i, "--rounding")?.as_str() {
                    "ceil" => ZoneRounding::Ceil,
                    "floor" => ZoneRounding::Floor,
                    "round" => ZoneRounding::Round,
                    other => {
                        return Err(LeqaError::usage(format!(
                            "unknown rounding `{other}` (ceil|floor|round)"
                        )))
                    }
                };
            }
            "--placement" => {
                opts.placement = match value(&rest, &mut i, "--placement")?.as_str() {
                    "cluster" => PlacementStrategy::IigCluster,
                    "rowmajor" => PlacementStrategy::RowMajor,
                    "random" => PlacementStrategy::Random,
                    other => {
                        return Err(LeqaError::usage(format!(
                            "unknown placement `{other}` (cluster|rowmajor|random)"
                        )))
                    }
                };
            }
            "--router" => {
                opts.router = match value(&rest, &mut i, "--router")?.as_str() {
                    "xy" => RouterStrategy::Xy,
                    "yx" => RouterStrategy::Yx,
                    "adaptive" => RouterStrategy::Adaptive,
                    other => {
                        return Err(LeqaError::usage(format!(
                            "unknown router `{other}` (xy|yx|adaptive)"
                        )))
                    }
                };
            }
            "--movement" => {
                opts.movement = match value(&rest, &mut i, "--movement")?.as_str() {
                    "home" => MovementModel::HomeBased,
                    "drift" => MovementModel::Drift,
                    other => {
                        return Err(LeqaError::usage(format!(
                            "unknown movement model `{other}` (home|drift)"
                        )))
                    }
                };
            }
            "--scheduler" => {
                opts.scheduler = match value(&rest, &mut i, "--scheduler")?.as_str() {
                    "greedy" => SchedulerStrategy::Greedy,
                    "mobility" => SchedulerStrategy::Mobility,
                    other => {
                        return Err(LeqaError::usage(format!(
                            "unknown scheduler `{other}` (greedy|mobility)"
                        )))
                    }
                };
            }
            "--passes" => {
                let spec = value(&rest, &mut i, "--passes")?;
                // Validate eagerly so a typo fails before any work runs.
                qspr::PassManager::parse(spec)
                    .map_err(|msg| LeqaError::usage(format!("bad --passes: {msg}")))?;
                opts.passes = Some(spec.clone());
            }
            "--trace" => {
                opts.trace = value(&rest, &mut i, "--trace")?
                    .parse()
                    .map_err(|_| LeqaError::usage("--trace needs a non-negative integer"))?;
            }
            "--bench" => {
                opts.bench = Some(value(&rest, &mut i, "--bench")?.clone());
            }
            "--filter" => {
                opts.filter = Some(value(&rest, &mut i, "--filter")?.clone());
            }
            "--graph" => {
                graph = match value(&rest, &mut i, "--graph")?.as_str() {
                    "qodg" => crate::commands::dot::DotGraph::Qodg,
                    "iig" => crate::commands::dot::DotGraph::Iig,
                    other => {
                        return Err(LeqaError::usage(format!(
                            "unknown graph `{other}` (qodg|iig)"
                        )))
                    }
                };
            }
            "--format" => {
                opts.format = match value(&rest, &mut i, "--format")?.as_str() {
                    "text" => OutputFormat::Text,
                    "json" => OutputFormat::Json,
                    other => {
                        return Err(LeqaError::usage(format!(
                            "unknown format `{other}` (text|json)"
                        )))
                    }
                };
            }
            "--spec" => {
                opts.spec = Some(value(&rest, &mut i, "--spec")?.clone());
            }
            "--dry-run" => {
                opts.dry_run = true;
            }
            "--stdio" => {
                opts.stdio = true;
            }
            "--listen" => {
                opts.listen = Some(value(&rest, &mut i, "--listen")?.clone());
            }
            "--max-connections" => {
                opts.max_connections =
                    value(&rest, &mut i, "--max-connections")?
                        .parse()
                        .map_err(|_| {
                            LeqaError::usage("--max-connections needs a non-negative integer")
                        })?;
            }
            "--max-inflight" => {
                opts.max_inflight = value(&rest, &mut i, "--max-inflight")?
                    .parse()
                    .map_err(|_| LeqaError::usage("--max-inflight needs a non-negative integer"))?;
            }
            "--replicas" => {
                opts.replicas = value(&rest, &mut i, "--replicas")?
                    .parse()
                    .map_err(|_| LeqaError::usage("--replicas needs a non-negative integer"))?;
            }
            "--attach" => {
                let list = value(&rest, &mut i, "--attach")?;
                opts.attach = list
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--cache-dir" => {
                opts.cache_dir = Some(value(&rest, &mut i, "--cache-dir")?.clone());
            }
            "--chaos" => {
                let spec = value(&rest, &mut i, "--chaos")?;
                // Validate eagerly so a typo fails at startup, not when
                // the first fault would fire.
                leqa_api::FaultPlan::parse(spec)?;
                opts.chaos = Some(spec.clone());
            }
            "--read-poll-ms" => {
                opts.read_poll_ms = value(&rest, &mut i, "--read-poll-ms")?
                    .parse()
                    .map_err(|_| LeqaError::usage("--read-poll-ms needs a non-negative integer"))?;
            }
            "--mask" => {
                opts.mask = Some(value(&rest, &mut i, "--mask")?.clone());
            }
            "--density" => {
                let raw = value(&rest, &mut i, "--density")?;
                let d: f64 = raw
                    .parse()
                    .map_err(|_| LeqaError::usage(format!("bad density `{raw}`")))?;
                if !d.is_finite() || !(0.0..=1.0).contains(&d) {
                    return Err(LeqaError::usage("--density must be in [0, 1]"));
                }
                opts.density = Some(d);
            }
            "--seed" => {
                opts.seed = value(&rest, &mut i, "--seed")?
                    .parse()
                    .map_err(|_| LeqaError::usage("--seed needs a non-negative integer"))?;
            }
            "--streaming-threshold" => {
                opts.streaming_threshold = Some(
                    value(&rest, &mut i, "--streaming-threshold")?
                        .parse()
                        .map_err(|_| {
                            LeqaError::usage("--streaming-threshold needs a non-negative integer")
                        })?,
                );
            }
            "--sizes" => {
                let list = value(&rest, &mut i, "--sizes")?;
                opts.sizes = list
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<u32>()
                            .map_err(|_| LeqaError::usage(format!("bad size `{s}` in --sizes")))
                    })
                    .collect::<Result<_, _>>()?;
            }
            flag if flag.starts_with("--") => {
                return Err(LeqaError::usage(format!("unknown flag `{flag}`")));
            }
            path => {
                if opts.input.is_some() {
                    return Err(LeqaError::usage(format!("unexpected argument `{path}`")));
                }
                opts.input = Some(path.to_string());
            }
        }
        i += 1;
    }

    let need_input = |opts: &Options, what: &str| -> Result<(), CliError> {
        if opts.input.is_none() && opts.bench.is_none() {
            Err(LeqaError::usage(format!(
                "`leqa {what}` needs a circuit file or --bench NAME"
            )))
        } else {
            Ok(())
        }
    };

    match command.as_str() {
        "estimate" => {
            need_input(&opts, "estimate")?;
            Ok(Command::Estimate(opts))
        }
        "map" => {
            need_input(&opts, "map")?;
            Ok(Command::Map(opts))
        }
        "compare" => {
            need_input(&opts, "compare")?;
            Ok(Command::Compare(opts))
        }
        "suite" => Ok(Command::Suite(opts)),
        "sweep" => {
            need_input(&opts, "sweep")?;
            if opts.sizes.is_empty() {
                return Err(LeqaError::usage("`leqa sweep` needs --sizes S1,S2,..."));
            }
            Ok(Command::Sweep(opts))
        }
        "gen" => {
            if opts.bench.is_none() {
                return Err(LeqaError::usage("`leqa gen` needs --bench NAME"));
            }
            Ok(Command::Gen(opts))
        }
        "dot" => {
            need_input(&opts, "dot")?;
            Ok(Command::Dot(opts, graph))
        }
        "zones" => {
            need_input(&opts, "zones")?;
            Ok(Command::Zones(opts))
        }
        "experiment" => {
            if opts.spec.is_none() {
                return Err(LeqaError::usage(
                    "`leqa experiment` needs --spec FILE (a JSON scenario; see API.md)",
                ));
            }
            Ok(Command::Experiment(opts))
        }
        "serve" => {
            if opts.stdio == opts.listen.is_some() {
                return Err(LeqaError::usage(
                    "`leqa serve` needs exactly one transport: --stdio or --listen ADDR",
                ));
            }
            Ok(Command::Serve(opts))
        }
        "shard" => {
            if opts.listen.is_none() {
                return Err(LeqaError::usage("`leqa shard` needs --listen ADDR"));
            }
            if opts.replicas == 0 && opts.attach.is_empty() {
                return Err(LeqaError::usage(
                    "`leqa shard` needs replicas: --replicas N and/or --attach ADDR1,ADDR2",
                ));
            }
            Ok(Command::Shard(opts))
        }
        "fabric" => {
            if opts.mask.is_some() && opts.density.is_some() {
                return Err(LeqaError::usage(
                    "`leqa fabric` takes --mask FILE or --density D, not both",
                ));
            }
            Ok(Command::Fabric(opts))
        }
        other => Err(LeqaError::usage(format!(
            "unknown command `{other}`; try `leqa help`"
        ))),
    }
}

fn value<'a>(rest: &[&'a String], i: &mut usize, flag: &str) -> Result<&'a String, CliError> {
    *i += 1;
    rest.get(*i)
        .copied()
        .ok_or_else(|| LeqaError::usage(format!("{flag} needs a value")))
}

fn parse_fabric(spec: &str) -> Result<FabricDims, CliError> {
    let (a, b) = spec
        .split_once(['x', 'X'])
        .ok_or_else(|| LeqaError::usage(format!("bad fabric `{spec}`; use AxB")))?;
    let a: u32 = a
        .parse()
        .map_err(|_| LeqaError::usage(format!("bad fabric width `{a}`")))?;
    let b: u32 = b
        .parse()
        .map_err(|_| LeqaError::usage(format!("bad fabric height `{b}`")))?;
    FabricDims::new(a, b).map_err(|e| LeqaError::usage(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_estimate_with_flags() {
        let cmd = parse(&argv(&[
            "estimate",
            "c.qc",
            "--fabric",
            "40x30",
            "--terms",
            "10",
            "--rounding",
            "floor",
        ]))
        .unwrap();
        let Command::Estimate(opts) = cmd else {
            panic!("wrong command");
        };
        assert_eq!(opts.input.as_deref(), Some("c.qc"));
        assert_eq!((opts.fabric.width(), opts.fabric.height()), (40, 30));
        assert_eq!(opts.terms, 10);
        assert_eq!(opts.rounding, ZoneRounding::Floor);
        assert_eq!(opts.format, OutputFormat::Text);
    }

    #[test]
    fn parses_map_placement_and_trace() {
        let cmd = parse(&argv(&[
            "map",
            "c.qc",
            "--placement",
            "random",
            "--trace",
            "5",
        ]))
        .unwrap();
        let Command::Map(opts) = cmd else {
            panic!("wrong command");
        };
        assert_eq!(opts.placement, PlacementStrategy::Random);
        assert_eq!(opts.trace, 5);
    }

    #[test]
    fn parses_scheduler_and_passes() {
        let cmd = parse(&argv(&[
            "map",
            "c.qc",
            "--scheduler",
            "mobility",
            "--passes",
            "dce,partition:4",
        ]))
        .unwrap();
        let Command::Map(opts) = cmd else {
            panic!("wrong command");
        };
        assert_eq!(opts.scheduler, SchedulerStrategy::Mobility);
        assert_eq!(opts.passes.as_deref(), Some("dce,partition:4"));

        let cmd = parse(&argv(&["map", "c.qc"])).unwrap();
        let Command::Map(opts) = cmd else {
            panic!("wrong command");
        };
        assert_eq!(opts.scheduler, SchedulerStrategy::Greedy);
        assert_eq!(opts.passes, None);

        let err = parse(&argv(&["map", "c.qc", "--scheduler", "eager"])).unwrap_err();
        assert_eq!(err.kind(), leqa_api::ErrorKind::Usage);
        assert!(err.to_string().contains("greedy|mobility"), "{err}");

        let err = parse(&argv(&["map", "c.qc", "--passes", "frobnicate"])).unwrap_err();
        assert_eq!(err.kind(), leqa_api::ErrorKind::Usage);
        assert!(err.to_string().contains("bad --passes"), "{err}");
    }

    #[test]
    fn compare_accepts_bench_instead_of_file() {
        let cmd = parse(&argv(&["compare", "--bench", "ham15"])).unwrap();
        let Command::Compare(opts) = cmd else {
            panic!("wrong command");
        };
        assert_eq!(opts.bench.as_deref(), Some("ham15"));
    }

    #[test]
    fn every_command_accepts_format_json() {
        for args in [
            vec!["estimate", "c.qc", "--format", "json"],
            vec!["map", "c.qc", "--format", "json"],
            vec!["compare", "c.qc", "--format", "json"],
            vec!["suite", "--format", "json"],
            vec!["sweep", "c.qc", "--sizes", "10", "--format", "json"],
            vec!["gen", "--bench", "ham15", "--format", "json"],
            vec!["dot", "c.qc", "--format", "json"],
            vec!["zones", "c.qc", "--format", "json"],
            vec!["experiment", "--spec", "s.json", "--format", "json"],
            vec![
                "shard",
                "--listen",
                "127.0.0.1:0",
                "--replicas",
                "1",
                "--format",
                "json",
            ],
            vec!["fabric", "--density", "0.1", "--format", "json"],
        ] {
            let cmd = parse(&argv(&args)).unwrap();
            let opts = match &cmd {
                Command::Estimate(o)
                | Command::Map(o)
                | Command::Compare(o)
                | Command::Suite(o)
                | Command::Sweep(o)
                | Command::Gen(o)
                | Command::Dot(o, _)
                | Command::Zones(o)
                | Command::Experiment(o)
                | Command::Serve(o)
                | Command::Shard(o)
                | Command::Fabric(o) => o,
                Command::Help => panic!("wrong command"),
            };
            assert_eq!(opts.format, OutputFormat::Json, "{args:?}");
        }
    }

    #[test]
    fn experiment_requires_spec_and_accepts_dry_run() {
        let err = parse(&argv(&["experiment"])).unwrap_err();
        assert_eq!(err.kind(), leqa_api::ErrorKind::Usage);
        assert!(err.to_string().contains("--spec"));

        let cmd = parse(&argv(&["experiment", "--spec", "grid.json", "--dry-run"])).unwrap();
        let Command::Experiment(opts) = cmd else {
            panic!("wrong command");
        };
        assert_eq!(opts.spec.as_deref(), Some("grid.json"));
        assert!(opts.dry_run);
    }

    #[test]
    fn serve_requires_exactly_one_transport() {
        let err = parse(&argv(&["serve"])).unwrap_err();
        assert_eq!(err.kind(), leqa_api::ErrorKind::Usage);
        assert!(err.to_string().contains("--stdio or --listen"));
        assert!(parse(&argv(&["serve", "--stdio", "--listen", "127.0.0.1:0"])).is_err());

        let cmd = parse(&argv(&["serve", "--stdio"])).unwrap();
        let Command::Serve(opts) = cmd else {
            panic!("wrong command");
        };
        assert!(opts.stdio);

        let cmd = parse(&argv(&[
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--max-connections",
            "8",
            "--max-inflight",
            "4",
        ]))
        .unwrap();
        let Command::Serve(opts) = cmd else {
            panic!("wrong command");
        };
        assert_eq!(opts.listen.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(opts.max_connections, 8);
        assert_eq!(opts.max_inflight, 4);

        assert!(parse(&argv(&["serve", "--stdio", "--max-inflight", "lots"])).is_err());
    }

    #[test]
    fn shard_requires_listen_and_replicas_or_attach() {
        let err = parse(&argv(&["shard", "--replicas", "2"])).unwrap_err();
        assert!(err.to_string().contains("--listen"), "{err}");
        let err = parse(&argv(&["shard", "--listen", "127.0.0.1:0"])).unwrap_err();
        assert!(err.to_string().contains("--replicas"), "{err}");

        let cmd = parse(&argv(&[
            "shard",
            "--listen",
            "127.0.0.1:0",
            "--replicas",
            "2",
            "--attach",
            "127.0.0.1:7001, 127.0.0.1:7002",
        ]))
        .unwrap();
        let Command::Shard(opts) = cmd else {
            panic!("wrong command");
        };
        assert_eq!(opts.replicas, 2);
        assert_eq!(opts.attach, vec!["127.0.0.1:7001", "127.0.0.1:7002"]);
    }

    #[test]
    fn serve_parses_robustness_flags_and_rejects_bad_chaos() {
        let cmd = parse(&argv(&[
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--cache-dir",
            "/tmp/leqa-cache",
            "--chaos",
            "seed=7,drop=0.05,kill=200",
            "--read-poll-ms",
            "25",
        ]))
        .unwrap();
        let Command::Serve(opts) = cmd else {
            panic!("wrong command");
        };
        assert_eq!(opts.cache_dir.as_deref(), Some("/tmp/leqa-cache"));
        assert_eq!(opts.chaos.as_deref(), Some("seed=7,drop=0.05,kill=200"));
        assert_eq!(opts.read_poll_ms, 25);

        let err = parse(&argv(&["serve", "--stdio", "--chaos", "drop=2.0"])).unwrap_err();
        assert_eq!(err.kind(), leqa_api::ErrorKind::Usage);
        assert!(parse(&argv(&["serve", "--stdio", "--read-poll-ms", "soon"])).is_err());
    }

    #[test]
    fn fabric_parses_defect_flags_and_rejects_conflicts() {
        let cmd = parse(&argv(&[
            "fabric",
            "--fabric",
            "12x10",
            "--density",
            "0.25",
            "--seed",
            "9",
        ]))
        .unwrap();
        let Command::Fabric(opts) = cmd else {
            panic!("wrong command");
        };
        assert_eq!((opts.fabric.width(), opts.fabric.height()), (12, 10));
        assert_eq!(opts.density, Some(0.25));
        assert_eq!(opts.seed, 9);

        let cmd = parse(&argv(&["fabric", "--mask", "m.json"])).unwrap();
        let Command::Fabric(opts) = cmd else {
            panic!("wrong command");
        };
        assert_eq!(opts.mask.as_deref(), Some("m.json"));

        let err = parse(&argv(&["fabric", "--mask", "m.json", "--density", "0.1"])).unwrap_err();
        assert!(err.to_string().contains("not both"), "{err}");
        assert!(parse(&argv(&["fabric", "--density", "1.5"])).is_err());
        assert!(parse(&argv(&["fabric", "--density", "nan"])).is_err());
        assert!(parse(&argv(&["fabric", "--seed", "-3"])).is_err());
    }

    #[test]
    fn streaming_threshold_parses_and_validates() {
        let cmd = parse(&argv(&[
            "estimate",
            "--bench",
            "shor_1024",
            "--streaming-threshold",
            "500000",
        ]))
        .unwrap();
        let Command::Estimate(opts) = cmd else {
            panic!("wrong command");
        };
        assert_eq!(opts.streaming_threshold, Some(500_000));

        let cmd = parse(&argv(&["estimate", "--bench", "shor_64"])).unwrap();
        let Command::Estimate(opts) = cmd else {
            panic!("wrong command");
        };
        assert_eq!(opts.streaming_threshold, None, "default is the session's");

        assert!(parse(&argv(&[
            "estimate",
            "--bench",
            "shor_64",
            "--streaming-threshold",
            "many"
        ]))
        .is_err());
    }

    #[test]
    fn bad_format_is_a_usage_error() {
        let err = parse(&argv(&["estimate", "c.qc", "--format", "xml"])).unwrap_err();
        assert_eq!(err.kind(), leqa_api::ErrorKind::Usage);
        assert!(err.to_string().contains("unknown format"));
    }

    #[test]
    fn sweep_requires_sizes() {
        assert!(parse(&argv(&["sweep", "c.qc"])).is_err());
        let cmd = parse(&argv(&["sweep", "c.qc", "--sizes", "20, 30,40"])).unwrap();
        let Command::Sweep(opts) = cmd else {
            panic!("wrong command");
        };
        assert_eq!(opts.sizes, vec![20, 30, 40]);
    }

    #[test]
    fn gen_requires_bench() {
        assert!(parse(&argv(&["gen"])).is_err());
        assert!(parse(&argv(&["gen", "--bench", "gf2^16mult"])).is_ok());
    }

    #[test]
    fn rejects_bad_fabric() {
        assert!(parse(&argv(&["estimate", "c.qc", "--fabric", "60"])).is_err());
        assert!(parse(&argv(&["estimate", "c.qc", "--fabric", "0x9"])).is_err());
    }

    #[test]
    fn rejects_unknown_flag_and_extra_positional() {
        assert!(parse(&argv(&["estimate", "c.qc", "--wat"])).is_err());
        assert!(parse(&argv(&["estimate", "a.qc", "b.qc"])).is_err());
    }

    #[test]
    fn missing_input_is_an_error() {
        assert!(parse(&argv(&["estimate"])).is_err());
        assert!(parse(&argv(&["map"])).is_err());
    }
}
