//! `leqa compare` — the Table 2 experiment for one circuit.

use std::io::Write;

use leqa::Estimator;
use leqa_fabric::PhysicalParams;
use qspr::Mapper;

use super::{header, load_qodg};
use crate::{CliError, Options};

/// Runs both tools and prints actual vs estimated latency with the error.
pub fn run(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    let (label, qodg) = load_qodg(opts)?;
    header(out, &label, &qodg, opts)?;

    let params = PhysicalParams::dac13();
    let actual = Mapper::new(opts.fabric, params.clone()).map(&qodg)?;
    let estimate = Estimator::new(opts.fabric, params).estimate(&qodg)?;

    let a = actual.latency.as_secs();
    let e = estimate.latency.as_secs();
    writeln!(out, "actual (QSPR):      {a:.6} s")?;
    writeln!(out, "estimated (LEQA):   {e:.6} s")?;
    if a > 0.0 {
        writeln!(
            out,
            "absolute error:     {:.2} %",
            100.0 * (e - a).abs() / a
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_util::{bench_opts, capture};

    #[test]
    fn compares_both_tools() {
        let opts = bench_opts("hwb15ps");
        let text = capture(|out| run(&opts, out));
        assert!(text.contains("actual (QSPR)"));
        assert!(text.contains("estimated (LEQA)"));
        assert!(text.contains("absolute error"));
    }
}
