//! `leqa compare` — the Table 2 experiment for one circuit.

use std::io::Write;

use leqa_api::{render, CompareRequest};

use super::{emit, program_spec, session};
use crate::{CliError, Options};

/// Runs both tools through the API session and emits actual vs estimated
/// latency with the error.
pub fn run(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    let session = session(opts)?;
    let response = session.compare(&CompareRequest::new(program_spec(opts)))?;
    emit(
        out,
        opts.format,
        || response.to_json(),
        || render::compare_text(&response),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_util::{bench_opts, capture};
    use crate::OutputFormat;

    #[test]
    fn compares_both_tools() {
        let opts = bench_opts("hwb15ps");
        let text = capture(|out| run(&opts, out));
        assert!(text.contains("actual (QSPR)"));
        assert!(text.contains("estimated (LEQA)"));
        assert!(text.contains("absolute error"));
    }

    #[test]
    fn json_format_reports_both_latencies() {
        let opts = Options {
            format: OutputFormat::Json,
            ..bench_opts("8bitadder")
        };
        let text = capture(|out| run(&opts, out));
        let doc = leqa_api::json::parse(text.trim_end()).expect("valid json");
        let response = leqa_api::CompareResponse::from_json(&doc).expect("valid envelope");
        assert!(response.actual_us > 0.0);
        assert!(response.estimated_us > 0.0);
        assert!(response.error_pct.is_some());
    }
}
