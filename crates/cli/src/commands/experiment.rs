//! `leqa experiment` — run a declarative design-space grid from a JSON
//! scenario spec.
//!
//! `--format json` streams NDJSON: one byte-stable record per cell, then
//! one summary record (min/max/argmin latency per workload, cache
//! stats). `--format text` prints a table. `--dry-run` expands and
//! validates the grid, printing only the cell count — the cheap way to
//! check a spec before an expensive run.

use std::io::Write;

use leqa_api::{render, ExperimentRunner, LeqaError as ApiError, ScenarioSpec};

use super::session;
use crate::{CliError, Options, OutputFormat};

/// Reads and decodes the `--spec` file.
fn load_spec(path: &str) -> Result<ScenarioSpec, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(ApiError::from)
        .map_err(|e| e.context(format!("reading experiment spec `{path}`")))?;
    let doc = leqa_api::json::parse(&text)
        .map_err(ApiError::from)
        .map_err(|e| e.context(format!("parsing experiment spec `{path}`")))?;
    ScenarioSpec::from_json(&doc).map_err(|e| e.context(format!("experiment spec `{path}`")))
}

/// Expands the spec against a session built from the shared flags and
/// either prints the plan (`--dry-run`) or streams the run.
pub fn run(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    let path = opts.spec.as_deref().expect("parser enforced --spec");
    let spec = load_spec(path)?;
    let session = session(opts)?;
    let runner = ExperimentRunner::new(&session, &spec)?;

    if opts.dry_run {
        match opts.format {
            OutputFormat::Json => {
                writeln!(out, "{}", runner.plan().to_json().encode())?;
            }
            OutputFormat::Text => {
                writeln!(
                    out,
                    "dry run: {}",
                    render::experiment_plan_text(runner.plan())
                )?;
            }
        }
        return Ok(());
    }

    let select = runner.plan().select;
    if opts.format == OutputFormat::Text {
        out.write_all(render::experiment_header_text(runner.plan()).as_bytes())?;
    }
    let summary = runner.run(&mut |row| {
        match opts.format {
            OutputFormat::Json => {
                writeln!(out, "{}", row.to_json(select).encode()).map_err(ApiError::from)?;
            }
            OutputFormat::Text => {
                out.write_all(render::experiment_cell_text(row).as_bytes())
                    .map_err(ApiError::from)?;
            }
        }
        Ok(())
    })?;
    match opts.format {
        OutputFormat::Json => writeln!(out, "{}", summary.to_json().encode())?,
        OutputFormat::Text => {
            out.write_all(render::experiment_summary_text(&summary).as_bytes())?
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_util::capture;
    use crate::OutputFormat;

    fn write_spec(name: &str, body: &str) -> String {
        let dir = std::env::temp_dir().join("leqa-cli-experiment-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, body).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn spec_opts(path: String) -> Options {
        Options {
            spec: Some(path),
            ..Default::default()
        }
    }

    const SMALL_SPEC: &str = r#"{
        "schema_version": 1,
        "op": "experiment",
        "workloads": ["qft_8", "8bitadder"],
        "fabrics": [{"min": 10, "max": 30, "step": 10}],
        "routers": ["xy", "yx"]
    }"#;

    #[test]
    fn dry_run_prints_the_cell_count() {
        let mut opts = spec_opts(write_spec("dry.json", SMALL_SPEC));
        opts.dry_run = true;
        let text = capture(|out| run(&opts, out));
        assert_eq!(
            text,
            "dry run: 12 cells (2 workloads × 1 params × 2 routers × 1 movements × 1 schedulers × 3 sides), mode estimate\n"
        );

        opts.format = OutputFormat::Json;
        let text = capture(|out| run(&opts, out));
        assert!(
            text.starts_with("{\"schema_version\":1,\"op\":\"experiment_plan\",\"cells\":12,"),
            "{text}"
        );
    }

    #[test]
    fn json_run_streams_rows_and_a_summary() {
        let mut opts = spec_opts(write_spec("run.json", SMALL_SPEC));
        opts.format = OutputFormat::Json;
        let text = capture(|out| run(&opts, out));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 13); // 12 cells + summary
        for row in &lines[..12] {
            assert!(
                row.starts_with("{\"schema_version\":1,\"op\":\"experiment_cell\","),
                "{row}"
            );
        }
        assert!(
            lines[12].starts_with("{\"schema_version\":1,\"op\":\"experiment_summary\","),
            "{}",
            lines[12]
        );
    }

    #[test]
    fn text_run_prints_table_and_summary() {
        let opts = spec_opts(write_spec("text.json", SMALL_SPEC));
        let text = capture(|out| run(&opts, out));
        assert!(text.contains("experiment: 12 cells"));
        assert!(text.contains("qft_8"));
        assert!(text.contains("8bitadder"));
        assert!(text.contains("summary: 12 cells"));
        assert!(text.contains("cache:"));
    }

    #[test]
    fn missing_spec_file_is_an_io_error() {
        let opts = spec_opts("/nonexistent/spec.json".to_string());
        let mut out = Vec::new();
        let err = run(&opts, &mut out).unwrap_err();
        assert_eq!(err.kind(), leqa_api::ErrorKind::Io);
        assert_eq!(err.exit_code(), 3);
    }

    #[test]
    fn malformed_spec_json_is_a_json_error() {
        let opts = spec_opts(write_spec("bad.json", "{not json"));
        let mut out = Vec::new();
        let err = run(&opts, &mut out).unwrap_err();
        assert_eq!(err.kind(), leqa_api::ErrorKind::Json);
        assert_eq!(err.exit_code(), 8);
    }

    #[test]
    fn unknown_workload_is_a_usage_error() {
        let opts = spec_opts(write_spec(
            "unknown.json",
            r#"{"schema_version":1,"op":"experiment","workloads":["frob"],"fabrics":[10]}"#,
        ));
        let mut out = Vec::new();
        let err = run(&opts, &mut out).unwrap_err();
        assert_eq!(err.kind(), leqa_api::ErrorKind::Usage);
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("frob"));
    }

    #[test]
    fn empty_axis_is_an_invalid_error() {
        let opts = spec_opts(write_spec(
            "empty.json",
            r#"{"schema_version":1,"op":"experiment","workloads":[],"fabrics":[10]}"#,
        ));
        let mut out = Vec::new();
        let err = run(&opts, &mut out).unwrap_err();
        assert_eq!(err.kind(), leqa_api::ErrorKind::Invalid);
        assert_eq!(err.exit_code(), 5);
    }
}
