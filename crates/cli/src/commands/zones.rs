//! `leqa zones` — print the per-qubit presence-zone report.

use std::io::Write;

use leqa_api::{render, ZonesRequest};

use super::{emit, program_spec, session};
use crate::{CliError, Options};

/// Emits the per-qubit model quantities (`M_i`, strength, `B_i`,
/// `E[l_ham,i]`, `d_uncong,i`), strongest qubits first. `--trace N`
/// bounds the row count (default 20).
pub fn run(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    let limit = if opts.trace > 0 { opts.trace } else { 20 };
    let session = session(opts)?;
    let response =
        session.zones(&ZonesRequest::new(program_spec(opts)).with_limit(limit as u64))?;
    emit(
        out,
        opts.format,
        || response.to_json(),
        || render::zones_text(&response),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_util::{bench_opts, capture};
    use crate::OutputFormat;

    #[test]
    fn prints_zone_rows() {
        let opts = bench_opts("gf2^16mult");
        let text = capture(|out| run(&opts, out));
        assert!(text.contains("B_i"));
        assert!(text.contains("d_uncong"));
    }

    #[test]
    fn trace_limits_rows() {
        let mut opts = bench_opts("gf2^16mult");
        opts.trace = 2;
        let text = capture(|out| run(&opts, out));
        // header line of the program + table header + 2 rows
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn json_format_carries_rows_and_totals() {
        let mut opts = bench_opts("gf2^16mult");
        opts.trace = 2;
        opts.format = OutputFormat::Json;
        let text = capture(|out| run(&opts, out));
        let doc = leqa_api::json::parse(text.trim_end()).expect("valid json");
        let response = leqa_api::ZonesResponse::from_json(&doc).expect("valid envelope");
        assert_eq!(response.rows.len(), 2);
        assert_eq!(response.total_rows, 48);
        assert!(response.rows[0].strength >= response.rows[1].strength);
    }
}
