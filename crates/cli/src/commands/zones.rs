//! `leqa zones` — print the per-qubit presence-zone report.

use std::io::Write;

use leqa::report::{format_report, zone_report};
use leqa_fabric::PhysicalParams;

use super::{header, load_qodg};
use crate::{CliError, Options};

/// Prints the per-qubit model quantities (`M_i`, strength, `B_i`, `E[l_ham,i]`,
/// `d_uncong,i`), strongest qubits first. `--trace N` bounds the row count
/// (default 20).
pub fn run(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    let (label, qodg) = load_qodg(opts)?;
    header(out, &label, &qodg, opts)?;
    let params = PhysicalParams::dac13();
    let report = zone_report(&qodg, params.qubit_speed());
    let limit = if opts.trace > 0 { opts.trace } else { 20 };
    out.write_all(format_report(&report, limit).as_bytes())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_util::{bench_opts, capture};

    #[test]
    fn prints_zone_rows() {
        let opts = bench_opts("gf2^16mult");
        let text = capture(|out| run(&opts, out));
        assert!(text.contains("B_i"));
        assert!(text.contains("d_uncong"));
    }

    #[test]
    fn trace_limits_rows() {
        let mut opts = bench_opts("gf2^16mult");
        opts.trace = 2;
        let text = capture(|out| run(&opts, out));
        // header line of the program + table header + 2 rows
        assert_eq!(text.lines().count(), 4);
    }
}
