//! `leqa map` — run the detailed mapper and print schedule statistics.

use std::io::Write;

use leqa_api::{render, MapRequest};

use super::{emit, program_spec, session};
use crate::{CliError, Options};

/// Runs the mapper through the API session and emits latency, movement
/// statistics and (with `--trace N`) the N longest-running operations.
pub fn run(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    let session = session(opts)?;
    let mut request = MapRequest::new(program_spec(opts))
        .with_placement(opts.placement)
        .with_router(opts.router)
        .with_movement(opts.movement)
        .with_scheduler(opts.scheduler)
        .with_trace_limit(opts.trace as u64);
    if let Some(spec) = opts.passes.as_deref() {
        request = request.with_passes(spec);
    }
    let response = session.map(&request)?;
    emit(
        out,
        opts.format,
        || response.to_json(),
        || render::map_text(&response),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_util::{bench_opts, capture};
    use crate::OutputFormat;

    #[test]
    fn maps_a_suite_benchmark() {
        let opts = bench_opts("8bitadder");
        let text = capture(|out| run(&opts, out));
        assert!(text.contains("actual latency"));
        assert!(text.contains("CNOTs routed"));
    }

    #[test]
    fn trace_flag_prints_schedule_rows() {
        let mut opts = bench_opts("8bitadder");
        opts.trace = 3;
        let text = capture(|out| run(&opts, out));
        assert!(text.contains("longest-running operations"));
        assert!(text.contains("dist"));
    }

    #[test]
    fn json_format_carries_stats_and_trace() {
        let mut opts = bench_opts("8bitadder");
        opts.trace = 3;
        opts.format = OutputFormat::Json;
        let text = capture(|out| run(&opts, out));
        let doc = leqa_api::json::parse(text.trim_end()).expect("valid json");
        let response = leqa_api::MapResponse::from_json(&doc).expect("valid envelope");
        assert!(response.latency_us > 0.0);
        assert!(response.cnot_ops > 0);
        assert!(response.trace.unwrap().contains("dist"));
    }
}
