//! `leqa map` — run the detailed mapper and print schedule statistics.

use std::io::Write;

use leqa_fabric::PhysicalParams;
use qspr::{Mapper, MapperConfig};

use super::{header, load_qodg};
use crate::{CliError, Options};

/// Runs the mapper and prints latency, movement statistics and (with
/// `--trace N`) the N longest-running operations.
pub fn run(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    let (label, qodg) = load_qodg(opts)?;
    header(out, &label, &qodg, opts)?;

    let mapper = Mapper::with_config(MapperConfig {
        dims: opts.fabric,
        params: PhysicalParams::dac13(),
        placement: opts.placement,
        router: opts.router,
        movement: opts.movement,
        seed: 0,
    });

    let (result, trace) = if opts.trace > 0 {
        let (r, t) = mapper.map_with_trace(&qodg)?;
        (r, Some(t))
    } else {
        (mapper.map(&qodg)?, None)
    };

    writeln!(out, "actual latency:     {:.6} s", result.latency.as_secs())?;
    writeln!(out, "  CNOTs routed:     {}", result.stats.cnot_ops)?;
    writeln!(
        out,
        "  avg CNOT distance:{:.2} hops",
        result.stats.avg_cnot_distance()
    )?;
    writeln!(
        out,
        "  congestion wait:  {:.6} s (summed over qubits)",
        result.stats.congestion_wait.as_secs()
    )?;
    writeln!(
        out,
        "  busiest channel:  {} traversals",
        result.stats.max_channel_load
    )?;
    if let Some(trace) = trace {
        writeln!(out, "\nlongest-running operations:")?;
        out.write_all(trace.summary(opts.trace).as_bytes())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_util::{bench_opts, capture};

    #[test]
    fn maps_a_suite_benchmark() {
        let opts = bench_opts("8bitadder");
        let text = capture(|out| run(&opts, out));
        assert!(text.contains("actual latency"));
        assert!(text.contains("CNOTs routed"));
    }

    #[test]
    fn trace_flag_prints_schedule_rows() {
        let mut opts = bench_opts("8bitadder");
        opts.trace = 3;
        let text = capture(|out| run(&opts, out));
        assert!(text.contains("longest-running operations"));
        assert!(text.contains("dist"));
    }
}
