//! `leqa dot` — export a circuit's QODG or IIG as Graphviz.

use std::io::Write;

use leqa_api::{json::Json, SCHEMA_VERSION};
use leqa_circuit::viz;

use super::{emit, program_spec, session};
use crate::{CliError, Options};

/// Which graph to render.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DotGraph {
    /// The quantum operation dependency graph (Fig. 2b).
    #[default]
    Qodg,
    /// The interaction intensity graph (§3.1).
    Iig,
}

/// Writes the requested graph in DOT syntax (pipe into `dot -Tsvg`).
/// `--format json` wraps the DOT text in a versioned envelope. The IIG
/// comes straight from the session's cached program profile.
pub fn run(opts: &Options, graph: DotGraph, out: &mut dyn Write) -> Result<(), CliError> {
    let session = session(opts)?;
    let handle = session.load(&program_spec(opts))?;
    let (kind, dot) = match graph {
        DotGraph::Qodg => ("qodg", viz::qodg_to_dot(handle.qodg())),
        DotGraph::Iig => ("iig", viz::iig_to_dot(handle.profile_data().iig())),
    };
    emit(
        out,
        opts.format,
        || {
            Json::obj(vec![
                ("schema_version", Json::num(SCHEMA_VERSION as u32)),
                ("op", Json::str("dot")),
                ("label", Json::str(handle.label())),
                ("graph", Json::str(kind)),
                ("dot", Json::str(&dot)),
            ])
        },
        || dot.clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_util::{bench_opts, capture};
    use crate::OutputFormat;

    #[test]
    fn qodg_dot_renders() {
        let opts = bench_opts("8bitadder");
        let text = capture(|out| run(&opts, DotGraph::Qodg, out));
        assert!(text.starts_with("digraph qodg {"));
    }

    #[test]
    fn iig_dot_renders() {
        let opts = bench_opts("8bitadder");
        let text = capture(|out| run(&opts, DotGraph::Iig, out));
        assert!(text.starts_with("graph iig {"));
    }

    #[test]
    fn json_format_wraps_the_dot_text() {
        let mut opts = bench_opts("8bitadder");
        opts.format = OutputFormat::Json;
        let text = capture(|out| run(&opts, DotGraph::Iig, out));
        let doc = leqa_api::json::parse(text.trim_end()).expect("valid json");
        assert_eq!(doc.get("graph").unwrap().as_str(), Some("iig"));
        assert!(doc
            .get("dot")
            .unwrap()
            .as_str()
            .unwrap()
            .starts_with("graph iig {"));
    }
}
