//! `leqa dot` — export a circuit's QODG or IIG as Graphviz.

use std::io::Write;

use leqa_circuit::{viz, Iig};

use super::load_qodg;
use crate::{CliError, Options};

/// Which graph to render.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DotGraph {
    /// The quantum operation dependency graph (Fig. 2b).
    #[default]
    Qodg,
    /// The interaction intensity graph (§3.1).
    Iig,
}

/// Writes the requested graph in DOT syntax (pipe into `dot -Tsvg`).
pub fn run(opts: &Options, graph: DotGraph, out: &mut dyn Write) -> Result<(), CliError> {
    let (_, qodg) = load_qodg(opts)?;
    let dot = match graph {
        DotGraph::Qodg => viz::qodg_to_dot(&qodg),
        DotGraph::Iig => viz::iig_to_dot(&Iig::from_qodg(&qodg)),
    };
    out.write_all(dot.as_bytes())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_util::{bench_opts, capture};

    #[test]
    fn qodg_dot_renders() {
        let opts = bench_opts("8bitadder");
        let text = capture(|out| run(&opts, DotGraph::Qodg, out));
        assert!(text.starts_with("digraph qodg {"));
    }

    #[test]
    fn iig_dot_renders() {
        let opts = bench_opts("8bitadder");
        let text = capture(|out| run(&opts, DotGraph::Iig, out));
        assert!(text.starts_with("graph iig {"));
    }
}
