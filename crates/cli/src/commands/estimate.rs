//! `leqa estimate` — run Algorithm 1 and print the breakdown.

use std::io::Write;

use leqa::{Estimator, EstimatorOptions};
use leqa_fabric::PhysicalParams;

use super::{header, load_qodg};
use crate::{CliError, Options};

/// Runs the estimator and prints the latency with every intermediate.
pub fn run(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    let (label, qodg) = load_qodg(opts)?;
    header(out, &label, &qodg, opts)?;

    let estimator = Estimator::with_options(
        opts.fabric,
        PhysicalParams::dac13(),
        EstimatorOptions {
            max_esq_terms: opts.terms,
            zone_rounding: opts.rounding,
            update_critical_path: true,
        },
    );
    let estimate = estimator.estimate(&qodg)?;

    writeln!(
        out,
        "estimated latency:  {:.6} s",
        estimate.latency.as_secs()
    )?;
    writeln!(
        out,
        "  L_CNOT^avg:       {:.1} µs",
        estimate.l_cnot_avg.as_f64()
    )?;
    writeln!(
        out,
        "  L_g^avg:          {:.1} µs",
        estimate.l_one_qubit_avg.as_f64()
    )?;
    writeln!(
        out,
        "  d_uncong:         {:.1} µs",
        estimate.d_uncong.as_f64()
    )?;
    writeln!(out, "  avg zone area B:  {:.2}", estimate.avg_zone_area)?;
    writeln!(out, "  zone side:        {}", estimate.zone_side)?;
    writeln!(
        out,
        "  critical path:    {} CNOT + {} one-qubit ops",
        estimate.critical.cnot_count,
        estimate.critical.one_qubit_counts.iter().sum::<u64>()
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_util::{bench_opts, capture};

    #[test]
    fn estimates_a_suite_benchmark() {
        let opts = bench_opts("gf2^16mult");
        let text = capture(|out| run(&opts, out));
        assert!(text.contains("estimated latency"));
        assert!(text.contains("L_CNOT^avg"));
        assert!(text.contains("48 logical qubits, 3885 FT ops"));
    }

    #[test]
    fn unknown_benchmark_is_a_usage_error() {
        let opts = bench_opts("nope");
        let mut out = Vec::new();
        assert!(run(&opts, &mut out).is_err());
    }

    #[test]
    fn reads_circuit_from_file() {
        let dir = std::env::temp_dir().join("leqa-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("estimate.qc");
        std::fs::write(&path, ".qubits 3\ntoffoli 0 1 2\ncnot 0 2\n").unwrap();
        let opts = Options {
            input: Some(path.to_string_lossy().into_owned()),
            ..Default::default()
        };
        let text = capture(|out| run(&opts, out));
        assert!(text.contains("3 logical qubits, 16 FT ops"));
    }
}
