//! `leqa estimate` — run Algorithm 1 and print the breakdown.

use std::io::Write;

use leqa_api::{render, EstimateRequest};

use super::{emit, program_spec, session};
use crate::{CliError, Options};

/// Runs the estimator through the API session and emits the latency with
/// every intermediate, as text or JSON.
pub fn run(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    let session = session(opts)?;
    let response = session.estimate(&EstimateRequest::new(program_spec(opts)))?;
    emit(
        out,
        opts.format,
        || response.to_json(),
        || render::estimate_text(&response),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_util::{bench_opts, capture};
    use crate::OutputFormat;

    #[test]
    fn estimates_a_suite_benchmark() {
        let opts = bench_opts("gf2^16mult");
        let text = capture(|out| run(&opts, out));
        assert!(text.contains("estimated latency"));
        assert!(text.contains("L_CNOT^avg"));
        assert!(text.contains("48 logical qubits, 3885 FT ops"));
    }

    #[test]
    fn json_format_emits_the_versioned_envelope() {
        let mut opts = bench_opts("gf2^16mult");
        opts.format = OutputFormat::Json;
        let text = capture(|out| run(&opts, out));
        assert!(text.starts_with("{\"schema_version\":1,\"op\":\"estimate\""));
        let doc = leqa_api::json::parse(text.trim_end()).expect("valid json");
        let response = leqa_api::EstimateResponse::from_json(&doc).expect("valid envelope");
        assert!(response.latency_us > 0.0);
        assert_eq!(response.program.qubits, 48);
    }

    #[test]
    fn unknown_benchmark_is_a_usage_error() {
        let opts = bench_opts("nope");
        let mut out = Vec::new();
        assert!(run(&opts, &mut out).is_err());
    }

    #[test]
    fn reads_circuit_from_file() {
        let dir = std::env::temp_dir().join("leqa-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("estimate.qc");
        std::fs::write(&path, ".qubits 3\ntoffoli 0 1 2\ncnot 0 2\n").unwrap();
        let opts = Options {
            input: Some(path.to_string_lossy().into_owned()),
            ..Default::default()
        };
        let text = capture(|out| run(&opts, out));
        assert!(text.contains("3 logical qubits, 16 FT ops"));
    }
}
