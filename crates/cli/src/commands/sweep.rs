//! `leqa sweep` — estimate one circuit across several fabric sizes.

use std::io::Write;

use leqa_api::{render, SweepRequest};

use super::{emit, program_spec, session};
use crate::{CliError, Options};

/// Estimates the circuit on each `--sizes` square fabric through the API
/// session (which runs the amortised sweep engine — per-size output is
/// bit-identical to an independent `leqa estimate`) and reports the
/// latency-optimal size.
pub fn run(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    let session = session(opts)?;
    let response = session.sweep(&SweepRequest::new(
        program_spec(opts),
        opts.sizes.iter().copied(),
    ))?;
    emit(
        out,
        opts.format,
        || response.to_json(),
        || render::sweep_text(&response),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_util::{bench_opts, capture};
    use crate::OutputFormat;

    #[test]
    fn sweep_reports_optimum() {
        let mut opts = bench_opts("8bitadder");
        opts.sizes = vec![10, 20, 60];
        let text = capture(|out| run(&opts, out));
        assert!(text.contains("optimal:"));
        assert!(text.contains("10x10"));
    }

    #[test]
    fn undersized_fabrics_are_skipped() {
        let mut opts = bench_opts("ham15"); // 146 qubits
        opts.sizes = vec![10, 60];
        let text = capture(|out| run(&opts, out));
        assert!(text.contains("too small"));
        assert!(text.contains("optimal: 60x60"));
    }

    #[test]
    fn json_format_lists_every_point() {
        let mut opts = bench_opts("8bitadder");
        opts.sizes = vec![4, 10, 60];
        opts.format = OutputFormat::Json;
        let text = capture(|out| run(&opts, out));
        let doc = leqa_api::json::parse(text.trim_end()).expect("valid json");
        let response = leqa_api::SweepResponse::from_json(&doc).expect("valid envelope");
        assert_eq!(response.points.len(), 3);
        assert_eq!(response.points[0].latency_us, None); // 4x4 < 24 qubits
        assert_eq!(response.optimal_side, Some(60));
    }
}
