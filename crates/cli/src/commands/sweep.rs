//! `leqa sweep` — estimate one circuit across several fabric sizes.

use std::io::Write;

use leqa::sweep::sweep_fabrics;
use leqa::EstimatorOptions;
use leqa_fabric::{FabricDims, PhysicalParams};

use super::load_qodg;
use crate::{CliError, Options};

/// Estimates the circuit on each `--sizes` square fabric and reports the
/// latency-optimal size (Algorithm 1's stated use case).
///
/// Runs through [`sweep_fabrics`], which builds the program profile once
/// and amortises the per-candidate work — the output per size is
/// bit-identical to an independent `leqa estimate` on that fabric.
pub fn run(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    let (label, qodg) = load_qodg(opts)?;
    writeln!(
        out,
        "{label}: fabric-size sweep ({} qubits, {} ops)",
        qodg.num_qubits(),
        qodg.op_count()
    )?;
    writeln!(
        out,
        "{:>9} {:>12} {:>14}",
        "fabric", "L_CNOT(µs)", "latency(s)"
    )?;

    let params = PhysicalParams::dac13();
    let mut candidates = Vec::with_capacity(opts.sizes.len());
    for &side in &opts.sizes {
        match FabricDims::new(side, side) {
            Ok(d) => candidates.push(d),
            Err(e) => return Err(CliError::Usage(e.to_string())),
        }
    }

    let mut best: Option<(u32, f64)> = None;
    for point in sweep_fabrics(&qodg, &params, EstimatorOptions::default(), candidates) {
        let side = point.dims.width();
        let Some(estimate) = point.estimate else {
            writeln!(out, "{side:>6}x{side:<2} (too small)")?;
            continue;
        };
        let latency = estimate.latency.as_secs();
        writeln!(
            out,
            "{side:>6}x{side:<2} {:>12.1} {:>14.6}",
            estimate.l_cnot_avg.as_f64(),
            latency
        )?;
        if best.is_none_or(|(_, l)| latency < l) {
            best = Some((side, latency));
        }
    }
    if let Some((side, latency)) = best {
        writeln!(out, "optimal: {side}x{side} at {latency:.6} s")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_util::{bench_opts, capture};

    #[test]
    fn sweep_reports_optimum() {
        let mut opts = bench_opts("8bitadder");
        opts.sizes = vec![10, 20, 60];
        let text = capture(|out| run(&opts, out));
        assert!(text.contains("optimal:"));
        assert!(text.contains("10x10"));
    }

    #[test]
    fn undersized_fabrics_are_skipped() {
        let mut opts = bench_opts("ham15"); // 146 qubits
        opts.sizes = vec![10, 60];
        let text = capture(|out| run(&opts, out));
        assert!(text.contains("too small"));
        assert!(text.contains("optimal: 60x60"));
    }
}
