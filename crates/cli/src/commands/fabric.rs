//! `leqa fabric` — render a fabric's defect map and overlays.
//!
//! Three sources, in priority order: `--mask FILE` (a JSON mask, grammar
//! in `WORKLOADS.md`), `--density D` (a seeded random draw over
//! `--fabric`), or neither (the pristine `--fabric`). Text output is an
//! ASCII floor plan — `.` live cell, `X` dead cell, `-`/`|` live
//! channels with gaps where channels are dead; JSON output enumerates
//! the same facts machine-readably.

use std::io::Write;

use leqa_api::{json::Json, FabricMapSpec, LeqaError, SCHEMA_VERSION};
use leqa_fabric::{Channel, FabricMap, Ulb};

use super::emit;
use crate::{CliError, Options};

/// Builds the map the options describe and emits it.
pub fn run(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    let map = build_map(opts)?;
    emit(out, opts.format, || fabric_json(&map), || fabric_text(&map))
}

fn build_map(opts: &Options) -> Result<FabricMap, CliError> {
    if let Some(path) = &opts.mask {
        let text = std::fs::read_to_string(path)
            .map_err(|e| LeqaError::from(e).context(format!("reading mask file `{path}`")))?;
        let doc = leqa_api::json::parse(&text)
            .map_err(|e| LeqaError::from(e).context(format!("parsing mask file `{path}`")))?;
        return FabricMapSpec::from_json(&doc)?.build();
    }
    if let Some(density) = opts.density {
        return FabricMap::with_random_defects(opts.fabric, density, density, opts.seed)
            .map_err(LeqaError::from);
    }
    Ok(FabricMap::pristine(opts.fabric))
}

fn fabric_text(map: &FabricMap) -> String {
    let dims = map.dims();
    let (w, h) = (dims.width(), dims.height());
    let mut out = format!(
        "fabric {w}x{h}: {}/{} cells live ({} dead), {}/{} channels live ({} dead), {} overlays\n",
        map.live_cells(),
        u64::from(w) * u64::from(h),
        map.dead_cells(),
        map.live_channels(),
        map.live_channels() + map.dead_channels(),
        map.dead_channels(),
        map.overlays().len(),
    );
    let channel_open = |a: Ulb, b: Ulb| {
        let channel = Channel::between(a, b).expect("grid neighbours are adjacent");
        map.channel_enabled(channel)
    };
    for y in 0..h {
        // Cell row: cells interleaved with horizontal channels.
        let mut line = String::new();
        for x in 0..w {
            let ulb = Ulb::new(x, y);
            line.push(if map.cell_enabled(ulb) { '.' } else { 'X' });
            if x + 1 < w {
                line.push(' ');
                line.push(if channel_open(ulb, Ulb::new(x + 1, y)) {
                    '-'
                } else {
                    ' '
                });
                line.push(' ');
            }
        }
        out.push_str(line.trim_end());
        out.push('\n');
        // Channel row: vertical channels under each cell column.
        if y + 1 < h {
            let mut line = String::new();
            for x in 0..w {
                line.push(if channel_open(Ulb::new(x, y), Ulb::new(x, y + 1)) {
                    '|'
                } else {
                    ' '
                });
                if x + 1 < w {
                    line.push_str("   ");
                }
            }
            out.push_str(line.trim_end());
            out.push('\n');
        }
    }
    for o in map.overlays() {
        out.push_str(&format!(
            "overlay ({}, {})..({}, {}):",
            o.x0, o.y0, o.x1, o.y1
        ));
        if let Some(t) = o.t_move_us {
            out.push_str(&format!(" t_move {t} us"));
        }
        if let Some(v) = o.qubit_speed {
            out.push_str(&format!(" qubit_speed {v}"));
        }
        if let Some(c) = o.channel_capacity {
            out.push_str(&format!(" channel_capacity {c}"));
        }
        out.push('\n');
    }
    out
}

fn fabric_json(map: &FabricMap) -> Json {
    let dims = map.dims();
    let pair = |ulb: Ulb| Json::Arr(vec![Json::num(ulb.x), Json::num(ulb.y)]);
    let dead_cells: Vec<Json> = (0..dims.height())
        .flat_map(|y| (0..dims.width()).map(move |x| Ulb::new(x, y)))
        .filter(|&ulb| !map.cell_enabled(ulb))
        .map(pair)
        .collect();
    let dead_channels: Vec<Json> = map
        .channels()
        .filter(|&c| !map.channel_enabled(c))
        .map(|c| Json::obj(vec![("from", pair(c.origin())), ("to", pair(c.far_end()))]))
        .collect();
    let overlays: Vec<Json> = map
        .overlays()
        .iter()
        .map(|o| {
            let opt_num = |v: Option<f64>| v.map(Json::Num).unwrap_or(Json::Null);
            Json::obj(vec![
                ("x0", Json::num(o.x0)),
                ("y0", Json::num(o.y0)),
                ("x1", Json::num(o.x1)),
                ("y1", Json::num(o.y1)),
                ("t_move_us", opt_num(o.t_move_us)),
                ("qubit_speed", opt_num(o.qubit_speed)),
                (
                    "channel_capacity",
                    o.channel_capacity.map(Json::num).unwrap_or(Json::Null),
                ),
            ])
        })
        .collect();
    Json::obj(vec![
        ("schema_version", Json::num(SCHEMA_VERSION as u32)),
        ("op", Json::str("fabric")),
        ("width", Json::num(dims.width())),
        ("height", Json::num(dims.height())),
        ("live_cells", Json::num(map.live_cells() as u32)),
        ("dead_cells", Json::Arr(dead_cells)),
        ("live_channels", Json::num(map.live_channels() as u32)),
        ("dead_channels", Json::Arr(dead_channels)),
        ("overlays", Json::Arr(overlays)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_util::capture;
    use crate::OutputFormat;
    use leqa_fabric::FabricDims;

    fn fabric_opts(w: u32, h: u32) -> Options {
        Options {
            fabric: FabricDims::new(w, h).unwrap(),
            ..Default::default()
        }
    }

    #[test]
    fn pristine_fabric_renders_a_full_grid() {
        let opts = fabric_opts(3, 2);
        let text = capture(|out| run(&opts, out));
        assert!(text.starts_with(
            "fabric 3x2: 6/6 cells live (0 dead), 7/7 channels live (0 dead), 0 overlays\n"
        ));
        assert!(text.contains(". - . - .\n|   |   |\n. - . - ."), "{text}");
    }

    #[test]
    fn random_defects_show_as_gaps() {
        let mut opts = fabric_opts(6, 6);
        opts.density = Some(0.5);
        opts.seed = 3;
        let text = capture(|out| run(&opts, out));
        assert!(text.contains('X'), "{text}");
        // Seeded draw: same flags, same picture.
        assert_eq!(text, capture(|out| run(&opts, out)));
    }

    #[test]
    fn mask_file_drives_the_rendering() {
        let dir = std::env::temp_dir().join("leqa-fabric-cmd-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mask.json");
        std::fs::write(
            &path,
            r#"{"width":3,"height":2,"dead_cells":[[1,0]],
                "dead_channels":[{"from":[0,1],"to":[1,1]}],
                "overlays":[{"x0":0,"y0":0,"x1":1,"y1":1,"t_move_us":99}]}"#,
        )
        .unwrap();
        let mut opts = Options {
            mask: Some(path.to_string_lossy().into_owned()),
            ..Default::default()
        };
        let text = capture(|out| run(&opts, out));
        assert!(text.starts_with(
            "fabric 3x2: 5/6 cells live (1 dead), 6/7 channels live (1 dead), 1 overlays\n"
        ));
        assert!(text.contains(". - X - ."), "{text}");
        assert!(text.contains(".   . - ."), "{text}");
        assert!(
            text.contains("overlay (0, 0)..(1, 1): t_move 99 us"),
            "{text}"
        );

        opts.format = OutputFormat::Json;
        let json = capture(|out| run(&opts, out));
        let doc = leqa_api::json::parse(json.trim_end()).unwrap();
        assert_eq!(doc.get("op").unwrap().as_str(), Some("fabric"));
        assert_eq!(doc.get("live_cells").unwrap().as_u64(), Some(5));
        assert_eq!(doc.get("dead_cells").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(doc.get("dead_channels").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(doc.get("overlays").unwrap().as_arr().unwrap().len(), 1);
    }

    #[test]
    fn bad_mask_files_surface_their_context() {
        let opts = Options {
            mask: Some("/nonexistent/mask.json".to_string()),
            ..Default::default()
        };
        let mut out = Vec::new();
        let err = run(&opts, &mut out).unwrap_err();
        assert!(err.to_string().contains("mask file"), "{err}");
    }
}
