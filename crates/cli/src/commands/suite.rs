//! `leqa suite` — run the (optionally filtered) benchmark suite.

use std::io::Write;

use leqa::Estimator;
use leqa_circuit::{decompose::lower_to_ft, Qodg};
use leqa_fabric::PhysicalParams;
use leqa_workloads::SUITE;
use qspr::Mapper;

use crate::{CliError, Options};

/// Runs every matching suite benchmark through both tools and prints one
/// row each, followed by the error summary.
pub fn run(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    let params = PhysicalParams::dac13();
    let mapper = Mapper::new(opts.fabric, params.clone());
    let estimator = Estimator::new(opts.fabric, params);

    writeln!(
        out,
        "{:<16} {:>7} {:>9} {:>12} {:>12} {:>8}",
        "benchmark", "qubits", "ops", "actual(s)", "est.(s)", "err(%)"
    )?;

    let mut errors = Vec::new();
    for bench in SUITE
        .iter()
        .filter(|b| opts.filter.as_deref().is_none_or(|f| b.name.contains(f)))
    {
        let ft = lower_to_ft(&bench.circuit())?;
        let qodg = Qodg::from_ft_circuit(&ft);
        let actual = mapper.map(&qodg)?.latency.as_secs();
        let estimated = estimator.estimate(&qodg)?.latency.as_secs();
        let err = 100.0 * (estimated - actual).abs() / actual;
        errors.push(err);
        writeln!(
            out,
            "{:<16} {:>7} {:>9} {:>12.4} {:>12.4} {:>8.2}",
            bench.name,
            qodg.num_qubits(),
            qodg.op_count(),
            actual,
            estimated,
            err
        )?;
    }

    if errors.is_empty() {
        writeln!(out, "(no benchmark matches the filter)")?;
    } else {
        writeln!(
            out,
            "average error: {:.2}%  max error: {:.2}%",
            errors.iter().sum::<f64>() / errors.len() as f64,
            errors.iter().cloned().fold(0.0, f64::max)
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_util::capture;

    #[test]
    fn filtered_suite_runs_matching_rows() {
        let opts = Options {
            filter: Some("ham15".to_string()),
            ..Default::default()
        };
        let text = capture(|out| run(&opts, out));
        assert!(text.contains("ham15"));
        assert!(!text.contains("gf2^256mult"));
        assert!(text.contains("average error"));
    }

    #[test]
    fn nonmatching_filter_reports_empty() {
        let opts = Options {
            filter: Some("zzz".to_string()),
            ..Default::default()
        };
        let text = capture(|out| run(&opts, out));
        assert!(text.contains("no benchmark matches"));
    }
}
