//! `leqa suite` — run the (optionally filtered) benchmark suite.

use std::io::Write;

use leqa_api::{CompareRequest, ProgramSpec, Request, Response};
use leqa_workloads::SUITE;

use super::{emit, session};
use crate::{CliError, Options};

/// Runs every matching suite benchmark through the API `batch` endpoint
/// (one compare request per benchmark, profiles cached per program) and
/// prints one row each, followed by the error summary. `--format json`
/// emits the whole batch envelope.
pub fn run(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    let requests: Vec<Request> = SUITE
        .iter()
        .filter(|b| opts.filter.as_deref().is_none_or(|f| b.name.contains(f)))
        .map(|b| Request::Compare(CompareRequest::new(ProgramSpec::bench(b.name))))
        .collect();

    let session = session(opts)?;
    let batch = session.batch(&requests);

    emit(
        out,
        opts.format,
        || batch.to_json(),
        || render_rows(&batch.results),
    )
}

fn render_rows(results: &[Result<Response, CliError>]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>7} {:>9} {:>12} {:>12} {:>8}",
        "benchmark", "qubits", "ops", "actual(s)", "est.(s)", "err(%)"
    );

    let mut errors = Vec::new();
    let mut any_rows = false;
    for result in results {
        let row = match result {
            Ok(Response::Compare(row)) => row,
            Ok(_) => {
                let _ = writeln!(out, "(unexpected response kind)");
                continue;
            }
            Err(e) => {
                let _ = writeln!(out, "(request failed: {e})");
                continue;
            }
        };
        any_rows = true;
        let actual = row.actual_us / 1_000_000.0;
        let estimated = row.estimated_us / 1_000_000.0;
        // An unknown error (actual latency 0) renders as `-` and stays
        // out of the average/max statistics.
        let err_col = match row.error_pct {
            Some(err) => {
                errors.push(err);
                format!("{err:>8.2}")
            }
            None => format!("{:>8}", "-"),
        };
        let _ = writeln!(
            out,
            "{:<16} {:>7} {:>9} {:>12.4} {:>12.4} {}",
            row.program.label, row.program.qubits, row.program.ops, actual, estimated, err_col
        );
    }

    if !any_rows && results.is_empty() {
        let _ = writeln!(out, "(no benchmark matches the filter)");
    } else if !errors.is_empty() {
        let _ = writeln!(
            out,
            "average error: {:.2}%  max error: {:.2}%",
            errors.iter().sum::<f64>() / errors.len() as f64,
            errors.iter().cloned().fold(0.0, f64::max)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_util::capture;
    use crate::OutputFormat;

    #[test]
    fn filtered_suite_runs_matching_rows() {
        let opts = Options {
            filter: Some("ham15".to_string()),
            ..Default::default()
        };
        let text = capture(|out| run(&opts, out));
        assert!(text.contains("ham15"));
        assert!(!text.contains("gf2^256mult"));
        assert!(text.contains("average error"));
    }

    #[test]
    fn nonmatching_filter_reports_empty() {
        let opts = Options {
            filter: Some("zzz".to_string()),
            ..Default::default()
        };
        let text = capture(|out| run(&opts, out));
        assert!(text.contains("no benchmark matches"));
    }

    #[test]
    fn json_format_emits_a_batch_envelope() {
        let opts = Options {
            filter: Some("8bitadder".to_string()),
            format: OutputFormat::Json,
            ..Default::default()
        };
        let text = capture(|out| run(&opts, out));
        let doc = leqa_api::json::parse(text.trim_end()).expect("valid json");
        let batch = leqa_api::BatchResponse::from_json(&doc).expect("valid envelope");
        assert_eq!(batch.results.len(), 1);
        assert!(batch.results[0].is_ok());
    }
}
