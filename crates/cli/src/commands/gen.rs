//! `leqa gen` — emit a suite benchmark in the shared text format.

use std::io::Write;

use leqa_circuit::parser;

use crate::{CliError, Options};

/// Writes the named benchmark's circuit text to the output (pipe it to a
/// file to feed other commands or external tools).
pub fn run(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    let name = opts.bench.as_deref().expect("parser enforced --bench");
    let bench = leqa_workloads::Benchmark::by_name(name)
        .ok_or_else(|| CliError::Usage(format!("unknown benchmark `{name}`")))?;
    out.write_all(parser::write(&bench.circuit()).as_bytes())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_util::{bench_opts, capture};

    #[test]
    fn generated_text_reparses_to_the_same_circuit() {
        let opts = bench_opts("gf2^16mult");
        let text = capture(|out| run(&opts, out));
        let circuit = parser::parse(&text).expect("roundtrips");
        assert_eq!(circuit.num_qubits(), 48);
        assert_eq!(
            circuit,
            leqa_workloads::Benchmark::by_name("gf2^16mult")
                .unwrap()
                .circuit()
        );
    }

    #[test]
    fn unknown_benchmark_is_an_error() {
        let opts = bench_opts("nope");
        let mut out = Vec::new();
        assert!(run(&opts, &mut out).is_err());
    }
}
