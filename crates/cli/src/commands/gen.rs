//! `leqa gen` — emit a workload circuit in the shared text format.

use std::io::Write;

use leqa_api::{json::Json, ProgramSpec, SCHEMA_VERSION};

use super::{emit, session};
use crate::{CliError, Options};

/// Writes the named workload's circuit text to the output (pipe it to a
/// file to feed other commands or external tools). `--format json` wraps
/// the text in a versioned envelope.
pub fn run(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    let name = opts.bench.as_deref().expect("parser enforced --bench");
    let session = session(opts)?;
    let handle = session.load(&ProgramSpec::bench(name))?;
    emit(
        out,
        opts.format,
        || {
            Json::obj(vec![
                ("schema_version", Json::num(SCHEMA_VERSION as u32)),
                ("op", Json::str("gen")),
                ("label", Json::str(handle.label())),
                ("circuit", Json::str(handle.source())),
            ])
        },
        || handle.source().to_string(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_util::{bench_opts, capture};
    use crate::OutputFormat;
    use leqa_circuit::parser;

    #[test]
    fn generated_text_reparses_to_the_same_circuit() {
        let opts = bench_opts("gf2^16mult");
        let text = capture(|out| run(&opts, out));
        let circuit = parser::parse(&text).expect("roundtrips");
        assert_eq!(circuit.num_qubits(), 48);
        assert_eq!(
            circuit,
            leqa_workloads::Benchmark::by_name("gf2^16mult")
                .unwrap()
                .circuit()
        );
    }

    #[test]
    fn json_format_wraps_the_circuit_text() {
        let mut opts = bench_opts("gf2^16mult");
        opts.format = OutputFormat::Json;
        let text = capture(|out| run(&opts, out));
        let doc = leqa_api::json::parse(text.trim_end()).expect("valid json");
        let circuit = doc.get("circuit").unwrap().as_str().unwrap();
        assert!(parser::parse(circuit).is_ok());
    }

    #[test]
    fn parametric_names_generate_too() {
        let opts = bench_opts("qft_8");
        let text = capture(|out| run(&opts, out));
        assert!(parser::parse(&text).is_ok());
    }

    #[test]
    fn unknown_benchmark_is_an_error() {
        let opts = bench_opts("nope");
        let mut out = Vec::new();
        assert!(run(&opts, &mut out).is_err());
    }
}
