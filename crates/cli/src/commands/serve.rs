//! `leqa serve` — the persistent NDJSON service daemon.
//!
//! Keeps one [`leqa_api::Session`] resident (warm profile cache,
//! persistent worker pool) and answers request lines over **stdio**
//! (`--stdio`, for harness/pipe supervisors) or **TCP** (`--listen
//! ADDR`, `std::net` only). Wire reference: `SERVER.md`.

use std::io::Write;

use leqa_api::{FaultPlan, Server, ServerConfig};

use super::session;
use crate::{CliError, Options};

/// Builds one daemon server from the shared serve/shard flags:
/// connection caps, read-poll interval, warm store (via [`session`])
/// and the optional `--chaos` fault plan.
pub(crate) fn build_server(opts: &Options) -> Result<Server, CliError> {
    build_replica(opts, 0)
}

/// Like [`build_server`] with the `--chaos` decision seed offset by
/// `replica`. A fleet that handed every replica the *same* plan would
/// fail in lockstep — identical seeds kill all replicas at the same
/// write count, leaving "no live replicas" windows no retry can beat —
/// so each replica (and each supervised restart) replays its own
/// deterministic fault sequence instead.
pub(crate) fn build_replica(opts: &Options, replica: u64) -> Result<Server, CliError> {
    let config = ServerConfig::new()
        .max_connections(opts.max_connections)
        .max_inflight(opts.max_inflight)
        .read_poll_ms(opts.read_poll_ms);
    let session = session(opts)?;
    Ok(match &opts.chaos {
        Some(spec) => {
            let mut plan = FaultPlan::parse(spec)?;
            plan.seed = plan.seed.wrapping_add(replica);
            Server::with_chaos(session, config, plan)
        }
        None => Server::with_config(session, config),
    })
}

/// Runs the daemon until EOF (stdio), `{"cmd":"shutdown"}`, or a fatal
/// transport error. In TCP mode the bound address is announced on `out`
/// as `listening on ADDR` (bind port 0 to let the OS pick) before the
/// accept loop starts; protocol traffic never touches `out`.
pub fn run(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    let server = build_server(opts)?;
    if opts.stdio {
        return server.serve_stdio();
    }
    let addr = opts.listen.as_deref().expect("parser enforced transport");
    let bound = server.bind(addr)?;
    writeln!(out, "listening on {}", bound.local_addr())?;
    out.flush()?;
    bound.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    #[test]
    fn tcp_serve_announces_addr_answers_and_shuts_down() {
        let opts = Options {
            listen: Some("127.0.0.1:0".to_string()),
            ..Default::default()
        };
        // `run` blocks until shutdown; drive it from a thread and speak
        // the protocol as a real TCP client.
        let (tx, rx) = std::sync::mpsc::channel();
        let handle = std::thread::spawn(move || {
            let mut out = AnnounceCapture {
                buffer: String::new(),
                tx: Some(tx),
            };
            run(&opts, &mut out)
        });
        let addr: String = rx.recv().expect("server announces its address");

        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream
            .write_all(
                b"{\"schema_version\":1,\"op\":\"estimate\",\"program\":{\"bench\":\"qft_8\"}}\n",
            )
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.starts_with("{\"schema_version\":1,\"op\":\"estimate\""));

        stream.write_all(b"{\"cmd\":\"shutdown\"}\n").unwrap();
        reply.clear();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.contains("\"op\":\"shutdown\""));
        handle.join().expect("no panic").expect("clean exit");
    }

    /// Captures the `listening on ADDR` announcement and forwards the
    /// address to the test thread (buffered: `writeln!` may split the
    /// line across `write` calls).
    struct AnnounceCapture {
        buffer: String,
        tx: Option<std::sync::mpsc::Sender<String>>,
    }

    impl Write for AnnounceCapture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.buffer.push_str(&String::from_utf8_lossy(buf));
            if self.buffer.contains('\n') {
                if let Some(addr) = self.buffer.trim().strip_prefix("listening on ") {
                    if let Some(tx) = self.tx.take() {
                        let _ = tx.send(addr.to_string());
                    }
                }
            }
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
}
