//! `leqa shard` — a sharded front-end over N daemon replicas.
//!
//! Spawns `--replicas N` in-process daemons (each with its own session
//! and profile cache) and/or attaches already-running daemons
//! (`--attach ADDR1,ADDR2`), then serves the daemon wire protocols on
//! one listener, routing work by program content hash for cache
//! affinity. Protocol and failover semantics: [`leqa_api::shard`] and
//! `SERVER.md`.

use std::io::Write;

use leqa_api::Shard;

use super::serve::build_replica;
use crate::{CliError, Options};

/// Restart budget for the supervisor: dead in-process replicas are
/// restarted (warm from `--cache-dir` when set) at most this many times
/// in total before the fleet gives up and answers `unavailable`.
const RESTART_BUDGET: u64 = 64;

/// Runs the shard front-end until `{"cmd":"shutdown"}` or a fatal
/// transport error. The bound address is announced on `out` as
/// `listening on ADDR` (bind port 0 to let the OS pick) before the
/// accept loop starts; protocol traffic never touches `out`.
pub fn run(opts: &Options, out: &mut dyn Write) -> Result<(), CliError> {
    let shard = Shard::new();
    shard.set_read_poll_ms(opts.read_poll_ms);
    for i in 0..opts.replicas {
        shard.spawn_replica(build_replica(opts, i as u64)?)?;
    }
    if opts.replicas > 0 {
        // Restarts continue the per-replica chaos seed sequence so no
        // two fleet members ever replay the same fault schedule.
        let factory_opts = opts.clone();
        let next_seed = std::sync::atomic::AtomicU64::new(opts.replicas as u64);
        shard.supervise(
            move || {
                let bump = next_seed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                build_replica(&factory_opts, bump)
            },
            RESTART_BUDGET,
        );
    }
    for addr in &opts.attach {
        shard.attach_replica(addr)?;
    }
    let addr = opts.listen.as_deref().expect("parser enforced --listen");
    let bound = shard.bind(addr)?;
    writeln!(out, "listening on {}", bound.local_addr())?;
    out.flush()?;
    bound.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    #[test]
    fn shard_announces_addr_answers_and_shuts_down() {
        let opts = Options {
            listen: Some("127.0.0.1:0".to_string()),
            replicas: 2,
            ..Default::default()
        };
        let (tx, rx) = std::sync::mpsc::channel();
        let handle = std::thread::spawn(move || {
            let mut out = AnnounceCapture {
                buffer: String::new(),
                tx: Some(tx),
            };
            run(&opts, &mut out)
        });
        let addr: String = rx.recv().expect("shard announces its address");

        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream
            .write_all(
                b"{\"schema_version\":1,\"op\":\"estimate\",\"program\":{\"bench\":\"qft_8\"}}\n",
            )
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.starts_with("{\"schema_version\":1,\"op\":\"estimate\""));

        stream.write_all(b"{\"cmd\":\"shutdown\"}\n").unwrap();
        reply.clear();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.contains("\"op\":\"shutdown\""));
        handle.join().expect("no panic").expect("clean exit");
    }

    /// Captures the `listening on ADDR` announcement and forwards the
    /// address to the test thread.
    struct AnnounceCapture {
        buffer: String,
        tx: Option<std::sync::mpsc::Sender<String>>,
    }

    impl Write for AnnounceCapture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.buffer.push_str(&String::from_utf8_lossy(buf));
            if self.buffer.contains('\n') {
                if let Some(addr) = self.buffer.trim().strip_prefix("listening on ") {
                    if let Some(tx) = self.tx.take() {
                        let _ = tx.send(addr.to_string());
                    }
                }
            }
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
}
