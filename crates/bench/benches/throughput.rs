//! Service-layer throughput: one shared [`Session`] hammered from many
//! threads, the `batch` endpoint, and the QFT-64 `compare` that exercises
//! the zero-alloc QSPR hot path.
//!
//! The headline number is the **batch-style concurrent throughput over
//! the serial cache-warm baseline** — the same requests, the same warm
//! session, executed request-by-request versus fanned out on the
//! persistent worker pool. The paper's pitch (and the ROADMAP's) is a
//! service that scales with the hardware; this bench records the
//! trajectory: `BENCH_JSON=BENCH_throughput.json cargo bench -p
//! leqa-bench --bench throughput` appends one JSON line per measurement
//! plus a `throughput/speedup` summary line.
//!
//! The ≥ 3× target only applies on a multi-core runner (the pool cannot
//! beat serial on one core); single-core runs report `SKIPPED`.
//!
//! Set `THROUGHPUT_BENCH_SMOKE=1` for the reduced CI smoke variant
//! (fewer requests, shorter budgets).

use std::io::Write as _;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use leqa_api::{CompareRequest, EstimateRequest, ProgramSpec, Request, Session};

fn smoke() -> bool {
    std::env::var("THROUGHPUT_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

/// The mixed request set: distinct mid-size programs with repeats, the
/// shape of real service traffic hitting a warm cache.
fn requests() -> Vec<Request> {
    let names: &[&str] = if smoke() {
        &["qft_8", "qft_16", "8bitadder"]
    } else {
        &["qft_8", "qft_16", "qft_24", "qft_32", "8bitadder"]
    };
    let rounds = if smoke() { 2 } else { 6 };
    let mut requests = Vec::new();
    for _ in 0..rounds {
        for name in names {
            requests.push(Request::Estimate(EstimateRequest::new(ProgramSpec::bench(
                *name,
            ))));
        }
    }
    requests
}

/// Serial cache-warm baseline: request by request on one thread.
fn run_serial(session: &Session, requests: &[Request]) -> usize {
    requests
        .iter()
        .map(|req| {
            session
                .execute(req)
                .expect("suite programs execute cleanly");
        })
        .count()
}

/// Concurrent execution of the same requests on the persistent worker
/// pool — what `batch` does under the `parallel` feature, measured
/// feature-independently so the trajectory is comparable everywhere.
fn run_concurrent(session: &Session, requests: &[Request]) -> usize {
    leqa::pool::Pool::global()
        .map(requests, |req| {
            session
                .execute(req)
                .expect("suite programs execute cleanly");
        })
        .len()
}

fn bench_throughput(c: &mut Criterion) {
    let session = Session::builder().build().expect("default session");
    let requests = requests();
    // Warm the program cache once; the service steady state is all hits.
    run_serial(&session, &requests);

    let mut group = c.benchmark_group("throughput");
    group.sample_size(10);

    group.bench_function(
        criterion::BenchmarkId::from_parameter("estimate_serial"),
        |b| b.iter(|| run_serial(&session, &requests)),
    );
    group.bench_function(
        criterion::BenchmarkId::from_parameter("estimate_concurrent"),
        |b| b.iter(|| run_concurrent(&session, &requests)),
    );
    group.bench_function(criterion::BenchmarkId::from_parameter("batch"), |b| {
        b.iter(|| session.batch(&requests))
    });

    // The detailed-mapper endpoint: QFT-64 compare (QSPR + LEQA on the
    // paper's 60×60 fabric) through the thread-local MapScratch.
    let compare = CompareRequest::new(ProgramSpec::bench(if smoke() {
        "qft_16"
    } else {
        "qft_64"
    }));
    group.bench_function(
        criterion::BenchmarkId::from_parameter("compare_qft64"),
        |b| b.iter(|| session.compare(&compare).expect("qft fits the fabric")),
    );
    group.finish();

    // Headline: median-of-5 concurrent vs serial wall-clock on the warm
    // session — the batch-throughput acceptance number.
    let median = |f: &dyn Fn()| -> f64 {
        let mut samples = Vec::new();
        for _ in 0..5 {
            let t0 = Instant::now();
            f();
            samples.push(t0.elapsed().as_secs_f64());
        }
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    };
    let serial_s = median(&|| {
        std::hint::black_box(run_serial(&session, &requests));
    });
    let concurrent_s = median(&|| {
        std::hint::black_box(run_concurrent(&session, &requests));
    });
    let speedup = serial_s / concurrent_s;

    let threads = leqa::pool::Pool::global().workers() + 1; // pool + submitter
    let verdict = if threads < 4 {
        format!("SKIPPED ({threads} threads available, need >= 4 for the 3x target)")
    } else if speedup >= 3.0 {
        "MET".to_string()
    } else {
        "NOT MET".to_string()
    };
    println!(
        "throughput speedup: {speedup:.2}x (serial {:.2} ms vs concurrent {:.2} ms, {threads} threads) — batch target >= 3x: {verdict}",
        serial_s * 1e3,
        concurrent_s * 1e3,
    );

    // Append the summary to the same baseline file the shim records to,
    // so BENCH_throughput.json carries the headline ratio too.
    if let Ok(path) = std::env::var("BENCH_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(
                file,
                "{{\"name\":\"throughput/speedup\",\"speedup\":{speedup:.4},\"serial_ms\":{:.4},\"concurrent_ms\":{:.4},\"threads\":{threads}}}",
                serial_s * 1e3,
                concurrent_s * 1e3,
            );
        }
    }
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
