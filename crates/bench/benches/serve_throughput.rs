//! Daemon throughput: requests/sec through a live `leqa_api::server`
//! loopback daemon versus a **one-session-per-request** baseline — the
//! in-process proxy for today's one-process-per-request CLI usage (it
//! excludes `exec()` and dynamic-link cost, so the measured speedup is
//! a *lower bound* on what a real process-per-request deployment
//! pays).
//!
//! The daemon's whole point is amortisation: one resident session keeps
//! profiles cached and the worker pool warm across requests, while the
//! baseline rebuilds the session and the program profile every time.
//! `BENCH_JSON=BENCH_throughput.json cargo bench -p leqa-bench --bench
//! serve_throughput` appends the individual medians plus a
//! `serve/throughput` summary line (requests/sec both ways, speedup).
//!
//! The ≥ 2× target needs a second thread (the daemon serves from its
//! own accept/connection threads); single-core runners report
//! `SKIPPED` like the `throughput` bench. Set `SERVE_BENCH_SMOKE=1`
//! for the reduced CI variant.
//!
//! A second headline (`serve/frame_pipelined`) isolates the *transport*:
//! the same resident daemon driven by strict NDJSON request/reply
//! alternation versus the `frame1` binary protocol with every request in
//! flight at once. One core can only hide protocol latency (2× bar
//! SKIPPED); on multi-core hardware, where pipelined frames fan out over
//! the worker pool, the goal is ≥ 10×.

use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use leqa_api::{
    write_frame, ControlFrame, EstimateRequest, FrameDecoder, FrameProto, ProgramSpec, Request,
    Server, Session,
};

fn smoke() -> bool {
    std::env::var("SERVE_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

/// The request stream: repeated estimates over a small set of mid-size
/// programs — the shape of service traffic a warm cache amortises.
fn request_lines() -> Vec<String> {
    let names: &[&str] = if smoke() {
        &["qft_16", "qft_32"]
    } else {
        &["qft_16", "qft_32", "qft_48", "qft_64"]
    };
    let rounds = if smoke() { 3 } else { 8 };
    let mut lines = Vec::new();
    for _ in 0..rounds {
        for name in names {
            lines.push(
                Request::Estimate(EstimateRequest::new(ProgramSpec::bench(*name)))
                    .to_json()
                    .encode(),
            );
        }
    }
    lines
}

/// Baseline: every request pays session construction and a cold profile
/// build, like a fresh process would.
fn run_per_request_sessions(lines: &[String]) -> usize {
    lines
        .iter()
        .map(|line| {
            let session = Session::builder().build().expect("default session");
            let doc = leqa_api::json::parse(line).expect("benchmark lines parse");
            let Request::Estimate(req) = Request::from_json(&doc).expect("estimate line") else {
                unreachable!("request_lines emits estimates only");
            };
            session.estimate(&req).expect("suite programs estimate");
        })
        .count()
}

/// Daemon path: one persistent connection to a live loopback server,
/// all lines pipelined, all replies drained.
fn run_through_daemon(addr: SocketAddr, lines: &[String]) -> usize {
    let stream = TcpStream::connect(addr).expect("connect to daemon");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    for line in lines {
        writer.write_all(line.as_bytes()).expect("send");
        writer.write_all(b"\n").expect("send");
    }
    writer.flush().expect("flush");
    let mut reply = String::new();
    let mut served = 0usize;
    for _ in lines {
        reply.clear();
        let n = reader.read_line(&mut reply).expect("read reply");
        assert!(n > 0, "daemon closed early");
        assert!(
            reply.starts_with("{\"schema_version\":1,\"op\":\"estimate\""),
            "unexpected reply: {reply}"
        );
        served += 1;
    }
    served
}

/// NDJSON at its semantic limit: strict request/reply alternation, one
/// roundtrip at a time — what a client that must match replies to
/// requests without tags is forced into.
fn run_ndjson_serial(addr: SocketAddr, lines: &[String]) -> usize {
    let stream = TcpStream::connect(addr).expect("connect to daemon");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    let mut reply = String::new();
    let mut served = 0usize;
    for line in lines {
        writer.write_all(line.as_bytes()).expect("send");
        writer.write_all(b"\n").expect("send");
        writer.flush().expect("flush");
        reply.clear();
        let n = reader.read_line(&mut reply).expect("read reply");
        assert!(n > 0, "daemon closed early");
        assert!(
            reply.starts_with("{\"schema_version\":1,\"op\":\"estimate\""),
            "unexpected reply: {reply}"
        );
        served += 1;
    }
    served
}

/// `frame1` pipelined: upgrade the connection, fire every request as a
/// tagged frame, drain the (possibly out-of-order) completions.
fn run_frame_pipelined(addr: SocketAddr, lines: &[String]) -> usize {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    stream.set_nodelay(true).expect("nodelay");
    let upgrade = ControlFrame::Upgrade(FrameProto::Frame1).to_json().encode();
    stream.write_all(upgrade.as_bytes()).expect("send upgrade");
    stream.write_all(b"\n").expect("send newline");
    stream.flush().expect("flush");
    let mut byte = [0u8; 1];
    loop {
        assert_eq!(stream.read(&mut byte).expect("read ack"), 1, "EOF in ack");
        if byte[0] == b'\n' {
            break;
        }
    }
    for (i, line) in lines.iter().enumerate() {
        write_frame(
            &mut stream,
            u32::try_from(i).expect("fits"),
            line.as_bytes(),
        )
        .expect("send frame");
    }
    stream.flush().expect("flush");
    let mut decoder = FrameDecoder::new();
    let mut seen = vec![false; lines.len()];
    let mut served = 0usize;
    let mut buf = [0u8; 16 * 1024];
    while served < lines.len() {
        match decoder.next().expect("well-formed frame") {
            Some((tag, payload)) => {
                let idx = tag as usize;
                assert!(idx < lines.len() && !seen[idx], "tag {tag} unexpected");
                seen[idx] = true;
                assert!(
                    payload.starts_with(b"{\"schema_version\":1,\"op\":\"estimate\""),
                    "unexpected reply: {}",
                    String::from_utf8_lossy(&payload)
                );
                served += 1;
            }
            None => {
                let n = stream.read(&mut buf).expect("read");
                assert!(n > 0, "daemon closed early");
                decoder.push(&buf[..n]);
            }
        }
    }
    served
}

fn bench_serve_throughput(c: &mut Criterion) {
    let lines = request_lines();

    let server = Server::new(Session::builder().build().expect("default session"));
    let bound = server.bind("127.0.0.1:0").expect("bind loopback");
    let addr = bound.local_addr();
    let daemon = std::thread::spawn(move || bound.run());
    // Warm the daemon once: the steady state under service traffic.
    run_through_daemon(addr, &lines);

    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    group.bench_function(
        criterion::BenchmarkId::from_parameter("per_request_sessions"),
        |b| b.iter(|| run_per_request_sessions(&lines)),
    );
    group.bench_function(criterion::BenchmarkId::from_parameter("daemon_warm"), |b| {
        b.iter(|| run_through_daemon(addr, &lines))
    });
    group.bench_function(
        criterion::BenchmarkId::from_parameter("ndjson_serial"),
        |b| b.iter(|| run_ndjson_serial(addr, &lines)),
    );
    group.bench_function(
        criterion::BenchmarkId::from_parameter("frame_pipelined"),
        |b| b.iter(|| run_frame_pipelined(addr, &lines)),
    );
    group.finish();

    // Headline: median-of-5 wall-clock → requests/sec both ways.
    let median = |f: &dyn Fn() -> usize| -> f64 {
        let mut samples = Vec::new();
        for _ in 0..5 {
            let t0 = Instant::now();
            std::hint::black_box(f());
            samples.push(t0.elapsed().as_secs_f64());
        }
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    };
    let baseline_s = median(&|| run_per_request_sessions(&lines));
    let daemon_s = median(&|| run_through_daemon(addr, &lines));
    let n = lines.len() as f64;
    let baseline_rps = n / baseline_s;
    let daemon_rps = n / daemon_s;
    let speedup = baseline_s / daemon_s;

    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);
    let verdict = if threads < 2 {
        format!("SKIPPED ({threads} thread available, need >= 2 for the 2x target)")
    } else if speedup >= 2.0 {
        "MET".to_string()
    } else {
        "NOT MET".to_string()
    };
    println!(
        "serve throughput: {speedup:.2}x ({daemon_rps:.0} req/s via daemon vs {baseline_rps:.0} req/s per-request sessions, {threads} threads) — target >= 2x: {verdict}",
    );

    if let Ok(path) = std::env::var("BENCH_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(
                file,
                "{{\"name\":\"serve/throughput\",\"speedup\":{speedup:.4},\"daemon_rps\":{daemon_rps:.1},\"baseline_rps\":{baseline_rps:.1},\"requests\":{},\"threads\":{threads}}}",
                lines.len(),
            );
        }
    }

    // Second headline: `frame1` pipelining vs the NDJSON serial daemon
    // (same resident session both ways — this isolates the transport).
    // On one core pipelining can only hide protocol latency, not overlap
    // compute, so the 2x bar is SKIPPED there; with the worker pool on
    // multi-core hardware the goal is >= 10x.
    let serial_s = median(&|| run_ndjson_serial(addr, &lines));
    let frame_s = median(&|| run_frame_pipelined(addr, &lines));
    let serial_rps = n / serial_s;
    let frame_rps = n / frame_s;
    let frame_speedup = serial_s / frame_s;
    let frame_verdict = if threads < 2 {
        format!("SKIPPED ({threads} thread available, need >= 2 to overlap compute; multi-core goal >= 10x)")
    } else if frame_speedup >= 2.0 {
        "MET".to_string()
    } else {
        "NOT MET".to_string()
    };
    println!(
        "serve frame pipelining: {frame_speedup:.2}x ({frame_rps:.0} req/s frame1 pipelined vs {serial_rps:.0} req/s NDJSON serial, {threads} threads) — target >= 2x: {frame_verdict}",
    );

    if let Ok(path) = std::env::var("BENCH_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(
                file,
                "{{\"name\":\"serve/frame_pipelined\",\"speedup\":{frame_speedup:.4},\"frame_rps\":{frame_rps:.1},\"serial_rps\":{serial_rps:.1},\"requests\":{},\"threads\":{threads}}}",
                lines.len(),
            );
        }
    }

    // Graceful shutdown: ack, drain, clean exit.
    let stream = TcpStream::connect(addr).expect("connect for shutdown");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    writer.write_all(b"{\"cmd\":\"shutdown\"}\n").expect("send");
    writer.flush().expect("flush");
    let mut ack = String::new();
    reader.read_line(&mut ack).expect("ack");
    assert!(ack.contains("\"op\":\"shutdown\""), "ack: {ack}");
    daemon
        .join()
        .expect("daemon thread")
        .expect("daemon exits cleanly");
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
