//! Monte Carlo yield-engine throughput: one batched `montecarlo`
//! experiment (profile loaded once, grid planned once, trials fanned
//! out over the session) against the hand-scripted alternative — a
//! fresh session and a single-trial spec per (density, trial) sample,
//! which is what a shell loop over `leqa experiment` invocations does.
//!
//! The claim: the engine amortises program loading, profile building
//! and plan validation across the whole density × trial grid, so the
//! batched study is never slower than the loop (target ≥ 1x; the
//! `parallel` feature then fans the trials over worker threads on top).
//!
//! `BENCH_JSON=$PWD/BENCH_yield.json cargo bench -p leqa-bench --bench
//! montecarlo` appends one `montecarlo/speedup` JSON line. Set
//! `MONTECARLO_BENCH_SMOKE=1` for the reduced CI variant.

use std::io::Write as _;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use leqa_api::{FabricEntry, MonteCarloSpec, ScenarioSpec, Session};

fn smoke() -> bool {
    std::env::var("MONTECARLO_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

fn densities() -> Vec<f64> {
    if smoke() {
        vec![0.0, 0.15, 0.3]
    } else {
        vec![0.0, 0.05, 0.1, 0.2, 0.35, 0.5]
    }
}

fn trials() -> u32 {
    if smoke() {
        4
    } else {
        16
    }
}

/// The batched study: every (density, trial) sample in one request.
fn spec() -> ScenarioSpec {
    ScenarioSpec::new(["qft_8"], [FabricEntry::Side(8)]).with_montecarlo(MonteCarloSpec::new(
        densities(),
        trials(),
        7,
    ))
}

/// The hand-scripted loop: a fresh session and a one-sample spec per
/// (density, trial), as a shell loop over CLI invocations would run.
fn run_serial() -> usize {
    let mut samples = 0;
    for density in densities() {
        for trial in 0..trials() {
            let session = Session::builder().build().expect("default session");
            let one = ScenarioSpec::new(["qft_8"], [FabricEntry::Side(8)])
                .with_montecarlo(MonteCarloSpec::new([density], 1, 7 ^ u64::from(trial)));
            session.batch_experiment(&one).expect("single sample runs");
            samples += 1;
        }
    }
    samples
}

fn bench_montecarlo(c: &mut Criterion) {
    let spec = spec();
    let session = Session::builder().build().expect("default session");
    session.batch_experiment(&spec).expect("study runs");

    let mut group = c.benchmark_group("montecarlo");
    group.sample_size(10);
    group.bench_function(criterion::BenchmarkId::from_parameter("batched"), |b| {
        b.iter(|| session.batch_experiment(&spec).expect("study runs"))
    });
    group.bench_function(
        criterion::BenchmarkId::from_parameter("serial_samples"),
        |b| b.iter(run_serial),
    );
    group.finish();

    // Headline: median-of-5 batched vs hand-scripted wall-clock.
    let median = |f: &dyn Fn()| -> f64 {
        let mut samples = Vec::new();
        for _ in 0..5 {
            let t0 = Instant::now();
            f();
            samples.push(t0.elapsed().as_secs_f64());
        }
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    };
    let batched_s = median(&|| {
        std::hint::black_box(session.batch_experiment(&spec).expect("study runs"));
    });
    let samples = run_serial();
    let serial_s = median(&|| {
        std::hint::black_box(run_serial());
    });
    let speedup = serial_s / batched_s;
    let verdict = if speedup >= 1.0 { "MET" } else { "NOT MET" };
    println!(
        "montecarlo yield speedup: {speedup:.2}x (serial {:.2} ms vs batched {:.2} ms, {samples} samples) — amortisation target >= 1x: {verdict}",
        serial_s * 1e3,
        batched_s * 1e3,
    );

    if let Ok(path) = std::env::var("BENCH_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(
                file,
                "{{\"name\":\"montecarlo/speedup\",\"speedup\":{speedup:.4},\"serial_ms\":{:.4},\"batched_ms\":{:.4},\"samples\":{samples}}}",
                serial_s * 1e3,
                batched_s * 1e3,
            );
        }
    }
}

criterion_group!(benches, bench_montecarlo);
criterion_main!(benches);
