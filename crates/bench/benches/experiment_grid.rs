//! Experiment-grid throughput: the declarative engine
//! ([`Session::batch_experiment`]) against the equivalent serial loop of
//! single-cell `estimate` requests on the same grid.
//!
//! The engine's claim (PERF.md "The experiment-grid bench"): distinct
//! programs are profiled once through the session cache, each
//! (workload, params) group's fabric axis rides one census-bisection
//! sweep, and router/movement variants replay the group's points — so a
//! grid run beats the cell-by-cell loop ≥ 3× even single-threaded,
//! while `crates/api/tests/experiment.rs` pins the rows bit-identical.
//!
//! `BENCH_JSON=$PWD/BENCH_throughput.json cargo bench -p leqa-bench
//! --bench experiment_grid` appends one JSON line per measurement plus
//! an `experiment/speedup` summary record. Set
//! `EXPERIMENT_BENCH_SMOKE=1` for the reduced CI variant.

use std::io::Write as _;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use leqa_api::{EstimateRequest, FabricEntry, ProgramSpec, ScenarioSpec, Session};

fn smoke() -> bool {
    std::env::var("EXPERIMENT_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

fn workloads() -> Vec<&'static str> {
    if smoke() {
        vec!["qft_8", "8bitadder"]
    } else {
        vec!["qft_8", "qft_16", "8bitadder"]
    }
}

fn sides() -> Vec<u32> {
    if smoke() {
        (10..=50).step_by(10).collect()
    } else {
        (10..=55).step_by(5).collect()
    }
}

/// The acceptance-shaped grid: workloads × sides × 2 routers.
fn spec() -> ScenarioSpec {
    let (min, max, step) = if smoke() { (10, 50, 10) } else { (10, 55, 5) };
    ScenarioSpec::new(workloads(), [FabricEntry::Range { min, max, step }])
        .with_routers([qspr::RouterStrategy::Xy, qspr::RouterStrategy::Yx])
}

/// The equivalent serial loop: one `estimate` request per cell, in the
/// same cell order — what a user would hand-script without the engine.
fn run_serial(session: &Session) -> usize {
    let mut cells = 0;
    for workload in workloads() {
        for _router in ["xy", "yx"] {
            for &side in &sides() {
                session
                    .estimate(
                        &EstimateRequest::new(ProgramSpec::bench(workload)).with_fabric(side, side),
                    )
                    .expect("grid programs fit some fabric or report unfit");
                cells += 1;
            }
        }
    }
    cells
}

fn bench_experiment_grid(c: &mut Criterion) {
    let spec = spec();
    let session = Session::builder().build().expect("default session");
    // Warm the cache once: both sides then measure steady-state service
    // behaviour rather than first-touch lowering.
    session.batch_experiment(&spec).expect("grid runs");

    let mut group = c.benchmark_group("experiment");
    group.sample_size(10);
    group.bench_function(criterion::BenchmarkId::from_parameter("grid"), |b| {
        b.iter(|| session.batch_experiment(&spec).expect("grid runs"))
    });
    group.bench_function(
        criterion::BenchmarkId::from_parameter("serial_cells"),
        |b| b.iter(|| run_serial(&session)),
    );
    group.finish();

    // Headline: median-of-5 grid vs serial wall-clock on the warm session.
    let median = |f: &dyn Fn()| -> f64 {
        let mut samples = Vec::new();
        for _ in 0..5 {
            let t0 = Instant::now();
            f();
            samples.push(t0.elapsed().as_secs_f64());
        }
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    };
    let grid_s = median(&|| {
        std::hint::black_box(session.batch_experiment(&spec).expect("grid runs"));
    });
    let cells = run_serial(&session);
    let serial_s = median(&|| {
        std::hint::black_box(run_serial(&session));
    });
    let speedup = serial_s / grid_s;
    let verdict = if speedup >= 3.0 { "MET" } else { "NOT MET" };
    println!(
        "experiment grid speedup: {speedup:.2}x (serial {:.2} ms vs grid {:.2} ms, {cells} cells) — amortisation target >= 3x: {verdict}",
        serial_s * 1e3,
        grid_s * 1e3,
    );

    if let Ok(path) = std::env::var("BENCH_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(
                file,
                "{{\"name\":\"experiment/speedup\",\"speedup\":{speedup:.4},\"serial_ms\":{:.4},\"grid_ms\":{:.4},\"cells\":{cells}}}",
                serial_s * 1e3,
                grid_s * 1e3,
            );
        }
    }
}

criterion_group!(benches, bench_experiment_grid);
criterion_main!(benches);
