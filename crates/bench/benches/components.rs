//! Criterion micro-benches of LEQA's components, matching the complexity
//! budget of Eq. 17: QODG construction (`O(|V|+|E|)`), IIG construction,
//! the coverage table (`O(A)`), `E[S_q]` (`O(terms·A)`), and the
//! critical-path pass (`O(|V|+|E|)`). Also the ablation benches of
//! DESIGN.md §5 that concern runtime: `E[S_q]` truncation and zone-side
//! rounding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use leqa::coverage::{CoverageTable, ZoneRounding};
use leqa_circuit::{decompose::lower_to_ft, Iig, Qodg};
use leqa_fabric::{FabricDims, Micros};
use leqa_workloads::Benchmark;

fn prepared_qodg(name: &str) -> Qodg {
    let bench = Benchmark::by_name(name).expect("known benchmark");
    let ft = lower_to_ft(&bench.circuit()).expect("lowers cleanly");
    Qodg::from_ft_circuit(&ft)
}

fn bench_graph_construction(c: &mut Criterion) {
    let bench = Benchmark::by_name("gf2^64mult").expect("known");
    let ft = lower_to_ft(&bench.circuit()).expect("lowers cleanly");

    c.bench_function("qodg_from_ft_circuit/gf2^64mult", |b| {
        b.iter(|| Qodg::from_ft_circuit(&ft));
    });

    let qodg = Qodg::from_ft_circuit(&ft);
    c.bench_function("iig_from_qodg/gf2^64mult", |b| {
        b.iter(|| Iig::from_qodg(&qodg));
    });
    c.bench_function("critical_path/gf2^64mult", |b| {
        b.iter(|| qodg.critical_path(|_| Micros::new(1.0)));
    });
}

fn bench_coverage(c: &mut Criterion) {
    let dims = FabricDims::dac13();

    c.bench_function("coverage_table/60x60", |b| {
        b.iter(|| CoverageTable::new(dims, 6.0, ZoneRounding::Ceil));
    });

    let table = CoverageTable::new(dims, 6.0, ZoneRounding::Ceil);
    let mut group = c.benchmark_group("ablation_esq_terms");
    for terms in [5usize, 20, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(terms), &terms, |b, &terms| {
            b.iter(|| table.expected_surfaces(768, terms));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_zone_side");
    for (rounding, label) in [
        (ZoneRounding::Floor, "floor"),
        (ZoneRounding::Ceil, "ceil"),
        (ZoneRounding::Round, "round"),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &rounding, |b, &r| {
            b.iter(|| CoverageTable::new(dims, 6.0, r));
        });
    }
    group.finish();
}

fn bench_end_to_end_scaling(c: &mut Criterion) {
    use leqa::Estimator;
    use leqa_fabric::PhysicalParams;
    let estimator = Estimator::new(FabricDims::dac13(), PhysicalParams::dac13());

    let mut group = c.benchmark_group("leqa_scaling");
    group.sample_size(10);
    for name in ["gf2^16mult", "gf2^50mult", "gf2^100mult"] {
        let qodg = prepared_qodg(name);
        group.bench_with_input(BenchmarkId::from_parameter(name), &qodg, |b, qodg| {
            b.iter(|| estimator.estimate(qodg).expect("fits"));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_graph_construction,
    bench_coverage,
    bench_end_to_end_scaling
);
criterion_main!(benches);
