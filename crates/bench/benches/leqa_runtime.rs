//! Criterion benches: LEQA estimation runtime per Table 3 row (the
//! "LEQA Runtime" column, measured properly).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use leqa::Estimator;
use leqa_circuit::{decompose::lower_to_ft, Qodg};
use leqa_fabric::{FabricDims, PhysicalParams};
use leqa_workloads::Benchmark;

fn bench_estimation(c: &mut Criterion) {
    let dims = FabricDims::dac13();
    let params = PhysicalParams::dac13();
    let estimator = Estimator::new(dims, params);

    let mut group = c.benchmark_group("leqa_estimate");
    group.sample_size(10);
    for name in [
        "8bitadder",
        "gf2^16mult",
        "hwb15ps",
        "ham15",
        "hwb50ps",
        "gf2^64mult",
        "gf2^128mult",
    ] {
        let bench = Benchmark::by_name(name).expect("known benchmark");
        let ft = lower_to_ft(&bench.circuit()).expect("lowers cleanly");
        let qodg = Qodg::from_ft_circuit(&ft);
        group.bench_with_input(BenchmarkId::from_parameter(name), &qodg, |b, qodg| {
            b.iter(|| estimator.estimate(qodg).expect("fits"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estimation);
criterion_main!(benches);
