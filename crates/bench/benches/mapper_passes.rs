//! Pass-pipeline bench: the mobility engine (alone and behind a 4-way
//! `Partition` pipeline) against the greedy baseline, on the
//! scheduler-comparison grid (qft_64 and a 256-gate random workload
//! across three fabric sizes).
//!
//! Two things are recorded:
//!
//! * **Runtime** — criterion timings of one full `map` per engine, so
//!   the mobility engine's extra ALAP sweep and wave bookkeeping stay
//!   visibly bounded against the greedy baseline.
//! * **Quality** — the scheduled program latency. The headline
//!   `mapper_passes/quality` record carries the geometric-mean
//!   greedy/mobility latency ratio as its `speedup` (≥ 1 means mobility
//!   beats-or-matches greedy) plus the per-grid win count, appended to
//!   `BENCH_JSON` and gated by `scripts/perf_gate.sh` once a baseline
//!   is committed.
//!
//! `BENCH_JSON=$PWD/BENCH_throughput.json cargo bench -p leqa-bench
//! --bench mapper_passes` appends the records.

use std::io::Write as _;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use leqa_circuit::{decompose::lower_to_ft, Qodg};
use leqa_fabric::{FabricDims, PhysicalParams};
use qspr::{Mapper, Partition, PassManager, SchedulerStrategy};

const WORKLOADS: [&str; 2] = ["qft_64", "random_24_256_7"];
const SIDES: [u32; 3] = [12, 20, 30];

fn qodg(name: &str) -> Qodg {
    let circuit = leqa_workloads::circuit_by_name(name).expect("known workload");
    let ft = lower_to_ft(&circuit).expect("lowers cleanly");
    Qodg::from_ft_circuit(&ft)
}

fn mapper(side: u32, scheduler: SchedulerStrategy, partition: Option<u32>) -> Mapper {
    let mut mapper = Mapper::new(
        FabricDims::new(side, side).expect("valid side"),
        PhysicalParams::dac13(),
    )
    .with_scheduler(scheduler);
    if let Some(k) = partition {
        mapper = mapper.with_passes(Arc::new(PassManager::new().add(Partition::new(k))));
    }
    mapper
}

fn bench_mapper_passes(c: &mut Criterion) {
    let programs: Vec<(&str, Qodg)> = WORKLOADS.iter().map(|&w| (w, qodg(w))).collect();

    let mut group = c.benchmark_group("mapper_passes");
    group.sample_size(10);
    for (name, graph) in &programs {
        for engine in ["greedy", "mobility", "partition4_mobility"] {
            let m = match engine {
                "greedy" => mapper(20, SchedulerStrategy::Greedy, None),
                "mobility" => mapper(20, SchedulerStrategy::Mobility, None),
                _ => mapper(20, SchedulerStrategy::Mobility, Some(4)),
            };
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{engine}_{name}")),
                graph,
                |b, graph| b.iter(|| m.map(graph).expect("fits")),
            );
        }
    }
    group.finish();

    // Quality sweep: scheduled latency per grid cell, mobility vs greedy.
    let mut wins = 0u32;
    let mut cells = 0u32;
    let mut log_ratio_sum = 0.0f64;
    let mut lines = Vec::new();
    for (name, graph) in &programs {
        for &side in &SIDES {
            let greedy = mapper(side, SchedulerStrategy::Greedy, None)
                .map(graph)
                .expect("fits")
                .latency
                .as_f64();
            let mobility = mapper(side, SchedulerStrategy::Mobility, None)
                .map(graph)
                .expect("fits")
                .latency
                .as_f64();
            let partitioned = mapper(side, SchedulerStrategy::Mobility, Some(4))
                .map(graph)
                .expect("fits")
                .latency
                .as_f64();
            cells += 1;
            if mobility <= greedy {
                wins += 1;
            }
            log_ratio_sum += (greedy / mobility).ln();
            println!(
                "mapper_passes {name} {side}x{side}: greedy {greedy:.0} µs, \
                 mobility {mobility:.0} µs, partition:4+mobility {partitioned:.0} µs"
            );
            lines.push(format!(
                "{{\"name\":\"mapper_passes/{name}_s{side}\",\"greedy_us\":{greedy:.1},\
                 \"mobility_us\":{mobility:.1},\"partitioned_us\":{partitioned:.1}}}"
            ));
        }
    }
    let geomean = (log_ratio_sum / f64::from(cells)).exp();
    let verdict = if 2 * wins >= cells { "MET" } else { "NOT MET" };
    println!(
        "mapper_passes quality: mobility beats-or-matches greedy on {wins}/{cells} cells \
         (geomean greedy/mobility latency ratio {geomean:.4}) — target >= half: {verdict}"
    );

    if let Ok(path) = std::env::var("BENCH_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            for line in &lines {
                let _ = writeln!(file, "{line}");
            }
            let _ = writeln!(
                file,
                "{{\"name\":\"mapper_passes/quality\",\"speedup\":{geomean:.4},\
                 \"wins\":{wins},\"cells\":{cells}}}"
            );
        }
    }
}

criterion_group!(benches, bench_mapper_passes);
criterion_main!(benches);
