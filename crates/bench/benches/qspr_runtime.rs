//! Criterion benches: QSPR mapping runtime per Table 3 row (the
//! "QSPR Runtime" column, measured properly). Restricted to small and
//! mid-size benchmarks to keep the bench run short.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use leqa_circuit::{decompose::lower_to_ft, Qodg};
use leqa_fabric::{FabricDims, PhysicalParams};
use leqa_workloads::Benchmark;
use qspr::Mapper;

fn bench_mapping(c: &mut Criterion) {
    let dims = FabricDims::dac13();
    let params = PhysicalParams::dac13();
    let mapper = Mapper::new(dims, params);

    let mut group = c.benchmark_group("qspr_map");
    group.sample_size(10);
    for name in [
        "8bitadder",
        "gf2^16mult",
        "hwb15ps",
        "ham15",
        "hwb50ps",
        "gf2^64mult",
    ] {
        let bench = Benchmark::by_name(name).expect("known benchmark");
        let ft = lower_to_ft(&bench.circuit()).expect("lowers cleanly");
        let qodg = Qodg::from_ft_circuit(&ft);
        group.bench_with_input(BenchmarkId::from_parameter(name), &qodg, |b, qodg| {
            b.iter(|| mapper.map(qodg).expect("fits"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
