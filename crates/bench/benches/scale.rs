//! Scale trajectory: the streaming estimator against the materialized
//! pipeline on `shor_N` workloads, recording **gates/sec** and **peak
//! live heap** (self-measured through [`CountingAlloc`], so the numbers
//! are allocator- and machine-independent requested bytes, not RSS).
//!
//! The gated headline is the *memory ratio* — materialized peak over
//! streaming peak on the same workload and fabric — written as the
//! `"speedup"` field of each `scale/...` JSON line so
//! `scripts/perf_gate.sh` diffs it against the committed
//! `BENCH_scale.json` trajectory. Allocation counts are deterministic,
//! which makes this the rare perf gate that does not flake with runner
//! load. Throughput (`gates_per_sec`) is recorded alongside for the
//! trajectory but never gated — it varies with the machine.
//!
//! `SCALE_BENCH_SMOKE=1` runs only the `shor_64` dual-path point (CI);
//! the full run adds `shor_256` dual-path and the streaming-only
//! `shor_1024` cryptographic-scale point (materializing shor_1024 needs
//! ~1 GB — the point of the streaming path is never paying that).
//!
//! Regenerate the committed trajectory with:
//! `BENCH_JSON=BENCH_scale.json cargo bench -p leqa-bench --bench scale`

use std::io::Write as _;
use std::time::Instant;

use leqa::meter::CountingAlloc;
use leqa::stream::FnSource;
use leqa::Estimator;
use leqa_circuit::{decompose::lower_to_ft, Qodg};
use leqa_fabric::{FabricDims, PhysicalParams};
use leqa_workloads::{circuit_by_name, stream_by_name};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn smoke() -> bool {
    std::env::var("SCALE_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

struct PathRun {
    elapsed_s: f64,
    peak_bytes: usize,
}

/// Runs `f` with the peak-tracking window reset around it.
fn measured(f: impl FnOnce()) -> PathRun {
    let baseline = ALLOC.live_bytes();
    ALLOC.reset_peak();
    let t0 = Instant::now();
    f();
    PathRun {
        elapsed_s: t0.elapsed().as_secs_f64(),
        peak_bytes: ALLOC.peak_bytes().saturating_sub(baseline),
    }
}

/// Streaming path: profile + critical path from the lazy gate stream.
fn run_stream(name: &str, dims: FabricDims) -> (u64, PathRun) {
    let stream = stream_by_name(name).expect("streamable shor workload");
    let ops = stream.ft_op_count();
    let source = FnSource::new(stream.num_qubits(), move || stream.ops());
    let estimator = Estimator::new(dims, PhysicalParams::dac13());
    let run = measured(|| {
        let estimate = estimator.estimate_stream(&source).expect("stream fits");
        std::hint::black_box(estimate.latency);
    });
    (ops, run)
}

/// Materialized path: lower → QODG → estimate, all resident at once —
/// the memory the streaming path exists to avoid.
fn run_materialized(name: &str, dims: FabricDims) -> PathRun {
    let circuit = circuit_by_name(name).expect("named workload");
    let estimator = Estimator::new(dims, PhysicalParams::dac13());
    measured(|| {
        let ft = lower_to_ft(&circuit).expect("shor lowers");
        let qodg = Qodg::from_ft_circuit(&ft);
        let estimate = estimator.estimate(&qodg).expect("fits");
        std::hint::black_box(estimate.latency);
    })
}

fn emit(line: &str) {
    if let Ok(path) = std::env::var("BENCH_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(file, "{line}");
        }
    }
}

/// One dual-path point: both pipelines on the same workload and fabric,
/// gated on the memory ratio.
fn dual_point(name: &str, dims: FabricDims) {
    let (ops, stream) = run_stream(name, dims);
    let materialized = run_materialized(name, dims);
    let gates_per_sec = ops as f64 / stream.elapsed_s;
    let mem_ratio = materialized.peak_bytes as f64 / stream.peak_bytes.max(1) as f64;
    println!(
        "scale/{name}: {ops} gates, streaming {gates_per_sec:.0} gates/s, \
         peak {} vs materialized {} bytes — {mem_ratio:.2}x less memory",
        stream.peak_bytes, materialized.peak_bytes,
    );
    emit(&format!(
        "{{\"name\":\"scale/{name}\",\"gates\":{ops},\"gates_per_sec\":{gates_per_sec:.0},\
         \"stream_peak_bytes\":{},\"materialized_peak_bytes\":{},\"speedup\":{mem_ratio:.4}}}",
        stream.peak_bytes, materialized.peak_bytes,
    ));
}

fn main() {
    // The dac13 fabric fits shor_64's 1162 lowered qubits.
    dual_point("shor_64", FabricDims::dac13());

    if smoke() {
        return;
    }

    // shor_256: 16,930 lowered qubits, ~1.2M ops — the largest point
    // where materializing is still cheap enough to measure against.
    dual_point("shor_256", FabricDims::new(131, 131).expect("valid dims"));

    // Cryptographic scale, streaming only: the trajectory's gates/sec
    // headline. (Materializing shor_1024 needs ~1 GB; the bounded-memory
    // regression test pins the >10x ratio against the analytic floor.)
    let (ops, stream) = run_stream("shor_1024", FabricDims::new(520, 520).expect("valid dims"));
    let gates_per_sec = ops as f64 / stream.elapsed_s;
    println!(
        "scale/shor_1024: {ops} gates, streaming {gates_per_sec:.0} gates/s, \
         peak {} bytes ({:.1} MiB)",
        stream.peak_bytes,
        stream.peak_bytes as f64 / (1 << 20) as f64,
    );
    emit(&format!(
        "{{\"name\":\"scale/shor_1024_stream\",\"gates\":{ops},\
         \"gates_per_sec\":{gates_per_sec:.0},\"stream_peak_bytes\":{}}}",
        stream.peak_bytes,
    ));
}
