//! Warm-restart bench: daemon **startup-to-first-reply**, cold versus
//! store-warmed.
//!
//! The cold path pays the profile pass (IIG + Eq. 7/12 terms) on the
//! first request after every restart; a daemon restarted with
//! `--cache-dir` loads the verified snapshot instead
//! (`leqa_api::store`), so the first reply only pays deserialization.
//! Each sample measures the whole restart: build the session, bind a
//! loopback listener, connect, send one estimate, read the reply.
//! Workload generation and QODG lowering run on both paths, so the
//! ratio hovers near 1x with the profile pass as the margin — the
//! headline bar is *no regression* (a store-backed restart must never
//! be slower than a cold one), and `scripts/perf_gate.sh` pins the
//! trajectory against the committed baseline.
//!
//! `BENCH_JSON=BENCH_throughput.json cargo bench -p leqa-bench --bench
//! warm_restart` appends a `serve/warm_restart` line (speedup +
//! startup-to-first-reply medians) gated by `scripts/perf_gate.sh`.
//! Set `WARM_RESTART_BENCH_SMOKE=1` for the reduced CI variant.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::time::Instant;

use leqa_api::{EstimateRequest, ProgramSpec, Request, Server, Session};

fn smoke() -> bool {
    std::env::var("WARM_RESTART_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

/// One full restart: fresh session (optionally store-backed), fresh
/// listener, one estimate round-trip, graceful shutdown.
fn startup_to_first_reply(cache_dir: Option<&Path>, line: &str) {
    let mut builder = Session::builder();
    if let Some(dir) = cache_dir {
        builder = builder.cache_dir(dir);
    }
    let session = builder.build().expect("session builds");
    let server = Server::new(session);
    let bound = server.bind("127.0.0.1:0").expect("bind loopback");
    let addr = bound.local_addr();
    let handle = std::thread::spawn(move || bound.run());

    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    writeln!(writer, "{line}").expect("send request");
    writer.flush().expect("flush");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read reply");
    assert!(
        reply.starts_with("{\"schema_version\":1,\"op\":\"estimate\""),
        "{reply}"
    );
    writeln!(writer, "{{\"cmd\":\"shutdown\"}}").expect("send shutdown");
    writer.flush().expect("flush");
    reply.clear();
    reader.read_line(&mut reply).expect("read ack");
    handle.join().expect("no panic").expect("clean exit");
}

fn main() {
    let bench = "random_16_60000";
    let line = Request::Estimate(EstimateRequest::new(ProgramSpec::bench(bench)))
        .to_json()
        .encode();
    let dir = std::env::temp_dir().join(format!("leqa-warm-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Populate the store once, untimed: the first store-backed run
    // computes the profile and snapshots it.
    startup_to_first_reply(Some(&dir), &line);

    // Interleave cold/warm pairs so clock drift and background load hit
    // both sides equally, then compare medians.
    let rounds = if smoke() { 3 } else { 7 };
    let mut cold_times = Vec::with_capacity(rounds);
    let mut warm_times = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t0 = Instant::now();
        startup_to_first_reply(None, &line);
        cold_times.push(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        startup_to_first_reply(Some(&dir), &line);
        warm_times.push(t0.elapsed().as_secs_f64());
    }
    let median = |times: &mut Vec<f64>| -> f64 {
        times.sort_by(f64::total_cmp);
        times[times.len() / 2]
    };
    let cold_s = median(&mut cold_times);
    let warm_s = median(&mut warm_times);
    let speedup = cold_s / warm_s;
    let cold_ms = cold_s * 1e3;
    let warm_ms = warm_s * 1e3;

    let verdict = if speedup >= 0.95 { "MET" } else { "NOT MET" };
    println!(
        "warm restart: {speedup:.2}x ({warm_ms:.1} ms store-warmed startup-to-first-reply vs \
         {cold_ms:.1} ms cold, {bench}) — no-regression bar >= 0.95x: {verdict}",
    );

    if let Ok(path) = std::env::var("BENCH_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(
                file,
                "{{\"name\":\"serve/warm_restart\",\"speedup\":{speedup:.4},\"cold_ms\":{cold_ms:.2},\"warm_ms\":{warm_ms:.2},\"bench\":\"{bench}\"}}",
            );
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}
