//! The sweep-engine acceptance bench: a 50-candidate fabric sweep over
//! QFT-64 through the [`ProgramProfile`]-based engine versus 50
//! independent `Estimator::estimate` calls.
//!
//! The engine amortises the program-dependent `O(ops)` work (IIG, zone
//! statistics, uncongested-delay terms, critical-path passes via convex
//! census bisection), so the sweep must come out ≥ 5× faster while
//! producing bit-identical estimates (`tests/differential.rs` pins the
//! bit-identity; this bench prints and checks the speedup).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use leqa::sweep::sweep_fabrics;
use leqa::{Estimator, EstimatorOptions, ProgramProfile};
use leqa_circuit::{decompose::lower_to_ft, Qodg};
use leqa_fabric::{FabricDims, PhysicalParams};
use leqa_workloads::qft::qft;

/// QFT-64 (64 logical qubits ⇒ candidates need side ≥ 8).
fn qft64() -> Qodg {
    let ft = lower_to_ft(&qft(64, 16)).expect("qft lowers cleanly");
    Qodg::from_ft_circuit(&ft)
}

/// 50 square candidates, sides 8..=57.
fn candidates() -> Vec<FabricDims> {
    (8u32..58)
        .map(|s| FabricDims::new(s, s).expect("valid dims"))
        .collect()
}

fn bench_sweep_vs_independent(c: &mut Criterion) {
    let qodg = qft64();
    let params = PhysicalParams::dac13();
    let options = EstimatorOptions::default();
    let candidates = candidates();

    let mut group = c.benchmark_group("sweep_qft64_50");
    group.sample_size(10);

    group.bench_function(
        criterion::BenchmarkId::from_parameter("profile_sweep"),
        |b| {
            b.iter(|| sweep_fabrics(&qodg, &params, options, candidates.iter().copied()));
        },
    );

    group.bench_function(
        criterion::BenchmarkId::from_parameter("independent_estimates"),
        |b| {
            b.iter(|| {
                candidates
                    .iter()
                    .map(|&dims| {
                        Estimator::with_options(dims, params.clone(), options)
                            .estimate(&qodg)
                            .ok()
                    })
                    .collect::<Vec<_>>()
            });
        },
    );

    group.finish();

    // Headline number: median-of-5 wall-clock ratio, printed so the
    // acceptance criterion (≥ 5×) is visible in plain `cargo bench` output.
    let time_runs = |f: &dyn Fn()| -> f64 {
        let mut samples = Vec::new();
        for _ in 0..5 {
            let t0 = Instant::now();
            f();
            samples.push(t0.elapsed().as_secs_f64());
        }
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    };
    let sweep_s = time_runs(&|| {
        std::hint::black_box(sweep_fabrics(
            &qodg,
            &params,
            options,
            candidates.iter().copied(),
        ));
    });
    let independent_s = time_runs(&|| {
        std::hint::black_box(
            candidates
                .iter()
                .map(|&dims| {
                    Estimator::with_options(dims, params.clone(), options)
                        .estimate(&qodg)
                        .ok()
                })
                .collect::<Vec<_>>(),
        );
    });
    let speedup = independent_s / sweep_s;
    println!(
        "sweep_qft64_50 speedup: {speedup:.1}x (independent {:.2} ms vs sweep {:.2} ms) — target >= 5x: {}",
        independent_s * 1e3,
        sweep_s * 1e3,
        if speedup >= 5.0 { "MET" } else { "NOT MET" },
    );

    // The profile alone must also pay off for repeated single estimates.
    let profile = ProgramProfile::new(&qodg);
    let estimator = Estimator::with_options(candidates[40], params.clone(), options);
    let direct = estimator.estimate(&qodg).expect("fits");
    let via_profile = estimator.estimate_with_profile(&profile).expect("fits");
    assert_eq!(
        direct.latency, via_profile.latency,
        "profile path must be bit-identical"
    );
}

criterion_group!(benches, bench_sweep_vs_independent);
criterion_main!(benches);
