//! Benchmark harness for the LEQA reproduction.
//!
//! Each table and figure of the paper has a binary that regenerates it
//! (see DESIGN.md §3 for the full index):
//!
//! | Target | Regenerates |
//! |---|---|
//! | `cargo run -p leqa-bench --bin table1 --release` | Table 1 (physical parameters) |
//! | `cargo run -p leqa-bench --bin table2 --release` | Table 2 (accuracy: QSPR vs LEQA) |
//! | `cargo run -p leqa-bench --bin table3 --release` | Table 3 (runtimes and speedup) |
//! | `cargo run -p leqa-bench --bin scaling --release` | the prose scaling claim (QSPR ~ ops^1.5, LEQA linear) |
//! | `cargo run -p leqa-bench --bin shor_extrapolation --release` | the prose Shor-1024 extrapolation |
//! | `cargo run -p leqa-bench --bin ablations --release` | DESIGN.md §5 accuracy ablations |
//! | `cargo bench -p leqa-bench` | Criterion runtime benches per table row |
//!
//! The library part hosts the shared runner ([`run_benchmark`] for one row,
//! [`run_suite`] for many) and a tiny least-squares power-law fitter used
//! by the scaling study.
//!
//! # Profile reuse and the sweep benches
//!
//! LEQA's hot path is split into a per-program [`leqa::ProgramProfile`]
//! (IIG, zone statistics, uncongested-delay terms — `O(ops)`) and a cheap
//! per-fabric remainder. `benches/sweep_profile.rs` measures the payoff:
//! a 50-candidate [`leqa::sweep::sweep_fabrics`] over QFT-64 against 50
//! independent [`leqa::Estimator::estimate`] calls, asserting the sweep
//! engine's ≥5× speedup while `tests/differential.rs` (workspace root)
//! pins bit-identical estimates. `benches/throughput.rs` measures the
//! *service* layer: one shared `Session` hammered serially vs on the
//! persistent worker pool, the `batch` endpoint, and the QFT-64
//! `compare` exercising the zero-alloc mapper scratch (headline: the
//! ≥3× batch-throughput target on multi-core runners, recorded to
//! `BENCH_throughput.json`). See PERF.md for the full API tour.
//!
//! # The `parallel` feature
//!
//! `--features parallel` runs [`run_suite`]'s independent rows on scoped
//! worker threads (one per core) and enables the thread-parallel
//! per-candidate loop inside `leqa`'s sweep engine. Latency/accuracy
//! results are identical to the serial engines'. Timing-sensitive
//! binaries (Table 3, the scaling study) deliberately stay serial so
//! their wall-clock columns are uncontended — see [`run_suite`]'s docs.
//!
//! # Recording baselines
//!
//! The criterion harness appends one JSON line per completed benchmark to
//! the file named by `BENCH_JSON`, so
//! `BENCH_JSON=BENCH_estimator.json cargo bench -p leqa-bench` records a
//! machine-readable baseline to diff across commits (PERF.md documents the
//! workflow).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

use leqa::{Estimate, Estimator};
use leqa_circuit::{decompose::lower_to_ft, Qodg};
use leqa_fabric::{FabricDims, PhysicalParams};
use leqa_workloads::Benchmark;
use qspr::{Mapper, MappingResult};

/// One measured row of the reproduction (the measured analogue of
/// [`leqa_workloads::PaperRow`]).
#[derive(Debug, Clone)]
pub struct RunRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Logical qubits after lowering.
    pub qubits: u64,
    /// FT ops after lowering.
    pub ops: u64,
    /// QSPR's simulated program latency, seconds.
    pub actual_s: f64,
    /// LEQA's estimated program latency, seconds.
    pub estimated_s: f64,
    /// Absolute error, percent.
    pub error_pct: f64,
    /// QSPR wall-clock runtime, seconds.
    pub qspr_runtime_s: f64,
    /// LEQA wall-clock runtime, seconds.
    pub leqa_runtime_s: f64,
    /// Runtime speedup (QSPR / LEQA).
    pub speedup: f64,
}

/// Lowers a benchmark, runs both QSPR and LEQA on the DAC'13 fabric, and
/// measures wall-clock runtimes.
///
/// LEQA's runtime includes QODG→IIG traversal and the critical-path pass,
/// as in the paper (the two tools "share the same parsers", so parsing is
/// excluded on both sides; QODG construction is shared and excluded too).
///
/// # Panics
///
/// Panics if the benchmark cannot be lowered or mapped (cannot happen for
/// the built-in suite on the DAC'13 fabric).
pub fn run_benchmark(bench: &Benchmark, dims: FabricDims, params: &PhysicalParams) -> RunRow {
    let circuit = bench.circuit();
    let ft = lower_to_ft(&circuit).expect("suite circuits lower cleanly");
    let qodg = Qodg::from_ft_circuit(&ft);

    let mapper = Mapper::new(dims, params.clone());
    let t0 = Instant::now();
    let actual: MappingResult = mapper.map(&qodg).expect("suite fits the fabric");
    let qspr_runtime_s = t0.elapsed().as_secs_f64();

    let estimator = Estimator::new(dims, params.clone());
    let t0 = Instant::now();
    let estimate: Estimate = estimator.estimate(&qodg).expect("suite fits the fabric");
    let leqa_runtime_s = t0.elapsed().as_secs_f64();

    let actual_s = actual.latency.as_secs();
    let estimated_s = estimate.latency.as_secs();
    RunRow {
        name: bench.name,
        qubits: qodg.num_qubits() as u64,
        ops: qodg.op_count() as u64,
        actual_s,
        estimated_s,
        error_pct: 100.0 * (estimated_s - actual_s).abs() / actual_s,
        qspr_runtime_s,
        leqa_runtime_s,
        speedup: qspr_runtime_s / leqa_runtime_s,
    }
}

/// Runs a set of suite benchmarks, returning one row per benchmark in
/// input order.
///
/// Rows are independent, so with the `parallel` feature they run on scoped
/// worker threads (via [`leqa::exec::parallel_map`], capped by the
/// platform's available parallelism); latency/accuracy columns are
/// identical either way. **The wall-clock columns (`qspr_runtime_s`,
/// `leqa_runtime_s`, `speedup`) are contended under the parallel runner**
/// — concurrent rows compete for cores and caches — so timing-sensitive
/// consumers (the Table 3 binary, the scaling study) must call
/// [`run_benchmark`] serially instead; accuracy-only consumers (Table 2)
/// can parallelize freely.
///
/// # Panics
///
/// Same as [`run_benchmark`].
pub fn run_suite(benches: &[&Benchmark], dims: FabricDims, params: &PhysicalParams) -> Vec<RunRow> {
    #[cfg(feature = "parallel")]
    {
        leqa::exec::parallel_map(benches, |b| run_benchmark(b, dims, params))
    }
    #[cfg(not(feature = "parallel"))]
    {
        benches
            .iter()
            .map(|b| run_benchmark(b, dims, params))
            .collect()
    }
}

impl RunRow {
    /// Serializes the row for machine-readable table output (the
    /// `--format json` path of the table binaries), using the same
    /// dependency-free JSON document model as the service layer.
    #[must_use]
    pub fn to_json(&self) -> leqa_api::json::Json {
        use leqa_api::json::Json;
        Json::obj(vec![
            ("name", Json::str(self.name)),
            ("qubits", Json::Num(self.qubits as f64)),
            ("ops", Json::Num(self.ops as f64)),
            ("actual_s", Json::Num(self.actual_s)),
            ("estimated_s", Json::Num(self.estimated_s)),
            ("error_pct", Json::Num(self.error_pct)),
            ("qspr_runtime_s", Json::Num(self.qspr_runtime_s)),
            ("leqa_runtime_s", Json::Num(self.leqa_runtime_s)),
            ("speedup", Json::Num(self.speedup)),
        ])
    }
}

/// Least-squares fit of `y = c·x^e` in log-log space; returns `(e, c)`.
///
/// # Panics
///
/// Panics if fewer than two points are given or any value is
/// non-positive.
pub fn fit_power_law(points: &[(f64, f64)]) -> (f64, f64) {
    assert!(points.len() >= 2, "need at least two points");
    let logs: Vec<(f64, f64)> = points
        .iter()
        .map(|&(x, y)| {
            assert!(x > 0.0 && y > 0.0, "power-law fit needs positive data");
            (x.ln(), y.ln())
        })
        .collect();
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|p| p.0).sum();
    let sy: f64 = logs.iter().map(|p| p.1).sum();
    let sxx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
    let exponent = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let intercept = (sy - exponent * sx) / n;
    (exponent, intercept.exp())
}

/// Formats a float in the paper's `1.617E+00` scientific style.
pub fn sci(x: f64) -> String {
    format!("{x:.3E}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_law_recovers_exact_exponent() {
        let pts: Vec<(f64, f64)> = (1..6)
            .map(|i| {
                let x = i as f64;
                (x, 3.0 * x.powf(1.5))
            })
            .collect();
        let (e, c) = fit_power_law(&pts);
        assert!((e - 1.5).abs() < 1e-9);
        assert!((c - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn fit_needs_two_points() {
        fit_power_law(&[(1.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "positive data")]
    fn fit_rejects_nonpositive() {
        fit_power_law(&[(1.0, 1.0), (2.0, -1.0)]);
    }

    #[test]
    fn sci_format() {
        assert_eq!(sci(1.617), "1.617E0");
    }

    #[test]
    fn run_benchmark_smoke() {
        let b = leqa_workloads::Benchmark::by_name("8bitadder").unwrap();
        let row = run_benchmark(b, FabricDims::dac13(), &PhysicalParams::dac13());
        assert_eq!(row.qubits, 24);
        assert_eq!(row.ops, 822);
        assert!(row.actual_s > 0.0 && row.estimated_s > 0.0);
        assert!(row.error_pct < 50.0);
    }
}
