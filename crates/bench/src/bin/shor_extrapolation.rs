//! Regenerates the paper's prose extrapolation (§4.2): mapping Shor-1024
//! (≈1.35·10¹⁰ logical operations after \[\[7,1,3\]\]² encoding) would take
//! QSPR ~2 years but LEQA only ~16.5 hours.
//!
//! The paper extrapolates each tool's measured runtime-vs-ops power law to
//! the Shor op count; this binary does the same with the power laws fitted
//! on our own measurements, and also shows the paper's published fit for
//! comparison.

use std::time::Instant;

use leqa::Estimator;
use leqa_bench::fit_power_law;
use leqa_circuit::{decompose::lower_to_ft, Qodg};
use leqa_fabric::{FabricDims, PhysicalParams};
use leqa_workloads::gf2::gf2_mult;
use qspr::Mapper;

/// Logical op count of Shor-1024 under two-level \[\[7,1,3\]\] Steane coding
/// (§4.2: 1.35·10¹⁵ physical ops / ~10⁵ physical ops per logical op).
const SHOR_OPS: f64 = 1.35e10;

fn main() {
    let dims = FabricDims::dac13();
    let params = PhysicalParams::dac13();

    // Measure the two tools on a gf2 sweep to fit their scaling laws.
    let mut qspr_points = Vec::new();
    let mut leqa_points = Vec::new();
    for n in [32u32, 64, 128, 256] {
        let ft = lower_to_ft(&gf2_mult(n)).expect("gf2 lowers cleanly");
        let qodg = Qodg::from_ft_circuit(&ft);
        let ops = qodg.op_count() as f64;

        let t0 = Instant::now();
        Mapper::new(dims, params.clone())
            .map(&qodg)
            .expect("fits the fabric");
        qspr_points.push((ops, t0.elapsed().as_secs_f64()));

        let t0 = Instant::now();
        Estimator::new(dims, params.clone())
            .estimate(&qodg)
            .expect("fits the fabric");
        leqa_points.push((ops, t0.elapsed().as_secs_f64()));
    }

    let (qe, qc) = fit_power_law(&qspr_points);
    let (le, lc) = fit_power_law(&leqa_points);

    let qspr_secs = qc * SHOR_OPS.powf(qe);
    let leqa_secs = lc * SHOR_OPS.powf(le);

    println!("Shor-1024 extrapolation ({SHOR_OPS:.2e} logical ops)");
    println!("---------------------------------------------------");
    println!(
        "QSPR:  runtime ~ {qc:.3e} * ops^{qe:.2}  ->  {:.1} days ({:.2} years)",
        qspr_secs / 86_400.0,
        qspr_secs / (365.25 * 86_400.0)
    );
    println!(
        "LEQA:  runtime ~ {lc:.3e} * ops^{le:.2}  ->  {:.1} hours",
        leqa_secs / 3_600.0
    );
    println!(
        "ratio: {:.0}x  (paper: ~2 years vs 16.5 hours, ~1000x)",
        qspr_secs / leqa_secs
    );
    println!();
    println!(
        "note: absolute numbers track our Rust implementations' constants; the \
         reproduced claim is the gap's growth (QSPR exponent {qe:.2} > LEQA exponent {le:.2})."
    );
}
