//! Regenerates Table 3: benchmark sizes, QSPR vs LEQA runtimes and the
//! speedup, side by side with the paper's published numbers.
//!
//! Absolute runtimes are incomparable across machines and languages (the
//! paper used Java on a 2010 Pentium dual-core); what must reproduce is
//! the *shape*: the speedup grows with the operation count.

use leqa_bench::run_benchmark;
use leqa_fabric::{FabricDims, PhysicalParams};
use leqa_workloads::SUITE;

fn main() {
    let dims = FabricDims::dac13();
    let params = PhysicalParams::dac13();

    println!("Table 3. Benchmark sizes and runtimes");
    println!(
        "{:<16} {:>7} {:>9} | {:>9} {:>9} {:>8} | {:>9} {:>9} {:>8}",
        "", "", "", "——", "this repro", "——", "——", "paper", "——"
    );
    println!(
        "{:<16} {:>7} {:>9} | {:>9} {:>9} {:>8} | {:>9} {:>9} {:>8}",
        "Benchmark",
        "Qubits",
        "Ops",
        "QSPR(s)",
        "LEQA(s)",
        "Speedup",
        "QSPR(s)",
        "LEQA(s)",
        "Speedup"
    );
    println!("{}", "-".repeat(110));

    // Always serial: this table's whole point is the wall-clock columns,
    // which concurrent rows would contend for (see `run_suite`'s docs).
    let mut first_speedup = None;
    let mut last_speedup = 0.0;
    for bench in &SUITE {
        let row = run_benchmark(bench, dims, &params);
        if first_speedup.is_none() {
            first_speedup = Some(row.speedup);
        }
        last_speedup = row.speedup;
        println!(
            "{:<16} {:>7} {:>9} | {:>9.4} {:>9.5} {:>8.1} | {:>9.1} {:>9.3} {:>8.1}",
            row.name,
            row.qubits,
            row.ops,
            row.qspr_runtime_s,
            row.leqa_runtime_s,
            row.speedup,
            bench.paper.qspr_runtime_s,
            bench.paper.leqa_runtime_s,
            bench.paper.speedup,
        );
    }
    println!("{}", "-".repeat(110));
    println!(
        "speedup trend: {:.1}x on the smallest benchmark -> {:.1}x on the largest \
         (paper: 8.2x -> 114.7x)",
        first_speedup.unwrap_or(0.0),
        last_speedup
    );
}
