//! Regenerates the paper's prose scaling claim (§4.2): "QSPR runtime
//! scales super linearly with operation count (with degree of 1.5) whereas
//! LEQA runtime depends only linearly on this count".
//!
//! Sweeps the GF(2^n) multiplier family (whose op count grows as `15n²`),
//! measures both tools' wall-clock runtimes, and fits log-log power laws
//! runtime = c · ops^e.

use std::time::Instant;

use leqa::Estimator;
use leqa_bench::fit_power_law;
use leqa_circuit::{decompose::lower_to_ft, Qodg};
use leqa_fabric::{FabricDims, PhysicalParams};
use leqa_workloads::gf2::gf2_mult;
use qspr::Mapper;

fn main() {
    let dims = FabricDims::dac13();
    let params = PhysicalParams::dac13();
    let sizes = [16u32, 24, 32, 48, 64, 96, 128, 192, 256];

    println!("Runtime scaling over the gf2^n mult family");
    println!(
        "{:<6} {:>9} {:>12} {:>12} {:>9}",
        "n", "ops", "QSPR(s)", "LEQA(s)", "speedup"
    );
    println!("{}", "-".repeat(52));

    let mut qspr_points = Vec::new();
    let mut leqa_points = Vec::new();
    for &n in &sizes {
        let ft = lower_to_ft(&gf2_mult(n)).expect("gf2 lowers cleanly");
        let qodg = Qodg::from_ft_circuit(&ft);
        let ops = qodg.op_count() as f64;

        let t0 = Instant::now();
        Mapper::new(dims, params.clone())
            .map(&qodg)
            .expect("fits the fabric");
        let tq = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        Estimator::new(dims, params.clone())
            .estimate(&qodg)
            .expect("fits the fabric");
        let tl = t0.elapsed().as_secs_f64();

        println!(
            "{:<6} {:>9} {:>12.4} {:>12.5} {:>9.1}",
            n,
            ops,
            tq,
            tl,
            tq / tl
        );
        qspr_points.push((ops, tq));
        leqa_points.push((ops, tl));
    }

    let (qspr_exp, _) = fit_power_law(&qspr_points);
    let (leqa_exp, _) = fit_power_law(&leqa_points);
    println!("{}", "-".repeat(52));
    println!(
        "fitted exponents: QSPR runtime ~ ops^{qspr_exp:.2} (paper: ~1.5), \
         LEQA runtime ~ ops^{leqa_exp:.2} (paper: ~1.0)"
    );
    println!(
        "superlinear speedup growth: {}",
        if qspr_exp > leqa_exp {
            "confirmed"
        } else {
            "NOT observed"
        }
    );
}
