//! Validates the paper's analytic models against independent oracles
//! (the `leqa-validate` crate): Monte-Carlo zone dropping for Eq. 4,
//! event-driven queue simulation for Eqs. 9–11, and exact Held–Karp
//! Hamiltonian paths for Eq. 15.
//!
//! This is the evidence behind the "model internals" row of
//! EXPERIMENTS.md.

use leqa_fabric::{FabricDims, Micros};
use leqa_validate::{coverage, hamiltonian, queueing};

fn main() {
    println!("Eq. 4 — E[S_q] vs Monte-Carlo zone dropping (15x15 fabric, 8 zones of side 3)");
    let dims = FabricDims::new(15, 15).expect("valid dims");
    let comparisons = coverage::compare_surfaces(dims, 8, 3, 6, 4_000, 1);
    println!(
        "{:>4} {:>12} {:>12} {:>8}",
        "q", "simulated", "analytic", "err(%)"
    );
    for (k, c) in comparisons.iter().enumerate() {
        // Relative error is meaningless on near-zero tail mass.
        let err = if c.measured.max(c.predicted) > 1e-3 {
            format!("{:8.2}", 100.0 * c.relative_error())
        } else {
            "  (tail)".to_string()
        };
        println!(
            "{:>4} {:>12.4} {:>12.4} {err}",
            k + 1,
            c.measured,
            c.predicted
        );
    }

    println!("\nEqs. 9–11 — M/M/1 queue vs event simulation (N_c = 5, d_uncong = 800 µs)");
    println!(
        "{:>4} {:>14} {:>14} {:>8}",
        "q", "simulated W", "Eq. 11 W", "err(%)"
    );
    for q in [1u64, 3, 6, 10, 20] {
        let c = queueing::compare_wait_time(5, Micros::new(800.0), q, 400_000, q);
        println!(
            "{:>4} {:>14.1} {:>14.1} {:>8.2}",
            q,
            c.measured,
            c.predicted,
            100.0 * c.relative_error()
        );
    }

    println!("\nEq. 15 — TSP-bound path estimate vs exact Held–Karp expectation");
    println!(
        "{:>4} {:>12} {:>12} {:>8}",
        "M_i", "exact E[l]", "Eq. 15", "err(%)"
    );
    for m in [2u64, 4, 6, 9, 12] {
        let c = hamiltonian::compare_expected_path(m, 400, m);
        println!(
            "{:>4} {:>12.4} {:>12.4} {:>8.2}",
            m,
            c.measured,
            c.predicted,
            100.0 * c.relative_error()
        );
    }
    println!(
        "\nthe TSP constants are asymptotic: expect Eq. 15 to run tight at \
         moderate M and loose at M ≤ 3 — slack the end-to-end 2–3% error \
         absorbs (Table 2)."
    );
}
