//! Regenerates Table 2: actual latency (QSPR) vs estimated latency (LEQA)
//! per benchmark, with absolute error — side by side with the paper's
//! published numbers.

use leqa_bench::{run_suite, sci};
use leqa_fabric::{FabricDims, PhysicalParams};
use leqa_workloads::SUITE;

fn main() {
    // `--max-ops N` restricts the run to benchmarks whose published op
    // count is at most N — the reduced suite CI smoke-runs.
    let mut max_ops = u64::MAX;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--max-ops" => {
                i += 1;
                max_ops = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--max-ops needs an integer");
            }
            other => panic!("unknown argument `{other}` (supported: --max-ops N)"),
        }
        i += 1;
    }

    let dims = FabricDims::dac13();
    let params = PhysicalParams::dac13();

    println!("Table 2. Actual (QSPR) vs estimated (LEQA) latency");
    println!(
        "{:<16} | {:>11} {:>11} {:>7} | {:>11} {:>11} {:>7}",
        "", "—— this", "reproduction", "——", "—— paper", "(DAC'13)", "——"
    );
    println!(
        "{:<16} | {:>11} {:>11} {:>7} | {:>11} {:>11} {:>7}",
        "Benchmark", "Actual(s)", "Est.(s)", "Err(%)", "Actual(s)", "Est.(s)", "Err(%)"
    );
    println!("{}", "-".repeat(16 + 3 + 11 * 4 + 7 * 2 + 10));

    let benches: Vec<_> = SUITE.iter().filter(|b| b.paper.ops <= max_ops).collect();
    let rows = run_suite(&benches, dims, &params);
    let mut errors = Vec::new();
    for (bench, row) in benches.iter().zip(rows) {
        errors.push(row.error_pct);
        println!(
            "{:<16} | {:>11} {:>11} {:>7.2} | {:>11} {:>11} {:>7.2}",
            row.name,
            sci(row.actual_s),
            sci(row.estimated_s),
            row.error_pct,
            sci(bench.paper.actual_delay_s),
            sci(bench.paper.estimated_delay_s),
            bench.paper.error_pct,
        );
    }

    let avg = errors.iter().sum::<f64>() / errors.len() as f64;
    let max = errors.iter().cloned().fold(0.0, f64::max);
    println!("{}", "-".repeat(16 + 3 + 11 * 4 + 7 * 2 + 10));
    println!("average error: {avg:.2}% (paper: 2.11%)   max error: {max:.2}% (paper: <9%)");
}
