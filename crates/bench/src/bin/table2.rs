//! Regenerates Table 2: actual latency (QSPR) vs estimated latency (LEQA)
//! per benchmark, with absolute error — side by side with the paper's
//! published numbers.

use leqa_bench::{run_benchmark, sci};
use leqa_fabric::{FabricDims, PhysicalParams};
use leqa_workloads::SUITE;

fn main() {
    let dims = FabricDims::dac13();
    let params = PhysicalParams::dac13();

    println!("Table 2. Actual (QSPR) vs estimated (LEQA) latency");
    println!(
        "{:<16} | {:>11} {:>11} {:>7} | {:>11} {:>11} {:>7}",
        "", "—— this", "reproduction", "——", "—— paper", "(DAC'13)", "——"
    );
    println!(
        "{:<16} | {:>11} {:>11} {:>7} | {:>11} {:>11} {:>7}",
        "Benchmark", "Actual(s)", "Est.(s)", "Err(%)", "Actual(s)", "Est.(s)", "Err(%)"
    );
    println!("{}", "-".repeat(16 + 3 + 11 * 4 + 7 * 2 + 10));

    let mut errors = Vec::new();
    for bench in &SUITE {
        let row = run_benchmark(bench, dims, &params);
        errors.push(row.error_pct);
        println!(
            "{:<16} | {:>11} {:>11} {:>7.2} | {:>11} {:>11} {:>7.2}",
            row.name,
            sci(row.actual_s),
            sci(row.estimated_s),
            row.error_pct,
            sci(bench.paper.actual_delay_s),
            sci(bench.paper.estimated_delay_s),
            bench.paper.error_pct,
        );
    }

    let avg = errors.iter().sum::<f64>() / errors.len() as f64;
    let max = errors.iter().cloned().fold(0.0, f64::max);
    println!("{}", "-".repeat(16 + 3 + 11 * 4 + 7 * 2 + 10));
    println!("average error: {avg:.2}% (paper: 2.11%)   max error: {max:.2}% (paper: <9%)");
}
