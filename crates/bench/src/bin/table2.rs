//! Regenerates Table 2: actual latency (QSPR) vs estimated latency (LEQA)
//! per benchmark, with absolute error — side by side with the paper's
//! published numbers.

use leqa_bench::{run_suite, sci};
use leqa_fabric::{FabricDims, PhysicalParams};
use leqa_workloads::SUITE;

fn main() {
    // `--max-ops N` restricts the run to benchmarks whose published op
    // count is at most N — the reduced suite CI smoke-runs. `--format
    // json` emits one versioned envelope instead of the table.
    let mut max_ops = u64::MAX;
    let mut json = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--max-ops" => {
                i += 1;
                max_ops = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--max-ops needs an integer");
            }
            "--format" => {
                i += 1;
                json = match args.get(i).map(String::as_str) {
                    Some("json") => true,
                    Some("text") => false,
                    other => panic!("--format needs json|text, got {other:?}"),
                };
            }
            other => {
                panic!("unknown argument `{other}` (supported: --max-ops N, --format json|text)")
            }
        }
        i += 1;
    }

    let dims = FabricDims::dac13();
    let params = PhysicalParams::dac13();

    if json {
        use leqa_api::json::Json;
        let benches: Vec<_> = SUITE.iter().filter(|b| b.paper.ops <= max_ops).collect();
        let rows = run_suite(&benches, dims, &params);
        // No rows → null aggregates: an empty filtered run must not read
        // as a perfect (0% error) one.
        let (avg, max) = if rows.is_empty() {
            (Json::Null, Json::Null)
        } else {
            (
                Json::Num(rows.iter().map(|r| r.error_pct).sum::<f64>() / rows.len() as f64),
                Json::Num(rows.iter().map(|r| r.error_pct).fold(0.0, f64::max)),
            )
        };
        let doc = Json::obj(vec![
            ("schema_version", Json::num(leqa_api::SCHEMA_VERSION as u32)),
            ("op", Json::str("table2")),
            (
                "rows",
                Json::Arr(rows.iter().map(|r| r.to_json()).collect()),
            ),
            ("average_error_pct", avg),
            ("max_error_pct", max),
        ]);
        println!("{}", doc.encode());
        return;
    }

    println!("Table 2. Actual (QSPR) vs estimated (LEQA) latency");
    println!(
        "{:<16} | {:>11} {:>11} {:>7} | {:>11} {:>11} {:>7}",
        "", "—— this", "reproduction", "——", "—— paper", "(DAC'13)", "——"
    );
    println!(
        "{:<16} | {:>11} {:>11} {:>7} | {:>11} {:>11} {:>7}",
        "Benchmark", "Actual(s)", "Est.(s)", "Err(%)", "Actual(s)", "Est.(s)", "Err(%)"
    );
    println!("{}", "-".repeat(16 + 3 + 11 * 4 + 7 * 2 + 10));

    let benches: Vec<_> = SUITE.iter().filter(|b| b.paper.ops <= max_ops).collect();
    let rows = run_suite(&benches, dims, &params);
    let mut errors = Vec::new();
    for (bench, row) in benches.iter().zip(rows) {
        errors.push(row.error_pct);
        println!(
            "{:<16} | {:>11} {:>11} {:>7.2} | {:>11} {:>11} {:>7.2}",
            row.name,
            sci(row.actual_s),
            sci(row.estimated_s),
            row.error_pct,
            sci(bench.paper.actual_delay_s),
            sci(bench.paper.estimated_delay_s),
            bench.paper.error_pct,
        );
    }

    let avg = errors.iter().sum::<f64>() / errors.len() as f64;
    let max = errors.iter().cloned().fold(0.0, f64::max);
    println!("{}", "-".repeat(16 + 3 + 11 * 4 + 7 * 2 + 10));
    println!("average error: {avg:.2}% (paper: 2.11%)   max error: {max:.2}% (paper: <9%)");
}
