//! Regenerates Table 1: the physical parameters of the TQA.
//!
//! These are inputs, not measurements; the binary prints the parameter set
//! the whole reproduction uses so reports are self-contained.

use leqa_fabric::{FabricDims, OneQubitKind, PhysicalParams};

fn main() {
    let p = PhysicalParams::dac13();
    let dims = FabricDims::dac13();
    let d = p.gate_delays();

    println!("Table 1. List of physical parameters of the TQA");
    println!("------------------------------------------------");
    println!("{:<14} {:>10}", "Parameter", "Value");
    println!(
        "{:<14} {:>10}",
        "d_H",
        format!("{}µs", d.one_qubit(OneQubitKind::H).as_f64())
    );
    println!(
        "{:<14} {:>10}",
        "d_T, d_T+",
        format!("{}µs", d.one_qubit(OneQubitKind::T).as_f64())
    );
    println!(
        "{:<14} {:>10}",
        "d_X, d_Y, d_Z",
        format!("{}µs", d.one_qubit(OneQubitKind::X).as_f64())
    );
    println!(
        "{:<14} {:>10}",
        "d_CNOT",
        format!("{}µs", d.cnot().as_f64())
    );
    println!("{:<14} {:>10}", "N_c", p.channel_capacity());
    println!("{:<14} {:>10}", "v", p.qubit_speed());
    println!(
        "{:<14} {:>10}",
        "A = a x b",
        format!("{} = {}x{}", dims.area(), dims.width(), dims.height())
    );
    println!(
        "{:<14} {:>10}",
        "T_move",
        format!("{}µs", p.t_move().as_f64())
    );
}
