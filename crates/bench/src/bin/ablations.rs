//! Accuracy ablations for the design choices called out in DESIGN.md §5:
//!
//! 1. `E[S_q]` truncation (5 vs 20 vs all `Q` terms, §3.1),
//! 2. zone-side rounding in Eq. 5 (floor vs ceil vs round),
//! 3. critical path with vs without the routing-latency update (line 19),
//! 4. QSPR placement strategy (IIG-clustered vs row-major vs random).
//!
//! Each ablation reports the suite-average absolute error against the
//! default-configuration QSPR oracle (except 4, which ablates the oracle
//! itself and reports the latency impact).

use leqa::{Estimator, EstimatorOptions, ZoneRounding};
use leqa_circuit::{decompose::lower_to_ft, Qodg};
use leqa_fabric::{FabricDims, PhysicalParams};
use leqa_workloads::SUITE;
use qspr::{Mapper, MapperConfig, MovementModel, PlacementStrategy, RouterStrategy};

/// Benchmarks used for the ablations (a spread of families and sizes,
/// keeping the runtime reasonable).
const PICKS: [&str; 8] = [
    "8bitadder",
    "gf2^16mult",
    "hwb15ps",
    "ham15",
    "hwb50ps",
    "mod1048576adder",
    "gf2^64mult",
    "hwb100ps",
];

fn main() {
    let dims = FabricDims::dac13();
    let params = PhysicalParams::dac13();

    // Precompute QODGs and oracle latencies once.
    let mut cases = Vec::new();
    for name in PICKS {
        let bench = leqa_workloads::Benchmark::by_name(name).expect("known benchmark");
        let ft = lower_to_ft(&bench.circuit()).expect("suite lowers cleanly");
        let qodg = Qodg::from_ft_circuit(&ft);
        let actual = Mapper::new(dims, params.clone())
            .map(&qodg)
            .expect("fits the fabric")
            .latency
            .as_secs();
        cases.push((name, qodg, actual));
    }

    let avg_error = |options: EstimatorOptions| -> f64 {
        let estimator = Estimator::with_options(dims, params.clone(), options);
        let mut total = 0.0;
        for (_, qodg, actual) in &cases {
            let est = estimator.estimate(qodg).expect("fits the fabric");
            total += 100.0 * (est.latency.as_secs() - actual).abs() / actual;
        }
        total / cases.len() as f64
    };

    println!("Ablation 1: E[S_q] truncation (paper uses 20 terms)");
    for terms in [1usize, 5, 20, 4000] {
        let err = avg_error(EstimatorOptions {
            max_esq_terms: terms,
            ..Default::default()
        });
        let label = if terms >= 4000 {
            "all".to_string()
        } else {
            terms.to_string()
        };
        println!("  terms = {label:>4}: avg error {err:.2}%");
    }

    println!("\nAblation 2: zone-side rounding in Eq. 5");
    for (rounding, label) in [
        (ZoneRounding::Floor, "floor"),
        (ZoneRounding::Round, "round"),
        (ZoneRounding::Ceil, "ceil (default)"),
    ] {
        let err = avg_error(EstimatorOptions {
            zone_rounding: rounding,
            ..Default::default()
        });
        println!("  {label:<15}: avg error {err:.2}%");
    }

    println!("\nAblation 3: critical path with vs without the routing update (line 19)");
    for (update, label) in [(true, "updated (default)"), (false, "bare gate delays")] {
        let err = avg_error(EstimatorOptions {
            update_critical_path: update,
            ..Default::default()
        });
        println!("  {label:<18}: avg error {err:.2}%");
    }

    println!("\nAblation 4: QSPR placement strategy (oracle latency impact)");
    for (strategy, label) in [
        (PlacementStrategy::IigCluster, "iig-cluster (default)"),
        (PlacementStrategy::RowMajor, "row-major"),
        (PlacementStrategy::Random, "random"),
    ] {
        let mut ratio_sum = 0.0;
        for (_, qodg, baseline) in &cases {
            let mapper = Mapper::with_config(MapperConfig {
                dims,
                params: params.clone(),
                placement: strategy,
                router: Default::default(),
                movement: Default::default(),
                seed: 1,
            });
            let latency = mapper.map(qodg).expect("fits the fabric").latency.as_secs();
            ratio_sum += latency / baseline;
        }
        println!(
            "  {label:<22}: avg latency {:.2}x the default placement",
            ratio_sum / cases.len() as f64
        );
    }

    // On the paper's roomy 60x60 / N_c = 5 fabric the routing discipline
    // is immaterial (channels rarely saturate); constrain both to expose
    // the effect.
    println!("\nAblation 5: QSPR routing discipline (constrained 35x35 fabric, N_c = 1)");
    let tight_dims = FabricDims::new(35, 35).expect("valid dims");
    let tight_params = params
        .clone()
        .to_builder()
        .channel_capacity(1)
        .build()
        .expect("valid params");
    let fitting: Vec<&(&str, Qodg, f64)> = cases
        .iter()
        .filter(|(_, qodg, _)| (qodg.num_qubits() as u64) <= tight_dims.area())
        .collect();
    let tight_latency = |router: RouterStrategy, qodg: &Qodg| -> f64 {
        Mapper::with_config(MapperConfig {
            dims: tight_dims,
            params: tight_params.clone(),
            placement: PlacementStrategy::IigCluster,
            router,
            movement: Default::default(),
            seed: 0,
        })
        .map(qodg)
        .expect("fits the fabric")
        .latency
        .as_secs()
    };
    let xy_baselines: Vec<f64> = fitting
        .iter()
        .map(|(_, qodg, _)| tight_latency(RouterStrategy::Xy, qodg))
        .collect();
    for (router, label) in [
        (RouterStrategy::Xy, "xy (default)"),
        (RouterStrategy::Yx, "yx"),
        (RouterStrategy::Adaptive, "adaptive"),
    ] {
        let ratio_sum: f64 = fitting
            .iter()
            .zip(&xy_baselines)
            .map(|((_, qodg, _), &base)| tight_latency(router, qodg) / base)
            .sum();
        println!(
            "  {label:<22}: avg latency {:.3}x the xy router",
            ratio_sum / fitting.len().max(1) as f64
        );
    }

    println!("\nAblation 6: oracle movement model (LEQA error vs each oracle)");
    for (movement, label) in [
        (MovementModel::HomeBased, "home-based (default)"),
        (MovementModel::Drift, "drift"),
    ] {
        let estimator = Estimator::new(dims, params.clone());
        let mut total = 0.0;
        for (_, qodg, _) in &cases {
            let oracle = Mapper::with_config(MapperConfig {
                dims,
                params: params.clone(),
                placement: PlacementStrategy::IigCluster,
                router: RouterStrategy::Xy,
                movement,
                seed: 0,
            })
            .map(qodg)
            .expect("fits the fabric")
            .latency
            .as_secs();
            let est = estimator.estimate(qodg).expect("fits").latency.as_secs();
            total += 100.0 * (est - oracle).abs() / oracle;
        }
        println!(
            "  {label:<22}: LEQA avg error {:.2}%",
            total / cases.len() as f64
        );
    }

    let _ = &SUITE; // keep the suite linked for discoverability
}
