//! Validation of LEQA's analytic building blocks against simulation and
//! exact computation.
//!
//! The paper justifies several closed-form models with brief arguments:
//! the coverage statistics of randomly placed zones (Eqs. 4–5), the M/M/1
//! channel queue (Eqs. 8–11) and the TSP-bound Hamiltonian-path estimate
//! (Eqs. 13–15). This crate checks each against an independent oracle:
//!
//! * [`coverage`] — drops zones uniformly at random on a fabric and counts
//!   per-ULB overlap empirically, to compare with
//!   [`leqa::coverage::CoverageTable::expected_surfaces`];
//! * [`queueing`] — simulates an FCFS channel pipeline with Poisson
//!   arrivals and exponential service, to compare with
//!   [`leqa::queue::average_wait`];
//! * [`hamiltonian`] — computes the exact shortest Hamiltonian path
//!   through random point sets by Held–Karp dynamic programming, to
//!   compare with [`leqa::tsp::expected_hamiltonian_path`].
//!
//! The validation functions return measured/predicted pairs so tests can
//! assert tolerance bands, and the crate's test suite does exactly that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coverage;
pub mod hamiltonian;
pub mod queueing;

/// A measured-vs-predicted comparison produced by a validation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparison {
    /// The empirical (simulated or exact) value.
    pub measured: f64,
    /// The analytic model's prediction.
    pub predicted: f64,
}

impl Comparison {
    /// Relative error `|measured − predicted| / max(|measured|, ε)`.
    pub fn relative_error(&self) -> f64 {
        (self.measured - self.predicted).abs() / self.measured.abs().max(1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_basic() {
        let c = Comparison {
            measured: 10.0,
            predicted: 9.0,
        };
        assert!((c.relative_error() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn relative_error_handles_zero_measurement() {
        let c = Comparison {
            measured: 0.0,
            predicted: 0.5,
        };
        assert!(c.relative_error().is_finite());
    }
}
