//! Simulation validation of the M/M/1 channel model (Eqs. 8–11, Fig. 5).
//!
//! The paper models a congested routing channel as an M/M/1/∞ queue with
//! Poisson arrivals (rate `λ`) and exponential service (rate
//! `µ = N_c/d_uncong`), then uses Little's formula to price the per-qubit
//! delay at average queue length `q` as `W = (1+q)·d_uncong/N_c`
//! (Eq. 11). [`simulate_mm1`] runs the queue event by event and measures
//! both the average system length and the average sojourn time, so tests
//! can check the chain `λ ↦ L ↦ W` end to end.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use leqa_fabric::Micros;

use crate::Comparison;

/// Result of an M/M/1 queue simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mm1Stats {
    /// Time-averaged number of customers in the system (`l^avg_queue`).
    pub avg_system_length: f64,
    /// Average sojourn (wait + service) time per customer, µs.
    pub avg_sojourn: f64,
    /// Customers served.
    pub served: u64,
}

/// Simulates an M/M/1 queue with arrival rate `lambda` (per µs) and
/// service rate `mu` (per µs) for `customers` arrivals.
///
/// # Panics
///
/// Panics unless `0 < lambda < mu` (the stability condition) and
/// `customers > 0`.
pub fn simulate_mm1(lambda: f64, mu: f64, customers: u64, seed: u64) -> Mm1Stats {
    assert!(lambda > 0.0 && mu > lambda, "need 0 < lambda < mu");
    assert!(customers > 0, "need at least one customer");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut exp = |rate: f64| -> f64 {
        // Inverse-CDF sampling of Exp(rate).
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        -u.ln() / rate
    };

    let mut arrival = 0.0f64;
    let mut server_free = 0.0f64;
    let mut total_sojourn = 0.0f64;
    let mut area = 0.0f64; // ∫ N(t) dt via per-customer sojourn sum
    let mut last_departure = 0.0f64;

    for _ in 0..customers {
        arrival += exp(lambda);
        let start = arrival.max(server_free);
        let departure = start + exp(mu);
        server_free = departure;
        total_sojourn += departure - arrival;
        area += departure - arrival;
        last_departure = departure;
    }

    Mm1Stats {
        // L = λ_effective · W by Little; measure it directly as
        // (Σ sojourn)/horizon, which equals the time average of N(t).
        avg_system_length: area / last_departure,
        avg_sojourn: total_sojourn / customers as f64,
        served: customers,
    }
}

/// Compares the simulated average system length against the analytic
/// `L = λ/(µ−λ)` of Eq. 9.
pub fn compare_queue_length(lambda: f64, mu: f64, customers: u64, seed: u64) -> Comparison {
    let stats = simulate_mm1(lambda, mu, customers, seed);
    Comparison {
        measured: stats.avg_system_length,
        predicted: lambda / (mu - lambda),
    }
}

/// Compares the simulated sojourn time against Eq. 11's
/// `W = (1+q)·d_uncong/N_c`, where `q` is taken from the simulation's own
/// measured queue length (the paper plugs the observed channel population
/// into the formula the same way).
pub fn compare_wait_time(
    channel_capacity: u32,
    d_uncong: Micros,
    q: u64,
    customers: u64,
    seed: u64,
) -> Comparison {
    // Invert Eq. 10 to find the arrival rate that produces average
    // population q, then simulate at that operating point.
    let lambda = leqa::queue::arrival_rate(q, channel_capacity, d_uncong);
    let mu = leqa::queue::service_rate(channel_capacity, d_uncong);
    let stats = simulate_mm1(lambda, mu, customers, seed);
    Comparison {
        measured: stats.avg_sojourn,
        predicted: leqa::queue::average_wait(q, channel_capacity, d_uncong).as_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_length_matches_eq9() {
        // λ/(µ−λ) = 1.0 at λ=0.5, µ=1.0.
        let c = compare_queue_length(0.5, 1.0, 200_000, 1);
        assert!(
            c.relative_error() < 0.05,
            "measured {} vs predicted {}",
            c.measured,
            c.predicted
        );
    }

    #[test]
    fn queue_length_matches_eq9_heavy_load() {
        // λ/(µ−λ) = 4.0 at λ=0.8, µ=1.0 — heavier congestion, noisier.
        let c = compare_queue_length(0.8, 1.0, 400_000, 2);
        assert!(
            c.relative_error() < 0.10,
            "measured {} vs predicted {}",
            c.measured,
            c.predicted
        );
    }

    #[test]
    fn wait_time_matches_eq11_across_populations() {
        let d = Micros::new(800.0);
        for q in [1u64, 3, 8, 15] {
            let c = compare_wait_time(5, d, q, 300_000, q);
            assert!(
                c.relative_error() < 0.10,
                "q={q}: measured {} vs predicted {}",
                c.measured,
                c.predicted
            );
        }
    }

    #[test]
    fn littles_law_holds_in_the_simulation() {
        // L = λ·W must hold for the measured quantities themselves.
        let lambda = 0.6;
        let stats = simulate_mm1(lambda, 1.0, 300_000, 9);
        let l_from_w = lambda * stats.avg_sojourn;
        let rel = (stats.avg_system_length - l_from_w).abs() / stats.avg_system_length;
        assert!(rel < 0.05, "L={} λW={}", stats.avg_system_length, l_from_w);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = simulate_mm1(0.5, 1.0, 10_000, 5);
        let b = simulate_mm1(0.5, 1.0, 10_000, 5);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "0 < lambda < mu")]
    fn unstable_queue_panics() {
        simulate_mm1(1.5, 1.0, 100, 0);
    }
}
