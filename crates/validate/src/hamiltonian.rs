//! Exact validation of the Hamiltonian-path estimate (Eqs. 13–15).
//!
//! Eq. 15 estimates the expected shortest Hamiltonian path through
//! `M + 1` uniform points in a `√B × √B` square by averaging the
//! classical random-TSP bounds and removing one tour edge. Computing the
//! exact expectation is NP-hard, but for small point counts the exact
//! shortest path of each *sample* is cheap via Held–Karp dynamic
//! programming, and averaging over samples gives an unbiased empirical
//! estimate to compare against.
//!
//! Note the bounds the paper uses hold asymptotically (`n ≫ 1`) and for
//! Euclidean metric; the validation quantifies how far off they are at
//! the small `n` LEQA actually uses — exactly the kind of modelling slack
//! that ends up inside the paper's 2.11% average error.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Comparison;

/// Exact shortest Hamiltonian path length through `points` (any start,
/// any end) by Held–Karp dynamic programming, `O(2^n · n²)`.
///
/// # Panics
///
/// Panics if `points` is empty or has more than 20 entries (the DP table
/// would not fit).
pub fn shortest_hamiltonian_path(points: &[(f64, f64)]) -> f64 {
    let n = points.len();
    assert!(n >= 1, "need at least one point");
    assert!(n <= 20, "Held–Karp is exponential; cap at 20 points");
    if n == 1 {
        return 0.0;
    }

    let dist = |i: usize, j: usize| -> f64 {
        let (xi, yi) = points[i];
        let (xj, yj) = points[j];
        ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt()
    };

    // dp[mask][last] = shortest path visiting `mask`, ending at `last`.
    let full = 1usize << n;
    let mut dp = vec![f64::INFINITY; full * n];
    for i in 0..n {
        dp[(1 << i) * n + i] = 0.0;
    }
    for mask in 1..full {
        for last in 0..n {
            if mask & (1 << last) == 0 {
                continue;
            }
            let cur = dp[mask * n + last];
            if !cur.is_finite() {
                continue;
            }
            for next in 0..n {
                if mask & (1 << next) != 0 {
                    continue;
                }
                let nmask = mask | (1 << next);
                let cand = cur + dist(last, next);
                if cand < dp[nmask * n + next] {
                    dp[nmask * n + next] = cand;
                }
            }
        }
    }
    (0..n)
        .map(|last| dp[(full - 1) * n + last])
        .fold(f64::INFINITY, f64::min)
}

/// Empirically estimates `E[l_ham]` for `m + 1` uniform points in a
/// `side × side` square by exact per-sample DP, averaged over `samples`.
///
/// # Panics
///
/// Panics if `m + 1 > 20` or `samples == 0`.
pub fn sampled_expected_path(m: u64, side: f64, samples: u32, seed: u64) -> f64 {
    assert!(samples > 0, "need at least one sample");
    let n = (m + 1) as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0.0;
    let mut points = Vec::with_capacity(n);
    for _ in 0..samples {
        points.clear();
        for _ in 0..n {
            points.push((rng.gen::<f64>() * side, rng.gen::<f64>() * side));
        }
        total += shortest_hamiltonian_path(&points);
    }
    total / samples as f64
}

/// Compares Eq. 15's estimate against the sampled exact expectation for a
/// qubit of IIG degree `m` (zone side `√(m+1)` per Eq. 6).
pub fn compare_expected_path(m: u64, samples: u32, seed: u64) -> Comparison {
    let side = ((m + 1) as f64).sqrt();
    Comparison {
        measured: sampled_expected_path(m, side, samples, seed),
        predicted: leqa::tsp::expected_hamiltonian_path(m),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dp_on_collinear_points_is_exact() {
        // Points on a line: the shortest Hamiltonian path is the span.
        let pts = [(0.0, 0.0), (3.0, 0.0), (1.0, 0.0), (2.0, 0.0)];
        assert!((shortest_hamiltonian_path(&pts) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn dp_on_a_square_is_three_sides() {
        let pts = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)];
        assert!((shortest_hamiltonian_path(&pts) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn dp_degenerate_cases() {
        assert_eq!(shortest_hamiltonian_path(&[(0.5, 0.5)]), 0.0);
        let two = [(0.0, 0.0), (3.0, 4.0)];
        assert!((shortest_hamiltonian_path(&two) - 5.0).abs() < 1e-12);
        // Coincident points cost nothing to hop between (the paper allows
        // multiple qubits in one ULB).
        let coincident = [(1.0, 1.0), (1.0, 1.0), (1.0, 1.0)];
        assert!(shortest_hamiltonian_path(&coincident) < 1e-12);
    }

    #[test]
    fn eq15_tracks_the_exact_expectation_at_moderate_degree() {
        // The TSP constants are asymptotic; at m in the 6..12 range (the
        // regime of real benchmarks' hub qubits) Eq. 15 should land within
        // ~25% of truth.
        for m in [6u64, 9, 12] {
            let c = compare_expected_path(m, 300, m);
            assert!(
                c.relative_error() < 0.25,
                "m={m}: exact {} vs Eq.15 {}",
                c.measured,
                c.predicted
            );
        }
    }

    #[test]
    fn eq15_is_loose_at_tiny_degree() {
        // At m=2 the (M−1)/M correction and the asymptotic constants are
        // furthest from truth — document the gap rather than hide it.
        let c = compare_expected_path(2, 500, 3);
        assert!(c.predicted > 0.0 && c.measured > 0.0);
        // The estimate must at least stay within a factor of two.
        let ratio = c.predicted / c.measured;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn sampling_is_deterministic() {
        assert_eq!(
            sampled_expected_path(4, 2.0, 50, 9),
            sampled_expected_path(4, 2.0, 50, 9)
        );
    }

    #[test]
    #[should_panic(expected = "cap at 20")]
    fn dp_rejects_large_instances() {
        let pts: Vec<(f64, f64)> = (0..21).map(|i| (i as f64, 0.0)).collect();
        shortest_hamiltonian_path(&pts);
    }
}
