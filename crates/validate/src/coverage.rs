//! Monte-Carlo validation of the coverage statistics (Eqs. 4–5).
//!
//! Eq. 4 claims that with `Q` square zones of side `s` dropped uniformly
//! and independently on an `a × b` fabric, the expected area covered by
//! exactly `q` zones is `E[S_q] = C(Q,q) Σ_{x,y} P^q (1−P)^{Q−q}` with
//! `P_{x,y}` from Eq. 5. [`simulate_surfaces`] measures the same quantity
//! by actually dropping zones; agreement is a direct check of both
//! equations (and of our implementation of them).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use leqa::coverage::{CoverageTable, ZoneRounding};
use leqa_fabric::FabricDims;

use crate::Comparison;

/// Empirically estimates `E[S_q]` for `q = 1..=max_q` by dropping
/// `zones` square zones of side `side` uniformly at random on the fabric,
/// `trials` times, and averaging the per-`q` covered areas.
///
/// # Panics
///
/// Panics if `side` is 0 or exceeds either fabric dimension, or if
/// `trials` is 0.
pub fn simulate_surfaces(
    dims: FabricDims,
    zones: u32,
    side: u32,
    max_q: usize,
    trials: u32,
    seed: u64,
) -> Vec<f64> {
    assert!(trials > 0, "need at least one trial");
    assert!(
        side >= 1 && side <= dims.width() && side <= dims.height(),
        "zone side must fit the fabric"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let a = dims.width();
    let b = dims.height();
    let mut totals = vec![0.0f64; max_q];
    let mut counts = vec![0u32; dims.area() as usize];

    for _ in 0..trials {
        counts.iter_mut().for_each(|c| *c = 0);
        for _ in 0..zones {
            // Uniform placement of the zone's lower-left corner among the
            // (a−s+1)(b−s+1) legal positions — the sample space of Eq. 5's
            // denominator.
            let ox = rng.gen_range(0..=(a - side));
            let oy = rng.gen_range(0..=(b - side));
            for dy in 0..side {
                for dx in 0..side {
                    let idx = ((oy + dy) * a + (ox + dx)) as usize;
                    counts[idx] += 1;
                }
            }
        }
        for &c in &counts {
            let c = c as usize;
            if c >= 1 && c <= max_q {
                totals[c - 1] += 1.0;
            }
        }
    }
    totals.iter().map(|t| t / trials as f64).collect()
}

/// Runs the analytic and Monte-Carlo estimates side by side and returns a
/// [`Comparison`] per `q`.
///
/// The analytic side is evaluated with the *same integer side* the
/// simulation uses (rounding is bypassed by passing `side²` as the zone
/// area), so the comparison isolates Eq. 4/5 themselves.
pub fn compare_surfaces(
    dims: FabricDims,
    zones: u32,
    side: u32,
    max_q: usize,
    trials: u32,
    seed: u64,
) -> Vec<Comparison> {
    let table = CoverageTable::new(dims, (side * side) as f64, ZoneRounding::Round);
    debug_assert_eq!(table.zone_side(), side);
    let predicted = table.expected_surfaces(zones as u64, max_q);
    let measured = simulate_surfaces(dims, zones, side, max_q, trials, seed);
    measured
        .into_iter()
        .zip(predicted)
        .map(|(measured, predicted)| Comparison {
            measured,
            predicted,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims(a: u32, b: u32) -> FabricDims {
        FabricDims::new(a, b).unwrap()
    }

    #[test]
    fn simulation_conserves_total_area() {
        // Σ_{q≥0} E[S_q] = A (Eq. 3); measure the q ≥ 1 part plus the
        // empty fraction.
        let d = dims(12, 12);
        let zones = 6u32;
        let measured = simulate_surfaces(d, zones, 3, zones as usize, 400, 7);
        let covered: f64 = measured.iter().sum();
        assert!(covered > 0.0 && covered <= d.area() as f64);
    }

    #[test]
    fn eq4_matches_simulation_within_tolerance() {
        // The headline validation: analytic E[S_q] vs 2000 random drops.
        let d = dims(15, 15);
        let comparisons = compare_surfaces(d, 8, 3, 4, 2_000, 11);
        for (q, c) in comparisons.iter().enumerate() {
            // Monte-Carlo noise on ~2000 trials: accept 10% relative or
            // 0.5 ULB absolute, whichever is looser.
            let abs = (c.measured - c.predicted).abs();
            assert!(
                c.relative_error() < 0.10 || abs < 0.5,
                "q={}: measured {} vs predicted {}",
                q + 1,
                c.measured,
                c.predicted
            );
        }
    }

    #[test]
    fn unit_zone_unit_fabric_is_exact() {
        // One 1×1 zone on a fabric: E[S_1] = 1 exactly, regardless of
        // randomness.
        let d = dims(5, 5);
        let measured = simulate_surfaces(d, 1, 1, 1, 50, 3);
        assert!((measured[0] - 1.0).abs() < 1e-12);
        let c = compare_surfaces(d, 1, 1, 1, 50, 3);
        assert!((c[0].predicted - 1.0).abs() < 1e-9);
    }

    #[test]
    fn full_fabric_zone_covers_everything_at_max_q() {
        // Q zones of fabric size: every ULB covered by exactly Q zones.
        let d = dims(4, 4);
        let zones = 3u32;
        let measured = simulate_surfaces(d, zones, 4, zones as usize, 20, 5);
        assert_eq!(measured[0], 0.0);
        assert_eq!(measured[1], 0.0);
        assert!((measured[2] - 16.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let d = dims(10, 10);
        let a = simulate_surfaces(d, 5, 2, 5, 100, 42);
        let b = simulate_surfaces(d, 5, 2, 5, 100, 42);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "fit the fabric")]
    fn oversized_zone_panics() {
        simulate_surfaces(dims(4, 4), 2, 5, 2, 10, 0);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        simulate_surfaces(dims(4, 4), 2, 2, 2, 0, 0);
    }
}
