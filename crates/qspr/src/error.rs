//! Error type for the mapper.

use std::error::Error;
use std::fmt;

/// Errors produced by [`Mapper::map`](crate::Mapper::map).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MapError {
    /// More logical qubits than ULBs: no placement exists.
    FabricTooSmall {
        /// Logical qubits in the program.
        qubits: u64,
        /// ULBs on the fabric.
        area: u64,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::FabricTooSmall { qubits, area } => write!(
                f,
                "{qubits} logical qubits cannot be placed on a {area}-ulb fabric"
            ),
        }
    }
}

impl Error for MapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            MapError::FabricTooSmall {
                qubits: 10,
                area: 4
            }
            .to_string(),
            "10 logical qubits cannot be placed on a 4-ulb fabric"
        );
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<MapError>();
    }
}
