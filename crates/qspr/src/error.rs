//! Error type for the mapper.

use std::error::Error;
use std::fmt;

use leqa_fabric::Ulb;

/// Errors produced by [`Mapper::map`](crate::Mapper::map).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MapError {
    /// More logical qubits than usable ULBs: no placement exists. On a
    /// defective fabric `area` counts only the *live* cells.
    FabricTooSmall {
        /// Logical qubits in the program.
        qubits: u64,
        /// Usable ULBs on the fabric.
        area: u64,
    },
    /// A required qubit transfer has no defect-free path: the fabric's
    /// dead cells/channels disconnect the two ULBs (see
    /// [`FabricMap`](leqa_fabric::FabricMap)).
    Unroutable {
        /// Where the transfer starts.
        from: Ulb,
        /// Where it needs to go.
        to: Ulb,
    },
    /// The mapper's [`FabricMap`](leqa_fabric::FabricMap) describes a
    /// different fabric than the mapper's dimensions.
    FabricMapMismatch {
        /// Fabric width × height the mapper was configured with.
        dims: (u32, u32),
        /// Fabric width × height the map describes.
        map_dims: (u32, u32),
    },
    /// A pass in the [pipeline](crate::passes) broke a structural
    /// invariant (graph validity, analysis-preservation claims, placement
    /// legality) — caught by the [`PassManager`](crate::passes::PassManager)
    /// invariant checker. Names the offending pass.
    InvariantViolation {
        /// Name of the pass that broke the invariant.
        pass: String,
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::FabricTooSmall { qubits, area } => write!(
                f,
                "{qubits} logical qubits cannot be placed on a {area}-ulb fabric"
            ),
            MapError::Unroutable { from, to } => write!(
                f,
                "no defect-free route from {from} to {to}: the fabric map disconnects them"
            ),
            MapError::FabricMapMismatch { dims, map_dims } => write!(
                f,
                "fabric map describes a {}x{} fabric but the mapper is {}x{}",
                map_dims.0, map_dims.1, dims.0, dims.1
            ),
            MapError::InvariantViolation { pass, reason } => {
                write!(f, "pass `{pass}` broke a pipeline invariant: {reason}")
            }
        }
    }
}

impl Error for MapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            MapError::FabricTooSmall {
                qubits: 10,
                area: 4
            }
            .to_string(),
            "10 logical qubits cannot be placed on a 4-ulb fabric"
        );
        assert_eq!(
            MapError::Unroutable {
                from: Ulb::new(0, 1),
                to: Ulb::new(2, 2)
            }
            .to_string(),
            "no defect-free route from (0, 1) to (2, 2): the fabric map disconnects them"
        );
        assert_eq!(
            MapError::FabricMapMismatch {
                dims: (5, 5),
                map_dims: (4, 4)
            }
            .to_string(),
            "fabric map describes a 4x4 fabric but the mapper is 5x5"
        );
        assert_eq!(
            MapError::InvariantViolation {
                pass: "dce".into(),
                reason: "graph lost its end node".into()
            }
            .to_string(),
            "pass `dce` broke a pipeline invariant: graph lost its end node"
        );
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<MapError>();
    }
}
