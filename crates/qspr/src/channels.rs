//! Channel occupancy tracking: the congestion the router actually pays.
//!
//! Each routing channel can carry `N_c` qubits concurrently (the paper's
//! channel capacity); a traversal occupies one slot for `T_move`. A qubit
//! arriving at a saturated channel waits for the earliest slot — the FCFS
//! pipeline behaviour the paper abstracts as an M/M/1 queue (Fig. 5).

use leqa_fabric::{Channel, ChannelId, FabricDims, FabricMap, Micros};

/// Per-channel slot layout for heterogeneous fabrics: overlay-driven
/// capacity and `T_move` overrides from a
/// [`FabricMap`](leqa_fabric::FabricMap). Absent (the common case), every
/// channel shares the uniform `capacity`/`t_move` and the flat slot
/// arithmetic below stays bit-identical to the pre-overlay code.
#[derive(Debug, Clone)]
struct Hetero {
    /// `n + 1` prefix sums: channel `i` owns slots
    /// `offsets[i]..offsets[i+1]` of `free_at`.
    offsets: Vec<usize>,
    /// Effective traversal time per channel, in µs.
    t_moves: Vec<f64>,
}

/// Occupancy calendars for every channel of a fabric.
///
/// # Examples
///
/// ```
/// use leqa_fabric::{Channel, FabricDims, Micros, Ulb};
/// use qspr::channels::ChannelOccupancy;
///
/// # fn main() -> Result<(), leqa_fabric::FabricError> {
/// let dims = FabricDims::new(4, 4)?;
/// let mut occ = ChannelOccupancy::new(dims, 1, Micros::new(100.0));
/// let ch = Channel::between(Ulb::new(0, 0), Ulb::new(1, 0))?;
///
/// // First qubit passes immediately; the second queues behind it.
/// assert_eq!(occ.traverse(ch, Micros::ZERO), Micros::new(100.0));
/// assert_eq!(occ.traverse(ch, Micros::ZERO), Micros::new(200.0));
/// # Ok(())
/// # }
/// ```
/// Slot bookkeeping: each channel's `N_c` free-at times are kept as a
/// sorted rotating window (ascending from a per-channel head index), so the
/// earliest-free slot is an O(1) read at the head instead of a linear
/// min-scan, and the overwhelmingly common in-order booking is an O(1)
/// head rotation. Only the multiset of free-at times is observable, so this
/// is behaviour-identical (traces byte-identical) to the scan it replaced.
#[derive(Debug, Clone)]
pub struct ChannelOccupancy {
    dims: FabricDims,
    capacity: usize,
    t_move: Micros,
    /// `capacity` server-free times per channel, flattened; each channel's
    /// window is sorted ascending starting at its `heads` index (mod
    /// `capacity`).
    free_at: Vec<f64>,
    /// Rotating index of the earliest-free slot per channel.
    heads: Vec<u32>,
    /// Per-channel traversal counts (the congestion heatmap).
    load: Vec<u64>,
    /// Total time spent queueing (beyond the raw hop time).
    congestion_wait: f64,
    /// Total traversals.
    traversals: u64,
    /// Per-channel capacity/`T_move` overrides; `None` = uniform fabric.
    hetero: Option<Hetero>,
}

impl ChannelOccupancy {
    /// Creates empty calendars for every channel of `dims`.
    pub fn new(dims: FabricDims, capacity: u32, t_move: Micros) -> Self {
        let n = ChannelId::count(dims);
        ChannelOccupancy {
            dims,
            capacity: capacity as usize,
            t_move,
            free_at: vec![0.0; n * capacity as usize],
            heads: vec![0; n],
            load: vec![0; n],
            congestion_wait: 0.0,
            traversals: 0,
            hetero: None,
        }
    }

    /// Like [`new`](Self::new), but honouring a fabric map's per-region
    /// channel-capacity / `T_move` overlays. With no overlays the layout
    /// (and every booking) is identical to the uniform constructor.
    pub fn new_with_map(dims: FabricDims, capacity: u32, t_move: Micros, map: &FabricMap) -> Self {
        let mut occ = ChannelOccupancy::new(dims, capacity, t_move);
        occ.apply_map(map);
        occ
    }

    /// Like [`reset`](Self::reset), but honouring a fabric map's overlays
    /// (see [`new_with_map`](Self::new_with_map)).
    pub fn reset_with_map(
        &mut self,
        dims: FabricDims,
        capacity: u32,
        t_move: Micros,
        map: &FabricMap,
    ) {
        self.reset(dims, capacity, t_move);
        self.apply_map(map);
    }

    /// Builds the heterogeneous slot layout from `map`'s overlays. Dead
    /// channels keep (at least one) slot so the arithmetic stays total —
    /// the router never books them, so their calendars stay empty.
    fn apply_map(&mut self, map: &FabricMap) {
        if map.overlays().is_empty() {
            return; // uniform layout already in place
        }
        let n = ChannelId::count(self.dims);
        let base_cap = self.capacity as u32;
        let base_t = self.t_move.as_f64();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut t_moves = Vec::with_capacity(n);
        let mut total = 0usize;
        offsets.push(0);
        for channel in map.channels() {
            total += map.channel_capacity_at(channel, base_cap).max(1) as usize;
            offsets.push(total);
            t_moves.push(map.channel_t_move_at(channel, base_t));
        }
        self.free_at.clear();
        self.free_at.resize(total, 0.0);
        self.hetero = Some(Hetero { offsets, t_moves });
    }

    /// The `free_at` range and traversal time of channel `id`.
    #[inline]
    fn slots_of(&self, id: usize) -> (usize, usize, f64) {
        match &self.hetero {
            Some(h) => (h.offsets[id], h.offsets[id + 1], h.t_moves[id]),
            None => (
                id * self.capacity,
                (id + 1) * self.capacity,
                self.t_move.as_f64(),
            ),
        }
    }

    /// Re-initializes the tracker for a fresh mapping run, reusing the
    /// slot/head/load allocations whenever the new fabric needs no more
    /// room — the zero-alloc path for repeated `map` calls.
    ///
    /// Equivalent to `*self = ChannelOccupancy::new(dims, capacity,
    /// t_move)` except for allocator traffic.
    pub fn reset(&mut self, dims: FabricDims, capacity: u32, t_move: Micros) {
        let n = ChannelId::count(dims);
        self.dims = dims;
        self.capacity = capacity as usize;
        self.t_move = t_move;
        self.free_at.clear();
        self.free_at.resize(n * capacity as usize, 0.0);
        self.heads.clear();
        self.heads.resize(n, 0);
        self.load.clear();
        self.load.resize(n, 0);
        self.congestion_wait = 0.0;
        self.traversals = 0;
        self.hetero = None;
    }

    /// Sends a qubit through `channel` starting no earlier than `at`;
    /// returns the time it emerges on the far side.
    ///
    /// The qubit takes the earliest-free of the channel's `N_c` slots
    /// (FCFS), waiting if all are busy.
    pub fn traverse(&mut self, channel: Channel, at: Micros) -> Micros {
        let id = channel.id(self.dims).0;
        let (lo, hi, t_move) = self.slots_of(id);
        let cap = hi - lo;
        let slots = &mut self.free_at[lo..hi];
        let head = self.heads[id] as usize;

        let start = at.as_f64().max(slots[head]);
        let end = start + t_move;

        // Rebook the head slot at `end` and rotate: the remaining window
        // (head+1 .. head+cap−1) is already sorted, and `end` usually
        // belongs after all of it (service time is constant), so the write
        // lands in place. A late straggler bubbles backwards at most
        // `cap − 1` steps.
        slots[head] = end;
        let new_head = (head + 1) % cap;
        self.heads[id] = new_head as u32;
        let mut j = cap - 1; // logical position of `end` within the window
        while j > 0 {
            let cur = (new_head + j) % cap;
            let prev = (new_head + j - 1) % cap;
            if slots[prev] > slots[cur] {
                slots.swap(prev, cur);
                j -= 1;
            } else {
                break;
            }
        }

        self.load[id] += 1;
        self.congestion_wait += start - at.as_f64();
        self.traversals += 1;
        Micros::new(end)
    }

    /// Total time qubits spent waiting for channel slots.
    pub fn congestion_wait(&self) -> Micros {
        Micros::new(self.congestion_wait)
    }

    /// Total channel traversals (one per hop).
    pub fn traversals(&self) -> u64 {
        self.traversals
    }

    /// Per-channel traversal counts, indexed by
    /// [`ChannelId`] — the congestion heatmap.
    pub fn load(&self) -> &[u64] {
        &self.load
    }

    /// Consumes the tracker, returning the heatmap.
    pub fn into_load(self) -> Vec<u64> {
        self.load
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leqa_fabric::Ulb;

    fn setup(capacity: u32) -> (ChannelOccupancy, Channel) {
        let dims = FabricDims::new(4, 4).unwrap();
        let occ = ChannelOccupancy::new(dims, capacity, Micros::new(100.0));
        let ch = Channel::between(Ulb::new(1, 1), Ulb::new(2, 1)).unwrap();
        (occ, ch)
    }

    #[test]
    fn uncongested_traversal_takes_t_move() {
        let (mut occ, ch) = setup(5);
        assert_eq!(occ.traverse(ch, Micros::new(50.0)), Micros::new(150.0));
        assert_eq!(occ.congestion_wait(), Micros::ZERO);
    }

    #[test]
    fn capacity_admits_concurrency() {
        let (mut occ, ch) = setup(3);
        for _ in 0..3 {
            assert_eq!(occ.traverse(ch, Micros::ZERO), Micros::new(100.0));
        }
        // The fourth concurrent qubit queues.
        assert_eq!(occ.traverse(ch, Micros::ZERO), Micros::new(200.0));
        assert_eq!(occ.congestion_wait(), Micros::new(100.0));
    }

    #[test]
    fn queue_drains_in_fcfs_order() {
        let (mut occ, ch) = setup(1);
        let a = occ.traverse(ch, Micros::ZERO);
        let b = occ.traverse(ch, Micros::ZERO);
        let c = occ.traverse(ch, Micros::ZERO);
        assert!(a < b && b < c);
        assert_eq!(c, Micros::new(300.0));
    }

    #[test]
    fn distinct_channels_do_not_interfere() {
        let dims = FabricDims::new(4, 4).unwrap();
        let mut occ = ChannelOccupancy::new(dims, 1, Micros::new(100.0));
        let ch1 = Channel::between(Ulb::new(0, 0), Ulb::new(1, 0)).unwrap();
        let ch2 = Channel::between(Ulb::new(0, 0), Ulb::new(0, 1)).unwrap();
        assert_eq!(occ.traverse(ch1, Micros::ZERO), Micros::new(100.0));
        assert_eq!(occ.traverse(ch2, Micros::ZERO), Micros::new(100.0));
    }

    #[test]
    fn traversal_counter() {
        let (mut occ, ch) = setup(2);
        for _ in 0..5 {
            occ.traverse(ch, Micros::ZERO);
        }
        assert_eq!(occ.traversals(), 5);
    }

    #[test]
    fn reset_is_equivalent_to_new() {
        let dims = FabricDims::new(4, 4).unwrap();
        let other_dims = FabricDims::new(6, 3).unwrap();
        let ch = Channel::between(Ulb::new(1, 1), Ulb::new(2, 1)).unwrap();
        let mut reused = ChannelOccupancy::new(dims, 3, Micros::new(50.0));
        for _ in 0..7 {
            reused.traverse(ch, Micros::ZERO);
        }
        // Reset across a different shape and capacity, then replay a
        // booking pattern against a fresh tracker.
        reused.reset(other_dims, 2, Micros::new(100.0));
        let mut fresh = ChannelOccupancy::new(other_dims, 2, Micros::new(100.0));
        let ch2 = Channel::between(Ulb::new(4, 1), Ulb::new(5, 1)).unwrap();
        for &at in &[0.0, 0.0, 0.0, 250.0, 10.0] {
            assert_eq!(
                reused.traverse(ch2, Micros::new(at)),
                fresh.traverse(ch2, Micros::new(at))
            );
        }
        assert_eq!(reused.congestion_wait(), fresh.congestion_wait());
        assert_eq!(reused.traversals(), fresh.traversals());
        assert_eq!(reused.load(), fresh.load());
    }

    #[test]
    fn late_arrival_does_not_wait() {
        let (mut occ, ch) = setup(1);
        occ.traverse(ch, Micros::ZERO); // busy until 100
                                        // Arriving at 500 finds the channel idle.
        assert_eq!(occ.traverse(ch, Micros::new(500.0)), Micros::new(600.0));
        assert_eq!(occ.congestion_wait(), Micros::ZERO);
    }

    /// Reference implementation of one booking: linear min-scan over a
    /// plain slot array (what `traverse` used before the rotating window).
    fn reference_traverse(slots: &mut [f64], at: f64, t_move: f64) -> f64 {
        let (best, _) = slots
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("capacity >= 1");
        let start = at.max(slots[best]);
        let end = start + t_move;
        slots[best] = end;
        end
    }

    #[test]
    fn rotating_window_matches_min_scan_reference() {
        // Deliberately non-monotone arrival times (late stragglers, idle
        // gaps, bursts) across several capacities: the rotating window must
        // produce the same booking times as the min-scan it replaced.
        for capacity in [1u32, 2, 3, 5, 8] {
            let dims = FabricDims::new(4, 4).unwrap();
            let mut occ = ChannelOccupancy::new(dims, capacity, Micros::new(100.0));
            let ch = Channel::between(Ulb::new(1, 1), Ulb::new(2, 1)).unwrap();
            let mut reference = vec![0.0f64; capacity as usize];
            let arrivals = [
                0.0, 0.0, 950.0, 10.0, 0.0, 2500.0, 30.0, 30.0, 30.0, 1200.0, 5.0, 42.0, 0.0,
                9999.0, 77.0, 77.0,
            ];
            for &at in &arrivals {
                let got = occ.traverse(ch, Micros::new(at));
                let want = reference_traverse(&mut reference, at, 100.0);
                assert_eq!(got, Micros::new(want), "capacity {capacity}, at {at}");
                // The head must keep pointing at the earliest-free slot.
                let min = reference.iter().cloned().fold(f64::INFINITY, f64::min);
                assert_eq!(occ.peek_wait(ch, Micros::ZERO), Micros::new(min.max(0.0)));
            }
        }
    }
}

impl ChannelOccupancy {
    /// Estimated queueing wait if a qubit entered `channel` at `at`, in
    /// µs, without booking anything — the adaptive router's probe.
    ///
    /// O(1): the rotating window keeps the earliest-free slot at the head.
    pub fn peek_wait(&self, channel: Channel, at: Micros) -> Micros {
        let id = channel.id(self.dims).0;
        let (lo, _, _) = self.slots_of(id);
        let earliest = self.free_at[lo + self.heads[id] as usize];
        Micros::new((earliest - at.as_f64()).max(0.0))
    }
}

#[cfg(test)]
mod peek_tests {
    use super::*;
    use leqa_fabric::Ulb;

    #[test]
    fn peek_matches_traverse_wait() {
        let dims = FabricDims::new(4, 4).unwrap();
        let mut occ = ChannelOccupancy::new(dims, 1, Micros::new(100.0));
        let ch = Channel::between(Ulb::new(0, 0), Ulb::new(1, 0)).unwrap();
        assert_eq!(occ.peek_wait(ch, Micros::ZERO), Micros::ZERO);
        occ.traverse(ch, Micros::ZERO); // busy until 100
        assert_eq!(occ.peek_wait(ch, Micros::ZERO), Micros::new(100.0));
        assert_eq!(occ.peek_wait(ch, Micros::new(40.0)), Micros::new(60.0));
        assert_eq!(occ.peek_wait(ch, Micros::new(500.0)), Micros::ZERO);
    }

    #[test]
    fn hetero_overlay_changes_capacity_and_t_move() {
        let dims = FabricDims::new(4, 4).unwrap();
        let mut map = FabricMap::pristine(dims);
        // The left half is a slow, narrow region: one slot, 250 µs hops.
        map.push_overlay(leqa_fabric::RegionOverlay {
            x0: 0,
            y0: 0,
            x1: 1,
            y1: 3,
            t_move_us: Some(250.0),
            qubit_speed: None,
            channel_capacity: Some(1),
        })
        .unwrap();
        let mut occ = ChannelOccupancy::new_with_map(dims, 3, Micros::new(100.0), &map);

        // Channel (0,0)->(1,0): origin inside the overlay.
        let slow = Channel::between(Ulb::new(0, 0), Ulb::new(1, 0)).unwrap();
        assert_eq!(occ.traverse(slow, Micros::ZERO), Micros::new(250.0));
        // Capacity 1 ⇒ the second qubit queues.
        assert_eq!(occ.traverse(slow, Micros::ZERO), Micros::new(500.0));

        // Channel (2,0)->(3,0): outside ⇒ base capacity 3, base 100 µs.
        let fast = Channel::between(Ulb::new(2, 0), Ulb::new(3, 0)).unwrap();
        for _ in 0..3 {
            assert_eq!(occ.traverse(fast, Micros::ZERO), Micros::new(100.0));
        }
        assert_eq!(occ.traverse(fast, Micros::ZERO), Micros::new(200.0));
    }

    #[test]
    fn overlay_free_map_is_bit_identical_to_uniform() {
        let dims = FabricDims::new(5, 3).unwrap();
        let mut map = FabricMap::pristine(dims);
        map.disable_cell(Ulb::new(4, 2)).unwrap(); // defects alone change nothing here
        let mut plain = ChannelOccupancy::new(dims, 2, Micros::new(100.0));
        let mut mapped = ChannelOccupancy::new_with_map(dims, 2, Micros::new(100.0), &map);
        let ch = Channel::between(Ulb::new(1, 1), Ulb::new(2, 1)).unwrap();
        for &at in &[0.0, 0.0, 35.0, 0.0, 900.0] {
            assert_eq!(
                plain.traverse(ch, Micros::new(at)),
                mapped.traverse(ch, Micros::new(at))
            );
        }
        assert_eq!(plain.congestion_wait(), mapped.congestion_wait());
        assert_eq!(plain.load(), mapped.load());
    }

    #[test]
    fn reset_with_map_matches_new_with_map() {
        let dims = FabricDims::new(4, 4).unwrap();
        let mut map = FabricMap::pristine(dims);
        map.push_overlay(leqa_fabric::RegionOverlay {
            x0: 0,
            y0: 0,
            x1: 3,
            y1: 1,
            t_move_us: None,
            qubit_speed: None,
            channel_capacity: Some(2),
        })
        .unwrap();
        let mut reused = ChannelOccupancy::new(dims, 5, Micros::new(100.0));
        let ch = Channel::between(Ulb::new(0, 0), Ulb::new(1, 0)).unwrap();
        for _ in 0..4 {
            reused.traverse(ch, Micros::ZERO);
        }
        reused.reset_with_map(dims, 5, Micros::new(100.0), &map);
        let mut fresh = ChannelOccupancy::new_with_map(dims, 5, Micros::new(100.0), &map);
        for &at in &[0.0, 0.0, 0.0, 120.0] {
            assert_eq!(
                reused.traverse(ch, Micros::new(at)),
                fresh.traverse(ch, Micros::new(at))
            );
        }
        assert_eq!(reused.congestion_wait(), fresh.congestion_wait());
    }

    #[test]
    fn peek_does_not_book() {
        let dims = FabricDims::new(4, 4).unwrap();
        let occ = ChannelOccupancy::new(dims, 2, Micros::new(100.0));
        let ch = Channel::between(Ulb::new(1, 1), Ulb::new(1, 2)).unwrap();
        let before = occ.peek_wait(ch, Micros::ZERO);
        let _ = occ.peek_wait(ch, Micros::ZERO);
        assert_eq!(before, occ.peek_wait(ch, Micros::ZERO));
        assert_eq!(occ.traversals(), 0);
    }
}
