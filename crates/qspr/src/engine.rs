//! The mapping engine: list scheduling plus per-movement routing.
//!
//! # The zero-alloc hot path
//!
//! One mapping run needs a pile of working buffers — qubit positions,
//! ready times, the CSR successor graph, the ready heap, route and
//! channel-calendar storage. [`MapScratch`] owns all of them and is
//! reusable across runs (any program, any fabric), so services that map
//! repeatedly — `compare`/`map` endpoints, the bench suite — stop
//! churning the allocator: after the first call on a thread, a run
//! allocates only its outputs (placement, channel heatmap, optional
//! trace). [`Mapper::map`] and [`Mapper::map_with_trace`] keep a
//! thread-local scratch automatically; [`Mapper::map_with_scratch`]
//! takes a caller-owned one. Scratch reuse is bit-identical to fresh
//! buffers (pinned by `reused_scratch_is_bit_identical` below and the
//! workspace differential tests).

use std::cell::RefCell;
use std::collections::BinaryHeap;
use std::sync::Arc;

use leqa_circuit::{FtOp, Iig, NodeId, Qodg, QodgNode};
use leqa_fabric::{route, Channel, FabricDims, FabricMap, Micros, PhysicalParams, Ulb};

use crate::channels::ChannelOccupancy;
use crate::passes::{PassEnv, PassManager, PipelineOutcome};
use crate::placement::{initial_placement, PlacementStrategy};
use crate::trace::{OpRecord, Trace};
use crate::MapError;

/// Configuration of the detailed mapper.
#[derive(Debug, Clone)]
pub struct MapperConfig {
    /// The fabric to map onto.
    pub dims: FabricDims,
    /// Physical parameters (Table 1).
    pub params: PhysicalParams,
    /// Placement strategy.
    pub placement: PlacementStrategy,
    /// Routing discipline for qubit transfers.
    pub router: RouterStrategy,
    /// How qubit positions evolve across interactions.
    pub movement: MovementModel,
    /// Seed for the randomized placement strategy.
    pub seed: u64,
}

/// How a qubit's position evolves after a two-qubit interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MovementModel {
    /// The control travels to the target, interacts, and returns to its
    /// fixed home ULB (default; teleport-style QLA data regions).
    #[default]
    HomeBased,
    /// The control stays near the interaction site: after the gate it
    /// relocates to the nearest unoccupied ULB and that becomes its new
    /// position — the free-drift behaviour of movement-based mappers like
    /// the paper's QSPR.
    Drift,
}

/// Routing discipline for the control qubit's trips.
///
/// Both dimension orders produce minimal paths; [`Adaptive`](Self::Adaptive)
/// probes the queueing wait along each candidate's channels (without
/// booking) and takes the less congested one — a cheap congestion-aware
/// router in the spirit of the paper's crossbar-based channel network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouterStrategy {
    /// X-then-Y dimension order (default).
    #[default]
    Xy,
    /// Y-then-X dimension order.
    Yx,
    /// Per-transfer choice of XY or YX by probed congestion.
    Adaptive,
}

/// The list-scheduling engine driving the simulated-time sweep.
///
/// Both engines run the same discrete-event physics
/// (placement, routing, channel calendars); they differ only in the
/// order ready operations are considered, which changes how contended
/// resources are booked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerStrategy {
    /// Earliest-resource-use order (default): ops are booked in the
    /// order of their earliest simulated resource use — the engine the
    /// crate has always used.
    #[default]
    Greedy,
    /// Mobility (ALAP − ASAP slack) order: critical ops (zero slack)
    /// book channels and ULB ports first; ties fall back to the greedy
    /// key. A per-wave ULB port-busy bitset defers ops contending for
    /// the same execution site to the next wave.
    Mobility,
}

/// The detailed scheduling/placement/routing mapper.
///
/// See the [crate docs](crate) for the model; construction is cheap, all
/// the work happens in [`map`](Self::map). The mapper is a thin driver
/// over an (optional) [pass pipeline](crate::passes) followed by the
/// scheduling engine selected by [`with_scheduler`](Self::with_scheduler);
/// with no pipeline and the default [`SchedulerStrategy::Greedy`] engine
/// it is bit-identical to the pre-pipeline mapper (pinned by the
/// `passes_differential` suite).
#[derive(Debug, Clone)]
pub struct Mapper {
    config: MapperConfig,
    /// Defect/heterogeneity overlay; `None` (or a pristine map) keeps the
    /// uniform-fabric fast paths bit-identical.
    fabric_map: Option<Arc<FabricMap>>,
    /// The scheduling engine (greedy default).
    scheduler: SchedulerStrategy,
    /// Pass pipeline run over the QODG before every mapping; `None` (or
    /// an empty manager) leaves the graph and placement untouched.
    passes: Option<Arc<PassManager>>,
}

impl Mapper {
    /// Creates a mapper with the default (interaction-aware) placement.
    pub fn new(dims: FabricDims, params: PhysicalParams) -> Self {
        Mapper {
            config: MapperConfig {
                dims,
                params,
                placement: PlacementStrategy::default(),
                router: RouterStrategy::default(),
                movement: MovementModel::default(),
                seed: 0,
            },
            fabric_map: None,
            scheduler: SchedulerStrategy::default(),
            passes: None,
        }
    }

    /// Creates a mapper from an explicit configuration.
    pub fn with_config(config: MapperConfig) -> Self {
        Mapper {
            config,
            fabric_map: None,
            scheduler: SchedulerStrategy::default(),
            passes: None,
        }
    }

    /// Selects the scheduling engine (the default is
    /// [`SchedulerStrategy::Greedy`], the pre-pipeline behaviour).
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: SchedulerStrategy) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Attaches a pass pipeline, run over the QODG before every mapping.
    /// An empty manager is bit-identical to none.
    #[must_use]
    pub fn with_passes(mut self, passes: Arc<PassManager>) -> Self {
        self.passes = Some(passes);
        self
    }

    /// The scheduling engine in use.
    pub fn scheduler(&self) -> SchedulerStrategy {
        self.scheduler
    }

    /// The attached pass pipeline, if any.
    pub fn passes(&self) -> Option<&PassManager> {
        self.passes.as_deref()
    }

    /// Attaches a fabric map: placement avoids dead cells, routing detours
    /// around dead cells/channels (or fails with
    /// [`MapError::Unroutable`]), and channel calendars honour per-region
    /// capacity/`T_move` overlays. A pristine map is equivalent to none.
    #[must_use]
    pub fn with_fabric_map(mut self, map: Arc<FabricMap>) -> Self {
        self.fabric_map = Some(map);
        self
    }

    /// The attached fabric map, if any.
    pub fn fabric_map(&self) -> Option<&FabricMap> {
        self.fabric_map.as_deref()
    }

    /// The configuration in use.
    pub fn config(&self) -> &MapperConfig {
        &self.config
    }

    /// Maps a QODG onto the fabric, simulating every qubit movement, and
    /// returns the program latency with detailed statistics.
    ///
    /// Operations are processed as a discrete-event simulation: an op
    /// enters the ready heap once all its QODG predecessors completed, and
    /// ops are executed in order of their earliest resource use, so channel
    /// and ULB bookings happen in (approximately) simulated-time order.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::FabricTooSmall`] if the program uses more
    /// logical qubits than the fabric has usable ULBs,
    /// [`MapError::Unroutable`] if an attached fabric map disconnects a
    /// required transfer, and [`MapError::FabricMapMismatch`] if the map
    /// describes different dimensions than the mapper.
    ///
    /// Uses a thread-local [`MapScratch`], so repeated calls on one
    /// thread reuse every working buffer.
    pub fn map(&self, qodg: &Qodg) -> Result<MappingResult, MapError> {
        let (result, _) = with_thread_scratch(|scratch| self.run(qodg, false, scratch))?;
        Ok(result)
    }

    /// Like [`map`](Self::map) with a caller-owned scratch — for callers
    /// that manage their own reuse (e.g. a dedicated mapping thread).
    /// Results are bit-identical to [`map`](Self::map).
    ///
    /// # Errors
    ///
    /// Same as [`map`](Self::map).
    pub fn map_with_scratch(
        &self,
        qodg: &Qodg,
        scratch: &mut MapScratch,
    ) -> Result<MappingResult, MapError> {
        let (result, _) = self.run(qodg, false, scratch)?;
        Ok(result)
    }

    /// Like [`map`](Self::map), additionally recording the per-operation
    /// schedule (start/end, travel distance, queueing wait).
    ///
    /// # Errors
    ///
    /// Same as [`map`](Self::map).
    pub fn map_with_trace(&self, qodg: &Qodg) -> Result<(MappingResult, Trace), MapError> {
        let (result, trace) = with_thread_scratch(|scratch| self.run(qodg, true, scratch))?;
        Ok((result, trace.expect("trace requested")))
    }

    /// Runs the attached pass pipeline over `qodg` without mapping,
    /// returning the (possibly transformed) graph, any placement the
    /// pipeline computed, and the analyses every pass preserved — the
    /// hook profile caches use to decide whether cached `ProfileData`
    /// is still valid for the transformed program. With no pipeline the
    /// outcome is the identity (everything preserved).
    ///
    /// # Errors
    ///
    /// Pass errors, including [`MapError::InvariantViolation`] when the
    /// manager's invariant checker catches a misbehaving pass.
    pub fn run_passes(&self, qodg: &Qodg) -> Result<PipelineOutcome, MapError> {
        match self.passes.as_deref() {
            None => Ok(PipelineOutcome::unchanged()),
            Some(pm) => pm.run(qodg, &self.pass_env()),
        }
    }

    /// The environment the pass pipeline sees (defect maps filtered the
    /// same way the engine filters them, so pristine maps stay
    /// bit-identical to none).
    fn pass_env(&self) -> PassEnv<'_> {
        PassEnv {
            dims: self.config.dims,
            placement: self.config.placement,
            seed: self.config.seed,
            fabric_map: self.fabric_map.as_deref().filter(|m| !m.is_pristine()),
        }
    }

    /// Pipeline + engine: the thin-driver composition behind every
    /// `map*` entry point.
    fn run(
        &self,
        qodg: &Qodg,
        want_trace: bool,
        scratch: &mut MapScratch,
    ) -> Result<(MappingResult, Option<Trace>), MapError> {
        match self.passes.as_deref() {
            None => self.map_impl(qodg, want_trace, scratch, None),
            Some(pm) => {
                let outcome = pm.run(qodg, &self.pass_env())?;
                let graph = outcome.qodg.as_ref().unwrap_or(qodg);
                self.map_impl(graph, want_trace, scratch, outcome.placement)
            }
        }
    }

    fn map_impl(
        &self,
        qodg: &Qodg,
        want_trace: bool,
        scratch: &mut MapScratch,
        placement_override: Option<Vec<Ulb>>,
    ) -> Result<(MappingResult, Option<Trace>), MapError> {
        let dims = self.config.dims;
        let params = &self.config.params;
        if let Some(map) = self.fabric_map.as_deref() {
            let md = map.dims();
            if md != dims {
                return Err(MapError::FabricMapMismatch {
                    dims: (dims.width(), dims.height()),
                    map_dims: (md.width(), md.height()),
                });
            }
        }
        // A pristine map is indistinguishable from no map; dropping it here
        // keeps defect-free runs on the legacy code paths, bit-identically.
        let fmap = self.fabric_map.as_deref().filter(|m| !m.is_pristine());
        let defects = fmap.filter(|m| m.has_defects());
        let placement = match placement_override {
            Some(p) => {
                debug_assert_eq!(p.len(), qodg.num_qubits() as usize);
                p
            }
            None => {
                let iig = Iig::from_qodg(qodg);
                initial_placement(&iig, dims, self.config.placement, self.config.seed, fmap)?
            }
        };

        let t_move = params.t_move();
        let d_cnot = params.gate_delays().cnot();
        let shuttle = params.one_qubit_routing_latency(); // 2·T_move in/out

        // Split the scratch into disjoint buffer borrows.
        let MapScratch {
            position,
            residents,
            qubit_ready,
            ulb_free,
            succ_offsets,
            succ_cursor,
            succ_edges,
            remaining,
            heap,
            route: route_buf,
            route_alt,
            channels: channels_slot,
            est,
            lst,
            mob_heap,
            wave,
            deferred,
            busy,
        } = scratch;

        let channels: &mut ChannelOccupancy = match channels_slot {
            Some(c) => {
                match fmap {
                    Some(map) => c.reset_with_map(dims, params.channel_capacity(), t_move, map),
                    None => c.reset(dims, params.channel_capacity(), t_move),
                }
                c
            }
            None => channels_slot.insert(match fmap {
                Some(map) => {
                    ChannelOccupancy::new_with_map(dims, params.channel_capacity(), t_move, map)
                }
                None => ChannelOccupancy::new(dims, params.channel_capacity(), t_move),
            }),
        };

        // Current position of each logical qubit (fixed homes in the
        // home-based model, evolving under drift).
        position.clear();
        position.extend_from_slice(&placement);
        // Residents per ULB (drift model only; ≤ 1 by construction).
        residents.clear();
        residents.resize(dims.area() as usize, 0);
        for &p in position.iter() {
            residents[dims.index_of(p)] += 1;
        }
        // When each logical qubit is next free.
        qubit_ready.clear();
        qubit_ready.resize(qodg.num_qubits() as usize, 0.0);
        // When each ULB finishes its current operation.
        ulb_free.clear();
        ulb_free.resize(dims.area() as usize, 0.0);

        // CSR successor graph and remaining-predecessor counters for the
        // event-driven sweep: counts, prefix sums, then a fill pass — in
        // the same (ascending node id) order the Vec-of-Vec build used,
        // so the heap sees identical push order.
        let n = qodg.node_count();
        succ_offsets.clear();
        succ_offsets.resize(n + 1, 0);
        remaining.clear();
        remaining.resize(n, 0);
        for (i, slot) in remaining.iter_mut().enumerate() {
            let preds = qodg.preds(NodeId(i));
            *slot = preds.len() as u32;
            for &p in preds {
                succ_offsets[p.0 + 1] += 1;
            }
        }
        for i in 0..n {
            succ_offsets[i + 1] += succ_offsets[i];
        }
        succ_cursor.clear();
        succ_cursor.extend_from_slice(&succ_offsets[..n]);
        succ_edges.clear();
        succ_edges.resize(succ_offsets[n], NodeId(0));
        for i in 0..n {
            for &p in qodg.preds(NodeId(i)) {
                succ_edges[succ_cursor[p.0]] = NodeId(i);
                succ_cursor[p.0] += 1;
            }
        }
        let succs = |node: NodeId| &succ_edges[succ_offsets[node.0]..succ_offsets[node.0 + 1]];

        let mut makespan = 0.0f64;
        let mut stats = MappingStats::default();
        let mut processed = 0usize;
        let mut trace = want_trace.then(Trace::new);

        let env = ExecEnv {
            dims,
            params,
            router: self.config.router,
            movement: self.config.movement,
            defects,
            t_move,
            d_cnot,
            shuttle,
        };

        match self.scheduler {
            SchedulerStrategy::Greedy => {
                heap.clear();
                let push_if_ready =
                    |heap: &mut BinaryHeap<ReadyOp>, qubit_ready: &[f64], node: NodeId| {
                        if let QodgNode::Op(op) = qodg.node(node) {
                            // Earliest resource use: the control's departure for a
                            // CNOT, the target's shuttle for a one-qubit op. Operand
                            // ready times are final once every predecessor completed
                            // (ops on a wire form a chain in the QODG).
                            let at = match op {
                                FtOp::Cnot { control, .. } => qubit_ready[control.index()],
                                FtOp::OneQubit { target, .. } => qubit_ready[target.index()],
                            };
                            heap.push(ReadyOp { at, node });
                        }
                    };

                // Seed: successors of `start`.
                for &s in succs(qodg.start()) {
                    remaining[s.0] -= 1;
                    if remaining[s.0] == 0 {
                        push_if_ready(heap, qubit_ready, s);
                    }
                }

                while let Some(ReadyOp { node, .. }) = heap.pop() {
                    let QodgNode::Op(op) = qodg.node(node) else {
                        continue;
                    };
                    processed += 1;
                    execute_op(
                        &env,
                        node,
                        op,
                        position,
                        residents,
                        qubit_ready,
                        ulb_free,
                        channels,
                        route_buf,
                        route_alt,
                        &mut makespan,
                        &mut stats,
                        &mut trace,
                    )?;

                    for &s in succs(node) {
                        remaining[s.0] -= 1;
                        if remaining[s.0] == 0 {
                            push_if_ready(heap, qubit_ready, s);
                        }
                    }
                }
            }
            SchedulerStrategy::Mobility => {
                // ASAP (est) / ALAP (lst) pre-pass over placement-
                // independent durations; slack = lst − est is the
                // mobility key (0 ⇒ on the critical path).
                let n = qodg.node_count();
                let dur = |node: NodeId| -> f64 {
                    match qodg.node(node) {
                        QodgNode::Op(FtOp::OneQubit { kind, .. }) => {
                            shuttle.as_f64() + params.gate_delays().one_qubit(kind).as_f64()
                        }
                        QodgNode::Op(FtOp::Cnot { .. }) => d_cnot.as_f64(),
                        _ => 0.0,
                    }
                };
                est.clear();
                est.resize(n, 0.0);
                for i in 0..n {
                    let mut e = 0.0f64;
                    for &p in qodg.preds(NodeId(i)) {
                        e = e.max(est[p.0] + dur(p));
                    }
                    est[i] = e;
                }
                lst.clear();
                lst.resize(n, f64::INFINITY);
                lst[n - 1] = est[n - 1];
                for i in (0..n - 1).rev() {
                    let d = dur(NodeId(i));
                    let mut l = f64::INFINITY;
                    for &s in succs(NodeId(i)) {
                        l = l.min(lst[s.0] - d);
                    }
                    if l.is_infinite() {
                        // Defensive: a node with no recorded successors
                        // can start as late as the graph's end.
                        l = est[n - 1] - d;
                    }
                    lst[i] = l;
                }
                let est = &est[..];
                let lst = &lst[..];

                mob_heap.clear();
                let push_if_ready =
                    |heap: &mut BinaryHeap<MobReadyOp>, qubit_ready: &[f64], node: NodeId| {
                        if let QodgNode::Op(op) = qodg.node(node) {
                            let at = match op {
                                FtOp::Cnot { control, .. } => qubit_ready[control.index()],
                                FtOp::OneQubit { target, .. } => qubit_ready[target.index()],
                            };
                            heap.push(MobReadyOp {
                                slack: lst[node.0] - est[node.0],
                                at,
                                node,
                            });
                        }
                    };

                for &s in succs(qodg.start()) {
                    remaining[s.0] -= 1;
                    if remaining[s.0] == 0 {
                        push_if_ready(mob_heap, qubit_ready, s);
                    }
                }

                // Wave execution: drain the ready heap in mobility order;
                // an op whose execution ULB is already claimed this wave
                // (port-busy bitset) defers to the next wave with a
                // refreshed ready time. The first op of every wave always
                // executes, so the loop terminates.
                let words = (dims.area() as usize).div_ceil(64);
                while !mob_heap.is_empty() {
                    wave.clear();
                    while let Some(entry) = mob_heap.pop() {
                        wave.push(entry);
                    }
                    busy.clear();
                    busy.resize(words, 0);
                    deferred.clear();
                    for entry in wave.iter() {
                        let node = entry.node;
                        let QodgNode::Op(op) = qodg.node(node) else {
                            continue;
                        };
                        // The gate executes at the target's ULB in both
                        // op classes.
                        let site = match op {
                            FtOp::Cnot { target, .. } | FtOp::OneQubit { target, .. } => {
                                dims.index_of(position[target.index()])
                            }
                        };
                        if busy[site / 64] >> (site % 64) & 1 == 1 {
                            deferred.push(node);
                            continue;
                        }
                        busy[site / 64] |= 1 << (site % 64);
                        processed += 1;
                        execute_op(
                            &env,
                            node,
                            op,
                            position,
                            residents,
                            qubit_ready,
                            ulb_free,
                            channels,
                            route_buf,
                            route_alt,
                            &mut makespan,
                            &mut stats,
                            &mut trace,
                        )?;

                        for &s in succs(node) {
                            remaining[s.0] -= 1;
                            if remaining[s.0] == 0 {
                                push_if_ready(mob_heap, qubit_ready, s);
                            }
                        }
                    }
                    for &node in deferred.iter() {
                        push_if_ready(mob_heap, qubit_ready, node);
                    }
                }
            }
        }
        debug_assert_eq!(processed, qodg.op_count(), "all ops must execute");

        stats.congestion_wait = channels.congestion_wait();
        stats.channel_traversals = channels.traversals();
        stats.max_channel_load = channels.load().iter().copied().max().unwrap_or(0);

        Ok((
            MappingResult {
                latency: Micros::new(makespan),
                placement,
                channel_load: channels.load().to_vec(),
                stats,
            },
            trace,
        ))
    }
}

/// Reusable working storage for [`Mapper`] runs (see the module docs):
/// positions, ready times, the CSR successor graph, the ready heap, the
/// route buffers and the channel calendars. One scratch serves any
/// sequence of programs and fabrics; buffers grow to the high-water mark
/// and stay.
#[derive(Debug, Default)]
pub struct MapScratch {
    position: Vec<Ulb>,
    residents: Vec<u32>,
    qubit_ready: Vec<f64>,
    ulb_free: Vec<f64>,
    succ_offsets: Vec<usize>,
    succ_cursor: Vec<usize>,
    succ_edges: Vec<NodeId>,
    remaining: Vec<u32>,
    heap: BinaryHeap<ReadyOp>,
    route: Vec<Channel>,
    route_alt: Vec<Channel>,
    channels: Option<ChannelOccupancy>,
    // Mobility-engine storage (unused by the greedy engine).
    est: Vec<f64>,
    lst: Vec<f64>,
    mob_heap: BinaryHeap<MobReadyOp>,
    wave: Vec<MobReadyOp>,
    deferred: Vec<NodeId>,
    busy: Vec<u64>,
}

impl MapScratch {
    /// An empty scratch; buffers are sized on first use.
    #[must_use]
    pub fn new() -> Self {
        MapScratch::default()
    }
}

thread_local! {
    /// Per-thread scratch behind [`Mapper::map`] / [`Mapper::map_with_trace`].
    static THREAD_SCRATCH: RefCell<MapScratch> = RefCell::new(MapScratch::new());
}

/// Runs `f` with the thread-local scratch (falling back to a fresh one
/// in the — currently impossible — reentrant case).
fn with_thread_scratch<R>(f: impl FnOnce(&mut MapScratch) -> R) -> R {
    THREAD_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut MapScratch::new()),
    })
}

/// Chooses the channel sequence for one transfer under the configured
/// routing discipline, filling `out` in place (`alt` is the comparison
/// buffer the adaptive router probes against) — no allocation once the
/// buffers reached the fabric diameter.
fn pick_route_into(
    strategy: RouterStrategy,
    channels: &ChannelOccupancy,
    from: Ulb,
    to: Ulb,
    at: Micros,
    out: &mut Vec<Channel>,
    alt: &mut Vec<Channel>,
) {
    match strategy {
        RouterStrategy::Xy => route::xy_channels_into(from, to, out),
        RouterStrategy::Yx => route::yx_channels_into(from, to, out),
        RouterStrategy::Adaptive => {
            route::xy_channels_into(from, to, out);
            route::yx_channels_into(from, to, alt);
            if out == alt {
                return; // straight line: no choice to make
            }
            let probe = |path: &[Channel]| -> f64 {
                path.iter()
                    .map(|ch| channels.peek_wait(*ch, at).as_f64())
                    .sum()
            };
            if probe(out) > probe(alt) {
                std::mem::swap(out, alt);
            }
        }
    }
}

/// Routes one transfer, honouring a defect map when present: without
/// defects this is exactly [`pick_route_into`]; with defects, the minimal
/// dimension-ordered candidates are validated against the map and a BFS
/// detour is taken when both are blocked.
///
/// # Errors
///
/// [`MapError::Unroutable`] when the defect map disconnects `from` and
/// `to`.
#[allow(clippy::too_many_arguments)]
fn route_transfer(
    strategy: RouterStrategy,
    defects: Option<&FabricMap>,
    channels: &ChannelOccupancy,
    from: Ulb,
    to: Ulb,
    at: Micros,
    out: &mut Vec<Channel>,
    alt: &mut Vec<Channel>,
) -> Result<(), MapError> {
    match defects {
        None => {
            pick_route_into(strategy, channels, from, to, at, out, alt);
            Ok(())
        }
        Some(map) => defect_route_into(strategy, map, channels, from, to, at, out, alt),
    }
}

/// Defect-aware route choice: prefer the strategy's minimal path, fall
/// back to the other dimension order, then to a BFS detour over the live
/// fabric ([`FabricMap::route_avoiding`]).
#[allow(clippy::too_many_arguments)]
fn defect_route_into(
    strategy: RouterStrategy,
    map: &FabricMap,
    channels: &ChannelOccupancy,
    from: Ulb,
    to: Ulb,
    at: Micros,
    out: &mut Vec<Channel>,
    alt: &mut Vec<Channel>,
) -> Result<(), MapError> {
    match strategy {
        RouterStrategy::Xy => {
            route::xy_channels_into(from, to, out);
            if path_ok(map, from, out) {
                return Ok(());
            }
            route::yx_channels_into(from, to, out);
            if path_ok(map, from, out) {
                return Ok(());
            }
        }
        RouterStrategy::Yx => {
            route::yx_channels_into(from, to, out);
            if path_ok(map, from, out) {
                return Ok(());
            }
            route::xy_channels_into(from, to, out);
            if path_ok(map, from, out) {
                return Ok(());
            }
        }
        RouterStrategy::Adaptive => {
            route::xy_channels_into(from, to, out);
            route::yx_channels_into(from, to, alt);
            match (path_ok(map, from, out), path_ok(map, from, alt)) {
                (true, true) => {
                    if out != alt {
                        let probe = |path: &[Channel]| -> f64 {
                            path.iter()
                                .map(|ch| channels.peek_wait(*ch, at).as_f64())
                                .sum()
                        };
                        if probe(out) > probe(alt) {
                            std::mem::swap(out, alt);
                        }
                    }
                    return Ok(());
                }
                (true, false) => return Ok(()),
                (false, true) => {
                    std::mem::swap(out, alt);
                    return Ok(());
                }
                (false, false) => {}
            }
        }
    }
    if map.route_avoiding(from, to, out) {
        Ok(())
    } else {
        Err(MapError::Unroutable { from, to })
    }
}

/// Whether a channel path starting at `from` stays on live channels and
/// cells (every cell it enters, intermediate or final, must be enabled;
/// `from` itself is a placement/settle site and is live by construction).
fn path_ok(map: &FabricMap, from: Ulb, path: &[Channel]) -> bool {
    let mut here = from;
    for &ch in path {
        if !map.channel_enabled(ch) {
            return false;
        }
        here = if ch.origin() == here {
            ch.far_end()
        } else {
            ch.origin()
        };
        if !map.cell_enabled(here) {
            return false;
        }
    }
    true
}

/// Read-only execution environment shared by both scheduling engines:
/// fabric geometry, physical parameters, routing/movement disciplines and
/// the precomputed per-op delay constants.
struct ExecEnv<'a> {
    dims: FabricDims,
    params: &'a PhysicalParams,
    router: RouterStrategy,
    movement: MovementModel,
    defects: Option<&'a FabricMap>,
    t_move: Micros,
    d_cnot: Micros,
    shuttle: Micros,
}

/// Executes one ready operation against the simulated fabric state:
/// books channels and the execution ULB, advances qubit-ready times,
/// updates makespan/stats and records the trace entry. Both scheduling
/// engines run ops through this single function, so they share the exact
/// discrete-event physics and differ only in op order.
///
/// # Errors
///
/// [`MapError::Unroutable`] when a defect map disconnects a transfer.
#[allow(clippy::too_many_arguments)]
fn execute_op(
    env: &ExecEnv<'_>,
    node: NodeId,
    op: FtOp,
    position: &mut [Ulb],
    residents: &mut [u32],
    qubit_ready: &mut [f64],
    ulb_free: &mut [f64],
    channels: &mut ChannelOccupancy,
    route_buf: &mut Vec<Channel>,
    route_alt: &mut Vec<Channel>,
    makespan: &mut f64,
    stats: &mut MappingStats,
    trace: &mut Option<Trace>,
) -> Result<(), MapError> {
    let dims = env.dims;
    let defects = env.defects;
    match op {
        FtOp::OneQubit { kind, target } => {
            let here = position[target.index()];
            let ulb = dims.index_of(here);
            let start = qubit_ready[target.index()].max(ulb_free[ulb]);
            // Shuttle into the ULB's operating region, run the FT
            // op, shuttle out (the paper's empirical 2·T_move).
            let end =
                start + env.shuttle.as_f64() + env.params.gate_delays().one_qubit(kind).as_f64();
            qubit_ready[target.index()] = end;
            ulb_free[ulb] = end;
            *makespan = makespan.max(end);
            stats.one_qubit_ops += 1;
            if let Some(trace) = trace.as_mut() {
                trace.push(OpRecord {
                    node,
                    op,
                    start: Micros::new(start),
                    end: Micros::new(end),
                    distance: 0,
                    outbound_wait: Micros::ZERO,
                });
            }
        }
        FtOp::Cnot { control, target } => {
            let from = position[control.index()];
            let to = position[target.index()];
            let ulb = dims.index_of(to);

            // Outbound trip of the control qubit.
            let depart = qubit_ready[control.index()];
            let mut t = Micros::new(depart);
            route_transfer(
                env.router, defects, channels, from, to, t, route_buf, route_alt,
            )?;
            let distance = route_buf.len() as u64;
            for &ch in route_buf.iter() {
                t = channels.traverse(ch, t);
            }
            let arrival = t.as_f64();

            // Gate executes when both qubits and the ULB are ready.
            let start = arrival.max(qubit_ready[target.index()]).max(ulb_free[ulb]);
            let end = start + env.d_cnot.as_f64();
            qubit_ready[target.index()] = end;
            ulb_free[ulb] = end;
            *makespan = makespan.max(end);

            // After the gate the control either returns home
            // (home-based) or settles nearby (drift).
            match env.movement {
                MovementModel::HomeBased => {
                    let mut back = Micros::new(end);
                    route_transfer(
                        env.router, defects, channels, to, from, back, route_buf, route_alt,
                    )?;
                    for &ch in route_buf.iter() {
                        back = channels.traverse(ch, back);
                    }
                    qubit_ready[control.index()] = back.as_f64();
                    stats.total_hops += 2 * distance;
                }
                MovementModel::Drift => {
                    // Vacate the old site, settle at the nearest
                    // free (and live) ULB around the interaction
                    // site.
                    residents[dims.index_of(from)] -= 1;
                    let settle = dims
                        .rings(to)
                        .find(|u| {
                            residents[dims.index_of(*u)] == 0
                                && defects.is_none_or(|m| m.cell_enabled(*u))
                        })
                        .expect("Q <= usable ULBs guarantees a free one");
                    residents[dims.index_of(settle)] += 1;
                    position[control.index()] = settle;
                    let mut back = Micros::new(end);
                    route_transfer(
                        env.router, defects, channels, to, settle, back, route_buf, route_alt,
                    )?;
                    for &ch in route_buf.iter() {
                        back = channels.traverse(ch, back);
                    }
                    qubit_ready[control.index()] = back.as_f64();
                    stats.total_hops += distance + to.manhattan_distance(settle) as u64;
                }
            }

            stats.cnot_ops += 1;
            stats.total_cnot_distance += distance;
            if let Some(trace) = trace.as_mut() {
                let ideal = distance as f64 * env.t_move.as_f64();
                trace.push(OpRecord {
                    node,
                    op,
                    start: Micros::new(start),
                    end: Micros::new(end),
                    distance: distance as u32,
                    outbound_wait: Micros::new((arrival - depart - ideal).max(0.0)),
                });
            }
        }
    }
    Ok(())
}

/// Mobility-heap entry: a ready op keyed by (slack, earliest resource
/// use, node id) — a min-heap, so zero-slack (critical-path) ops book
/// contended resources first and ties fall back to the greedy order.
#[derive(Debug, Clone, Copy)]
struct MobReadyOp {
    slack: f64,
    at: f64,
    node: NodeId,
}

impl PartialEq for MobReadyOp {
    fn eq(&self, other: &Self) -> bool {
        self.slack == other.slack && self.at == other.at && self.node == other.node
    }
}
impl Eq for MobReadyOp {}
impl PartialOrd for MobReadyOp {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MobReadyOp {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap; deterministic via the node-id tail.
        other
            .slack
            .total_cmp(&self.slack)
            .then_with(|| other.at.total_cmp(&self.at))
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Heap entry: an op whose predecessors all completed, ordered by earliest
/// resource-use time (min-heap).
#[derive(Debug, Clone, Copy)]
struct ReadyOp {
    at: f64,
    node: NodeId,
}

impl PartialEq for ReadyOp {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.node == other.node
    }
}
impl Eq for ReadyOp {}
impl PartialOrd for ReadyOp {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ReadyOp {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap; tie-break on node id for determinism.
        other
            .at
            .total_cmp(&self.at)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// The outcome of a detailed mapping run.
#[derive(Debug, Clone)]
pub struct MappingResult {
    /// The program latency ("actual delay" in Table 2): the completion
    /// time of the last operation.
    pub latency: Micros,
    /// The home ULB of each logical qubit.
    pub placement: Vec<Ulb>,
    /// Per-channel traversal counts indexed by
    /// [`ChannelId`](leqa_fabric::ChannelId) — the congestion heatmap.
    pub channel_load: Vec<u64>,
    /// Movement and congestion statistics.
    pub stats: MappingStats,
}

impl MappingResult {
    /// The `k` most-traversed channels as `(channel index, traversals)`,
    /// busiest first — where crossbar congestion concentrates.
    ///
    /// Partial selection: for small `k` over a big fabric's channel
    /// vector this is `O(n + k log k)` rather than the full `O(n log n)`
    /// sort it used to pay.
    pub fn hotspots(&self, k: usize) -> Vec<(usize, u64)> {
        let mut indexed: Vec<(usize, u64)> = self
            .channel_load
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, load)| load > 0)
            .collect();
        if k == 0 || indexed.is_empty() {
            return Vec::new();
        }
        let rank = |&(i, load): &(usize, u64)| (std::cmp::Reverse(load), i);
        if k < indexed.len() {
            indexed.select_nth_unstable_by_key(k - 1, rank);
            indexed.truncate(k);
        }
        indexed.sort_unstable_by_key(rank);
        indexed
    }
}

/// Movement and congestion statistics of a mapping run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MappingStats {
    /// One-qubit operations executed.
    pub one_qubit_ops: u64,
    /// CNOT operations executed.
    pub cnot_ops: u64,
    /// Channel hops travelled (out- and return trips).
    pub total_hops: u64,
    /// Sum over CNOTs of the control→target Manhattan distance.
    pub total_cnot_distance: u64,
    /// Total time qubits queued at saturated channels.
    pub congestion_wait: Micros,
    /// Total channel traversals recorded by the occupancy tracker.
    pub channel_traversals: u64,
    /// Traversals through the single busiest channel.
    pub max_channel_load: u64,
}

impl MappingStats {
    /// Average control→target distance per CNOT, in ULB hops.
    pub fn avg_cnot_distance(&self) -> f64 {
        if self.cnot_ops == 0 {
            0.0
        } else {
            self.total_cnot_distance as f64 / self.cnot_ops as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leqa_circuit::{FtCircuit, QubitId};
    use leqa_fabric::OneQubitKind;

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    fn dac13_mapper() -> Mapper {
        Mapper::new(FabricDims::dac13(), PhysicalParams::dac13())
    }

    #[test]
    fn single_one_qubit_op_latency() {
        let mut ft = FtCircuit::new(1);
        ft.push_one_qubit(OneQubitKind::H, q(0)).unwrap();
        let qodg = Qodg::from_ft_circuit(&ft);
        let r = dac13_mapper().map(&qodg).unwrap();
        // 2·T_move shuttle + d_H
        assert_eq!(r.latency.as_f64(), 200.0 + 5440.0);
    }

    #[test]
    fn serial_ops_accumulate() {
        let mut ft = FtCircuit::new(1);
        ft.push_one_qubit(OneQubitKind::H, q(0)).unwrap();
        ft.push_one_qubit(OneQubitKind::T, q(0)).unwrap();
        let qodg = Qodg::from_ft_circuit(&ft);
        let r = dac13_mapper().map(&qodg).unwrap();
        assert_eq!(r.latency.as_f64(), 2.0 * 200.0 + 5440.0 + 10940.0);
    }

    #[test]
    fn parallel_ops_overlap() {
        let mut ft = FtCircuit::new(2);
        ft.push_one_qubit(OneQubitKind::H, q(0)).unwrap();
        ft.push_one_qubit(OneQubitKind::H, q(1)).unwrap();
        let qodg = Qodg::from_ft_circuit(&ft);
        let r = dac13_mapper().map(&qodg).unwrap();
        // Different homes → fully parallel.
        assert_eq!(r.latency.as_f64(), 200.0 + 5440.0);
    }

    #[test]
    fn cnot_pays_travel_time() {
        let mut ft = FtCircuit::new(2);
        ft.push_cnot(q(0), q(1)).unwrap();
        let qodg = Qodg::from_ft_circuit(&ft);
        let r = dac13_mapper().map(&qodg).unwrap();
        let d = r.stats.avg_cnot_distance();
        assert!(d >= 1.0, "homes are distinct, so distance ≥ 1");
        assert_eq!(r.latency.as_f64(), d * 100.0 + 4930.0);
    }

    #[test]
    fn control_return_trip_delays_its_next_op() {
        // CNOT(0,1) then H(0): the H must wait for the control to return.
        let mut ft = FtCircuit::new(2);
        ft.push_cnot(q(0), q(1)).unwrap();
        ft.push_one_qubit(OneQubitKind::H, q(0)).unwrap();
        let qodg = Qodg::from_ft_circuit(&ft);
        let r = dac13_mapper().map(&qodg).unwrap();
        let d = r.stats.avg_cnot_distance();
        // out + gate + back + shuttle + H
        let expected = d * 100.0 + 4930.0 + d * 100.0 + 200.0 + 5440.0;
        assert!((r.latency.as_f64() - expected).abs() < 1e-9);
    }

    #[test]
    fn congestion_appears_under_contention() {
        // Star pattern: many qubits CNOT into one hub target concurrently →
        // channels near the hub saturate. Use capacity 1 to force queueing.
        let params = PhysicalParams::dac13()
            .to_builder()
            .channel_capacity(1)
            .build()
            .unwrap();
        let mut ft = FtCircuit::new(9);
        for i in 1..9 {
            ft.push_cnot(q(i), q(0)).unwrap();
        }
        let qodg = Qodg::from_ft_circuit(&ft);
        let mapper = Mapper::new(FabricDims::new(3, 3).unwrap(), params);
        let r = mapper.map(&qodg).unwrap();
        // All 8 CNOTs serialize on the hub ULB regardless; congestion shows
        // up as waiting in the stats.
        assert!(r.stats.congestion_wait.as_f64() >= 0.0);
        assert_eq!(r.stats.cnot_ops, 8);
    }

    #[test]
    fn too_many_qubits_is_an_error() {
        let mut ft = FtCircuit::new(10);
        ft.push_cnot(q(0), q(1)).unwrap();
        let qodg = Qodg::from_ft_circuit(&ft);
        let mapper = Mapper::new(FabricDims::new(3, 3).unwrap(), PhysicalParams::dac13());
        assert!(matches!(
            mapper.map(&qodg),
            Err(MapError::FabricTooSmall { .. })
        ));
    }

    #[test]
    fn deterministic_results() {
        let mut ft = FtCircuit::new(6);
        for i in 0..5 {
            ft.push_cnot(q(i), q(i + 1)).unwrap();
            ft.push_one_qubit(OneQubitKind::T, q(i)).unwrap();
        }
        let qodg = Qodg::from_ft_circuit(&ft);
        let a = dac13_mapper().map(&qodg).unwrap();
        let b = dac13_mapper().map(&qodg).unwrap();
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn reused_scratch_is_bit_identical() {
        // One scratch across different programs, fabrics, routers and
        // movement models must reproduce fresh-buffer runs exactly —
        // the zero-alloc contract.
        let mut scratch = MapScratch::new();
        let mut programs = Vec::new();
        for n in [2u32, 7, 16] {
            let mut ft = FtCircuit::new(n);
            for i in 0..n - 1 {
                ft.push_cnot(q(i), q(i + 1)).unwrap();
                ft.push_one_qubit(OneQubitKind::H, q((i * 3) % n)).unwrap();
            }
            for i in 0..n / 2 {
                ft.push_cnot(q(i), q(n - 1 - i)).unwrap();
            }
            programs.push(Qodg::from_ft_circuit(&ft));
        }
        for qodg in &programs {
            for side in [5u32, 9, 12] {
                for router in [
                    RouterStrategy::Xy,
                    RouterStrategy::Yx,
                    RouterStrategy::Adaptive,
                ] {
                    for movement in [MovementModel::HomeBased, MovementModel::Drift] {
                        let mapper = Mapper::with_config(MapperConfig {
                            dims: FabricDims::new(side, side).unwrap(),
                            params: PhysicalParams::dac13()
                                .to_builder()
                                .channel_capacity(1)
                                .build()
                                .unwrap(),
                            placement: PlacementStrategy::RowMajor,
                            router,
                            movement,
                            seed: 0,
                        });
                        let reused = mapper.map_with_scratch(qodg, &mut scratch).unwrap();
                        let fresh = mapper
                            .map_with_scratch(qodg, &mut MapScratch::new())
                            .unwrap();
                        assert_eq!(reused.latency, fresh.latency);
                        assert_eq!(reused.stats, fresh.stats);
                        assert_eq!(reused.placement, fresh.placement);
                        assert_eq!(reused.channel_load, fresh.channel_load);
                    }
                }
            }
        }
    }

    #[test]
    fn empty_program_is_instant() {
        let ft = FtCircuit::new(3);
        let qodg = Qodg::from_ft_circuit(&ft);
        let r = dac13_mapper().map(&qodg).unwrap();
        assert_eq!(r.latency, Micros::ZERO);
    }

    #[test]
    fn stats_hop_accounting() {
        let mut ft = FtCircuit::new(2);
        ft.push_cnot(q(0), q(1)).unwrap();
        let qodg = Qodg::from_ft_circuit(&ft);
        let r = dac13_mapper().map(&qodg).unwrap();
        assert_eq!(r.stats.total_hops, 2 * r.stats.total_cnot_distance);
        assert_eq!(r.stats.channel_traversals, r.stats.total_hops);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use leqa_circuit::{FtCircuit, QubitId};
    use leqa_fabric::OneQubitKind;

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    fn sample_qodg() -> Qodg {
        let mut ft = FtCircuit::new(4);
        ft.push_one_qubit(OneQubitKind::H, q(0)).unwrap();
        ft.push_cnot(q(0), q(1)).unwrap();
        ft.push_cnot(q(2), q(3)).unwrap();
        ft.push_one_qubit(OneQubitKind::T, q(1)).unwrap();
        Qodg::from_ft_circuit(&ft)
    }

    #[test]
    fn trace_covers_every_op() {
        let qodg = sample_qodg();
        let mapper = Mapper::new(FabricDims::dac13(), PhysicalParams::dac13());
        let (result, trace) = mapper.map_with_trace(&qodg).unwrap();
        assert_eq!(trace.records().len(), qodg.op_count());
        // The trace's last finisher defines the makespan.
        let last = trace.last_to_finish().unwrap();
        assert!((last.end.as_f64() - result.latency.as_f64()).abs() < 1e-9);
    }

    #[test]
    fn traced_and_untraced_runs_agree() {
        let qodg = sample_qodg();
        let mapper = Mapper::new(FabricDims::dac13(), PhysicalParams::dac13());
        let plain = mapper.map(&qodg).unwrap();
        let (traced, _) = mapper.map_with_trace(&qodg).unwrap();
        assert_eq!(plain.latency, traced.latency);
        assert_eq!(plain.stats, traced.stats);
    }

    #[test]
    fn cnot_records_have_distance_one_qubit_records_do_not() {
        let qodg = sample_qodg();
        let mapper = Mapper::new(FabricDims::dac13(), PhysicalParams::dac13());
        let (_, trace) = mapper.map_with_trace(&qodg).unwrap();
        for r in trace.records() {
            match r.op {
                FtOp::Cnot { .. } => assert!(r.distance >= 1),
                FtOp::OneQubit { .. } => assert_eq!(r.distance, 0),
            }
            assert!(r.end > r.start);
        }
    }

    #[test]
    fn channel_load_sums_to_traversals() {
        let qodg = sample_qodg();
        let mapper = Mapper::new(FabricDims::dac13(), PhysicalParams::dac13());
        let result = mapper.map(&qodg).unwrap();
        let total: u64 = result.channel_load.iter().sum();
        assert_eq!(total, result.stats.channel_traversals);
        assert!(result.stats.max_channel_load >= 1);
    }

    #[test]
    fn hotspots_partial_select_matches_full_sort() {
        let qodg = congested_reference_qodg();
        let mapper = Mapper::new(FabricDims::new(8, 8).unwrap(), PhysicalParams::dac13());
        let result = mapper.map(&qodg).unwrap();
        // Reference: full sort + truncate (the previous implementation).
        let mut reference: Vec<(usize, u64)> = result
            .channel_load
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, load)| load > 0)
            .collect();
        reference.sort_by_key(|&(i, load)| (std::cmp::Reverse(load), i));
        for k in [0usize, 1, 2, 3, 5, reference.len(), reference.len() + 10] {
            let mut want = reference.clone();
            want.truncate(k);
            assert_eq!(result.hotspots(k), want, "k = {k}");
        }
    }

    fn congested_reference_qodg() -> Qodg {
        let mut ft = FtCircuit::new(20);
        for round in 0..3u32 {
            for i in 0..10u32 {
                ft.push_cnot(q(i), q(10 + ((i + round) % 10))).unwrap();
            }
        }
        Qodg::from_ft_circuit(&ft)
    }

    #[test]
    fn hotspots_are_sorted_and_bounded() {
        let qodg = sample_qodg();
        let mapper = Mapper::new(FabricDims::dac13(), PhysicalParams::dac13());
        let result = mapper.map(&qodg).unwrap();
        let hs = result.hotspots(3);
        assert!(!hs.is_empty() && hs.len() <= 3);
        for w in hs.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert_eq!(hs[0].1, result.stats.max_channel_load);
    }
}

#[cfg(test)]
mod router_tests {
    use super::*;
    use leqa_circuit::{FtCircuit, QubitId};

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    fn congested_qodg() -> Qodg {
        // Many concurrent CNOTs between two groups, forcing shared
        // channels.
        let mut ft = FtCircuit::new(16);
        for round in 0..4u32 {
            for i in 0..8u32 {
                let target = 8 + ((i + round) % 8);
                ft.push_cnot(q(i), q(target)).unwrap();
            }
        }
        Qodg::from_ft_circuit(&ft)
    }

    fn latency_with(router: RouterStrategy) -> f64 {
        let mapper = Mapper::with_config(MapperConfig {
            dims: FabricDims::new(6, 6).unwrap(),
            params: PhysicalParams::dac13()
                .to_builder()
                .channel_capacity(1)
                .build()
                .unwrap(),
            placement: PlacementStrategy::RowMajor,
            router,
            movement: Default::default(),
            seed: 0,
        });
        mapper.map(&congested_qodg()).unwrap().latency.as_f64()
    }

    #[test]
    fn all_router_strategies_complete_with_equal_distances() {
        // Minimal routing: distances identical across strategies.
        for router in [
            RouterStrategy::Xy,
            RouterStrategy::Yx,
            RouterStrategy::Adaptive,
        ] {
            let mapper = Mapper::with_config(MapperConfig {
                dims: FabricDims::dac13(),
                params: PhysicalParams::dac13(),
                placement: PlacementStrategy::IigCluster,
                router,
                movement: Default::default(),
                seed: 0,
            });
            let r = mapper.map(&congested_qodg()).unwrap();
            assert_eq!(r.stats.cnot_ops, 32);
            assert!(r.latency.is_valid());
        }
    }

    #[test]
    fn adaptive_routing_never_loses_badly() {
        // On a congested capacity-1 fabric, the adaptive router should be
        // no worse than the better of the two fixed disciplines by more
        // than a small slack (probes are heuristic).
        let xy = latency_with(RouterStrategy::Xy);
        let yx = latency_with(RouterStrategy::Yx);
        let adaptive = latency_with(RouterStrategy::Adaptive);
        let best = xy.min(yx);
        assert!(
            adaptive <= best * 1.10,
            "adaptive {adaptive} vs best fixed {best}"
        );
    }

    #[test]
    fn router_choice_is_deterministic() {
        assert_eq!(
            latency_with(RouterStrategy::Adaptive),
            latency_with(RouterStrategy::Adaptive)
        );
    }
}

#[cfg(test)]
mod defect_tests {
    use super::*;
    use leqa_circuit::{FtCircuit, QubitId};
    use leqa_fabric::ChannelId;

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    fn dense_qodg(n: u32, rounds: u32) -> Qodg {
        let mut ft = FtCircuit::new(n);
        for round in 0..rounds {
            for i in 0..n / 2 {
                ft.push_cnot(q(i), q(n / 2 + ((i + round) % (n / 2))))
                    .unwrap();
            }
        }
        Qodg::from_ft_circuit(&ft)
    }

    fn mapper_on(map: FabricMap, router: RouterStrategy, movement: MovementModel) -> Mapper {
        let dims = map.dims();
        Mapper::with_config(MapperConfig {
            dims,
            params: PhysicalParams::dac13()
                .to_builder()
                .channel_capacity(1)
                .build()
                .unwrap(),
            placement: PlacementStrategy::RowMajor,
            router,
            movement,
            seed: 0,
        })
        .with_fabric_map(Arc::new(map))
    }

    /// Every channel whose use the map forbids — disabled outright, or
    /// only reachable by entering a dead cell — must end the run with
    /// zero traversals.
    fn assert_forbidden_channels_unused(map: &FabricMap, load: &[u64]) {
        let dims = map.dims();
        for ch in map.channels() {
            let forbidden = !map.channel_enabled(ch)
                || !map.cell_enabled(ch.origin())
                || !map.cell_enabled(ch.far_end());
            if forbidden {
                assert_eq!(load[ch.id(dims).0], 0, "forbidden channel {ch:?} was used");
            }
        }
    }

    #[test]
    fn routing_never_uses_dead_cells_or_channels() {
        let dims = FabricDims::new(6, 6).unwrap();
        let qodg = dense_qodg(16, 3);
        for seed in 0..8u64 {
            let map = FabricMap::with_random_defects(dims, 0.12, 0.12, seed).unwrap();
            for router in [
                RouterStrategy::Xy,
                RouterStrategy::Yx,
                RouterStrategy::Adaptive,
            ] {
                for movement in [MovementModel::HomeBased, MovementModel::Drift] {
                    let mapper = mapper_on(map.clone(), router, movement);
                    match mapper.map(&qodg) {
                        Ok(r) => {
                            assert_forbidden_channels_unused(&map, &r.channel_load);
                            assert!(r.latency.is_valid());
                        }
                        // A dense defect draw may disconnect the fabric —
                        // that must surface as the typed error, not a
                        // panic or a route through a defect.
                        Err(MapError::Unroutable { .. } | MapError::FabricTooSmall { .. }) => {}
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            }
        }
    }

    #[test]
    fn disconnected_fabric_is_unroutable() {
        // A full column of dead cells splits the fabric in two.
        let dims = FabricDims::new(5, 3).unwrap();
        let mut map = FabricMap::pristine(dims);
        for y in 0..3 {
            map.disable_cell(Ulb::new(2, y)).unwrap();
        }
        let mut ft = FtCircuit::new(12);
        for i in 0..11 {
            ft.push_cnot(q(i), q(i + 1)).unwrap();
        }
        let qodg = Qodg::from_ft_circuit(&ft);
        let err = mapper_on(map, RouterStrategy::Xy, MovementModel::HomeBased)
            .map(&qodg)
            .unwrap_err();
        assert!(matches!(err, MapError::Unroutable { .. }), "got {err}");
    }

    #[test]
    fn detour_pays_extra_hops() {
        // Dead cell directly between two interacting qubits on a 3x1-ish
        // line: the route must go around (4 hops instead of 2).
        let dims = FabricDims::new(3, 2).unwrap();
        let mut map = FabricMap::pristine(dims);
        map.disable_cell(Ulb::new(1, 0)).unwrap();
        let mut ft = FtCircuit::new(2);
        ft.push_cnot(q(0), q(1)).unwrap();
        let qodg = Qodg::from_ft_circuit(&ft);
        // RowMajor on live cells: q0 -> (0,0), q1 -> (2,0).
        let r = mapper_on(map.clone(), RouterStrategy::Xy, MovementModel::HomeBased)
            .map(&qodg)
            .unwrap();
        assert_eq!(r.placement, vec![Ulb::new(0, 0), Ulb::new(2, 0)]);
        assert_eq!(r.stats.total_cnot_distance, 4, "detour through y=1");
        assert_forbidden_channels_unused(&map, &r.channel_load);
    }

    #[test]
    fn pristine_map_is_bit_identical_to_no_map() {
        let dims = FabricDims::new(6, 6).unwrap();
        let qodg = dense_qodg(16, 3);
        for router in [
            RouterStrategy::Xy,
            RouterStrategy::Yx,
            RouterStrategy::Adaptive,
        ] {
            for movement in [MovementModel::HomeBased, MovementModel::Drift] {
                let config = MapperConfig {
                    dims,
                    params: PhysicalParams::dac13(),
                    placement: PlacementStrategy::IigCluster,
                    router,
                    movement,
                    seed: 0,
                };
                let plain = Mapper::with_config(config.clone()).map(&qodg).unwrap();
                let mapped = Mapper::with_config(config)
                    .with_fabric_map(Arc::new(FabricMap::pristine(dims)))
                    .map(&qodg)
                    .unwrap();
                assert_eq!(plain.latency, mapped.latency);
                assert_eq!(plain.stats, mapped.stats);
                assert_eq!(plain.placement, mapped.placement);
                assert_eq!(plain.channel_load, mapped.channel_load);
            }
        }
    }

    #[test]
    fn overlay_capacity_increases_congestion_wait() {
        // Choking every channel to capacity 1 via an overlay must produce
        // at least as much queueing as the uniform capacity-5 fabric.
        let dims = FabricDims::new(6, 6).unwrap();
        let qodg = dense_qodg(16, 4);
        let mut map = FabricMap::pristine(dims);
        map.push_overlay(leqa_fabric::RegionOverlay {
            x0: 0,
            y0: 0,
            x1: 5,
            y1: 5,
            t_move_us: None,
            qubit_speed: None,
            channel_capacity: Some(1),
        })
        .unwrap();
        let config = MapperConfig {
            dims,
            params: PhysicalParams::dac13(),
            placement: PlacementStrategy::RowMajor,
            router: RouterStrategy::Xy,
            movement: MovementModel::HomeBased,
            seed: 0,
        };
        let wide = Mapper::with_config(config.clone()).map(&qodg).unwrap();
        let choked = Mapper::with_config(config)
            .with_fabric_map(Arc::new(map))
            .map(&qodg)
            .unwrap();
        assert!(
            choked.stats.congestion_wait >= wide.stats.congestion_wait,
            "choked {:?} vs wide {:?}",
            choked.stats.congestion_wait,
            wide.stats.congestion_wait
        );
        assert!(choked.latency >= wide.latency);
    }

    #[test]
    fn mismatched_map_dims_is_an_error() {
        let qodg = dense_qodg(4, 1);
        let mapper = Mapper::new(FabricDims::new(5, 5).unwrap(), PhysicalParams::dac13())
            .with_fabric_map(Arc::new(FabricMap::pristine(
                FabricDims::new(4, 4).unwrap(),
            )));
        assert_eq!(
            mapper.map(&qodg).unwrap_err(),
            MapError::FabricMapMismatch {
                dims: (5, 5),
                map_dims: (4, 4)
            }
        );
    }

    #[test]
    fn defective_runs_are_deterministic() {
        let dims = FabricDims::new(6, 6).unwrap();
        let map = FabricMap::with_random_defects(dims, 0.1, 0.1, 42).unwrap();
        let qodg = dense_qodg(12, 2);
        let run = || {
            mapper_on(map.clone(), RouterStrategy::Adaptive, MovementModel::Drift)
                .map(&qodg)
                .map(|r| (r.latency, r.stats.clone(), r.channel_load.clone()))
        };
        assert_eq!(run().unwrap(), run().unwrap());
    }

    #[test]
    fn channel_load_length_matches_channel_count() {
        let dims = FabricDims::new(4, 3).unwrap();
        let map = FabricMap::with_random_defects(dims, 0.05, 0.05, 1).unwrap();
        let qodg = dense_qodg(6, 1);
        if let Ok(r) = mapper_on(map, RouterStrategy::Xy, MovementModel::HomeBased).map(&qodg) {
            assert_eq!(r.channel_load.len(), ChannelId::count(dims));
        }
    }
}

#[cfg(test)]
mod drift_tests {
    use super::*;
    use leqa_circuit::{FtCircuit, QubitId};

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    fn mapper(movement: MovementModel) -> Mapper {
        Mapper::with_config(MapperConfig {
            dims: FabricDims::dac13(),
            params: PhysicalParams::dac13(),
            placement: PlacementStrategy::IigCluster,
            router: RouterStrategy::Xy,
            movement,
            seed: 0,
        })
    }

    fn chain_qodg(n: u32) -> Qodg {
        let mut ft = FtCircuit::new(n);
        for i in 0..n - 1 {
            ft.push_cnot(q(i), q(i + 1)).unwrap();
        }
        Qodg::from_ft_circuit(&ft)
    }

    #[test]
    fn drift_completes_and_differs_from_home_based() {
        // A chain where q0 interacts repeatedly with distant qubits: drift
        // lets it settle near its next partner instead of commuting.
        let mut ft = FtCircuit::new(10);
        for i in 1..10 {
            ft.push_cnot(q(0), q(i)).unwrap();
        }
        let qodg = Qodg::from_ft_circuit(&ft);
        let home = mapper(MovementModel::HomeBased).map(&qodg).unwrap();
        let drift = mapper(MovementModel::Drift).map(&qodg).unwrap();
        assert!(home.latency.is_valid() && drift.latency.is_valid());
        // Drift saves the return commutes on this hub pattern.
        assert!(
            drift.stats.total_hops <= home.stats.total_hops,
            "drift hops {} vs home {}",
            drift.stats.total_hops,
            home.stats.total_hops
        );
    }

    #[test]
    fn drift_keeps_one_resident_per_ulb() {
        // Indirectly observable: the run completes and every CNOT routes;
        // an occupancy violation would panic the relocation search.
        let qodg = chain_qodg(30);
        let r = mapper(MovementModel::Drift).map(&qodg).unwrap();
        assert_eq!(r.stats.cnot_ops, 29);
    }

    #[test]
    fn drift_is_deterministic() {
        let qodg = chain_qodg(12);
        let a = mapper(MovementModel::Drift).map(&qodg).unwrap();
        let b = mapper(MovementModel::Drift).map(&qodg).unwrap();
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn drift_dominates_dependency_bound_too() {
        use leqa_fabric::OneQubitKind;
        let mut ft = FtCircuit::new(6);
        for i in 0..5 {
            ft.push_cnot(q(i), q(i + 1)).unwrap();
            ft.push_one_qubit(OneQubitKind::T, q(i)).unwrap();
        }
        let qodg = Qodg::from_ft_circuit(&ft);
        let params = PhysicalParams::dac13();
        let delays = *params.gate_delays();
        let shuttle = params.one_qubit_routing_latency();
        let bound = qodg.critical_path(|node| match node {
            QodgNode::Op(FtOp::Cnot { .. }) => delays.cnot(),
            QodgNode::Op(FtOp::OneQubit { kind, .. }) => delays.one_qubit(*kind) + shuttle,
            _ => Micros::ZERO,
        });
        let r = mapper(MovementModel::Drift).map(&qodg).unwrap();
        assert!(r.latency.as_f64() >= bound.length.as_f64() - 1e-6);
    }
}
