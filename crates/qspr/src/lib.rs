//! QSPR — a detailed **q**uantum **s**cheduling, **p**lacement and
//! **r**outing mapper for the tiled quantum architecture.
//!
//! The LEQA paper uses the authors' QSPR tool (DATE 2012, ref. \[20\]) as the
//! ground truth: it maps the quantum operation dependency graph (QODG) onto
//! the ULB grid and simulates **every** qubit movement, producing the
//! "actual delay" column of Table 2 and the runtime baseline of Table 3.
//! That tool is not available; this crate reimplements the described flow
//! from scratch:
//!
//! 1. **Placement** ([`PlacementStrategy`]): logical qubits get home ULBs.
//!    The default interaction-aware strategy orders qubits by a
//!    weighted-BFS over the interaction intensity graph and lays them out
//!    along a center-out spiral, so strongly interacting qubits sit close —
//!    what a force-directed quantum placer converges to.
//! 2. **Scheduling**: list scheduling in QODG topological order; an
//!    operation starts when its graph predecessors finished, its operand
//!    qubits are free and its target ULB is idle.
//! 3. **Routing** ([`channels`]): for each CNOT the control qubit travels
//!    along the dimension-ordered path to the target's ULB, one `T_move`
//!    per channel hop, queueing at channels that already carry `N_c`
//!    qubits (the congestion LEQA models as an M/M/1 queue). After the
//!    gate it returns home. One-qubit operations pay the in/out shuttle
//!    (`2·T_move`) at their home ULB — the empirical cost the paper quotes
//!    as `L_g^avg`.
//!
//! The mapper is deterministic for a fixed seed, reports rich statistics
//! ([`MappingStats`]) and is the baseline every table in the bench harness
//! compares against.
//!
//! # Examples
//!
//! ```
//! use leqa_circuit::{decompose::lower_to_ft, Circuit, Gate, Qodg, QubitId};
//! use leqa_fabric::{FabricDims, PhysicalParams};
//! use qspr::Mapper;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut c = Circuit::new(3);
//! c.push(Gate::toffoli(QubitId(0), QubitId(1), QubitId(2))?)?;
//! let ft = lower_to_ft(&c)?;
//! let qodg = Qodg::from_ft_circuit(&ft);
//!
//! let mapper = Mapper::new(FabricDims::dac13(), PhysicalParams::dac13());
//! let result = mapper.map(&qodg)?;
//! assert!(result.latency.as_f64() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channels;
mod engine;
mod error;
pub mod passes;
mod placement;
pub mod trace;

pub use engine::{
    MapScratch, Mapper, MapperConfig, MappingResult, MappingStats, MovementModel, RouterStrategy,
    SchedulerStrategy,
};
pub use error::MapError;
pub use passes::{
    DeadGateElim, Partition, Pass, PassEnv, PassManager, PassOutput, PipelineOutcome,
    PreservedAnalyses,
};
pub use placement::{initial_placement, PlacementStrategy};
pub use trace::{OpRecord, Trace, TraceStats};
