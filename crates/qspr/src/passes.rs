//! The pass pipeline over the lowered QODG.
//!
//! A [`PassManager`] runs a sequence of typed [`Pass`]es between lowering
//! and the scheduling engine. Each pass may rewrite the graph (dead-gate
//! elimination), compute a placement the engine must honour (fabric
//! partitioning), or merely analyse; each declares the analyses it
//! [preserves](PreservedAnalyses) so cached derived data (IIG, profile,
//! critical path) is reused when valid and rebuilt when not.
//!
//! The manager optionally re-validates structural invariants after every
//! pass (on by default in debug builds): graph well-formedness via
//! [`Qodg::validate`], preservation claims against the actual op stream
//! and recomputed IIG, and placement legality (one live ULB per qubit).
//! A misbehaving pass surfaces as [`MapError::InvariantViolation`] naming
//! the pass — the difference between a wrong latency estimate and a
//! one-line bug report.
//!
//! The empty pipeline is bit-identical to no pipeline, and the built-in
//! passes are bit-identical no-ops in their neutral configurations
//! (`Partition` with k ≤ 1, `DeadGateElim` with every wire observable) —
//! pinned by `tests/passes_differential.rs`.

use std::fmt;

use leqa_circuit::{FtOp, Iig, Qodg, QubitId};
use leqa_fabric::{FabricDims, FabricMap, Ulb};

use crate::placement::{bfs_order, PlacementStrategy};
use crate::MapError;

/// The set of derived analyses a pass leaves valid, as a bitset.
///
/// A pass that only reads the graph preserves [`ALL`](Self::ALL); a pass
/// that rewrites the op stream preserves [`NONE`](Self::NONE) (every
/// cached analysis must be rebuilt). The pipeline's overall preservation
/// is the intersection across its passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreservedAnalyses(u8);

impl PreservedAnalyses {
    /// Nothing survives: rebuild every cached analysis.
    pub const NONE: Self = PreservedAnalyses(0);
    /// The interaction-intensity graph is still valid.
    pub const IIG: Self = PreservedAnalyses(1);
    /// Cached `ProfileData` (op counts, depth, parallelism) is still valid.
    pub const PROFILE: Self = PreservedAnalyses(1 << 1);
    /// The cached critical path is still valid.
    pub const CRITICAL_PATH: Self = PreservedAnalyses(1 << 2);
    /// Every analysis survives (the pass did not touch the graph).
    pub const ALL: Self = PreservedAnalyses(0b111);

    /// Whether every analysis in `other` is preserved by `self`.
    #[must_use]
    pub fn preserves(self, other: PreservedAnalyses) -> bool {
        self.0 & other.0 == other.0
    }

    /// Analyses preserved by both (the running intersection the manager
    /// folds over the pipeline).
    #[must_use]
    pub fn intersect(self, other: PreservedAnalyses) -> PreservedAnalyses {
        PreservedAnalyses(self.0 & other.0)
    }

    /// The union of two preservation sets.
    #[must_use]
    pub fn union(self, other: PreservedAnalyses) -> PreservedAnalyses {
        PreservedAnalyses(self.0 | other.0)
    }
}

/// The read-only environment a pass runs in: the fabric the program is
/// headed for and the placement configuration, so placement-computing
/// passes (partitioning) see exactly what the engine would.
#[derive(Debug, Clone, Copy)]
pub struct PassEnv<'a> {
    /// Target fabric dimensions.
    pub dims: FabricDims,
    /// The placement strategy the engine would use unpartitioned.
    pub placement: PlacementStrategy,
    /// Seed for randomized strategies.
    pub seed: u64,
    /// Defect overlay (already filtered: `None` when pristine).
    pub fabric_map: Option<&'a FabricMap>,
}

/// What one pass produced: an optional graph rewrite, an optional
/// placement, and the analyses it preserved (defaults to
/// [`PreservedAnalyses::ALL`], the read-only claim).
#[derive(Debug, Clone)]
pub struct PassOutput {
    /// A replacement graph, if the pass rewrote the op stream.
    pub qodg: Option<Qodg>,
    /// A placement the engine must honour, if the pass computed one.
    pub placement: Option<Vec<Ulb>>,
    /// The analyses still valid after this pass.
    pub preserved: PreservedAnalyses,
}

impl PassOutput {
    fn unchanged() -> Self {
        PassOutput {
            qodg: None,
            placement: None,
            preserved: PreservedAnalyses::ALL,
        }
    }
}

/// A typed transformation or analysis over the lowered QODG.
pub trait Pass: Send + Sync {
    /// Stable name, used in `--passes` specs and invariant diagnostics.
    fn name(&self) -> &str;

    /// Runs the pass over the current graph, recording any rewrite,
    /// placement, and preservation claim in `out`.
    ///
    /// # Errors
    ///
    /// Pass-specific failures (e.g. a partitioning pass finding the
    /// fabric too small) surface as [`MapError`]s.
    fn run(&self, qodg: &Qodg, env: &PassEnv<'_>, out: &mut PassOutput) -> Result<(), MapError>;
}

/// The cumulative result of a pipeline run, consumed by the engine (and
/// by profile caches deciding whether cached `ProfileData` is reusable).
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    /// The transformed graph, or `None` if no pass rewrote it (map with
    /// the original).
    pub qodg: Option<Qodg>,
    /// A pipeline-computed placement, or `None` to let the engine place.
    pub placement: Option<Vec<Ulb>>,
    /// Intersection of every pass's preservation claim.
    pub preserved: PreservedAnalyses,
}

impl PipelineOutcome {
    /// The identity outcome: untouched graph, engine placement, every
    /// analysis preserved. What an empty pipeline (or no pipeline)
    /// produces.
    #[must_use]
    pub fn unchanged() -> Self {
        PipelineOutcome {
            qodg: None,
            placement: None,
            preserved: PreservedAnalyses::ALL,
        }
    }
}

/// An ordered sequence of passes with an optional per-pass invariant
/// checker (defaults to on in debug builds, off in release).
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    check_invariants: bool,
}

impl fmt::Debug for PassManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassManager")
            .field("passes", &self.names())
            .field("check_invariants", &self.check_invariants)
            .finish()
    }
}

impl Default for PassManager {
    fn default() -> Self {
        PassManager::new()
    }
}

impl PassManager {
    /// An empty pipeline (bit-identical to no pipeline).
    #[must_use]
    pub fn new() -> Self {
        PassManager {
            passes: Vec::new(),
            check_invariants: cfg!(debug_assertions),
        }
    }

    /// Appends a pass.
    #[must_use]
    #[allow(clippy::should_implement_trait)] // builder step, not arithmetic
    pub fn add(mut self, pass: impl Pass + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Turns the per-pass invariant checker on or off (debug-assert
    /// pipeline mode: on by default in debug builds).
    #[must_use]
    pub fn check_invariants(mut self, on: bool) -> Self {
        self.check_invariants = on;
        self
    }

    /// Number of passes in the pipeline.
    #[must_use]
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// Whether the pipeline is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// The pass names, in run order.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Parses a `--passes` spec: comma-separated pass names with optional
    /// arguments — `dce` (all wires observable), `dce:LO-HI` (only wires
    /// `LO..=HI` observed), `partition:K` (K-way fabric partitioning).
    /// An empty spec is the empty pipeline.
    ///
    /// # Errors
    ///
    /// A human-readable message for unknown names or malformed arguments.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut pm = PassManager::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (name, arg) = match part.split_once(':') {
                Some((n, a)) => (n, Some(a)),
                None => (part, None),
            };
            match (name, arg) {
                ("dce", None) => pm = pm.add(DeadGateElim::new()),
                ("dce", Some(range)) => {
                    let (lo, hi) = range
                        .split_once('-')
                        .ok_or_else(|| format!("bad dce range `{range}` (want LO-HI)"))?;
                    let lo: u32 = lo
                        .parse()
                        .map_err(|_| format!("bad dce range bound `{lo}`"))?;
                    let hi: u32 = hi
                        .parse()
                        .map_err(|_| format!("bad dce range bound `{hi}`"))?;
                    if lo > hi {
                        return Err(format!("empty dce range `{range}`"));
                    }
                    pm = pm.add(DeadGateElim::with_live_range(lo, hi));
                }
                ("partition", Some(k)) => {
                    let k: u32 = k
                        .parse()
                        .map_err(|_| format!("bad partition count `{k}`"))?;
                    pm = pm.add(Partition::new(k));
                }
                ("partition", None) => {
                    return Err("partition needs a region count (partition:K)".into())
                }
                (other, _) => {
                    return Err(format!(
                        "unknown pass `{other}` (dce|dce:LO-HI|partition:K)"
                    ))
                }
            }
        }
        Ok(pm)
    }

    /// Runs the pipeline over `qodg`, folding each pass's output into the
    /// cumulative [`PipelineOutcome`].
    ///
    /// # Errors
    ///
    /// Pass errors pass through; with the invariant checker on, a pass
    /// that breaks a structural invariant (invalid graph, false
    /// preservation claim, illegal placement) fails with
    /// [`MapError::InvariantViolation`] naming the pass.
    pub fn run(&self, qodg: &Qodg, env: &PassEnv<'_>) -> Result<PipelineOutcome, MapError> {
        let mut outcome = PipelineOutcome::unchanged();
        for pass in &self.passes {
            let graph = outcome.qodg.as_ref().unwrap_or(qodg);
            // Snapshot what the checker needs *before* the pass runs.
            let before = self
                .check_invariants
                .then(|| (graph.num_qubits(), ops_of(graph)));
            let mut out = PassOutput::unchanged();
            pass.run(graph, env, &mut out)?;
            if let Some((qubits_before, ops_before)) = before {
                check_pass(
                    pass.name(),
                    qubits_before,
                    &ops_before,
                    out.qodg.as_ref().unwrap_or(graph),
                    out.placement.as_deref(),
                    out.preserved,
                    env,
                )?;
            }
            if let Some(g) = out.qodg {
                outcome.qodg = Some(g);
            }
            if let Some(p) = out.placement {
                outcome.placement = Some(p);
            }
            outcome.preserved = outcome.preserved.intersect(out.preserved);
        }
        Ok(outcome)
    }
}

fn ops_of(qodg: &Qodg) -> Vec<FtOp> {
    qodg.op_nodes().map(|(_, op)| op).collect()
}

/// The per-pass invariant check: structural graph validity, preservation
/// claims against the actual op stream (including an IIG recompute when
/// the stream changed under a preserved-IIG claim), and placement
/// legality.
fn check_pass(
    pass: &str,
    qubits_before: u32,
    ops_before: &[FtOp],
    after: &Qodg,
    placement: Option<&[Ulb]>,
    preserved: PreservedAnalyses,
    env: &PassEnv<'_>,
) -> Result<(), MapError> {
    let violation = |reason: String| MapError::InvariantViolation {
        pass: pass.to_string(),
        reason,
    };
    after.validate().map_err(violation)?;
    if after.num_qubits() != qubits_before {
        return Err(violation(format!(
            "wire count changed from {} to {}",
            qubits_before,
            after.num_qubits()
        )));
    }
    let ops_after = ops_of(after);
    if ops_after != *ops_before {
        // The op stream changed: every claim over stream-derived
        // analyses must be re-earned.
        if preserved.preserves(PreservedAnalyses::PROFILE) {
            return Err(violation(
                "changed the op stream but claimed the profile is preserved".into(),
            ));
        }
        if preserved.preserves(PreservedAnalyses::CRITICAL_PATH) {
            return Err(violation(
                "changed the op stream but claimed the critical path is preserved".into(),
            ));
        }
        if preserved.preserves(PreservedAnalyses::IIG) {
            // A reorder can leave interaction counts intact; only an
            // actual IIG recompute can confirm the claim.
            let before =
                Iig::from_qodg(&Qodg::from_gates(qubits_before, ops_before.iter().copied()));
            let now = Iig::from_qodg(after);
            if before != now {
                return Err(violation(
                    "changed the op stream but claimed the IIG is preserved".into(),
                ));
            }
        }
    }
    if let Some(p) = placement {
        if p.len() != after.num_qubits() as usize {
            return Err(violation(format!(
                "placement covers {} qubits but the graph has {}",
                p.len(),
                after.num_qubits()
            )));
        }
        let mut seen = vec![false; env.dims.area() as usize];
        for &u in p {
            if !env.dims.contains(u) {
                return Err(violation(format!("placement site {u} is off-fabric")));
            }
            if env.fabric_map.is_some_and(|m| !m.cell_enabled(u)) {
                return Err(violation(format!("placement site {u} is a dead cell")));
            }
            let i = env.dims.index_of(u);
            if seen[i] {
                return Err(violation(format!("placement site {u} is used twice")));
            }
            seen[i] = true;
        }
    }
    Ok(())
}

/// Dead-gate elimination: drops gates whose effect never reaches an
/// observed wire, by a backward liveness sweep. By default every wire is
/// observed (measurement of the full register), which makes the pass a
/// guaranteed — and pinned — byte-identical no-op; restricting the
/// observed set to a range (`dce:LO-HI`) lets the sweep prune gates that
/// only touch unobserved wires.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeadGateElim {
    /// Observed (output) wires as an inclusive range; `None` = all.
    live: Option<(u32, u32)>,
}

impl DeadGateElim {
    /// DCE with every wire observed (the safe default: nothing is dead).
    #[must_use]
    pub fn new() -> Self {
        DeadGateElim::default()
    }

    /// DCE observing only wires `lo..=hi`.
    #[must_use]
    pub fn with_live_range(lo: u32, hi: u32) -> Self {
        DeadGateElim {
            live: Some((lo, hi)),
        }
    }
}

impl Pass for DeadGateElim {
    fn name(&self) -> &str {
        "dce"
    }

    fn run(&self, qodg: &Qodg, _env: &PassEnv<'_>, out: &mut PassOutput) -> Result<(), MapError> {
        let Some((lo, hi)) = self.live else {
            // Every wire observed: every gate feeds an output, nothing to
            // drop. Leaving the graph untouched keeps this byte-identical
            // to not running the pass at all.
            return Ok(());
        };
        let n = qodg.num_qubits();
        let mut live = vec![false; n as usize];
        for w in lo..=hi.min(n.saturating_sub(1)) {
            live[w as usize] = true;
        }
        let ops = ops_of(qodg);
        // Backward sweep: a gate is live iff it writes a live wire; a
        // live CNOT makes both operands live upstream (the control's
        // value reaches the target).
        let mut keep = vec![false; ops.len()];
        for (i, op) in ops.iter().enumerate().rev() {
            match *op {
                FtOp::OneQubit { target, .. } => {
                    if live[target.index()] {
                        keep[i] = true;
                    }
                }
                FtOp::Cnot { control, target } => {
                    if live[target.index()] {
                        keep[i] = true;
                        live[control.index()] = true;
                    }
                }
            }
        }
        if keep.iter().all(|&k| k) {
            // No dead gates: byte-identical no-op.
            return Ok(());
        }
        let kept = ops
            .iter()
            .zip(&keep)
            .filter(|&(_, &k)| k)
            .map(|(&op, _)| op);
        out.qodg = Some(Qodg::from_gates(n, kept));
        out.preserved = PreservedAnalyses::NONE;
        Ok(())
    }
}

/// K-way fabric partitioning: cuts the interaction graph into `k` regions
/// by greedy heaviest-edge agglomeration (union-find, region size capped
/// at ⌈Q/k⌉), tiles the fabric by recursive bisection, assigns regions to
/// tiles largest-first, and lays each region out along a center-out
/// spiral of its tile — strongly-coupled qubits land in the same quadrant
/// and inter-region transfers are stitched through the channels crossing
/// tile boundaries by the ordinary routers.
///
/// With `k <= 1` the pass is a pinned no-op (the engine's own placement
/// runs instead), so `partition:1` is byte-identical to no partitioning.
#[derive(Debug, Clone, Copy)]
pub struct Partition {
    k: u32,
}

impl Partition {
    /// A `k`-way partitioning pass.
    #[must_use]
    pub fn new(k: u32) -> Self {
        Partition { k }
    }

    /// The configured region count.
    #[must_use]
    pub fn k(&self) -> u32 {
        self.k
    }
}

impl Pass for Partition {
    fn name(&self) -> &str {
        "partition"
    }

    fn run(&self, qodg: &Qodg, env: &PassEnv<'_>, out: &mut PassOutput) -> Result<(), MapError> {
        if self.k <= 1 {
            return Ok(()); // unpartitioned: engine placement, byte-identical
        }
        let q = qodg.num_qubits();
        if q == 0 {
            return Ok(());
        }
        let usable = env
            .fabric_map
            .map_or(env.dims.area(), FabricMap::live_cells);
        if u64::from(q) > usable {
            return Err(MapError::FabricTooSmall {
                qubits: u64::from(q),
                area: usable,
            });
        }
        let iig = Iig::from_qodg(qodg);
        let regions = agglomerate(&iig, self.k);
        out.placement = Some(place_regions(&iig, &regions, env));
        // The graph itself is untouched; only placement changed.
        out.preserved = PreservedAnalyses::ALL;
        Ok(())
    }
}

/// Greedy heaviest-edge agglomeration into at most `k` regions with a
/// ⌈Q/k⌉ size cap, then forced merges of the smallest regions down to
/// exactly `k` (the cap is waived for forced merges; it only guides the
/// greedy phase). Returns region membership lists, each sorted by qubit
/// index.
fn agglomerate(iig: &Iig, k: u32) -> Vec<Vec<QubitId>> {
    let n = iig.num_qubits() as usize;
    let k = (k as usize).min(n.max(1));
    let cap = n.div_ceil(k);

    let mut parent: Vec<usize> = (0..n).collect();
    let mut size = vec![1usize; n];
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]]; // path halving
            x = parent[x];
        }
        x
    }

    // Heaviest edges first; ties in (lo, hi) order for determinism.
    let mut edges: Vec<(u32, u32, u64)> = iig.edges().collect();
    edges.sort_by_key(|&(lo, hi, w)| (std::cmp::Reverse(w), lo, hi));
    let mut components = n;
    for (lo, hi, _) in edges {
        if components <= k {
            break;
        }
        let (a, b) = (
            find(&mut parent, lo as usize),
            find(&mut parent, hi as usize),
        );
        if a != b && size[a] + size[b] <= cap {
            let (big, small) = if size[a] >= size[b] { (a, b) } else { (b, a) };
            parent[small] = big;
            size[big] += size[small];
            components -= 1;
        }
    }

    // Collect regions keyed by root, members in index order.
    let mut by_root: Vec<Vec<QubitId>> = vec![Vec::new(); n];
    for i in 0..n {
        let r = find(&mut parent, i);
        by_root[r].push(QubitId(i as u32));
    }
    let mut regions: Vec<Vec<QubitId>> = by_root.into_iter().filter(|r| !r.is_empty()).collect();

    // Forced merges: smallest two regions fuse until at most k remain.
    // Ties break on the smallest member index, so the result is
    // deterministic.
    while regions.len() > k {
        regions.sort_by_key(|r| (r.len(), r[0]));
        let small = regions.remove(0);
        regions[0].extend(small);
        regions[0].sort_unstable();
    }
    regions
}

/// An axis-aligned fabric tile.
#[derive(Debug, Clone, Copy)]
struct Tile {
    x0: u32,
    y0: u32,
    w: u32,
    h: u32,
}

impl Tile {
    fn contains(&self, u: Ulb) -> bool {
        u.x >= self.x0 && u.x < self.x0 + self.w && u.y >= self.y0 && u.y < self.y0 + self.h
    }

    fn center(&self) -> Ulb {
        Ulb::new(self.x0 + self.w / 2, self.y0 + self.h / 2)
    }

    fn live_capacity(&self, dims: FabricDims, map: Option<&FabricMap>) -> u64 {
        match map {
            None => u64::from(self.w) * u64::from(self.h),
            Some(m) => dims
                .ulbs()
                .filter(|u| self.contains(*u) && m.cell_enabled(*u))
                .count() as u64,
        }
    }
}

/// Recursive bisection of the fabric into `n` tiles: repeatedly split the
/// tile with the most live cells along its longer axis.
fn bisect(dims: FabricDims, map: Option<&FabricMap>, n: usize) -> Vec<Tile> {
    let mut tiles = vec![Tile {
        x0: 0,
        y0: 0,
        w: dims.width(),
        h: dims.height(),
    }];
    while tiles.len() < n {
        // Split the roomiest splittable tile.
        let Some((idx, _)) = tiles
            .iter()
            .enumerate()
            .filter(|(_, t)| t.w > 1 || t.h > 1)
            .max_by_key(|(i, t)| (t.live_capacity(dims, map), std::cmp::Reverse(*i)))
        else {
            break; // every tile is 1×1
        };
        let t = tiles.swap_remove(idx);
        let (a, b) = if t.w >= t.h {
            let half = t.w / 2;
            (
                Tile { w: half, ..t },
                Tile {
                    x0: t.x0 + half,
                    w: t.w - half,
                    ..t
                },
            )
        } else {
            let half = t.h / 2;
            (
                Tile { h: half, ..t },
                Tile {
                    y0: t.y0 + half,
                    h: t.h - half,
                    ..t
                },
            )
        };
        tiles.push(a);
        tiles.push(b);
    }
    tiles
}

/// Maps regions onto tiles and lays each region out along a center-out
/// spiral of its tile. Regions are assigned largest-first to the tiles
/// with the most live cells; qubits that do not fit their tile overflow
/// into a spill pool of the remaining live sites (global spiral order).
fn place_regions(iig: &Iig, regions: &[Vec<QubitId>], env: &PassEnv<'_>) -> Vec<Ulb> {
    let dims = env.dims;
    let map = env.fabric_map;
    let live = |u: &Ulb| map.is_none_or(|m| m.cell_enabled(*u));

    let mut tiles = bisect(dims, map, regions.len());
    // Largest regions get the roomiest tiles.
    let mut region_order: Vec<usize> = (0..regions.len()).collect();
    region_order.sort_by_key(|&i| (std::cmp::Reverse(regions[i].len()), regions[i][0]));
    tiles.sort_by_key(|t| (std::cmp::Reverse(t.live_capacity(dims, map)), t.x0, t.y0));

    // Global interaction-aware order, filtered per region: within a
    // region, qubits keep the heaviest-edge-first layout order the
    // unpartitioned placer would give them.
    let global_order = bfs_order(iig);

    let mut used = vec![false; dims.area() as usize];
    let mut placement = vec![Ulb::new(0, 0); iig.num_qubits() as usize];
    let mut spilled: Vec<QubitId> = Vec::new();

    for (rank, &ri) in region_order.iter().enumerate() {
        let region = &regions[ri];
        let in_region = |q: &QubitId| region.binary_search(q).is_ok();
        let mut order: Vec<QubitId> = global_order.iter().copied().filter(in_region).collect();
        debug_assert_eq!(order.len(), region.len());
        if let Some(tile) = tiles.get(rank) {
            let sites: Vec<Ulb> = dims
                .rings(tile.center())
                .filter(|u| tile.contains(*u) && live(u) && !used[dims.index_of(*u)])
                .take(order.len())
                .collect();
            let mut sites = sites.into_iter();
            order.retain(|&qubit| match sites.next() {
                Some(site) => {
                    used[dims.index_of(site)] = true;
                    placement[qubit.index()] = site;
                    false
                }
                None => true, // tile full: spill
            });
        }
        spilled.extend(order);
    }

    // Spill pool: leftover live sites in global spiral order, so
    // overflow stays as central as possible.
    if !spilled.is_empty() {
        let center = Ulb::new(dims.width() / 2, dims.height() / 2);
        let sites: Vec<Ulb> = dims
            .rings(center)
            .filter(|u| live(u) && !used[dims.index_of(*u)])
            .take(spilled.len())
            .collect();
        assert_eq!(
            sites.len(),
            spilled.len(),
            "fit check guarantees a live site per qubit"
        );
        for (qubit, site) in spilled.into_iter().zip(sites) {
            used[dims.index_of(site)] = true;
            placement[qubit.index()] = site;
        }
    }
    placement
}

#[cfg(test)]
mod tests {
    use super::*;
    use leqa_circuit::FtCircuit;

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    fn chain(n: u32) -> Qodg {
        let mut ft = FtCircuit::new(n);
        for i in 0..n - 1 {
            ft.push_cnot(q(i), q(i + 1)).unwrap();
        }
        Qodg::from_ft_circuit(&ft)
    }

    fn env(dims: FabricDims) -> PassEnv<'static> {
        PassEnv {
            dims,
            placement: PlacementStrategy::default(),
            seed: 0,
            fabric_map: None,
        }
    }

    #[test]
    fn preserved_analyses_algebra() {
        assert!(PreservedAnalyses::ALL.preserves(PreservedAnalyses::IIG));
        assert!(!PreservedAnalyses::NONE.preserves(PreservedAnalyses::IIG));
        assert_eq!(
            PreservedAnalyses::IIG.union(PreservedAnalyses::PROFILE),
            PreservedAnalyses::IIG
                .union(PreservedAnalyses::PROFILE)
                .intersect(PreservedAnalyses::ALL)
        );
        assert!(!PreservedAnalyses::IIG
            .intersect(PreservedAnalyses::PROFILE)
            .preserves(PreservedAnalyses::IIG));
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let qodg = chain(4);
        let pm = PassManager::new();
        let outcome = pm.run(&qodg, &env(FabricDims::new(4, 4).unwrap())).unwrap();
        assert!(outcome.qodg.is_none());
        assert!(outcome.placement.is_none());
        assert_eq!(outcome.preserved, PreservedAnalyses::ALL);
    }

    #[test]
    fn parse_specs() {
        assert!(PassManager::parse("").unwrap().is_empty());
        assert_eq!(PassManager::parse("dce").unwrap().names(), ["dce"]);
        assert_eq!(
            PassManager::parse("dce:0-3,partition:4").unwrap().names(),
            ["dce", "partition"]
        );
        assert!(PassManager::parse("partition").is_err());
        assert!(PassManager::parse("partition:x").is_err());
        assert!(PassManager::parse("dce:9-2").is_err());
        assert!(PassManager::parse("frobnicate").is_err());
    }

    #[test]
    fn dce_all_live_is_a_noop() {
        let qodg = chain(5);
        let pm = PassManager::new().add(DeadGateElim::new());
        let outcome = pm.run(&qodg, &env(FabricDims::new(4, 4).unwrap())).unwrap();
        assert!(outcome.qodg.is_none(), "no rewrite when every wire is live");
        assert_eq!(outcome.preserved, PreservedAnalyses::ALL);
    }

    #[test]
    fn dce_drops_gates_feeding_no_output() {
        // q0-q1 interact; a gate on q3 never reaches wires 0-1.
        let mut ft = FtCircuit::new(4);
        ft.push_cnot(q(0), q(1)).unwrap();
        ft.push_cnot(q(2), q(3)).unwrap();
        ft.push_cnot(q(0), q(1)).unwrap();
        let qodg = Qodg::from_ft_circuit(&ft);
        let pm = PassManager::new().add(DeadGateElim::with_live_range(0, 1));
        let outcome = pm.run(&qodg, &env(FabricDims::new(4, 4).unwrap())).unwrap();
        let rewritten = outcome.qodg.expect("dead gate must force a rewrite");
        assert_eq!(rewritten.op_count(), 2);
        assert_eq!(outcome.preserved, PreservedAnalyses::NONE);
        rewritten.validate().unwrap();
    }

    #[test]
    fn dce_keeps_upstream_controls_of_live_targets() {
        // q2 feeds q1 which feeds q0: observing only q0 keeps the chain.
        let mut ft = FtCircuit::new(3);
        ft.push_cnot(q(2), q(1)).unwrap();
        ft.push_cnot(q(1), q(0)).unwrap();
        let qodg = Qodg::from_ft_circuit(&ft);
        let pm = PassManager::new().add(DeadGateElim::with_live_range(0, 0));
        let outcome = pm.run(&qodg, &env(FabricDims::new(4, 4).unwrap())).unwrap();
        assert!(
            outcome.qodg.is_none(),
            "every gate reaches wire 0; nothing to drop"
        );
    }

    #[test]
    fn partition_k1_is_a_noop() {
        let qodg = chain(6);
        let pm = PassManager::new().add(Partition::new(1));
        let outcome = pm.run(&qodg, &env(FabricDims::new(4, 4).unwrap())).unwrap();
        assert!(outcome.placement.is_none());
        assert_eq!(outcome.preserved, PreservedAnalyses::ALL);
    }

    #[test]
    fn partition_places_every_qubit_distinctly() {
        let qodg = chain(12);
        let dims = FabricDims::new(6, 6).unwrap();
        for k in [2, 3, 4, 7] {
            let pm = PassManager::new().add(Partition::new(k));
            let outcome = pm.run(&qodg, &env(dims)).unwrap();
            let p = outcome.placement.expect("k>1 must place");
            assert_eq!(p.len(), 12);
            let mut seen = vec![false; dims.area() as usize];
            for &u in &p {
                assert!(dims.contains(u));
                assert!(!seen[dims.index_of(u)], "site {u} reused");
                seen[dims.index_of(u)] = true;
            }
        }
    }

    #[test]
    fn partition_too_small_fabric_is_typed() {
        let qodg = chain(20);
        let pm = PassManager::new().add(Partition::new(4));
        assert!(matches!(
            pm.run(&qodg, &env(FabricDims::new(4, 4).unwrap())),
            Err(MapError::FabricTooSmall {
                qubits: 20,
                area: 16
            })
        ));
    }

    #[test]
    fn agglomerate_respects_k_and_covers_all() {
        let qodg = chain(10);
        let iig = Iig::from_qodg(&qodg);
        for k in [1, 2, 3, 5, 10, 99] {
            let regions = agglomerate(&iig, k);
            assert!(regions.len() <= (k as usize).max(1));
            let mut all: Vec<QubitId> = regions.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..10).map(QubitId).collect::<Vec<_>>());
        }
    }

    #[test]
    fn bisect_covers_the_fabric_disjointly() {
        let dims = FabricDims::new(7, 5).unwrap();
        for n in [1, 2, 3, 4, 6] {
            let tiles = bisect(dims, None, n);
            assert_eq!(tiles.len(), n);
            let mut covered = vec![false; dims.area() as usize];
            for t in &tiles {
                for u in dims.ulbs().filter(|u| t.contains(*u)) {
                    assert!(!covered[dims.index_of(u)], "tiles overlap at {u}");
                    covered[dims.index_of(u)] = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "tiles must cover the fabric");
        }
    }

    /// A pass that rewrites the graph while claiming everything is
    /// preserved — the invariant checker must name it.
    struct LyingPass;
    impl Pass for LyingPass {
        fn name(&self) -> &str {
            "lying-pass"
        }
        fn run(
            &self,
            qodg: &Qodg,
            _env: &PassEnv<'_>,
            out: &mut PassOutput,
        ) -> Result<(), MapError> {
            // Drop the last gate but keep the ALL claim.
            let ops = ops_of(qodg);
            out.qodg = Some(Qodg::from_gates(
                qodg.num_qubits(),
                ops[..ops.len() - 1].iter().copied(),
            ));
            Ok(())
        }
    }

    #[test]
    fn invariant_checker_names_the_lying_pass() {
        let qodg = chain(4);
        let pm = PassManager::new().add(LyingPass).check_invariants(true);
        let err = pm
            .run(&qodg, &env(FabricDims::new(4, 4).unwrap()))
            .unwrap_err();
        match err {
            MapError::InvariantViolation { pass, reason } => {
                assert_eq!(pass, "lying-pass");
                assert!(reason.contains("claimed"), "got: {reason}");
            }
            other => panic!("expected InvariantViolation, got {other:?}"),
        }
    }

    /// A pass that hands back an illegal placement (duplicate site).
    struct DoubleBooker;
    impl Pass for DoubleBooker {
        fn name(&self) -> &str {
            "double-booker"
        }
        fn run(
            &self,
            qodg: &Qodg,
            _env: &PassEnv<'_>,
            out: &mut PassOutput,
        ) -> Result<(), MapError> {
            out.placement = Some(vec![Ulb::new(0, 0); qodg.num_qubits() as usize]);
            Ok(())
        }
    }

    #[test]
    fn invariant_checker_rejects_double_booked_placement() {
        let qodg = chain(3);
        let pm = PassManager::new().add(DoubleBooker).check_invariants(true);
        let err = pm
            .run(&qodg, &env(FabricDims::new(4, 4).unwrap()))
            .unwrap_err();
        assert!(matches!(
            err,
            MapError::InvariantViolation { ref pass, .. } if pass == "double-booker"
        ));
    }

    #[test]
    fn checker_off_lets_claims_through() {
        let qodg = chain(4);
        let pm = PassManager::new().add(LyingPass).check_invariants(false);
        let outcome = pm.run(&qodg, &env(FabricDims::new(4, 4).unwrap())).unwrap();
        assert_eq!(outcome.qodg.unwrap().op_count(), 2);
    }
}
