//! Per-operation schedule traces.
//!
//! A [`Trace`] records when every FT operation started and finished, how
//! far its control travelled and how long it queued — the full mapping
//! detail the paper calls "the details of every qubit movement" (§2),
//! useful for latency breakdowns, Gantt-style inspection and debugging
//! placement decisions.

use leqa_circuit::{FtOp, NodeId};
use leqa_fabric::Micros;

/// The schedule record of one executed operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpRecord {
    /// The QODG node this record belongs to.
    pub node: NodeId,
    /// The operation.
    pub op: FtOp,
    /// When the gate itself started (after any travel and waiting).
    pub start: Micros,
    /// When the gate finished.
    pub end: Micros,
    /// Control→target Manhattan distance (0 for one-qubit ops).
    pub distance: u32,
    /// Time spent queueing at congested channels on the outbound trip.
    pub outbound_wait: Micros,
}

impl OpRecord {
    /// Gate execution time (excluding travel).
    pub fn gate_time(&self) -> Micros {
        self.end - self.start
    }
}

/// The full schedule of a mapping run, in execution order.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    records: Vec<OpRecord>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends a record (engine-internal).
    pub(crate) fn push(&mut self, record: OpRecord) {
        self.records.push(record);
    }

    /// The records in execution order.
    pub fn records(&self) -> &[OpRecord] {
        &self.records
    }

    /// The record with the latest end time, if any.
    pub fn last_to_finish(&self) -> Option<&OpRecord> {
        self.records
            .iter()
            .max_by(|a, b| a.end.as_f64().total_cmp(&b.end.as_f64()))
    }

    /// Total time spent queueing at channels across all records.
    pub fn total_outbound_wait(&self) -> Micros {
        self.records.iter().map(|r| r.outbound_wait).sum()
    }

    /// Aggregates the trace into summary statistics (one pass).
    pub fn stats(&self) -> TraceStats {
        let mut stats = TraceStats::default();
        for r in &self.records {
            stats.ops += 1;
            if matches!(r.op, FtOp::Cnot { .. }) {
                stats.cnot_ops += 1;
                stats.total_cnot_distance += u64::from(r.distance);
            }
            stats.total_outbound_wait += r.outbound_wait;
        }
        stats
    }

    /// Renders a fixed-width textual Gantt-style listing of the `limit`
    /// longest-running records (for human inspection).
    pub fn summary(&self, limit: usize) -> String {
        use std::fmt::Write as _;
        let mut rows: Vec<&OpRecord> = self.records.iter().collect();
        rows.sort_by(|a, b| b.gate_time().as_f64().total_cmp(&a.gate_time().as_f64()));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>8} {:<14} {:>12} {:>12} {:>6} {:>10}",
            "node", "op", "start(µs)", "end(µs)", "dist", "wait(µs)"
        );
        for r in rows.into_iter().take(limit) {
            let _ = writeln!(
                out,
                "{:>8} {:<14} {:>12.0} {:>12.0} {:>6} {:>10.0}",
                r.node.0,
                r.op.to_string(),
                r.start.as_f64(),
                r.end.as_f64(),
                r.distance,
                r.outbound_wait.as_f64()
            );
        }
        out
    }
}

/// Summary statistics of a [`Trace`], aggregated from its records.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TraceStats {
    /// Records in the trace (executed operations).
    pub ops: u64,
    /// CNOT records.
    pub cnot_ops: u64,
    /// Sum over CNOT records of the control→target Manhattan distance.
    pub total_cnot_distance: u64,
    /// Total time spent queueing at congested channels.
    pub total_outbound_wait: Micros,
}

impl TraceStats {
    /// Average control→target distance per CNOT, in ULB hops.
    ///
    /// Returns `0.0` (not NaN) for a CNOT-free trace, so downstream
    /// arithmetic and JSON encoding stay finite.
    #[must_use]
    pub fn avg_cnot_distance(&self) -> f64 {
        if self.cnot_ops == 0 {
            0.0
        } else {
            self.total_cnot_distance as f64 / self.cnot_ops as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leqa_circuit::QubitId;
    use leqa_fabric::OneQubitKind;

    fn record(node: usize, start: f64, end: f64) -> OpRecord {
        OpRecord {
            node: NodeId(node),
            op: FtOp::OneQubit {
                kind: OneQubitKind::H,
                target: QubitId(0),
            },
            start: Micros::new(start),
            end: Micros::new(end),
            distance: 0,
            outbound_wait: Micros::new(1.0),
        }
    }

    #[test]
    fn last_to_finish() {
        let mut t = Trace::new();
        t.push(record(1, 0.0, 10.0));
        t.push(record(2, 5.0, 25.0));
        t.push(record(3, 20.0, 22.0));
        assert_eq!(t.last_to_finish().unwrap().node, NodeId(2));
    }

    #[test]
    fn totals_and_gate_time() {
        let mut t = Trace::new();
        t.push(record(1, 0.0, 10.0));
        t.push(record(2, 0.0, 4.0));
        assert_eq!(t.total_outbound_wait(), Micros::new(2.0));
        assert_eq!(t.records()[0].gate_time(), Micros::new(10.0));
    }

    #[test]
    fn summary_lists_longest_first() {
        let mut t = Trace::new();
        t.push(record(1, 0.0, 5.0));
        t.push(record(2, 0.0, 50.0));
        let s = t.summary(1);
        assert!(s.contains("H q0"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2); // header + 1 row
        assert!(lines[1].trim_start().starts_with('2'));
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new();
        assert!(t.last_to_finish().is_none());
        assert_eq!(t.total_outbound_wait(), Micros::ZERO);
    }

    #[test]
    fn cnot_free_trace_has_zero_avg_distance_not_nan() {
        // Regression: `avg_cnot_distance` must not divide 0 by 0.
        let mut t = Trace::new();
        t.push(record(1, 0.0, 10.0)); // one-qubit op only
        let stats = t.stats();
        assert_eq!(stats.ops, 1);
        assert_eq!(stats.cnot_ops, 0);
        assert_eq!(stats.avg_cnot_distance(), 0.0);
        assert!(stats.avg_cnot_distance().is_finite());
        // The empty trace too.
        assert_eq!(Trace::new().stats().avg_cnot_distance(), 0.0);
    }

    #[test]
    fn stats_aggregate_cnot_distance_and_waits() {
        let mut t = Trace::new();
        t.push(record(1, 0.0, 10.0));
        t.push(OpRecord {
            node: NodeId(2),
            op: FtOp::Cnot {
                control: QubitId(0),
                target: QubitId(1),
            },
            start: Micros::new(0.0),
            end: Micros::new(5.0),
            distance: 4,
            outbound_wait: Micros::new(2.0),
        });
        t.push(OpRecord {
            node: NodeId(3),
            op: FtOp::Cnot {
                control: QubitId(1),
                target: QubitId(0),
            },
            start: Micros::new(5.0),
            end: Micros::new(9.0),
            distance: 2,
            outbound_wait: Micros::new(0.5),
        });
        let stats = t.stats();
        assert_eq!(stats.ops, 3);
        assert_eq!(stats.cnot_ops, 2);
        assert_eq!(stats.total_cnot_distance, 6);
        assert_eq!(stats.avg_cnot_distance(), 3.0);
        assert_eq!(stats.total_outbound_wait, t.total_outbound_wait());
    }
}

impl Trace {
    /// Renders the full trace as CSV (`node,op,start_us,end_us,distance,
    /// outbound_wait_us`), one record per line, for external plotting.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("node,op,start_us,end_us,distance,outbound_wait_us\n");
        for r in &self.records {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{}",
                r.node.0,
                r.op.to_string().replace(' ', "_"),
                r.start.as_f64(),
                r.end.as_f64(),
                r.distance,
                r.outbound_wait.as_f64()
            );
        }
        out
    }
}

#[cfg(test)]
mod csv_tests {
    use super::*;
    use leqa_circuit::QubitId;

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = Trace::new();
        t.push(OpRecord {
            node: NodeId(3),
            op: FtOp::Cnot {
                control: QubitId(0),
                target: QubitId(1),
            },
            start: Micros::new(10.0),
            end: Micros::new(20.0),
            distance: 2,
            outbound_wait: Micros::new(1.5),
        });
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "node,op,start_us,end_us,distance,outbound_wait_us"
        );
        assert_eq!(lines[1], "3,CNOT_q0_q1,10,20,2,1.5");
    }

    #[test]
    fn empty_trace_is_header_only() {
        assert_eq!(Trace::new().to_csv().lines().count(), 1);
    }
}
