//! Initial placement of logical qubits onto home ULBs.
//!
//! Placement quality drives routing distance, so the default strategy is
//! interaction-aware: qubits are ordered by a weighted BFS over the
//! interaction intensity graph (heaviest edges first) and laid out along a
//! center-out spiral of the fabric, putting strongly-coupled qubits in
//! adjacent ULBs — the layout an iterative quantum placer converges to.
//! Row-major and random strategies exist as ablation baselines
//! (`ablation_placement` bench).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use leqa_circuit::{Iig, QubitId};
use leqa_fabric::{FabricDims, FabricMap, Ulb};

use crate::MapError;

/// How to assign home ULBs to logical qubits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementStrategy {
    /// Weighted-BFS over the IIG, laid out along a center-out spiral
    /// (default).
    #[default]
    IigCluster,
    /// Qubit `i` goes to the `i`-th ULB in row-major order.
    RowMajor,
    /// A seeded random permutation of ULBs.
    Random,
}

/// Computes a home ULB for every logical qubit.
///
/// With a [`FabricMap`], qubits only get homes on *live* cells and the
/// fit check compares against the live-cell count; without one (or with a
/// defect-free map) the behaviour is bit-identical to the uniform path.
///
/// # Errors
///
/// Returns [`MapError::FabricTooSmall`] if the IIG has more qubits than
/// the fabric has usable ULBs.
pub fn initial_placement(
    iig: &Iig,
    dims: FabricDims,
    strategy: PlacementStrategy,
    seed: u64,
    map: Option<&FabricMap>,
) -> Result<Vec<Ulb>, MapError> {
    let q = iig.num_qubits() as u64;
    let usable = map.map_or(dims.area(), FabricMap::live_cells);
    if q > usable {
        return Err(MapError::FabricTooSmall {
            qubits: q,
            area: usable,
        });
    }

    let order: Vec<QubitId> = match strategy {
        PlacementStrategy::RowMajor => (0..iig.num_qubits()).map(QubitId).collect(),
        PlacementStrategy::Random => {
            let mut ids: Vec<QubitId> = (0..iig.num_qubits()).map(QubitId).collect();
            ids.shuffle(&mut StdRng::seed_from_u64(seed));
            ids
        }
        PlacementStrategy::IigCluster => bfs_order(iig),
    };

    let mut sites: Vec<Ulb> = match strategy {
        PlacementStrategy::RowMajor | PlacementStrategy::Random => dims.ulbs().collect(),
        PlacementStrategy::IigCluster => spiral_sites(dims),
    };
    if let Some(map) = map.filter(|m| m.has_defects()) {
        sites.retain(|u| map.cell_enabled(*u));
    }

    let mut placement = vec![Ulb::new(0, 0); iig.num_qubits() as usize];
    for (rank, qubit) in order.iter().enumerate() {
        placement[qubit.index()] = sites[rank];
    }
    Ok(placement)
}

/// Orders qubits by a BFS over the IIG that expands the heaviest edges
/// first, starting from the strongest qubit; isolated qubits follow at the
/// end in index order. Shared with the `Partition` pass, which applies
/// the same ordering within each region.
pub(crate) fn bfs_order(iig: &Iig) -> Vec<QubitId> {
    let n = iig.num_qubits();
    let mut visited = vec![false; n as usize];
    let mut order: Vec<QubitId> = Vec::with_capacity(n as usize);
    // Seeds: strongest first, so each component starts from its hub.
    let seeds = iig.qubits_by_strength();

    for seed in seeds {
        if visited[seed.index()] || iig.strength(seed) == 0 {
            continue;
        }
        // BFS within this component.
        let mut frontier = vec![seed];
        visited[seed.index()] = true;
        while let Some(current) = frontier.pop() {
            order.push(current);
            let mut neighbors: Vec<(QubitId, u64)> = iig
                .neighbors(current)
                .filter(|(q, _)| !visited[q.index()])
                .collect();
            // Heaviest partner placed nearest → visit first. Tie-break on
            // the index for determinism.
            neighbors.sort_by_key(|&(q, w)| (std::cmp::Reverse(w), q));
            // Depth-first-ish expansion keeps chains contiguous on the
            // spiral; push in reverse so the heaviest is popped next.
            for (q, _) in neighbors.into_iter().rev() {
                if !visited[q.index()] {
                    visited[q.index()] = true;
                    frontier.push(q);
                }
            }
        }
    }
    // Isolated qubits (no two-qubit ops) go last.
    for i in 0..n {
        if !visited[i as usize] {
            order.push(QubitId(i));
        }
    }
    order
}

/// ULBs ordered along a center-out spiral (ring by ring of increasing
/// Manhattan radius), so consecutive ranks are physically close.
fn spiral_sites(dims: FabricDims) -> Vec<Ulb> {
    let center = Ulb::new(dims.width() / 2, dims.height() / 2);
    dims.rings(center).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use leqa_circuit::FtCircuit;

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    fn chain_iig(n: u32) -> Iig {
        let mut ft = FtCircuit::new(n);
        for i in 0..n - 1 {
            ft.push_cnot(q(i), q(i + 1)).unwrap();
        }
        Iig::from_ft_circuit(&ft)
    }

    /// Distinctness via an index sort — no clone of the placement itself.
    fn all_distinct(p: &[Ulb]) -> bool {
        let mut idx: Vec<usize> = (0..p.len()).collect();
        idx.sort_unstable_by_key(|&i| p[i]);
        idx.windows(2).all(|w| p[w[0]] != p[w[1]])
    }

    #[test]
    fn all_strategies_produce_distinct_homes() {
        let iig = chain_iig(10);
        let dims = FabricDims::new(5, 5).unwrap();
        for strategy in [
            PlacementStrategy::IigCluster,
            PlacementStrategy::RowMajor,
            PlacementStrategy::Random,
        ] {
            let p = initial_placement(&iig, dims, strategy, 7, None).unwrap();
            assert_eq!(p.len(), 10);
            assert!(all_distinct(&p), "{strategy:?} must not share ULBs");
            for u in &p {
                assert!(dims.contains(*u), "{strategy:?} placed off-fabric");
            }
        }
    }

    #[test]
    fn cluster_placement_keeps_chain_neighbors_close() {
        let iig = chain_iig(16);
        let dims = FabricDims::new(8, 8).unwrap();
        let cluster =
            initial_placement(&iig, dims, PlacementStrategy::IigCluster, 0, None).unwrap();
        let random = initial_placement(&iig, dims, PlacementStrategy::Random, 0, None).unwrap();

        let avg_dist = |p: &[Ulb]| -> f64 {
            (0..15)
                .map(|i| p[i].manhattan_distance(p[i + 1]) as f64)
                .sum::<f64>()
                / 15.0
        };
        assert!(
            avg_dist(&cluster) < avg_dist(&random),
            "cluster {} vs random {}",
            avg_dist(&cluster),
            avg_dist(&random)
        );
        // Chain neighbours should average within a couple of hops.
        assert!(avg_dist(&cluster) <= 3.0, "got {}", avg_dist(&cluster));
    }

    #[test]
    fn too_many_qubits_is_an_error() {
        let iig = chain_iig(10);
        let dims = FabricDims::new(3, 3).unwrap();
        assert!(matches!(
            initial_placement(&iig, dims, PlacementStrategy::RowMajor, 0, None),
            Err(MapError::FabricTooSmall {
                qubits: 10,
                area: 9
            })
        ));
    }

    #[test]
    fn random_is_seed_deterministic() {
        let iig = chain_iig(12);
        let dims = FabricDims::new(6, 6).unwrap();
        let a = initial_placement(&iig, dims, PlacementStrategy::Random, 3, None).unwrap();
        let b = initial_placement(&iig, dims, PlacementStrategy::Random, 3, None).unwrap();
        let c = initial_placement(&iig, dims, PlacementStrategy::Random, 4, None).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn isolated_qubits_still_get_homes() {
        // 6 qubits, only 0 and 1 interact.
        let mut ft = FtCircuit::new(6);
        ft.push_cnot(q(0), q(1)).unwrap();
        let iig = Iig::from_ft_circuit(&ft);
        let dims = FabricDims::new(3, 3).unwrap();
        let p = initial_placement(&iig, dims, PlacementStrategy::IigCluster, 0, None).unwrap();
        assert_eq!(p.len(), 6);
        assert!(all_distinct(&p));
    }

    #[test]
    fn defective_fabric_placement_avoids_dead_cells() {
        let iig = chain_iig(10);
        let dims = FabricDims::new(4, 4).unwrap();
        let mut map = FabricMap::pristine(dims);
        for u in [Ulb::new(0, 0), Ulb::new(2, 2), Ulb::new(3, 1)] {
            map.disable_cell(u).unwrap();
        }
        for strategy in [
            PlacementStrategy::IigCluster,
            PlacementStrategy::RowMajor,
            PlacementStrategy::Random,
        ] {
            let p = initial_placement(&iig, dims, strategy, 7, Some(&map)).unwrap();
            assert!(all_distinct(&p));
            for u in &p {
                assert!(map.cell_enabled(*u), "{strategy:?} placed on a dead cell");
            }
        }
        // Fit check compares against live cells: 13 live < 14 qubits.
        let big = chain_iig(14);
        assert!(matches!(
            initial_placement(&big, dims, PlacementStrategy::RowMajor, 0, Some(&map)),
            Err(MapError::FabricTooSmall {
                qubits: 14,
                area: 13
            })
        ));
    }

    #[test]
    fn pristine_map_placement_is_identical_to_no_map() {
        let iig = chain_iig(12);
        let dims = FabricDims::new(6, 6).unwrap();
        let map = FabricMap::pristine(dims);
        for strategy in [
            PlacementStrategy::IigCluster,
            PlacementStrategy::RowMajor,
            PlacementStrategy::Random,
        ] {
            assert_eq!(
                initial_placement(&iig, dims, strategy, 5, None).unwrap(),
                initial_placement(&iig, dims, strategy, 5, Some(&map)).unwrap()
            );
        }
    }

    #[test]
    fn spiral_starts_at_center() {
        let dims = FabricDims::new(9, 9).unwrap();
        let sites = spiral_sites(dims);
        assert_eq!(sites[0], Ulb::new(4, 4));
        assert_eq!(sites.len() as u64, dims.area());
    }
}
