//! Byte-identity contracts of the pass pipeline.
//!
//! The `Mapper` became a thin driver over a pass pipeline plus a
//! selectable scheduling engine; these tests pin the refactor's
//! acceptance bar: with no pipeline attached (or an *empty* one, or one
//! whose passes are provable no-ops) and the default greedy engine, the
//! mapper must produce **bit-identical** results to the pre-pipeline
//! code — same latency, same placement, same channel heatmap, same
//! stats, same trace records — across programs × fabrics × routers ×
//! movement models.

use std::sync::Arc;

use leqa_circuit::decompose::lower_to_ft;
use leqa_circuit::Qodg;
use leqa_fabric::{FabricDims, PhysicalParams};
use qspr::{
    DeadGateElim, Mapper, MapperConfig, MovementModel, Partition, PassManager, PlacementStrategy,
    RouterStrategy, SchedulerStrategy,
};

/// Lowers a named suite workload to its QODG.
fn qodg(name: &str) -> Qodg {
    let circuit = leqa_workloads::circuit_by_name(name).expect("known workload");
    let ft = lower_to_ft(&circuit).expect("lowerable");
    Qodg::from_ft_circuit(&ft)
}

/// The differential grid: small-but-real programs across fabrics,
/// routers and movement models.
fn grid() -> (Vec<(&'static str, Qodg)>, Vec<MapperConfig>) {
    let programs: Vec<(&'static str, Qodg)> = ["qft_16", "8bitadder", "random_12_60_7"]
        .into_iter()
        .map(|name| (name, qodg(name)))
        .collect();
    let mut configs = Vec::new();
    for side in [12u32, 20] {
        for router in [
            RouterStrategy::Xy,
            RouterStrategy::Yx,
            RouterStrategy::Adaptive,
        ] {
            for movement in [MovementModel::HomeBased, MovementModel::Drift] {
                configs.push(MapperConfig {
                    dims: FabricDims::new(side, side).unwrap(),
                    params: PhysicalParams::dac13(),
                    placement: PlacementStrategy::IigCluster,
                    router,
                    movement,
                    seed: 0,
                });
            }
        }
    }
    (programs, configs)
}

/// Asserts two mapper variants agree on every observable output,
/// including the trace record stream.
fn assert_identical(reference: &Mapper, candidate: &Mapper, graph: &Qodg, label: &str) {
    let (want, want_trace) = reference.map_with_trace(graph).expect(label);
    let (got, got_trace) = candidate.map_with_trace(graph).expect(label);
    assert_eq!(want.latency, got.latency, "{label}: latency");
    assert_eq!(want.placement, got.placement, "{label}: placement");
    assert_eq!(want.channel_load, got.channel_load, "{label}: heatmap");
    assert_eq!(want.stats, got.stats, "{label}: stats");
    assert_eq!(
        want_trace.records(),
        got_trace.records(),
        "{label}: trace records"
    );
}

#[test]
fn empty_pipeline_is_byte_identical_to_no_pipeline() {
    let (programs, configs) = grid();
    for config in &configs {
        for (name, graph) in &programs {
            let reference = Mapper::with_config(config.clone());
            let candidate = Mapper::with_config(config.clone())
                .with_passes(Arc::new(PassManager::new().check_invariants(true)));
            let label = format!(
                "{name} on {}x{} {:?}/{:?}",
                config.dims.width(),
                config.dims.height(),
                config.router,
                config.movement
            );
            assert_identical(&reference, &candidate, graph, &label);
        }
    }
}

#[test]
fn partition_k1_is_byte_identical_to_unpartitioned() {
    let (programs, configs) = grid();
    for config in &configs {
        for (name, graph) in &programs {
            let reference = Mapper::with_config(config.clone());
            let pipeline = PassManager::new()
                .check_invariants(true)
                .add(Partition::new(1));
            let candidate = Mapper::with_config(config.clone()).with_passes(Arc::new(pipeline));
            let label = format!("partition:1 {name} {:?}", config.router);
            assert_identical(&reference, &candidate, graph, &label);
        }
    }
}

#[test]
fn dce_on_fully_live_circuits_is_byte_identical() {
    // Every wire observed (the default liveness model): DCE is a
    // guaranteed no-op, so the whole run must be bit-identical.
    let (programs, configs) = grid();
    for config in &configs {
        for (name, graph) in &programs {
            let reference = Mapper::with_config(config.clone());
            let pipeline = PassManager::new()
                .check_invariants(true)
                .add(DeadGateElim::new());
            let candidate = Mapper::with_config(config.clone()).with_passes(Arc::new(pipeline));
            let label = format!("dce {name} {:?}", config.router);
            assert_identical(&reference, &candidate, graph, &label);
        }
    }
}

#[test]
fn parsed_empty_spec_matches_programmatic_empty_pipeline() {
    let pm = PassManager::parse("").expect("empty spec is valid");
    assert!(pm.is_empty());
    let graph = qodg("qft_16");
    let config = MapperConfig {
        dims: FabricDims::new(12, 12).unwrap(),
        params: PhysicalParams::dac13(),
        placement: PlacementStrategy::IigCluster,
        router: RouterStrategy::Xy,
        movement: MovementModel::HomeBased,
        seed: 0,
    };
    let reference = Mapper::with_config(config.clone());
    let candidate = Mapper::with_config(config).with_passes(Arc::new(pm));
    assert_identical(&reference, &candidate, &graph, "parsed empty spec");
}

#[test]
fn greedy_scheduler_flag_is_byte_identical_to_default() {
    // Explicitly selecting the default engine must not perturb anything.
    let (programs, configs) = grid();
    for config in configs.iter().take(4) {
        for (name, graph) in &programs {
            let reference = Mapper::with_config(config.clone());
            let candidate =
                Mapper::with_config(config.clone()).with_scheduler(SchedulerStrategy::Greedy);
            assert_identical(&reference, &candidate, graph, name);
        }
    }
}
