//! Property tests for the mobility scheduling engine.
//!
//! Whatever the circuit, the mobility engine must produce a *legal*
//! schedule: every QODG dependency edge respected (no op starts before
//! its predecessors finish), all operations executed exactly once, and
//! the whole thing deterministic. It shares the greedy engine's
//! discrete-event physics — channel calendars enforce capacity, ULB
//! ports serialize — so its makespan can differ from greedy's only by a
//! bounded scheduling-order factor, which is also pinned here.

use std::collections::HashMap;

use leqa_circuit::decompose::lower_to_ft;
use leqa_circuit::{NodeId, Qodg, QodgNode};
use leqa_fabric::{FabricDims, PhysicalParams};
use proptest::prelude::*;
use qspr::{MapScratch, Mapper, SchedulerStrategy};

/// The declared worst-case makespan ratio of mobility over greedy.
/// Both engines run the same physics; only the booking order differs,
/// so the spread stays a small constant (empirically < 1.5x each way on
/// the suite; 2.5x leaves slack for adversarial random draws).
const MAKESPAN_BOUND: f64 = 2.5;

/// Lowers a seeded random workload to its QODG.
fn random_qodg(qubits: u32, gates: u32, seed: u32) -> Qodg {
    let name = format!("random_{qubits}_{gates}_{seed}");
    let circuit = leqa_workloads::circuit_by_name(&name).expect("random workload");
    let ft = lower_to_ft(&circuit).expect("lowerable");
    Qodg::from_ft_circuit(&ft)
}

/// Asserts the trace is a legal schedule of `qodg`: one record per op
/// node, and no op starts before every predecessor op has finished.
fn assert_schedule_legal(qodg: &Qodg, trace: &qspr::Trace) {
    let mut by_node: HashMap<NodeId, (f64, f64)> = HashMap::new();
    for r in trace.records() {
        let clash = by_node.insert(r.node, (r.start.as_f64(), r.end.as_f64()));
        assert!(clash.is_none(), "node {:?} executed twice", r.node);
    }
    assert_eq!(
        by_node.len(),
        qodg.op_count(),
        "every op executes exactly once"
    );
    for i in 0..qodg.node_count() {
        let id = NodeId(i);
        if !matches!(qodg.node(id), QodgNode::Op(_)) {
            continue;
        }
        let (start, _) = by_node[&id];
        for &pred in qodg.preds(id) {
            if !matches!(qodg.node(pred), QodgNode::Op(_)) {
                continue;
            }
            let (_, pred_end) = by_node[&pred];
            assert!(
                start >= pred_end - 1e-9,
                "dependency violated: node {:?} starts at {start} before \
                 predecessor {:?} ends at {pred_end}",
                id,
                pred
            );
        }
    }
}

fn mobility_mapper(side: u32) -> Mapper {
    Mapper::new(
        FabricDims::new(side, side).unwrap(),
        PhysicalParams::dac13(),
    )
    .with_scheduler(SchedulerStrategy::Mobility)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every schedule the mobility engine emits respects every QODG
    /// dependency edge and executes each op exactly once.
    #[test]
    fn mobility_respects_every_dependency_edge(
        qubits in 3u32..12,
        gates in 1u32..40,
        seed in 0u32..100,
    ) {
        let qodg = random_qodg(qubits, gates, seed);
        let (_, trace) = mobility_mapper(8).map_with_trace(&qodg).unwrap();
        assert_schedule_legal(&qodg, &trace);
    }

    /// Dependencies hold even when channel capacity is squeezed to 1 —
    /// the shared channel calendars keep enforcing capacity regardless
    /// of the booking order the engine picks.
    #[test]
    fn mobility_stays_legal_under_capacity_1(
        qubits in 3u32..10,
        gates in 1u32..30,
        seed in 0u32..50,
    ) {
        let qodg = random_qodg(qubits, gates, seed);
        let params = PhysicalParams::dac13()
            .to_builder()
            .channel_capacity(1)
            .build()
            .unwrap();
        let mapper = Mapper::new(FabricDims::new(6, 6).unwrap(), params)
            .with_scheduler(SchedulerStrategy::Mobility);
        let (result, trace) = mapper.map_with_trace(&qodg).unwrap();
        assert_schedule_legal(&qodg, &trace);
        prop_assert!(result.stats.congestion_wait.as_f64() >= 0.0);
        prop_assert!(result.latency.as_f64().is_finite());
    }

    /// Mobility's makespan never exceeds greedy's by more than the
    /// declared bound (and vice versa): the engines differ only in
    /// booking order, not physics.
    #[test]
    fn mobility_makespan_within_declared_bound_of_greedy(
        qubits in 3u32..12,
        gates in 1u32..40,
        seed in 0u32..100,
    ) {
        let qodg = random_qodg(qubits, gates, seed);
        let dims = FabricDims::new(8, 8).unwrap();
        let greedy = Mapper::new(dims, PhysicalParams::dac13())
            .map(&qodg)
            .unwrap();
        let mobility = mobility_mapper(8).map(&qodg).unwrap();
        let (g, m) = (greedy.latency.as_f64(), mobility.latency.as_f64());
        prop_assert!(
            m <= g * MAKESPAN_BOUND,
            "mobility {m} exceeds greedy {g} by more than {MAKESPAN_BOUND}x"
        );
        prop_assert!(
            g <= m * MAKESPAN_BOUND,
            "greedy {g} exceeds mobility {m} by more than {MAKESPAN_BOUND}x"
        );
        // Same physics → same op mix, whatever the order.
        prop_assert_eq!(greedy.stats.cnot_ops, mobility.stats.cnot_ops);
        prop_assert_eq!(greedy.stats.one_qubit_ops, mobility.stats.one_qubit_ops);
    }

    /// The mobility engine is deterministic: repeated runs — including
    /// runs through a reused caller-owned scratch — are bit-identical.
    #[test]
    fn mobility_is_deterministic_across_runs_and_scratch_reuse(
        qubits in 3u32..12,
        gates in 1u32..40,
        seed in 0u32..100,
    ) {
        let qodg = random_qodg(qubits, gates, seed);
        let mapper = mobility_mapper(8);
        let (a, trace_a) = mapper.map_with_trace(&qodg).unwrap();
        let (b, trace_b) = mapper.map_with_trace(&qodg).unwrap();
        prop_assert_eq!(a.latency, b.latency);
        prop_assert_eq!(&a.placement, &b.placement);
        prop_assert_eq!(&a.channel_load, &b.channel_load);
        prop_assert_eq!(&a.stats, &b.stats);
        prop_assert_eq!(trace_a.records(), trace_b.records());

        let mut scratch = MapScratch::new();
        let c = mapper.map_with_scratch(&qodg, &mut scratch).unwrap();
        let d = mapper.map_with_scratch(&qodg, &mut scratch).unwrap();
        prop_assert_eq!(a.latency, c.latency);
        prop_assert_eq!(&c.stats, &d.stats);
        prop_assert_eq!(&c.placement, &d.placement);
    }
}
