//! Defective fabrics × partitioned placement must compose: the
//! Partition pass places regions only on live cells, routing detours
//! around dead cells/channels, and a fabric the defects disconnect
//! fails with the *typed* [`MapError::Unroutable`] (exit 10 at the API
//! layer) — never a panic or a silent bad schedule.

use std::sync::Arc;

use leqa_circuit::decompose::lower_to_ft;
use leqa_circuit::Qodg;
use leqa_fabric::{FabricDims, FabricMap, PhysicalParams, Ulb};
use qspr::{
    MapError, Mapper, MapperConfig, MovementModel, Partition, PassManager, PlacementStrategy,
    RouterStrategy, SchedulerStrategy,
};

fn qodg(name: &str) -> Qodg {
    let circuit = leqa_workloads::circuit_by_name(name).expect("known workload");
    let ft = lower_to_ft(&circuit).expect("lowerable");
    Qodg::from_ft_circuit(&ft)
}

fn partitioned_mapper(dims: FabricDims, map: Arc<FabricMap>, k: u32) -> Mapper {
    Mapper::with_config(MapperConfig {
        dims,
        params: PhysicalParams::dac13(),
        placement: PlacementStrategy::IigCluster,
        router: RouterStrategy::Xy,
        movement: MovementModel::HomeBased,
        seed: 0,
    })
    .with_fabric_map(map)
    .with_passes(Arc::new(
        PassManager::new()
            .check_invariants(true)
            .add(Partition::new(k)),
    ))
}

#[test]
fn partitioned_placement_avoids_dead_cells_across_a_density_sweep() {
    let graph = qodg("qft_16");
    let dims = FabricDims::new(14, 14).unwrap();
    let mut mapped = 0;
    for (i, &density) in [0.0, 0.05, 0.1, 0.15, 0.2, 0.3].iter().enumerate() {
        let map = Arc::new(
            FabricMap::with_random_defects(dims, density, density, 90 + i as u64).unwrap(),
        );
        let mapper = partitioned_mapper(dims, Arc::clone(&map), 4);
        match mapper.map(&graph) {
            Ok(result) => {
                mapped += 1;
                // Every home ULB lands on a live cell, homes stay distinct.
                let mut seen = vec![false; dims.area() as usize];
                for &home in &result.placement {
                    assert!(map.cell_enabled(home), "qubit placed on dead cell {home:?}");
                    let idx = dims.index_of(home);
                    assert!(!seen[idx], "two qubits share home {home:?}");
                    seen[idx] = true;
                }
                // The heatmap never records traffic through a dead channel:
                // channel_load is indexed in dense ChannelId order, the same
                // order `FabricMap::channels` iterates.
                for (channel, &load) in map.channels().zip(&result.channel_load) {
                    if !map.channel_enabled(channel) {
                        assert_eq!(load, 0, "traffic through dead channel {channel:?}");
                    }
                }
            }
            // High densities may legitimately shrink or disconnect the live
            // fabric; both outcomes must stay typed.
            Err(MapError::Unroutable { .. } | MapError::FabricTooSmall { .. }) => {}
            Err(other) => panic!("untyped failure at density {density}: {other}"),
        }
    }
    assert!(mapped >= 2, "low densities must map ({mapped} of 6 did)");
}

#[test]
fn partition_with_mobility_composes_on_defective_fabrics() {
    let graph = qodg("random_12_60_7");
    let dims = FabricDims::new(12, 12).unwrap();
    let map = Arc::new(FabricMap::with_random_defects(dims, 0.08, 0.08, 7).unwrap());
    let mapper =
        partitioned_mapper(dims, Arc::clone(&map), 3).with_scheduler(SchedulerStrategy::Mobility);
    let result = mapper.map(&graph).expect("moderate defects stay mappable");
    for &home in &result.placement {
        assert!(map.cell_enabled(home));
    }
    for (channel, &load) in map.channels().zip(&result.channel_load) {
        if !map.channel_enabled(channel) {
            assert_eq!(load, 0);
        }
    }
    assert!(result.latency.as_f64() > 0.0);
}

#[test]
fn disconnected_fabric_fails_with_typed_unroutable() {
    // A wall of dead cells splits the fabric; qubits partitioned onto
    // both sides cannot interact. The failure must be the typed
    // `Unroutable`, not a panic.
    let dims = FabricDims::new(9, 9).unwrap();
    let mut map = FabricMap::pristine(dims);
    for y in 0..9 {
        map.disable_cell(Ulb::new(4, y)).unwrap();
    }
    let graph = qodg("qft_16");
    let mapper = partitioned_mapper(dims, Arc::new(map), 4);
    match mapper.map(&graph) {
        Err(MapError::Unroutable { .. }) => {}
        Err(MapError::FabricTooSmall { .. }) => {
            panic!("72 live cells hold 16 qubits; failure must be routing, not fit")
        }
        other => panic!("expected Unroutable, got {other:?}"),
    }
}
