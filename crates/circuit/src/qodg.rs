//! The quantum operation dependency graph (QODG, §2 and Fig. 2b).
//!
//! Nodes are FT operations plus synthetic `start`/`end` nodes; edges capture
//! data dependencies between consecutive operations on the same wire. Two
//! parallel edges between the same node pair (a CNOT followed immediately by
//! another CNOT on the same two qubits) are merged, and fan-out is impossible
//! by construction (no-cloning).
//!
//! The QODG is a DAG whose node order is already topological (ops are added
//! in program order), which makes the longest-path (critical path)
//! computation a single linear sweep — the `O(|V| + |E|)` step of the
//! paper's Algorithm 1, line 19.
//!
//! # Representation
//!
//! Predecessor lists live in compressed sparse row (CSR) form: a flat
//! `pred_edges` arena indexed by a `pred_offsets` table, appended to in one
//! pass during construction — no per-node `Vec` allocations. The
//! critical-path sweep can likewise reuse a caller-owned
//! [`CriticalPathScratch`] so repeated passes (fabric sweeps) allocate
//! nothing but the result path.

use leqa_fabric::Micros;

use crate::{FtCircuit, FtOp, QubitId};

/// Index of a node in a [`Qodg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Payload of a QODG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QodgNode {
    /// The synthetic source node feeding every first-level op.
    Start,
    /// The synthetic sink node fed by every last-level op.
    End,
    /// An FT operation.
    Op(FtOp),
}

/// The quantum operation dependency graph.
///
/// # Examples
///
/// ```
/// use leqa_circuit::{FtCircuit, FtOp, OneQubitKind, Qodg, QubitId};
/// use leqa_fabric::Micros;
///
/// # fn main() -> Result<(), leqa_circuit::CircuitError> {
/// let mut ft = FtCircuit::new(2);
/// ft.push_one_qubit(OneQubitKind::H, QubitId(0))?;
/// ft.push_cnot(QubitId(0), QubitId(1))?;
///
/// let qodg = Qodg::from_ft_circuit(&ft);
/// assert_eq!(qodg.op_count(), 2);
///
/// // Critical path with unit delays: start → H → CNOT → end.
/// let cp = qodg.critical_path(|_| Micros::new(1.0));
/// assert_eq!(cp.length, Micros::new(2.0));
/// assert_eq!(cp.cnot_count, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Qodg {
    nodes: Vec<QodgNode>,
    /// CSR offsets into `pred_edges`; node `i`'s predecessors are
    /// `pred_edges[pred_offsets[i]..pred_offsets[i + 1]]`. Node order is
    /// topological by construction.
    pred_offsets: Vec<u32>,
    /// Flat predecessor arena, in the order edges were discovered.
    pred_edges: Vec<NodeId>,
    num_qubits: u32,
}

impl Qodg {
    /// Builds the QODG of a lowered circuit (Algorithm 1's input).
    pub fn from_ft_circuit(circuit: &FtCircuit) -> Self {
        Qodg::from_gates(circuit.num_qubits(), circuit.ops().iter().copied())
    }

    /// Builds the QODG from a raw op stream over `num_qubits` wires —
    /// the same graph [`from_ft_circuit`](Self::from_ft_circuit) builds,
    /// without requiring the ops to be materialized in an [`FtCircuit`]
    /// first (generator-backed workloads hand their lowered stream
    /// straight in).
    pub fn from_gates(num_qubits: u32, ops: impl IntoIterator<Item = FtOp>) -> Self {
        let ops = ops.into_iter();
        let n_ops = ops.size_hint().0;
        let mut nodes = Vec::with_capacity(n_ops + 2);
        let mut pred_offsets: Vec<u32> = Vec::with_capacity(n_ops + 3);
        // Each op contributes at most two merged predecessor edges.
        let mut pred_edges: Vec<NodeId> = Vec::with_capacity(2 * n_ops + 2);

        nodes.push(QodgNode::Start);
        pred_offsets.push(0);
        pred_offsets.push(0); // start has no predecessors
        let start = NodeId(0);

        let mut last: Vec<Option<NodeId>> = vec![None; num_qubits as usize];

        for op in ops {
            let id = NodeId(nodes.len());
            nodes.push(QodgNode::Op(op));
            let first = pred_edges.len();
            for q in op.qubits() {
                let pred = last[q.index()].unwrap_or(start);
                // Merge parallel edges (the paper combines duplicate edges).
                if !pred_edges[first..].contains(&pred) {
                    pred_edges.push(pred);
                }
                last[q.index()] = Some(id);
            }
            pred_offsets.push(pred_edges.len() as u32);
        }

        let end = NodeId(nodes.len());
        nodes.push(QodgNode::End);
        let first = pred_edges.len();
        for l in last.iter().flatten() {
            if !pred_edges[first..].contains(l) {
                pred_edges.push(*l);
            }
        }
        if pred_edges.len() == first {
            // Empty program: keep start connected to end so the graph stays
            // a single component.
            pred_edges.push(start);
        }
        pred_offsets.push(pred_edges.len() as u32);
        debug_assert_eq!(end.0 + 1, nodes.len());
        debug_assert_eq!(pred_offsets.len(), nodes.len() + 1);

        Qodg {
            nodes,
            pred_offsets,
            pred_edges,
            num_qubits,
        }
    }

    /// Total node count `|V|`, including `start` and `end`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of operation nodes (excludes `start`/`end`).
    #[inline]
    pub fn op_count(&self) -> usize {
        self.nodes.len() - 2
    }

    /// Total edge count `|E|` after duplicate-edge merging.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.pred_edges.len()
    }

    /// The number of logical qubits the underlying circuit uses (`Q`).
    #[inline]
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// The start node.
    #[inline]
    pub fn start(&self) -> NodeId {
        NodeId(0)
    }

    /// The end node.
    #[inline]
    pub fn end(&self) -> NodeId {
        NodeId(self.nodes.len() - 1)
    }

    /// The payload of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn node(&self, id: NodeId) -> QodgNode {
        self.nodes[id.0]
    }

    /// Predecessors of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn preds(&self, id: NodeId) -> &[NodeId] {
        let lo = self.pred_offsets[id.0] as usize;
        let hi = self.pred_offsets[id.0 + 1] as usize;
        &self.pred_edges[lo..hi]
    }

    /// Structural validation: sentinels in place, CSR offsets monotone,
    /// every predecessor edge pointing at a smaller node index (node order
    /// is topological by construction, so this implies acyclicity), no
    /// duplicate predecessors, and every op wire within `num_qubits`.
    ///
    /// The graph builders uphold all of this by construction; the check
    /// exists for the pass-pipeline invariant checker, which re-validates
    /// the graph after every transformation.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.nodes.len();
        if n < 2 {
            return Err(format!("graph has {n} nodes; needs at least start and end"));
        }
        if self.nodes[0] != QodgNode::Start {
            return Err("first node is not the start sentinel".into());
        }
        if self.nodes[n - 1] != QodgNode::End {
            return Err("last node is not the end sentinel".into());
        }
        for (i, node) in self.nodes[1..n - 1].iter().enumerate() {
            let QodgNode::Op(op) = node else {
                return Err(format!("interior node {} is a {node:?} sentinel", i + 1));
            };
            for q in op.qubits() {
                if q.0 >= self.num_qubits {
                    return Err(format!(
                        "node {} touches wire {} but the graph has {} wires",
                        i + 1,
                        q.0,
                        self.num_qubits
                    ));
                }
            }
        }
        if self.pred_offsets.len() != n + 1 {
            return Err(format!(
                "offset table has {} entries for {n} nodes",
                self.pred_offsets.len()
            ));
        }
        if self.pred_offsets[n] as usize != self.pred_edges.len() {
            return Err(format!(
                "offset table ends at {} but the edge arena holds {} edges",
                self.pred_offsets[n],
                self.pred_edges.len()
            ));
        }
        for i in 0..n {
            let (lo, hi) = (self.pred_offsets[i], self.pred_offsets[i + 1]);
            if lo > hi {
                return Err(format!("offsets decrease at node {i} ({lo} > {hi})"));
            }
            let preds = &self.pred_edges[lo as usize..hi as usize];
            for (j, &p) in preds.iter().enumerate() {
                if p.0 >= i {
                    return Err(format!(
                        "edge {p:?} -> node {i} is not topological (cycle or forward edge)"
                    ));
                }
                if preds[..j].contains(&p) {
                    return Err(format!("node {i} lists predecessor {p:?} twice"));
                }
            }
        }
        Ok(())
    }

    /// Iterates over operation nodes in topological (program) order.
    pub fn op_nodes(&self) -> impl Iterator<Item = (NodeId, FtOp)> + '_ {
        self.nodes.iter().enumerate().filter_map(|(i, n)| match n {
            QodgNode::Op(op) => Some((NodeId(i), *op)),
            _ => None,
        })
    }

    /// Longest path from `start` to `end` where each node costs
    /// `delay(node)` (`start`/`end` are free). Returns the path length and
    /// the op-type census along the path — the `N^critical` values of Eq. 1.
    ///
    /// Runs in `O(|V| + |E|)` (supplemental, line 19).
    pub fn critical_path(&self, delay: impl Fn(&QodgNode) -> Micros) -> CriticalPath {
        self.critical_path_reuse(delay, &mut CriticalPathScratch::new())
    }

    /// Like [`critical_path`](Self::critical_path), reusing caller-owned
    /// scratch buffers so repeated passes (one per fabric candidate in a
    /// sweep) allocate nothing but the returned path.
    pub fn critical_path_reuse(
        &self,
        delay: impl Fn(&QodgNode) -> Micros,
        scratch: &mut CriticalPathScratch,
    ) -> CriticalPath {
        let n = self.nodes.len();
        scratch.dist.clear();
        scratch.dist.resize(n, Micros::ZERO);
        scratch.argmax.clear();
        scratch.argmax.resize(n, None);
        let dist = &mut scratch.dist;
        let argmax = &mut scratch.argmax;

        for i in 0..n {
            let node = &self.nodes[i];
            let mut best = Micros::ZERO;
            let mut best_pred = None;
            for &p in self.preds(NodeId(i)) {
                if best_pred.is_none() || dist[p.0] > best {
                    best = dist[p.0];
                    best_pred = Some(p);
                }
            }
            let own = match node {
                QodgNode::Start | QodgNode::End => Micros::ZERO,
                QodgNode::Op(_) => delay(node),
            };
            dist[i] = best + own;
            argmax[i] = best_pred;
        }

        // Walk back from `end`, collecting the census.
        let mut cnot_count = 0u64;
        let mut one_qubit_counts = [0u64; 8];
        let mut path = Vec::new();
        let mut cur = Some(self.end());
        while let Some(id) = cur {
            path.push(id);
            if let QodgNode::Op(op) = self.nodes[id.0] {
                match op {
                    FtOp::Cnot { .. } => cnot_count += 1,
                    FtOp::OneQubit { kind, .. } => one_qubit_counts[kind.index()] += 1,
                }
            }
            cur = argmax[id.0];
        }
        path.reverse();

        CriticalPath {
            length: dist[n - 1],
            cnot_count,
            one_qubit_counts,
            path,
        }
    }

    /// The set of wires an op node touches (empty for `start`/`end`).
    pub fn node_qubits(&self, id: NodeId) -> Vec<QubitId> {
        match self.nodes[id.0] {
            QodgNode::Op(op) => op.qubits().collect(),
            _ => Vec::new(),
        }
    }
}

/// Reusable buffers for [`Qodg::critical_path_reuse`]. One instance can
/// serve any number of passes over any number of graphs.
#[derive(Debug, Default)]
pub struct CriticalPathScratch {
    dist: Vec<Micros>,
    argmax: Vec<Option<NodeId>>,
}

impl CriticalPathScratch {
    /// Creates empty scratch buffers.
    pub fn new() -> Self {
        CriticalPathScratch::default()
    }
}

/// Result of a critical-path computation.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Length of the longest path (sum of node delays along it).
    pub length: Micros,
    /// `N_CNOT^critical`: CNOT nodes on the path.
    pub cnot_count: u64,
    /// `N_g^critical` per one-qubit kind, indexed by
    /// [`OneQubitKind::index`](leqa_fabric::OneQubitKind::index).
    pub one_qubit_counts: [u64; 8],
    /// The path itself, `start` to `end`.
    pub path: Vec<NodeId>,
}

impl CriticalPath {
    /// Total op nodes on the path.
    pub fn op_count(&self) -> u64 {
        self.cnot_count + self.one_qubit_counts.iter().sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leqa_fabric::OneQubitKind;

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    /// A two-wire circuit: H(0); CNOT(0,1); T(1)  — serial chain.
    fn chain() -> FtCircuit {
        let mut ft = FtCircuit::new(2);
        ft.push_one_qubit(OneQubitKind::H, q(0)).unwrap();
        ft.push_cnot(q(0), q(1)).unwrap();
        ft.push_one_qubit(OneQubitKind::T, q(1)).unwrap();
        ft
    }

    #[test]
    fn node_and_edge_counts() {
        let qodg = Qodg::from_ft_circuit(&chain());
        // start + 3 ops + end
        assert_eq!(qodg.node_count(), 5);
        assert_eq!(qodg.op_count(), 3);
        // start→H, start→CNOT (wire 1 first touch), H→CNOT, CNOT→T,
        // T→end, CNOT? wire0's last op is CNOT → end. Total 6.
        assert_eq!(qodg.edge_count(), 6);
    }

    #[test]
    fn parallel_edges_are_merged() {
        let mut ft = FtCircuit::new(2);
        ft.push_cnot(q(0), q(1)).unwrap();
        ft.push_cnot(q(0), q(1)).unwrap();
        let qodg = Qodg::from_ft_circuit(&ft);
        // Second CNOT has both operands coming from the first: one merged
        // edge, not two.
        assert_eq!(qodg.preds(NodeId(2)), &[NodeId(1)]);
        // start→c1 (x2 operands merged? No: both wires' first touch is c1 →
        // two candidate edges start→c1, merged to one).
        assert_eq!(qodg.preds(NodeId(1)), &[NodeId(0)]);
    }

    #[test]
    fn critical_path_counts_types() {
        let qodg = Qodg::from_ft_circuit(&chain());
        let cp = qodg.critical_path(|_| Micros::new(1.0));
        assert_eq!(cp.length, Micros::new(3.0));
        assert_eq!(cp.cnot_count, 1);
        assert_eq!(cp.one_qubit_counts[OneQubitKind::H.index()], 1);
        assert_eq!(cp.one_qubit_counts[OneQubitKind::T.index()], 1);
        assert_eq!(cp.op_count(), 3);
        assert_eq!(cp.path.len(), 5); // start, 3 ops, end
        assert_eq!(cp.path[0], qodg.start());
        assert_eq!(*cp.path.last().unwrap(), qodg.end());
    }

    #[test]
    fn critical_path_picks_heavier_branch() {
        // Two independent wires: wire0 has one slow op, wire1 has two fast
        // ops. Delay(T)=10 makes wire0 critical.
        let mut ft = FtCircuit::new(2);
        ft.push_one_qubit(OneQubitKind::T, q(0)).unwrap();
        ft.push_one_qubit(OneQubitKind::H, q(1)).unwrap();
        ft.push_one_qubit(OneQubitKind::H, q(1)).unwrap();
        let qodg = Qodg::from_ft_circuit(&ft);
        let cp = qodg.critical_path(|n| match n {
            QodgNode::Op(FtOp::OneQubit {
                kind: OneQubitKind::T,
                ..
            }) => Micros::new(10.0),
            _ => Micros::new(1.0),
        });
        assert_eq!(cp.length, Micros::new(10.0));
        assert_eq!(cp.one_qubit_counts[OneQubitKind::T.index()], 1);
        assert_eq!(cp.one_qubit_counts[OneQubitKind::H.index()], 0);
    }

    #[test]
    fn delays_can_flip_the_critical_path() {
        // The paper's motivation for line 19: routing latency added to CNOTs
        // may re-route the critical path.
        let mut ft = FtCircuit::new(4);
        // Branch A: 3 one-qubit ops on wire 0.
        ft.push_one_qubit(OneQubitKind::H, q(0)).unwrap();
        ft.push_one_qubit(OneQubitKind::H, q(0)).unwrap();
        ft.push_one_qubit(OneQubitKind::H, q(0)).unwrap();
        // Branch B: 2 CNOTs on wires 2,3.
        ft.push_cnot(q(2), q(3)).unwrap();
        ft.push_cnot(q(3), q(2)).unwrap();
        let qodg = Qodg::from_ft_circuit(&ft);

        // Without routing latency, branch A (3) beats branch B (2).
        let no_routing = qodg.critical_path(|_| Micros::new(1.0));
        assert_eq!(no_routing.length, Micros::new(3.0));
        assert_eq!(no_routing.cnot_count, 0);

        // Adding routing latency to CNOTs flips it: 2*(1+1) > 3.
        let with_routing = qodg.critical_path(|n| match n {
            QodgNode::Op(FtOp::Cnot { .. }) => Micros::new(2.0),
            _ => Micros::new(1.0),
        });
        assert_eq!(with_routing.length, Micros::new(4.0));
        assert_eq!(with_routing.cnot_count, 2);
    }

    #[test]
    fn empty_circuit_has_start_end_edge() {
        let ft = FtCircuit::new(3);
        let qodg = Qodg::from_ft_circuit(&ft);
        assert_eq!(qodg.node_count(), 2);
        assert_eq!(qodg.edge_count(), 1);
        let cp = qodg.critical_path(|_| Micros::new(1.0));
        assert_eq!(cp.length, Micros::ZERO);
    }

    #[test]
    fn op_nodes_iterate_in_program_order() {
        let qodg = Qodg::from_ft_circuit(&chain());
        let kinds: Vec<FtOp> = qodg.op_nodes().map(|(_, op)| op).collect();
        assert_eq!(kinds.len(), 3);
        assert!(matches!(kinds[1], FtOp::Cnot { .. }));
    }

    #[test]
    fn preds_are_topologically_earlier() {
        let qodg = Qodg::from_ft_circuit(&chain());
        for i in 0..qodg.node_count() {
            for p in qodg.preds(NodeId(i)) {
                assert!(p.0 < i, "edges must point forward");
            }
        }
    }

    #[test]
    fn from_gates_matches_from_ft_circuit() {
        for ft in [chain(), FtCircuit::new(2), {
            let mut ft = FtCircuit::new(2);
            ft.push_cnot(q(0), q(1)).unwrap();
            ft.push_cnot(q(0), q(1)).unwrap();
            ft
        }] {
            let materialized = Qodg::from_ft_circuit(&ft);
            let streamed = Qodg::from_gates(ft.num_qubits(), ft.ops().iter().copied());
            assert_eq!(materialized, streamed);
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        let mut scratch = CriticalPathScratch::new();
        // Reuse the same scratch across two different graphs and delay
        // functions; results must match the allocating entry point.
        for ft in [chain(), FtCircuit::new(2)] {
            let qodg = Qodg::from_ft_circuit(&ft);
            for unit in [1.0, 2.5] {
                let fresh = qodg.critical_path(|_| Micros::new(unit));
                let reused = qodg.critical_path_reuse(|_| Micros::new(unit), &mut scratch);
                assert_eq!(fresh, reused);
            }
        }
    }
}

impl Qodg {
    /// Logical depth: the number of op nodes on the longest unit-delay
    /// path — the circuit's level count under unbounded parallelism.
    pub fn depth(&self) -> u64 {
        self.critical_path(|_| Micros::new(1.0)).op_count()
    }

    /// Average op-level parallelism: `op_count / depth` (1.0 for a fully
    /// serial program; 0.0 for an empty one).
    pub fn average_parallelism(&self) -> f64 {
        let depth = self.depth();
        if depth == 0 {
            0.0
        } else {
            self.op_count() as f64 / depth as f64
        }
    }
}

#[cfg(test)]
mod depth_tests {
    use super::*;
    use crate::FtCircuit;
    use leqa_fabric::OneQubitKind;

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    #[test]
    fn serial_chain_has_depth_equal_to_ops() {
        let mut ft = FtCircuit::new(1);
        for _ in 0..7 {
            ft.push_one_qubit(OneQubitKind::H, q(0)).unwrap();
        }
        let qodg = Qodg::from_ft_circuit(&ft);
        assert_eq!(qodg.depth(), 7);
        assert!((qodg.average_parallelism() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_wires_have_depth_one() {
        let mut ft = FtCircuit::new(5);
        for i in 0..5 {
            ft.push_one_qubit(OneQubitKind::T, q(i)).unwrap();
        }
        let qodg = Qodg::from_ft_circuit(&ft);
        assert_eq!(qodg.depth(), 1);
        assert!((qodg.average_parallelism() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_program_has_zero_depth() {
        let qodg = Qodg::from_ft_circuit(&FtCircuit::new(2));
        assert_eq!(qodg.depth(), 0);
        assert_eq!(qodg.average_parallelism(), 0.0);
    }

    #[test]
    fn cnots_join_wires_into_one_level_chain() {
        let mut ft = FtCircuit::new(2);
        ft.push_cnot(q(0), q(1)).unwrap();
        ft.push_cnot(q(1), q(0)).unwrap();
        let qodg = Qodg::from_ft_circuit(&ft);
        assert_eq!(qodg.depth(), 2);
    }
}
