//! Graphviz (DOT) export of the QODG and IIG, for papers-style figures
//! (Fig. 2b is exactly a rendered QODG) and for debugging circuit
//! structure.

use std::fmt::Write as _;

use crate::{FtOp, Iig, Qodg, QodgNode, QubitId};

/// Renders a QODG as a Graphviz digraph.
///
/// Nodes are labelled like the paper's Fig. 2b: `start`, `end`, and the
/// operation index with its mnemonic. CNOT nodes are boxes, one-qubit ops
/// are ellipses.
///
/// # Examples
///
/// ```
/// use leqa_circuit::{viz, FtCircuit, Qodg, QubitId};
///
/// # fn main() -> Result<(), leqa_circuit::CircuitError> {
/// let mut ft = FtCircuit::new(2);
/// ft.push_cnot(QubitId(0), QubitId(1))?;
/// let dot = viz::qodg_to_dot(&Qodg::from_ft_circuit(&ft));
/// assert!(dot.starts_with("digraph qodg {"));
/// assert!(dot.contains("start"));
/// # Ok(())
/// # }
/// ```
pub fn qodg_to_dot(qodg: &Qodg) -> String {
    let mut out = String::from("digraph qodg {\n  rankdir=LR;\n");
    for i in 0..qodg.node_count() {
        let id = crate::NodeId(i);
        match qodg.node(id) {
            QodgNode::Start => {
                let _ = writeln!(out, "  n{i} [label=\"start\", shape=circle];");
            }
            QodgNode::End => {
                let _ = writeln!(out, "  n{i} [label=\"end\", shape=circle];");
            }
            QodgNode::Op(FtOp::Cnot { control, target }) => {
                let _ = writeln!(
                    out,
                    "  n{i} [label=\"{i}: CNOT {control},{target}\", shape=box];"
                );
            }
            QodgNode::Op(FtOp::OneQubit { kind, target }) => {
                let _ = writeln!(out, "  n{i} [label=\"{i}: {kind} {target}\"];");
            }
        }
    }
    for i in 0..qodg.node_count() {
        for p in qodg.preds(crate::NodeId(i)) {
            let _ = writeln!(out, "  n{} -> n{i};", p.0);
        }
    }
    out.push_str("}\n");
    out
}

/// Renders an IIG as a weighted undirected Graphviz graph; isolated
/// qubits are omitted.
///
/// Edge thickness scales with `w(e_ij)` so congested pairs stand out.
pub fn iig_to_dot(iig: &Iig) -> String {
    let mut out = String::from("graph iig {\n  layout=neato;\n");
    let max_w = (0..iig.num_qubits())
        .flat_map(|i| iig.neighbors(QubitId(i)).map(|(_, w)| w))
        .max()
        .unwrap_or(1)
        .max(1);
    for i in 0..iig.num_qubits() {
        let q = QubitId(i);
        if iig.degree(q) > 0 {
            let _ = writeln!(out, "  q{i} [label=\"q{i} (M={})\"];", iig.degree(q));
        }
    }
    for i in 0..iig.num_qubits() {
        let q = QubitId(i);
        for (other, w) in iig.neighbors(q) {
            if other.0 > i {
                let width = 1.0 + 4.0 * w as f64 / max_w as f64;
                let _ = writeln!(
                    out,
                    "  q{i} -- q{} [label=\"{w}\", penwidth={width:.2}];",
                    other.0
                );
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FtCircuit;
    use leqa_fabric::OneQubitKind;

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    fn sample() -> FtCircuit {
        let mut ft = FtCircuit::new(3);
        ft.push_one_qubit(OneQubitKind::H, q(0)).unwrap();
        ft.push_cnot(q(0), q(1)).unwrap();
        ft.push_cnot(q(0), q(1)).unwrap();
        ft.push_cnot(q(1), q(2)).unwrap();
        ft
    }

    #[test]
    fn qodg_dot_contains_all_nodes_and_edges() {
        let qodg = Qodg::from_ft_circuit(&sample());
        let dot = qodg_to_dot(&qodg);
        assert!(dot.starts_with("digraph qodg {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("start"));
        assert!(dot.contains("end"));
        assert_eq!(dot.matches("shape=box").count(), 3); // 3 CNOTs
        assert_eq!(dot.matches(" -> ").count(), qodg.edge_count());
    }

    #[test]
    fn iig_dot_deduplicates_undirected_edges() {
        let iig = Iig::from_ft_circuit(&sample());
        let dot = iig_to_dot(&iig);
        assert!(dot.starts_with("graph iig {"));
        // 2 distinct edges, each printed once.
        assert_eq!(dot.matches(" -- ").count(), 2);
        // The doubled q0–q1 edge carries weight 2.
        assert!(dot.contains("label=\"2\""));
    }

    #[test]
    fn isolated_qubits_are_omitted_from_iig() {
        let mut ft = FtCircuit::new(3);
        ft.push_cnot(q(0), q(1)).unwrap();
        let iig = Iig::from_ft_circuit(&ft);
        let dot = iig_to_dot(&iig);
        assert!(!dot.contains("q2"));
    }

    #[test]
    fn empty_graphs_render() {
        let ft = FtCircuit::new(1);
        let dot = qodg_to_dot(&Qodg::from_ft_circuit(&ft));
        assert!(dot.contains("start") && dot.contains("end"));
        let dot = iig_to_dot(&Iig::from_ft_circuit(&ft));
        assert!(dot.contains("graph iig"));
    }
}
