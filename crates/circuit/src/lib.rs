//! Circuit representation and graph construction for the LEQA reproduction.
//!
//! The paper's design flow (§2) starts from a synthesized *reversible* circuit
//! (NOT/CNOT/Toffoli/Fredkin, possibly multi-controlled), lowers it to
//! *fault-tolerant* (FT) operations over the universal set
//! `{CNOT, H, T, T†, S, S†, X, Y, Z}`, and then represents the program as a
//! *quantum operation dependency graph* (QODG, Fig. 2): nodes are FT ops,
//! edges are data dependencies, with synthetic `start`/`end` nodes.
//! A second graph, the *interaction intensity graph* (IIG, §3.1), has logical
//! qubits as nodes and the number of two-qubit ops between a pair as the edge
//! weight.
//!
//! This crate provides all of those pieces:
//!
//! * [`Circuit`]/[`Gate`] — the reversible-level circuit,
//! * [`decompose`] — the paper's decomposition pipeline (multi-controlled
//!   Toffoli/Fredkin → 3-input Toffoli via ancillas, Fredkin → 3 Toffolis,
//!   Toffoli → 15 FT gates), producing an [`FtCircuit`],
//! * [`Qodg`] — the dependency DAG with critical-path extraction,
//! * [`Iig`] — the interaction intensity graph,
//! * [`parser`] — a plain-text circuit format, read and write.
//!
//! # Examples
//!
//! ```
//! use leqa_circuit::{Circuit, Gate, QubitId};
//! use leqa_circuit::decompose::lower_to_ft;
//! use leqa_circuit::{Iig, Qodg};
//!
//! # fn main() -> Result<(), leqa_circuit::CircuitError> {
//! let mut c = Circuit::new(3);
//! c.push(Gate::toffoli(QubitId(0), QubitId(1), QubitId(2))?)?;
//! c.push(Gate::cnot(QubitId(0), QubitId(1))?)?;
//!
//! let ft = lower_to_ft(&c)?;
//! assert_eq!(ft.ops().len(), 16); // 15 for the Toffoli + 1 CNOT
//!
//! let qodg = Qodg::from_ft_circuit(&ft);
//! assert_eq!(qodg.op_count(), 16);
//!
//! let iig = Iig::from_ft_circuit(&ft);
//! assert_eq!(iig.degree(QubitId(2)), 2); // CNOTs touch q2 with q0 and q1
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuit;
pub mod classical;
pub mod decompose;
mod error;
mod gate;
mod iig;
pub mod parser;
mod qodg;
pub mod viz;

pub use circuit::{Circuit, CircuitStats, FtCircuit};
pub use error::CircuitError;
pub use gate::{FtOp, Gate, QubitId};
pub use iig::Iig;
pub use qodg::{CriticalPath, CriticalPathScratch, NodeId, Qodg, QodgNode};

pub use leqa_fabric::OneQubitKind;
