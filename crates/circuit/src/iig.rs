//! The interaction intensity graph (IIG, §3.1).
//!
//! Nodes are logical qubits; an undirected edge `e_ij` with weight `w(e_ij)`
//! counts the two-qubit operations between qubits `i` and `j`. No self-loops
//! exist because one-qubit operations add no edges. The quantities LEQA
//! reads off the IIG are `M_i = deg(n_i)` (the neighbour count) and
//! `Σ_j w(e_ij)` (the interaction *strength*, the weight used in the
//! weighted averages of Eqs. 7 and 12).

use std::collections::HashMap;

use crate::{FtCircuit, FtOp, Qodg, QubitId};

/// The interaction intensity graph of a circuit.
///
/// # Examples
///
/// ```
/// use leqa_circuit::{FtCircuit, Iig, QubitId};
///
/// # fn main() -> Result<(), leqa_circuit::CircuitError> {
/// let mut ft = FtCircuit::new(3);
/// ft.push_cnot(QubitId(0), QubitId(1))?;
/// ft.push_cnot(QubitId(0), QubitId(1))?;
/// ft.push_cnot(QubitId(1), QubitId(2))?;
///
/// let iig = Iig::from_ft_circuit(&ft);
/// assert_eq!(iig.degree(QubitId(1)), 2);       // neighbours: q0, q2
/// assert_eq!(iig.strength(QubitId(1)), 3);     // 2 + 1 interactions
/// assert_eq!(iig.weight(QubitId(0), QubitId(1)), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Iig {
    /// Per-qubit adjacency: neighbour → weight.
    adj: Vec<HashMap<QubitId, u64>>,
    total_weight: u64,
}

impl Iig {
    /// Builds the IIG by a single traversal of the lowered circuit.
    pub fn from_ft_circuit(circuit: &FtCircuit) -> Self {
        let mut iig = Iig {
            adj: vec![HashMap::new(); circuit.num_qubits() as usize],
            total_weight: 0,
        };
        for op in circuit.ops() {
            if let FtOp::Cnot { control, target } = *op {
                iig.add_interaction(control, target);
            }
        }
        iig
    }

    /// Builds the IIG by traversing a QODG (Algorithm 1, line 1:
    /// `O(|V| + |E|)`).
    pub fn from_qodg(qodg: &Qodg) -> Self {
        let mut iig = Iig {
            adj: vec![HashMap::new(); qodg.num_qubits() as usize],
            total_weight: 0,
        };
        for (_, op) in qodg.op_nodes() {
            if let FtOp::Cnot { control, target } = op {
                iig.add_interaction(control, target);
            }
        }
        iig
    }

    fn add_interaction(&mut self, a: QubitId, b: QubitId) {
        debug_assert_ne!(a, b, "no self-loops in the IIG");
        *self.adj[a.index()].entry(b).or_insert(0) += 1;
        *self.adj[b.index()].entry(a).or_insert(0) += 1;
        self.total_weight += 1;
    }

    /// Number of qubits (nodes), `Q`.
    #[inline]
    pub fn num_qubits(&self) -> u32 {
        self.adj.len() as u32
    }

    /// `M_i`: the number of distinct interaction partners of qubit `i`.
    #[inline]
    pub fn degree(&self, qubit: QubitId) -> u64 {
        self.adj[qubit.index()].len() as u64
    }

    /// `Σ_j w(e_ij)`: total two-qubit ops involving qubit `i`.
    #[inline]
    pub fn strength(&self, qubit: QubitId) -> u64 {
        self.adj[qubit.index()].values().sum()
    }

    /// `w(e_ij)`: two-qubit ops between `a` and `b` (0 if they never
    /// interact; symmetric).
    #[inline]
    pub fn weight(&self, a: QubitId, b: QubitId) -> u64 {
        self.adj[a.index()].get(&b).copied().unwrap_or(0)
    }

    /// Iterates over the neighbours of `qubit` with edge weights.
    pub fn neighbors(&self, qubit: QubitId) -> impl Iterator<Item = (QubitId, u64)> + '_ {
        self.adj[qubit.index()].iter().map(|(&q, &w)| (q, w))
    }

    /// Total edge weight (= total two-qubit op count of the circuit).
    #[inline]
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// Number of distinct edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|m| m.len()).sum::<usize>() / 2
    }

    /// Qubit ids sorted by decreasing strength (used by the mapper's
    /// interaction-aware placement).
    pub fn qubits_by_strength(&self) -> Vec<QubitId> {
        let mut ids: Vec<QubitId> = (0..self.num_qubits()).map(QubitId).collect();
        ids.sort_by_key(|q| std::cmp::Reverse(self.strength(*q)));
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leqa_fabric::OneQubitKind;

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    fn sample() -> FtCircuit {
        let mut ft = FtCircuit::new(4);
        ft.push_cnot(q(0), q(1)).unwrap();
        ft.push_cnot(q(1), q(0)).unwrap(); // same pair, reversed roles
        ft.push_cnot(q(1), q(2)).unwrap();
        ft.push_one_qubit(OneQubitKind::H, q(3)).unwrap(); // no edge
        ft
    }

    #[test]
    fn edges_are_undirected_and_weighted() {
        let iig = Iig::from_ft_circuit(&sample());
        assert_eq!(iig.weight(q(0), q(1)), 2);
        assert_eq!(iig.weight(q(1), q(0)), 2);
        assert_eq!(iig.weight(q(1), q(2)), 1);
        assert_eq!(iig.weight(q(0), q(2)), 0);
    }

    #[test]
    fn degrees_and_strengths() {
        let iig = Iig::from_ft_circuit(&sample());
        assert_eq!(iig.degree(q(0)), 1);
        assert_eq!(iig.degree(q(1)), 2);
        assert_eq!(iig.degree(q(3)), 0); // one-qubit ops add no edges
        assert_eq!(iig.strength(q(1)), 3);
        assert_eq!(iig.strength(q(3)), 0);
    }

    #[test]
    fn totals() {
        let iig = Iig::from_ft_circuit(&sample());
        assert_eq!(iig.total_weight(), 3);
        assert_eq!(iig.edge_count(), 2);
        assert_eq!(iig.num_qubits(), 4);
    }

    #[test]
    fn qodg_and_circuit_builders_agree() {
        let ft = sample();
        let from_circuit = Iig::from_ft_circuit(&ft);
        let from_qodg = Iig::from_qodg(&Qodg::from_ft_circuit(&ft));
        for i in 0..4 {
            assert_eq!(from_circuit.degree(q(i)), from_qodg.degree(q(i)));
            assert_eq!(from_circuit.strength(q(i)), from_qodg.strength(q(i)));
        }
    }

    #[test]
    fn strength_ordering() {
        let iig = Iig::from_ft_circuit(&sample());
        let order = iig.qubits_by_strength();
        assert_eq!(order[0], q(1)); // strength 3
        assert_eq!(*order.last().unwrap(), q(3)); // strength 0
    }

    #[test]
    fn neighbors_iteration() {
        let iig = Iig::from_ft_circuit(&sample());
        let mut n: Vec<(QubitId, u64)> = iig.neighbors(q(1)).collect();
        n.sort();
        assert_eq!(n, vec![(q(0), 2), (q(2), 1)]);
    }
}
