//! The interaction intensity graph (IIG, §3.1).
//!
//! Nodes are logical qubits; an undirected edge `e_ij` with weight `w(e_ij)`
//! counts the two-qubit operations between qubits `i` and `j`. No self-loops
//! exist because one-qubit operations add no edges. The quantities LEQA
//! reads off the IIG are `M_i = deg(n_i)` (the neighbour count) and
//! `Σ_j w(e_ij)` (the interaction *strength*, the weight used in the
//! weighted averages of Eqs. 7 and 12).
//!
//! # Representation
//!
//! The graph is stored in compressed sparse row (CSR) form: one flat arena
//! of `(neighbour, weight)` entries sorted within each qubit's run, plus an
//! offset table — no per-qubit hash maps. Construction sorts and
//! run-length-encodes the CNOT pair stream, so building from a circuit of
//! `g` two-qubit ops costs `O(g log g)` with zero per-node allocation, and
//! `degree`/`strength` are O(1) lookups (strengths are precomputed).

use crate::{FtCircuit, FtOp, Qodg, QubitId};

/// The interaction intensity graph of a circuit, in CSR form.
///
/// # Examples
///
/// ```
/// use leqa_circuit::{FtCircuit, Iig, QubitId};
///
/// # fn main() -> Result<(), leqa_circuit::CircuitError> {
/// let mut ft = FtCircuit::new(3);
/// ft.push_cnot(QubitId(0), QubitId(1))?;
/// ft.push_cnot(QubitId(0), QubitId(1))?;
/// ft.push_cnot(QubitId(1), QubitId(2))?;
///
/// let iig = Iig::from_ft_circuit(&ft);
/// assert_eq!(iig.degree(QubitId(1)), 2);       // neighbours: q0, q2
/// assert_eq!(iig.strength(QubitId(1)), 3);     // 2 + 1 interactions
/// assert_eq!(iig.weight(QubitId(0), QubitId(1)), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Iig {
    num_qubits: u32,
    /// `offsets[i]..offsets[i+1]` is qubit `i`'s run in the arenas below.
    offsets: Vec<u32>,
    /// Neighbour ids, sorted ascending within each run.
    neighbors: Vec<QubitId>,
    /// Edge weights, parallel to `neighbors`.
    weights: Vec<u64>,
    /// Precomputed `Σ_j w(e_ij)` per qubit.
    strengths: Vec<u64>,
    total_weight: u64,
}

impl Iig {
    /// Builds the IIG by a single traversal of the lowered circuit.
    pub fn from_ft_circuit(circuit: &FtCircuit) -> Self {
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for op in circuit.ops() {
            if let FtOp::Cnot { control, target } = *op {
                pairs.push(normalize(control, target));
            }
        }
        Iig::from_pairs(circuit.num_qubits(), pairs)
    }

    /// Builds the IIG by traversing a QODG (Algorithm 1, line 1:
    /// `O(|V| + |E|)` plus the pair sort).
    pub fn from_qodg(qodg: &Qodg) -> Self {
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for (_, op) in qodg.op_nodes() {
            if let FtOp::Cnot { control, target } = op {
                pairs.push(normalize(control, target));
            }
        }
        Iig::from_pairs(qodg.num_qubits(), pairs)
    }

    /// Builds the CSR arenas from the raw interaction pair stream by
    /// sort + run-length dedup (two passes over the sorted pairs, no
    /// per-node allocation).
    fn from_pairs(num_qubits: u32, mut pairs: Vec<(u32, u32)>) -> Self {
        pairs.sort_unstable();
        let mut edges: Vec<(u32, u32, u64)> = Vec::new();
        let mut i = 0;
        while i < pairs.len() {
            let (a, b) = pairs[i];
            let start = i;
            while i < pairs.len() && pairs[i] == (a, b) {
                i += 1;
            }
            edges.push((a, b, (i - start) as u64));
        }
        Iig::from_sorted_edges(num_qubits, edges)
    }

    /// Rebuilds an IIG from its unique weighted edge list — the inverse
    /// of iterating [`neighbors`](Self::neighbors) and keeping each edge
    /// once. Edges may arrive in any order and with either endpoint
    /// first; duplicates merge by summing weights. Zero-weight entries
    /// and self-loops are rejected, as are endpoints outside
    /// `0..num_qubits`.
    ///
    /// The result is *bit-identical* to the IIG the original circuit
    /// built (same CSR layout, same totals) — the property the snapshot
    /// store in `leqa-api` relies on to round-trip cached profiles.
    ///
    /// # Errors
    ///
    /// [`CircuitError::QubitOutOfRange`](crate::CircuitError::QubitOutOfRange)
    /// when an endpoint is out of range,
    /// [`CircuitError::DuplicateOperand`](crate::CircuitError::DuplicateOperand)
    /// for a self-loop edge. Zero-weight entries are dropped silently
    /// (they carry no information).
    pub fn from_weighted_edges(
        num_qubits: u32,
        edges: impl IntoIterator<Item = (u32, u32, u64)>,
    ) -> Result<Self, crate::CircuitError> {
        let mut normalized: Vec<(u32, u32, u64)> = Vec::new();
        for (a, b, w) in edges {
            if a >= num_qubits || b >= num_qubits {
                return Err(crate::CircuitError::QubitOutOfRange {
                    qubit: QubitId(a.max(b)),
                    num_qubits,
                });
            }
            if a == b {
                return Err(crate::CircuitError::DuplicateOperand { qubit: QubitId(a) });
            }
            if w == 0 {
                continue;
            }
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            normalized.push((lo, hi, w));
        }
        normalized.sort_unstable();
        // Merge duplicate (lo, hi) entries by summing weights.
        let mut merged: Vec<(u32, u32, u64)> = Vec::with_capacity(normalized.len());
        for (a, b, w) in normalized {
            match merged.last_mut() {
                Some((la, lb, lw)) if *la == a && *lb == b => *lw += w,
                _ => merged.push((a, b, w)),
            }
        }
        Ok(Iig::from_sorted_edges(num_qubits, merged))
    }

    /// The shared CSR builder: `edges` holds the unique weighted edges,
    /// sorted by `(lo, hi)` with `lo < hi`.
    fn from_sorted_edges(num_qubits: u32, edges: Vec<(u32, u32, u64)>) -> Self {
        let total_weight = edges.iter().map(|&(_, _, w)| w).sum();

        // Pass 1: per-qubit degrees.
        let mut degrees = vec![0u32; num_qubits as usize];
        for &(a, b, _) in &edges {
            degrees[a as usize] += 1;
            degrees[b as usize] += 1;
        }

        // Prefix-sum the offsets; keep per-qubit write cursors.
        let mut offsets = Vec::with_capacity(num_qubits as usize + 1);
        let mut running = 0u32;
        offsets.push(0);
        for &d in &degrees {
            running += d;
            offsets.push(running);
        }
        debug_assert_eq!(running as usize, 2 * edges.len());

        // Pass 2: fill both directed half-edges. Edges are sorted by
        // (lo, hi), so each endpoint's run comes out sorted by neighbour:
        // the `lo` side sees increasing `hi`, and for a fixed `hi` the `lo`
        // values arrive in increasing order too.
        let mut cursors: Vec<u32> = offsets[..num_qubits as usize].to_vec();
        let mut neighbors = vec![QubitId(0); running as usize];
        let mut weights = vec![0u64; running as usize];
        let mut strengths = vec![0u64; num_qubits as usize];
        for &(a, b, w) in &edges {
            let ca = cursors[a as usize] as usize;
            neighbors[ca] = QubitId(b);
            weights[ca] = w;
            cursors[a as usize] += 1;
            let cb = cursors[b as usize] as usize;
            neighbors[cb] = QubitId(a);
            weights[cb] = w;
            cursors[b as usize] += 1;
            strengths[a as usize] += w;
            strengths[b as usize] += w;
        }

        Iig {
            num_qubits,
            offsets,
            neighbors,
            weights,
            strengths,
            total_weight,
        }
    }

    /// Iterates over every unique edge once as `(lo, hi, weight)` with
    /// `lo < hi`, in ascending `(lo, hi)` order — the exact list
    /// [`from_weighted_edges`](Self::from_weighted_edges) reconstructs
    /// from.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32, u64)> + '_ {
        (0..self.num_qubits).flat_map(move |i| {
            self.neighbors(QubitId(i))
                .filter(move |(n, _)| n.0 > i)
                .map(move |(n, w)| (i, n.0, w))
        })
    }

    /// The bounds of qubit `i`'s run in the arenas.
    #[inline]
    fn run(&self, qubit: QubitId) -> (usize, usize) {
        (
            self.offsets[qubit.index()] as usize,
            self.offsets[qubit.index() + 1] as usize,
        )
    }

    /// Number of qubits (nodes), `Q`.
    #[inline]
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// `M_i`: the number of distinct interaction partners of qubit `i`.
    #[inline]
    pub fn degree(&self, qubit: QubitId) -> u64 {
        let (lo, hi) = self.run(qubit);
        (hi - lo) as u64
    }

    /// `Σ_j w(e_ij)`: total two-qubit ops involving qubit `i` (O(1),
    /// precomputed).
    #[inline]
    pub fn strength(&self, qubit: QubitId) -> u64 {
        self.strengths[qubit.index()]
    }

    /// `w(e_ij)`: two-qubit ops between `a` and `b` (0 if they never
    /// interact; symmetric). Binary search over `a`'s sorted run.
    #[inline]
    pub fn weight(&self, a: QubitId, b: QubitId) -> u64 {
        let (lo, hi) = self.run(a);
        match self.neighbors[lo..hi].binary_search(&b) {
            Ok(pos) => self.weights[lo + pos],
            Err(_) => 0,
        }
    }

    /// Iterates over the neighbours of `qubit` with edge weights, in
    /// ascending neighbour order.
    pub fn neighbors(&self, qubit: QubitId) -> impl Iterator<Item = (QubitId, u64)> + '_ {
        let (lo, hi) = self.run(qubit);
        self.neighbors[lo..hi]
            .iter()
            .zip(&self.weights[lo..hi])
            .map(|(&q, &w)| (q, w))
    }

    /// Total edge weight (= total two-qubit op count of the circuit).
    #[inline]
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// Number of distinct edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Qubit ids sorted by decreasing strength (used by the mapper's
    /// interaction-aware placement).
    pub fn qubits_by_strength(&self) -> Vec<QubitId> {
        let mut ids: Vec<QubitId> = (0..self.num_qubits).map(QubitId).collect();
        ids.sort_by_key(|q| std::cmp::Reverse(self.strength(*q)));
        ids
    }
}

#[inline]
fn normalize(a: QubitId, b: QubitId) -> (u32, u32) {
    debug_assert_ne!(a, b, "no self-loops in the IIG");
    if a.0 <= b.0 {
        (a.0, b.0)
    } else {
        (b.0, a.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leqa_fabric::OneQubitKind;

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    fn sample() -> FtCircuit {
        let mut ft = FtCircuit::new(4);
        ft.push_cnot(q(0), q(1)).unwrap();
        ft.push_cnot(q(1), q(0)).unwrap(); // same pair, reversed roles
        ft.push_cnot(q(1), q(2)).unwrap();
        ft.push_one_qubit(OneQubitKind::H, q(3)).unwrap(); // no edge
        ft
    }

    #[test]
    fn edges_are_undirected_and_weighted() {
        let iig = Iig::from_ft_circuit(&sample());
        assert_eq!(iig.weight(q(0), q(1)), 2);
        assert_eq!(iig.weight(q(1), q(0)), 2);
        assert_eq!(iig.weight(q(1), q(2)), 1);
        assert_eq!(iig.weight(q(0), q(2)), 0);
    }

    #[test]
    fn degrees_and_strengths() {
        let iig = Iig::from_ft_circuit(&sample());
        assert_eq!(iig.degree(q(0)), 1);
        assert_eq!(iig.degree(q(1)), 2);
        assert_eq!(iig.degree(q(3)), 0); // one-qubit ops add no edges
        assert_eq!(iig.strength(q(1)), 3);
        assert_eq!(iig.strength(q(3)), 0);
    }

    #[test]
    fn totals() {
        let iig = Iig::from_ft_circuit(&sample());
        assert_eq!(iig.total_weight(), 3);
        assert_eq!(iig.edge_count(), 2);
        assert_eq!(iig.num_qubits(), 4);
    }

    #[test]
    fn qodg_and_circuit_builders_agree() {
        let ft = sample();
        let from_circuit = Iig::from_ft_circuit(&ft);
        let from_qodg = Iig::from_qodg(&Qodg::from_ft_circuit(&ft));
        for i in 0..4 {
            assert_eq!(from_circuit.degree(q(i)), from_qodg.degree(q(i)));
            assert_eq!(from_circuit.strength(q(i)), from_qodg.strength(q(i)));
        }
    }

    #[test]
    fn strength_ordering() {
        let iig = Iig::from_ft_circuit(&sample());
        let order = iig.qubits_by_strength();
        assert_eq!(order[0], q(1)); // strength 3
        assert_eq!(*order.last().unwrap(), q(3)); // strength 0
    }

    #[test]
    fn neighbors_iteration() {
        let iig = Iig::from_ft_circuit(&sample());
        let n: Vec<(QubitId, u64)> = iig.neighbors(q(1)).collect();
        // CSR runs are sorted by neighbour id already.
        assert_eq!(n, vec![(q(0), 2), (q(2), 1)]);
    }

    #[test]
    fn neighbors_runs_are_sorted() {
        // A denser pattern exercising both fill directions of pass 2.
        let mut ft = FtCircuit::new(6);
        for (a, b) in [(4, 1), (0, 5), (2, 5), (1, 3), (5, 1), (0, 2), (3, 0)] {
            ft.push_cnot(q(a), q(b)).unwrap();
        }
        let iig = Iig::from_ft_circuit(&ft);
        for i in 0..6 {
            let ids: Vec<u32> = iig.neighbors(q(i)).map(|(n, _)| n.0).collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            assert_eq!(ids, sorted, "run of q{i} must be sorted");
        }
    }

    #[test]
    fn weighted_edges_round_trip_bit_identically() {
        let mut ft = FtCircuit::new(6);
        for (a, b) in [
            (4, 1),
            (0, 5),
            (2, 5),
            (1, 3),
            (5, 1),
            (0, 2),
            (3, 0),
            (1, 4),
        ] {
            ft.push_cnot(q(a), q(b)).unwrap();
        }
        let original = Iig::from_ft_circuit(&ft);
        let edges: Vec<(u32, u32, u64)> = original.edges().collect();
        let rebuilt = Iig::from_weighted_edges(original.num_qubits(), edges.clone()).unwrap();
        assert_eq!(rebuilt.num_qubits(), original.num_qubits());
        assert_eq!(rebuilt.total_weight(), original.total_weight());
        assert_eq!(rebuilt.edge_count(), original.edge_count());
        for i in 0..6 {
            let a: Vec<_> = original.neighbors(q(i)).collect();
            let b: Vec<_> = rebuilt.neighbors(q(i)).collect();
            assert_eq!(a, b, "run of q{i} must match");
            assert_eq!(original.strength(q(i)), rebuilt.strength(q(i)));
        }
        assert_eq!(rebuilt.edges().collect::<Vec<_>>(), edges);
    }

    #[test]
    fn weighted_edges_normalize_order_and_merge_duplicates() {
        // Reversed endpoints and split weights collapse to one edge.
        let iig =
            Iig::from_weighted_edges(3, vec![(1, 0, 2), (0, 1, 1), (2, 1, 1), (0, 2, 0)]).unwrap();
        assert_eq!(iig.weight(q(0), q(1)), 3);
        assert_eq!(iig.weight(q(1), q(2)), 1);
        assert_eq!(iig.weight(q(0), q(2)), 0, "zero-weight entry dropped");
        assert_eq!(iig.total_weight(), 4);
    }

    #[test]
    fn weighted_edges_reject_bad_endpoints() {
        assert!(matches!(
            Iig::from_weighted_edges(2, vec![(0, 2, 1)]),
            Err(crate::CircuitError::QubitOutOfRange { .. })
        ));
        assert!(matches!(
            Iig::from_weighted_edges(2, vec![(1, 1, 1)]),
            Err(crate::CircuitError::DuplicateOperand { .. })
        ));
    }

    #[test]
    fn empty_circuit_has_empty_graph() {
        let iig = Iig::from_ft_circuit(&FtCircuit::new(3));
        assert_eq!(iig.total_weight(), 0);
        assert_eq!(iig.edge_count(), 0);
        for i in 0..3 {
            assert_eq!(iig.degree(q(i)), 0);
            assert_eq!(iig.strength(q(i)), 0);
            assert_eq!(iig.neighbors(q(i)).count(), 0);
        }
    }
}
