//! The paper's decomposition pipeline (§4.1):
//!
//! 1. `n`-input Toffoli and Fredkin gates (`n > 3`) are decomposed to
//!    3-input gates by the simple Nielsen–Chuang construction, **adding
//!    ancillary qubits with no ancilla sharing** between decomposed gates;
//! 2. each 3-input Fredkin is replaced by **three 3-input Toffoli gates**;
//! 3. each 3-input Toffoli is decomposed to the fault-tolerant set
//!    `{H, T, T†, CNOT}` by the Shende–Markov network (Fig. 2a): 15 gates —
//!    2 H, 4 T, 3 T†, 6 CNOT.
//!
//! The result is an [`FtCircuit`] whose op count is the paper's
//! "operation count" and whose width (`Q`) includes the added ancillas.

use std::collections::VecDeque;

use leqa_fabric::OneQubitKind;

use crate::{Circuit, CircuitError, FtCircuit, FtOp, Gate, QubitId};

/// Number of FT ops a single 3-input Toffoli lowers to.
pub const FT_OPS_PER_TOFFOLI: usize = 15;

/// Lowers a reversible circuit to fault-tolerant operations, allocating
/// ancillas as needed (no sharing).
///
/// # Errors
///
/// Returns [`CircuitError::TooManyQubits`] if ancilla allocation overflows
/// the qubit index space. Gate-level validation errors cannot occur for
/// gates that entered the circuit through [`Circuit::push`].
///
/// # Examples
///
/// ```
/// use leqa_circuit::{Circuit, Gate, QubitId};
/// use leqa_circuit::decompose::{lower_to_ft, FT_OPS_PER_TOFFOLI};
///
/// # fn main() -> Result<(), leqa_circuit::CircuitError> {
/// let mut c = Circuit::new(3);
/// c.push(Gate::toffoli(QubitId(0), QubitId(1), QubitId(2))?)?;
/// let ft = lower_to_ft(&c)?;
/// assert_eq!(ft.ops().len(), FT_OPS_PER_TOFFOLI);
/// # Ok(())
/// # }
/// ```
pub fn lower_to_ft(circuit: &Circuit) -> Result<FtCircuit, CircuitError> {
    // Pass 1: reduce everything to {one-qubit, CNOT, 3-input Toffoli},
    // allocating fresh ancillas per multi-controlled gate.
    let mut next_qubit = circuit.num_qubits();
    let mut simple: Vec<SimpleGate> = Vec::with_capacity(circuit.gates().len() * 2);
    for gate in circuit.gates() {
        expand_gate(gate, &mut next_qubit, &mut simple)?;
    }

    // Pass 2: lower 3-input Toffolis to the FT set.
    let mut ft = FtCircuit::new(next_qubit);
    if let Some(name) = circuit.name() {
        ft.set_name(name);
    }
    for g in simple {
        match g {
            SimpleGate::One(kind, q) => ft.push_one_qubit(kind, q)?,
            SimpleGate::Cnot(c, t) => ft.push_cnot(c, t)?,
            SimpleGate::Toffoli(a, b, t) => emit_toffoli_ft(&mut ft, a, b, t)?,
        }
    }
    Ok(ft)
}

/// Runs only the first lowering pass: multi-controlled gates become
/// 3-input Toffolis (via ancilla ladders) and Fredkins become Toffoli
/// triples, but Toffolis are **not** expanded to the FT gate set.
///
/// The output circuit computes the same Boolean function as the input on
/// its original wires (ancillas start and end at 0) — a property the test
/// suite verifies exhaustively on small circuits via [`classical`].
///
/// # Errors
///
/// Returns [`CircuitError::TooManyQubits`] on ancilla index overflow.
///
/// [`classical`]: crate::classical
pub fn to_toffoli_circuit(circuit: &Circuit) -> Result<Circuit, CircuitError> {
    let mut next_qubit = circuit.num_qubits();
    let mut simple: Vec<SimpleGate> = Vec::with_capacity(circuit.gates().len() * 2);
    for gate in circuit.gates() {
        expand_gate(gate, &mut next_qubit, &mut simple)?;
    }
    let mut out = Circuit::new(next_qubit);
    if let Some(name) = circuit.name() {
        out.set_name(name);
    }
    for g in simple {
        let gate = match g {
            SimpleGate::One(kind, q) => Gate::one_qubit(kind, q),
            SimpleGate::Cnot(c, t) => Gate::cnot(c, t)?,
            SimpleGate::Toffoli(a, b, t) => Gate::toffoli(a, b, t)?,
        };
        out.push(gate)?;
    }
    Ok(out)
}

/// Intermediate gate alphabet between the two lowering passes.
#[derive(Debug, Clone, Copy)]
enum SimpleGate {
    One(OneQubitKind, QubitId),
    Cnot(QubitId, QubitId),
    Toffoli(QubitId, QubitId, QubitId),
}

fn allocate(next_qubit: &mut u32) -> Result<QubitId, CircuitError> {
    let id = QubitId(*next_qubit);
    *next_qubit = next_qubit
        .checked_add(1)
        .ok_or(CircuitError::TooManyQubits)?;
    Ok(id)
}

fn expand_gate(
    gate: &Gate,
    next_qubit: &mut u32,
    out: &mut Vec<SimpleGate>,
) -> Result<(), CircuitError> {
    match gate {
        Gate::OneQubit { kind, target } => out.push(SimpleGate::One(*kind, *target)),
        Gate::Cnot { control, target } => out.push(SimpleGate::Cnot(*control, *target)),
        Gate::Toffoli { c1, c2, target } => out.push(SimpleGate::Toffoli(*c1, *c2, *target)),
        Gate::Fredkin { control, a, b } => expand_fredkin(*control, *a, *b, out),
        Gate::Mct { controls, target } => {
            let top = reduce_controls(controls, next_qubit, out)?;
            out.push(SimpleGate::Toffoli(top.0, top.1, *target));
            uncompute_controls(controls, top.2, out);
        }
        Gate::Mcf { controls, a, b } => {
            let top = reduce_controls(controls, next_qubit, out)?;
            // A Fredkin whose control is the AND of all controls: realize the
            // AND on one more ancilla, apply a plain Fredkin, uncompute.
            let and_all = allocate(next_qubit)?;
            out.push(SimpleGate::Toffoli(top.0, top.1, and_all));
            expand_fredkin(and_all, *a, *b, out);
            out.push(SimpleGate::Toffoli(top.0, top.1, and_all));
            uncompute_controls(controls, top.2, out);
        }
    }
    Ok(())
}

/// Fredkin → three Toffolis (§4.1): controlled-swap as a conjugated
/// controlled-NOT sandwich where every layer is a Toffoli.
fn expand_fredkin(control: QubitId, a: QubitId, b: QubitId, out: &mut Vec<SimpleGate>) {
    out.push(SimpleGate::Toffoli(control, a, b));
    out.push(SimpleGate::Toffoli(control, b, a));
    out.push(SimpleGate::Toffoli(control, a, b));
}

/// Nielsen–Chuang ladder: ANDs `k ≥ 3` controls pairwise into fresh
/// ancillas so that the caller can apply a 3-input gate controlled by the
/// final pair. Returns the final control pair and the list of computed
/// ancilla Toffolis for uncomputation.
///
/// For `k` controls this emits `k − 2` Toffolis and allocates `k − 2`
/// ancillas; with the mirrored uncomputation the full `k`-controlled NOT
/// costs `2(k − 2) + 1 = 2k − 3` Toffolis, the textbook figure.
fn reduce_controls(
    controls: &[QubitId],
    next_qubit: &mut u32,
    out: &mut Vec<SimpleGate>,
) -> Result<(QubitId, QubitId, Vec<SimpleGate>), CircuitError> {
    debug_assert!(controls.len() >= 2, "callers pass at least a control pair");
    if controls.len() == 2 {
        // Already a pair: no ladder needed (the 2-control MCF case).
        return Ok((controls[0], controls[1], Vec::new()));
    }
    let mut computed: Vec<SimpleGate> = Vec::with_capacity(controls.len() - 2);
    let mut carry = controls[0];
    for &c in &controls[1..controls.len() - 1] {
        let anc = allocate(next_qubit)?;
        let tof = SimpleGate::Toffoli(carry, c, anc);
        out.push(tof);
        computed.push(tof);
        carry = anc;
    }
    Ok((carry, *controls.last().expect("≥3 controls"), computed))
}

/// Mirrors the compute ladder to restore the ancillas.
fn uncompute_controls(_controls: &[QubitId], computed: Vec<SimpleGate>, out: &mut Vec<SimpleGate>) {
    for tof in computed.into_iter().rev() {
        out.push(tof);
    }
}

/// The Shende–Markov 15-gate Toffoli network over `{H, T, T†, CNOT}`
/// (Fig. 2a of the paper; \[21\]), as a fixed op array shared by the
/// materialized and streaming lowerings.
fn toffoli_ft_ops(a: QubitId, b: QubitId, t: QubitId) -> [FtOp; FT_OPS_PER_TOFFOLI] {
    use OneQubitKind::{Tdg, H, T};
    let one = |kind, target| FtOp::OneQubit { kind, target };
    let cnot = |control, target| FtOp::Cnot { control, target };
    [
        one(H, t),
        cnot(b, t),
        one(Tdg, t),
        cnot(a, t),
        one(T, t),
        cnot(b, t),
        one(Tdg, t),
        cnot(a, t),
        one(T, b),
        one(T, t),
        one(H, t),
        cnot(a, b),
        one(T, a),
        one(Tdg, b),
        cnot(a, b),
    ]
}

fn emit_toffoli_ft(
    ft: &mut FtCircuit,
    a: QubitId,
    b: QubitId,
    t: QubitId,
) -> Result<(), CircuitError> {
    for op in toffoli_ft_ops(a, b, t) {
        ft.push(op)?;
    }
    Ok(())
}

/// A single-pass streaming lowering: yields exactly the [`FtOp`] sequence
/// [`lower_to_ft`] would materialize (same op order, same ancilla
/// numbering), holding only a bounded per-gate buffer in memory.
///
/// Ancillas are allocated in program order exactly as the two-pass
/// materialized lowering does, so the two paths are bit-identical — a
/// property pinned by this crate's differential tests. Gates are trusted
/// to be well-formed (operands distinct and on-circuit), the invariant
/// every gate admitted through [`Circuit::push`] already satisfies; only
/// ancilla-index overflow is reported as an error.
///
/// # Examples
///
/// ```
/// use leqa_circuit::{Circuit, Gate, QubitId};
/// use leqa_circuit::decompose::{lower_to_ft, LoweredGates};
///
/// # fn main() -> Result<(), leqa_circuit::CircuitError> {
/// let mut c = Circuit::new(3);
/// c.push(Gate::toffoli(QubitId(0), QubitId(1), QubitId(2))?)?;
/// let streamed: Vec<_> = LoweredGates::new(c.num_qubits(), c.gates().iter().cloned())
///     .collect::<Result<_, _>>()?;
/// assert_eq!(streamed, lower_to_ft(&c)?.ops());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct LoweredGates<I> {
    gates: I,
    next_qubit: u32,
    /// FT ops expanded from the current gate, drained before the next
    /// gate is pulled. Bounded by the largest single-gate expansion.
    buf: VecDeque<FtOp>,
    /// Scratch for the first lowering pass, reused across gates.
    simple: Vec<SimpleGate>,
    failed: bool,
}

impl<I: Iterator<Item = Gate>> LoweredGates<I> {
    /// Starts a streaming lowering of `gates` over `num_qubits` original
    /// wires; ancillas are numbered from `num_qubits` upward.
    pub fn new(num_qubits: u32, gates: impl IntoIterator<Item = Gate, IntoIter = I>) -> Self {
        LoweredGates {
            gates: gates.into_iter(),
            next_qubit: num_qubits,
            buf: VecDeque::new(),
            simple: Vec::new(),
            failed: false,
        }
    }

    /// The wire count so far: original wires plus every ancilla allocated
    /// by the gates consumed up to this point. After the iterator is
    /// drained this equals the lowered circuit's qubit count.
    pub fn qubits_so_far(&self) -> u32 {
        self.next_qubit
    }
}

impl<I: Iterator<Item = Gate>> Iterator for LoweredGates<I> {
    type Item = Result<FtOp, CircuitError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(op) = self.buf.pop_front() {
                return Some(Ok(op));
            }
            if self.failed {
                return None;
            }
            let gate = self.gates.next()?;
            self.simple.clear();
            if let Err(e) = expand_gate(&gate, &mut self.next_qubit, &mut self.simple) {
                self.failed = true;
                return Some(Err(e));
            }
            for g in self.simple.drain(..) {
                match g {
                    SimpleGate::One(kind, target) => {
                        self.buf.push_back(FtOp::OneQubit { kind, target })
                    }
                    SimpleGate::Cnot(control, target) => {
                        self.buf.push_back(FtOp::Cnot { control, target })
                    }
                    SimpleGate::Toffoli(a, b, t) => self.buf.extend(toffoli_ft_ops(a, b, t)),
                }
            }
        }
    }
}

/// Counts the FT ops a reversible circuit will lower to, without building
/// the lowered circuit (used by workload generators to hit target op
/// counts cheaply).
pub fn lowered_op_count(circuit: &Circuit) -> u64 {
    circuit
        .gates()
        .iter()
        .map(|g| match g {
            Gate::OneQubit { .. } => 1,
            Gate::Cnot { .. } => 1,
            Gate::Toffoli { .. } => FT_OPS_PER_TOFFOLI as u64,
            Gate::Fredkin { .. } => 3 * FT_OPS_PER_TOFFOLI as u64,
            Gate::Mct { controls, .. } => {
                let k = controls.len() as u64;
                (2 * k - 3) * FT_OPS_PER_TOFFOLI as u64
            }
            Gate::Mcf { controls, .. } => {
                let k = controls.len() as u64;
                // compute ladder + AND + Fredkin(3 Toffolis) + AND + ladder
                (2 * (k - 2) + 2 + 3) * FT_OPS_PER_TOFFOLI as u64
            }
        })
        .sum()
}

/// Counts the ancilla qubits lowering will add.
pub fn lowered_ancilla_count(circuit: &Circuit) -> u64 {
    circuit
        .gates()
        .iter()
        .map(|g| match g {
            Gate::Mct { controls, .. } => controls.len() as u64 - 2,
            Gate::Mcf { controls, .. } => controls.len() as u64 - 1,
            _ => 0,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FtOp;

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    #[test]
    fn toffoli_lowers_to_fig2_multiset() {
        let mut c = Circuit::new(3);
        c.push(Gate::toffoli(q(0), q(1), q(2)).unwrap()).unwrap();
        let ft = lower_to_ft(&c).unwrap();
        assert_eq!(ft.ops().len(), 15);
        assert_eq!(ft.cnot_count(), 6);
        let counts = ft.one_qubit_counts();
        assert_eq!(counts[OneQubitKind::H.index()], 2);
        assert_eq!(counts[OneQubitKind::T.index()], 4);
        assert_eq!(counts[OneQubitKind::Tdg.index()], 3);
        assert_eq!(ft.num_qubits(), 3); // no ancillas
    }

    #[test]
    fn fredkin_is_three_toffolis() {
        let mut c = Circuit::new(3);
        c.push(Gate::fredkin(q(0), q(1), q(2)).unwrap()).unwrap();
        let ft = lower_to_ft(&c).unwrap();
        assert_eq!(ft.ops().len(), 3 * 15);
        assert_eq!(ft.num_qubits(), 3);
    }

    #[test]
    fn mct_ancilla_and_toffoli_counts() {
        // 5 controls: 2k-3 = 7 Toffolis, k-2 = 3 ancillas.
        let controls: Vec<QubitId> = (0..5).map(q).collect();
        let mut c = Circuit::new(6);
        c.push(Gate::mct(controls, q(5)).unwrap()).unwrap();
        let ft = lower_to_ft(&c).unwrap();
        assert_eq!(ft.ops().len(), 7 * 15);
        assert_eq!(ft.num_qubits(), 6 + 3);
    }

    #[test]
    fn no_ancilla_sharing_between_gates() {
        let mut c = Circuit::new(5);
        let controls: Vec<QubitId> = (0..4).map(q).collect();
        c.push(Gate::mct(controls.clone(), q(4)).unwrap()).unwrap();
        c.push(Gate::mct(controls, q(4)).unwrap()).unwrap();
        let ft = lower_to_ft(&c).unwrap();
        // Each 4-control MCT adds 2 ancillas; the paper's flow does not share.
        assert_eq!(ft.num_qubits(), 5 + 2 + 2);
    }

    #[test]
    fn mcf_expands_and_restores_ancillas() {
        let controls: Vec<QubitId> = (0..3).map(q).collect();
        let mut c = Circuit::new(5);
        c.push(Gate::mcf(controls, q(3), q(4)).unwrap()).unwrap();
        let ft = lower_to_ft(&c).unwrap();
        // ladder (1 Toffoli) + and (1) + fredkin (3) + and (1) + ladder (1) = 7
        assert_eq!(ft.ops().len(), 7 * 15);
        // k-2 = 1 ladder ancilla + 1 AND ancilla
        assert_eq!(ft.num_qubits(), 5 + 2);
    }

    #[test]
    fn predicted_counts_match_lowering() {
        let mut c = Circuit::new(8);
        c.push(Gate::not(q(0))).unwrap();
        c.push(Gate::cnot(q(0), q(1)).unwrap()).unwrap();
        c.push(Gate::toffoli(q(0), q(1), q(2)).unwrap()).unwrap();
        c.push(Gate::fredkin(q(3), q(4), q(5)).unwrap()).unwrap();
        c.push(Gate::mct((0..5).map(q).collect(), q(5)).unwrap())
            .unwrap();
        c.push(Gate::mcf((0..3).map(q).collect(), q(6), q(7)).unwrap())
            .unwrap();
        let ft = lower_to_ft(&c).unwrap();
        assert_eq!(ft.ops().len() as u64, lowered_op_count(&c));
        assert_eq!(
            ft.num_qubits() as u64,
            c.num_qubits() as u64 + lowered_ancilla_count(&c)
        );
    }

    #[test]
    fn one_qubit_gates_pass_through() {
        let mut c = Circuit::new(1);
        c.push(Gate::one_qubit(OneQubitKind::H, q(0))).unwrap();
        c.push(Gate::one_qubit(OneQubitKind::Sdg, q(0))).unwrap();
        let ft = lower_to_ft(&c).unwrap();
        assert_eq!(
            ft.ops(),
            &[
                FtOp::OneQubit {
                    kind: OneQubitKind::H,
                    target: q(0)
                },
                FtOp::OneQubit {
                    kind: OneQubitKind::Sdg,
                    target: q(0)
                },
            ]
        );
    }

    /// A circuit hitting every expansion arm (one-qubit, CNOT, Toffoli,
    /// Fredkin, MCT ladder, MCF), so the streaming/materialized
    /// differential covers all ancilla-allocation paths.
    fn every_arm() -> Circuit {
        let mut c = Circuit::new(8);
        c.push(Gate::not(q(0))).unwrap();
        c.push(Gate::cnot(q(0), q(1)).unwrap()).unwrap();
        c.push(Gate::toffoli(q(0), q(1), q(2)).unwrap()).unwrap();
        c.push(Gate::fredkin(q(3), q(4), q(5)).unwrap()).unwrap();
        c.push(Gate::mct((0..5).map(q).collect(), q(5)).unwrap())
            .unwrap();
        c.push(Gate::mcf((0..3).map(q).collect(), q(6), q(7)).unwrap())
            .unwrap();
        c.push(Gate::mct((0..4).map(q).collect(), q(4)).unwrap())
            .unwrap();
        c
    }

    #[test]
    fn streaming_lowering_is_bit_identical_to_materialized() {
        let c = every_arm();
        let ft = lower_to_ft(&c).unwrap();
        let mut stream = LoweredGates::new(c.num_qubits(), c.gates().iter().cloned());
        let ops: Vec<FtOp> = (&mut stream).collect::<Result<_, _>>().unwrap();
        assert_eq!(ops, ft.ops());
        assert_eq!(stream.qubits_so_far(), ft.num_qubits());
    }

    #[test]
    fn streaming_lowering_tracks_ancillas_incrementally() {
        let mut c = Circuit::new(5);
        c.push(Gate::mct((0..4).map(q).collect(), q(4)).unwrap())
            .unwrap();
        let mut stream = LoweredGates::new(c.num_qubits(), c.gates().iter().cloned());
        assert_eq!(stream.qubits_so_far(), 5);
        assert!(stream.next().is_some());
        // Pulling the first op expanded the whole gate: both ladder
        // ancillas are now allocated.
        assert_eq!(stream.qubits_so_far(), 7);
    }

    #[test]
    fn gate_order_is_preserved() {
        let mut c = Circuit::new(3);
        c.push(Gate::cnot(q(0), q(1)).unwrap()).unwrap();
        c.push(Gate::toffoli(q(0), q(1), q(2)).unwrap()).unwrap();
        c.push(Gate::cnot(q(1), q(2)).unwrap()).unwrap();
        let ft = lower_to_ft(&c).unwrap();
        assert_eq!(
            ft.ops()[0],
            FtOp::Cnot {
                control: q(0),
                target: q(1)
            }
        );
        assert_eq!(
            *ft.ops().last().unwrap(),
            FtOp::Cnot {
                control: q(1),
                target: q(2)
            }
        );
        assert_eq!(ft.ops().len(), 17);
    }
}
