//! Classical (basis-state) simulation of reversible circuits.
//!
//! Reversible-logic gates — NOT, CNOT, Toffoli, Fredkin and their
//! multi-controlled forms — permute computational basis states, so a
//! circuit built from them can be executed on a plain bit vector. This
//! is how the test suite proves the decomposition passes preserve
//! semantics: [`to_toffoli_circuit`](crate::decompose::to_toffoli_circuit)
//! must compute the same function as its input on every basis state, with
//! ancillas returned to 0.
//!
//! Non-classical one-qubit gates (H, T, S and their inverses) have no
//! basis-state action and are rejected.

use leqa_fabric::OneQubitKind;

use crate::{Circuit, Gate};

/// Error returned when a circuit contains a gate with no classical
/// (basis-state) semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotClassicalError {
    /// The offending gate kind.
    pub kind: OneQubitKind,
}

impl std::fmt::Display for NotClassicalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gate `{}` has no classical basis-state action",
            self.kind
        )
    }
}

impl std::error::Error for NotClassicalError {}

/// Applies a reversible circuit to a basis state given as a bit vector
/// (indexed by wire), returning the output state.
///
/// Wires beyond `bits.len()` (e.g. ancillas added by decomposition) are
/// treated as initialized to 0 and included in the returned vector.
///
/// # Errors
///
/// Returns [`NotClassicalError`] if the circuit contains H/T/T†/S/S†
/// (Y and Z act as X-up-to-phase and identity on basis states: Y flips
/// the bit, Z leaves it).
///
/// # Examples
///
/// ```
/// use leqa_circuit::{classical, Circuit, Gate, QubitId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut c = Circuit::new(3);
/// c.push(Gate::toffoli(QubitId(0), QubitId(1), QubitId(2))?)?;
/// // |110⟩ → |111⟩
/// let out = classical::apply(&c, &[true, true, false])?;
/// assert_eq!(out, vec![true, true, true]);
/// # Ok(())
/// # }
/// ```
pub fn apply(circuit: &Circuit, bits: &[bool]) -> Result<Vec<bool>, NotClassicalError> {
    let mut state = vec![false; circuit.num_qubits() as usize];
    let shared = bits.len().min(state.len());
    state[..shared].copy_from_slice(&bits[..shared]);

    for gate in circuit.gates() {
        match gate {
            Gate::OneQubit { kind, target } => match kind {
                OneQubitKind::X | OneQubitKind::Y => {
                    state[target.index()] = !state[target.index()];
                }
                OneQubitKind::Z => {}
                other => return Err(NotClassicalError { kind: *other }),
            },
            Gate::Cnot { control, target } => {
                if state[control.index()] {
                    state[target.index()] = !state[target.index()];
                }
            }
            Gate::Toffoli { c1, c2, target } => {
                if state[c1.index()] && state[c2.index()] {
                    state[target.index()] = !state[target.index()];
                }
            }
            Gate::Fredkin { control, a, b } => {
                if state[control.index()] {
                    state.swap(a.index(), b.index());
                }
            }
            Gate::Mct { controls, target } => {
                if controls.iter().all(|c| state[c.index()]) {
                    state[target.index()] = !state[target.index()];
                }
            }
            Gate::Mcf { controls, a, b } => {
                if controls.iter().all(|c| state[c.index()]) {
                    state.swap(a.index(), b.index());
                }
            }
        }
    }
    Ok(state)
}

/// Convenience: applies the circuit to the basis state encoded by the low
/// bits of `input` (wire 0 = bit 0) and re-encodes the first
/// `circuit.num_qubits()` output wires the same way.
///
/// # Errors
///
/// Same as [`apply`].
///
/// # Panics
///
/// Panics if the circuit has more than 64 wires.
pub fn apply_u64(circuit: &Circuit, input: u64) -> Result<u64, NotClassicalError> {
    assert!(circuit.num_qubits() <= 64, "u64 encoding caps at 64 wires");
    let bits: Vec<bool> = (0..circuit.num_qubits())
        .map(|i| input >> i & 1 == 1)
        .collect();
    let out = apply(circuit, &bits)?;
    Ok(out
        .iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QubitId;

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    #[test]
    fn cnot_truth_table() {
        let mut c = Circuit::new(2);
        c.push(Gate::cnot(q(0), q(1)).unwrap()).unwrap();
        for (input, expected) in [(0b00u64, 0b00u64), (0b01, 0b11), (0b10, 0b10), (0b11, 0b01)] {
            assert_eq!(apply_u64(&c, input).unwrap(), expected, "input {input:02b}");
        }
    }

    #[test]
    fn fredkin_swaps_under_control() {
        let mut c = Circuit::new(3);
        c.push(Gate::fredkin(q(0), q(1), q(2)).unwrap()).unwrap();
        // control off: identity
        assert_eq!(apply_u64(&c, 0b010).unwrap(), 0b010);
        // control on: swap wires 1 and 2
        assert_eq!(apply_u64(&c, 0b011).unwrap(), 0b101);
    }

    #[test]
    fn mct_requires_all_controls() {
        let mut c = Circuit::new(4);
        c.push(Gate::mct((0..3).map(q).collect(), q(3)).unwrap())
            .unwrap();
        assert_eq!(apply_u64(&c, 0b0111).unwrap(), 0b1111);
        assert_eq!(apply_u64(&c, 0b0011).unwrap(), 0b0011);
    }

    #[test]
    fn non_classical_gates_are_rejected() {
        let mut c = Circuit::new(1);
        c.push(Gate::one_qubit(OneQubitKind::H, q(0))).unwrap();
        assert_eq!(
            apply(&c, &[false]),
            Err(NotClassicalError {
                kind: OneQubitKind::H
            })
        );
    }

    #[test]
    fn y_flips_z_ignores() {
        let mut c = Circuit::new(1);
        c.push(Gate::one_qubit(OneQubitKind::Y, q(0))).unwrap();
        c.push(Gate::one_qubit(OneQubitKind::Z, q(0))).unwrap();
        assert_eq!(apply_u64(&c, 0).unwrap(), 1);
    }

    #[test]
    fn ancilla_wires_start_at_zero() {
        // 3 declared wires, input only specifies 2.
        let mut c = Circuit::new(3);
        c.push(Gate::cnot(q(2), q(0)).unwrap()).unwrap();
        let out = apply(&c, &[true, true]).unwrap();
        assert_eq!(out, vec![true, true, false]); // wire 2 was 0 → no flip
    }
}
