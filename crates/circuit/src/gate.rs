//! Gate types: reversible-level [`Gate`]s and lowered fault-tolerant
//! [`FtOp`]s.

use leqa_fabric::OneQubitKind;

use crate::CircuitError;

/// Identifier of a logical qubit (a wire in the circuit), 0-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct QubitId(pub u32);

impl QubitId {
    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for QubitId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A gate of the synthesized reversible circuit, before FT lowering.
///
/// Reversible logic synthesis emits NOT, CNOT and Toffoli gates (§2, \[8\]);
/// benchmark circuits additionally contain Fredkin (controlled-swap) and
/// multi-controlled variants, which the paper decomposes before mapping
/// (§4.1). One-qubit FT gates are also allowed so that already-lowered
/// circuits (such as Fig. 2's ham3) can be expressed at this level.
///
/// Construct gates through the checked constructors ([`Gate::cnot`],
/// [`Gate::toffoli`], …), which reject duplicate operands.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum Gate {
    /// A one-qubit FT gate applied directly at the reversible level.
    OneQubit {
        /// Which FT operation.
        kind: OneQubitKind,
        /// The wire it acts on.
        target: QubitId,
    },
    /// Controlled NOT.
    Cnot {
        /// Control wire.
        control: QubitId,
        /// Target wire.
        target: QubitId,
    },
    /// 3-input Toffoli (two controls, one target).
    Toffoli {
        /// First control.
        c1: QubitId,
        /// Second control.
        c2: QubitId,
        /// Target wire.
        target: QubitId,
    },
    /// 3-input Fredkin: controlled swap of `a` and `b`.
    Fredkin {
        /// Control wire.
        control: QubitId,
        /// First swapped wire.
        a: QubitId,
        /// Second swapped wire.
        b: QubitId,
    },
    /// Multi-controlled Toffoli (`n`-input Toffoli with `n − 1 ≥ 3`
    /// controls).
    Mct {
        /// Control wires (at least one; 1 and 2 controls are normalized to
        /// [`Gate::Cnot`] / [`Gate::Toffoli`] by [`Gate::mct`]).
        controls: Vec<QubitId>,
        /// Target wire.
        target: QubitId,
    },
    /// Multi-controlled Fredkin (`n`-input Fredkin, controls plus a swapped
    /// pair).
    Mcf {
        /// Control wires (at least two; a single control is normalized to
        /// [`Gate::Fredkin`] by [`Gate::mcf`]).
        controls: Vec<QubitId>,
        /// First swapped wire.
        a: QubitId,
        /// Second swapped wire.
        b: QubitId,
    },
}

fn ensure_distinct(qubits: &[QubitId]) -> Result<(), CircuitError> {
    for (i, &q) in qubits.iter().enumerate() {
        if qubits[i + 1..].contains(&q) {
            return Err(CircuitError::DuplicateOperand { qubit: q });
        }
    }
    Ok(())
}

impl Gate {
    /// A NOT gate (Pauli X).
    pub fn not(target: QubitId) -> Gate {
        Gate::OneQubit {
            kind: OneQubitKind::X,
            target,
        }
    }

    /// A one-qubit FT gate.
    pub fn one_qubit(kind: OneQubitKind, target: QubitId) -> Gate {
        Gate::OneQubit { kind, target }
    }

    /// A CNOT gate.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::DuplicateOperand`] if `control == target`.
    pub fn cnot(control: QubitId, target: QubitId) -> Result<Gate, CircuitError> {
        ensure_distinct(&[control, target])?;
        Ok(Gate::Cnot { control, target })
    }

    /// A 3-input Toffoli gate.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::DuplicateOperand`] if any two operands
    /// coincide.
    pub fn toffoli(c1: QubitId, c2: QubitId, target: QubitId) -> Result<Gate, CircuitError> {
        ensure_distinct(&[c1, c2, target])?;
        Ok(Gate::Toffoli { c1, c2, target })
    }

    /// A 3-input Fredkin (controlled-swap) gate.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::DuplicateOperand`] if any two operands
    /// coincide.
    pub fn fredkin(control: QubitId, a: QubitId, b: QubitId) -> Result<Gate, CircuitError> {
        ensure_distinct(&[control, a, b])?;
        Ok(Gate::Fredkin { control, a, b })
    }

    /// A multi-controlled Toffoli, normalized: 1 control becomes
    /// [`Gate::Cnot`], 2 controls become [`Gate::Toffoli`].
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::EmptyControls`] with no controls, or
    /// [`CircuitError::DuplicateOperand`] if operands repeat.
    pub fn mct(controls: Vec<QubitId>, target: QubitId) -> Result<Gate, CircuitError> {
        if controls.is_empty() {
            return Err(CircuitError::EmptyControls);
        }
        let mut all = controls.clone();
        all.push(target);
        ensure_distinct(&all)?;
        Ok(match controls.len() {
            1 => Gate::Cnot {
                control: controls[0],
                target,
            },
            2 => Gate::Toffoli {
                c1: controls[0],
                c2: controls[1],
                target,
            },
            _ => Gate::Mct { controls, target },
        })
    }

    /// A multi-controlled Fredkin, normalized: 1 control becomes
    /// [`Gate::Fredkin`].
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::EmptyControls`] with no controls, or
    /// [`CircuitError::DuplicateOperand`] if operands repeat.
    pub fn mcf(controls: Vec<QubitId>, a: QubitId, b: QubitId) -> Result<Gate, CircuitError> {
        if controls.is_empty() {
            return Err(CircuitError::EmptyControls);
        }
        let mut all = controls.clone();
        all.push(a);
        all.push(b);
        ensure_distinct(&all)?;
        Ok(match controls.len() {
            1 => Gate::Fredkin {
                control: controls[0],
                a,
                b,
            },
            _ => Gate::Mcf { controls, a, b },
        })
    }

    /// All wires this gate touches, controls first.
    pub fn qubits(&self) -> Vec<QubitId> {
        match self {
            Gate::OneQubit { target, .. } => vec![*target],
            Gate::Cnot { control, target } => vec![*control, *target],
            Gate::Toffoli { c1, c2, target } => vec![*c1, *c2, *target],
            Gate::Fredkin { control, a, b } => vec![*control, *a, *b],
            Gate::Mct { controls, target } => {
                let mut v = controls.clone();
                v.push(*target);
                v
            }
            Gate::Mcf { controls, a, b } => {
                let mut v = controls.clone();
                v.push(*a);
                v.push(*b);
                v
            }
        }
    }

    /// The largest qubit index this gate touches.
    pub fn max_qubit(&self) -> QubitId {
        self.qubits()
            .into_iter()
            .max()
            .expect("every gate touches at least one qubit")
    }
}

/// A lowered fault-tolerant operation: the node payload of the QODG.
///
/// The paper's Eq. 1 treats the (only) two-qubit FT op, CNOT, separately
/// from the one-qubit ops, and so does this type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FtOp {
    /// A one-qubit FT operation.
    OneQubit {
        /// Which FT operation.
        kind: OneQubitKind,
        /// The wire it acts on.
        target: QubitId,
    },
    /// The two-qubit CNOT FT operation.
    Cnot {
        /// Control wire (the *control edge* of the QODG node).
        control: QubitId,
        /// Target wire (the *target edge* of the QODG node).
        target: QubitId,
    },
}

impl FtOp {
    /// Whether this is the two-qubit CNOT.
    #[inline]
    pub fn is_cnot(self) -> bool {
        matches!(self, FtOp::Cnot { .. })
    }

    /// The wires this op touches (1 or 2).
    #[inline]
    pub fn qubits(self) -> impl Iterator<Item = QubitId> {
        let (a, b) = match self {
            FtOp::OneQubit { target, .. } => (target, None),
            FtOp::Cnot { control, target } => (control, Some(target)),
        };
        std::iter::once(a).chain(b)
    }
}

impl std::fmt::Display for FtOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FtOp::OneQubit { kind, target } => write!(f, "{kind} {target}"),
            FtOp::Cnot { control, target } => write!(f, "CNOT {control} {target}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_reject_duplicates() {
        assert!(Gate::cnot(QubitId(1), QubitId(1)).is_err());
        assert!(Gate::toffoli(QubitId(0), QubitId(0), QubitId(1)).is_err());
        assert!(Gate::fredkin(QubitId(0), QubitId(1), QubitId(1)).is_err());
        assert!(Gate::mct(vec![QubitId(0), QubitId(1)], QubitId(1)).is_err());
        assert!(Gate::mcf(vec![QubitId(0)], QubitId(1), QubitId(0)).is_err());
    }

    #[test]
    fn mct_normalizes_small_cases() {
        assert!(matches!(
            Gate::mct(vec![QubitId(0)], QubitId(1)).unwrap(),
            Gate::Cnot { .. }
        ));
        assert!(matches!(
            Gate::mct(vec![QubitId(0), QubitId(1)], QubitId(2)).unwrap(),
            Gate::Toffoli { .. }
        ));
        assert!(matches!(
            Gate::mct(vec![QubitId(0), QubitId(1), QubitId(2)], QubitId(3)).unwrap(),
            Gate::Mct { .. }
        ));
    }

    #[test]
    fn mcf_normalizes_single_control() {
        assert!(matches!(
            Gate::mcf(vec![QubitId(0)], QubitId(1), QubitId(2)).unwrap(),
            Gate::Fredkin { .. }
        ));
        assert!(matches!(
            Gate::mcf(vec![QubitId(0), QubitId(1)], QubitId(2), QubitId(3)).unwrap(),
            Gate::Mcf { .. }
        ));
    }

    #[test]
    fn empty_controls_rejected() {
        assert_eq!(
            Gate::mct(vec![], QubitId(0)),
            Err(CircuitError::EmptyControls)
        );
        assert_eq!(
            Gate::mcf(vec![], QubitId(0), QubitId(1)),
            Err(CircuitError::EmptyControls)
        );
    }

    #[test]
    fn qubits_lists_controls_first() {
        let g = Gate::toffoli(QubitId(4), QubitId(2), QubitId(7)).unwrap();
        assert_eq!(g.qubits(), vec![QubitId(4), QubitId(2), QubitId(7)]);
        assert_eq!(g.max_qubit(), QubitId(7));
    }

    #[test]
    fn ft_op_qubits() {
        let one = FtOp::OneQubit {
            kind: OneQubitKind::H,
            target: QubitId(3),
        };
        assert_eq!(one.qubits().collect::<Vec<_>>(), vec![QubitId(3)]);
        assert!(!one.is_cnot());

        let two = FtOp::Cnot {
            control: QubitId(1),
            target: QubitId(2),
        };
        assert_eq!(
            two.qubits().collect::<Vec<_>>(),
            vec![QubitId(1), QubitId(2)]
        );
        assert!(two.is_cnot());
    }

    #[test]
    fn ft_op_display() {
        let op = FtOp::Cnot {
            control: QubitId(0),
            target: QubitId(5),
        };
        assert_eq!(op.to_string(), "CNOT q0 q5");
        let op = FtOp::OneQubit {
            kind: OneQubitKind::Tdg,
            target: QubitId(2),
        };
        assert_eq!(op.to_string(), "T+ q2");
    }
}
