//! Error type for circuit construction, lowering and parsing.

use std::error::Error;
use std::fmt;

use crate::QubitId;

/// Errors produced while building, lowering or parsing circuits.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A gate referenced a qubit index at or beyond the circuit width.
    QubitOutOfRange {
        /// The offending qubit.
        qubit: QubitId,
        /// The circuit's qubit count.
        num_qubits: u32,
    },
    /// A gate used the same qubit for two distinct operands
    /// (forbidden by the no-cloning constraint on circuit wires).
    DuplicateOperand {
        /// The repeated qubit.
        qubit: QubitId,
    },
    /// A multi-controlled gate had no controls.
    EmptyControls,
    /// The circuit would exceed the supported qubit count (`u32`).
    TooManyQubits,
    /// A parse error with line information.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, num_qubits } => {
                write!(
                    f,
                    "qubit {qubit} out of range for {num_qubits}-qubit circuit"
                )
            }
            CircuitError::DuplicateOperand { qubit } => {
                write!(f, "qubit {qubit} used for two operands of one gate")
            }
            CircuitError::EmptyControls => write!(f, "multi-controlled gate has no controls"),
            CircuitError::TooManyQubits => write!(f, "circuit exceeds the supported qubit count"),
            CircuitError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CircuitError::QubitOutOfRange {
            qubit: QubitId(9),
            num_qubits: 4,
        };
        assert_eq!(e.to_string(), "qubit q9 out of range for 4-qubit circuit");
        let e = CircuitError::Parse {
            line: 3,
            message: "unknown gate `foo`".into(),
        };
        assert_eq!(e.to_string(), "parse error at line 3: unknown gate `foo`");
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<CircuitError>();
    }
}
