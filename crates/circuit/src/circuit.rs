//! Circuit containers: the reversible-level [`Circuit`] and the lowered
//! [`FtCircuit`].

use leqa_fabric::OneQubitKind;

use crate::{CircuitError, FtOp, Gate, QubitId};

/// A synthesized reversible circuit: an ordered list of [`Gate`]s over a
/// fixed set of wires.
///
/// The gate order is preserved through lowering ("it is assumed that the
/// order of gates does not change after the synthesis step", §2).
///
/// # Examples
///
/// ```
/// use leqa_circuit::{Circuit, Gate, QubitId};
///
/// # fn main() -> Result<(), leqa_circuit::CircuitError> {
/// let mut c = Circuit::with_name(3, "ham3");
/// c.push(Gate::cnot(QubitId(0), QubitId(1))?)?;
/// c.push(Gate::toffoli(QubitId(0), QubitId(1), QubitId(2))?)?;
/// assert_eq!(c.gates().len(), 2);
/// assert_eq!(c.name(), Some("ham3"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Circuit {
    num_qubits: u32,
    gates: Vec<Gate>,
    name: Option<String>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` wires.
    pub fn new(num_qubits: u32) -> Self {
        Circuit {
            num_qubits,
            gates: Vec::new(),
            name: None,
        }
    }

    /// Creates an empty, named circuit (names appear in reports).
    pub fn with_name(num_qubits: u32, name: impl Into<String>) -> Self {
        Circuit {
            num_qubits,
            gates: Vec::new(),
            name: Some(name.into()),
        }
    }

    /// The circuit name, if any.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Renames the circuit.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = Some(name.into());
    }

    /// Number of wires.
    #[inline]
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// The gate sequence.
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Appends a gate, validating that all its operands are on-circuit.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfRange`] if the gate touches a wire
    /// at or beyond [`num_qubits`](Self::num_qubits).
    pub fn push(&mut self, gate: Gate) -> Result<(), CircuitError> {
        for q in gate.qubits() {
            if q.0 >= self.num_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: q,
                    num_qubits: self.num_qubits,
                });
            }
        }
        self.gates.push(gate);
        Ok(())
    }

    /// Grows the circuit by one fresh (ancilla) wire and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::TooManyQubits`] on index overflow.
    pub fn allocate_qubit(&mut self) -> Result<QubitId, CircuitError> {
        let id = QubitId(self.num_qubits);
        self.num_qubits = self
            .num_qubits
            .checked_add(1)
            .ok_or(CircuitError::TooManyQubits)?;
        Ok(id)
    }

    /// Summary statistics of the gate list.
    pub fn stats(&self) -> CircuitStats {
        let mut s = CircuitStats::default();
        for g in &self.gates {
            match g {
                Gate::OneQubit { .. } => s.one_qubit += 1,
                Gate::Cnot { .. } => s.cnot += 1,
                Gate::Toffoli { .. } => s.toffoli += 1,
                Gate::Fredkin { .. } => s.fredkin += 1,
                Gate::Mct { .. } => s.mct += 1,
                Gate::Mcf { .. } => s.mcf += 1,
            }
        }
        s
    }
}

/// Gate-type histogram of a reversible circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CircuitStats {
    /// One-qubit FT gates at the reversible level.
    pub one_qubit: u64,
    /// CNOT gates.
    pub cnot: u64,
    /// 3-input Toffoli gates.
    pub toffoli: u64,
    /// 3-input Fredkin gates.
    pub fredkin: u64,
    /// Multi-controlled Toffoli gates (≥ 3 controls).
    pub mct: u64,
    /// Multi-controlled Fredkin gates (≥ 2 controls).
    pub mcf: u64,
}

impl CircuitStats {
    /// Total gate count.
    pub fn total(&self) -> u64 {
        self.one_qubit + self.cnot + self.toffoli + self.fredkin + self.mct + self.mcf
    }
}

/// A fully lowered fault-tolerant circuit: an ordered list of [`FtOp`]s.
///
/// This is the input representation for QODG construction and for both the
/// estimator and the detailed mapper. Its length is the paper's
/// "operation count" (Table 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FtCircuit {
    num_qubits: u32,
    ops: Vec<FtOp>,
    name: Option<String>,
}

impl FtCircuit {
    /// Creates an empty FT circuit over `num_qubits` wires.
    pub fn new(num_qubits: u32) -> Self {
        FtCircuit {
            num_qubits,
            ops: Vec::new(),
            name: None,
        }
    }

    /// The circuit name, if any.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Renames the circuit.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = Some(name.into());
    }

    /// Number of wires (the paper's logical qubit count `Q`).
    #[inline]
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// The op sequence.
    #[inline]
    pub fn ops(&self) -> &[FtOp] {
        &self.ops
    }

    /// Appends an op, validating operands.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfRange`] for off-circuit wires and
    /// [`CircuitError::DuplicateOperand`] for a CNOT with `control ==
    /// target`.
    pub fn push(&mut self, op: FtOp) -> Result<(), CircuitError> {
        if let FtOp::Cnot { control, target } = op {
            if control == target {
                return Err(CircuitError::DuplicateOperand { qubit: control });
            }
        }
        for q in op.qubits() {
            if q.0 >= self.num_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: q,
                    num_qubits: self.num_qubits,
                });
            }
        }
        self.ops.push(op);
        Ok(())
    }

    /// Convenience: appends a one-qubit op.
    ///
    /// # Errors
    ///
    /// Same as [`push`](Self::push).
    pub fn push_one_qubit(
        &mut self,
        kind: OneQubitKind,
        target: QubitId,
    ) -> Result<(), CircuitError> {
        self.push(FtOp::OneQubit { kind, target })
    }

    /// Convenience: appends a CNOT.
    ///
    /// # Errors
    ///
    /// Same as [`push`](Self::push).
    pub fn push_cnot(&mut self, control: QubitId, target: QubitId) -> Result<(), CircuitError> {
        self.push(FtOp::Cnot { control, target })
    }

    /// Number of CNOT ops.
    pub fn cnot_count(&self) -> u64 {
        self.ops.iter().filter(|op| op.is_cnot()).count() as u64
    }

    /// Number of one-qubit ops of each kind, indexed by
    /// [`OneQubitKind::index`].
    pub fn one_qubit_counts(&self) -> [u64; 8] {
        let mut counts = [0u64; 8];
        for op in &self.ops {
            if let FtOp::OneQubit { kind, .. } = op {
                counts[kind.index()] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_validates_range() {
        let mut c = Circuit::new(2);
        assert!(c.push(Gate::not(QubitId(1))).is_ok());
        assert!(matches!(
            c.push(Gate::not(QubitId(2))),
            Err(CircuitError::QubitOutOfRange { .. })
        ));
    }

    #[test]
    fn allocate_extends_width() {
        let mut c = Circuit::new(2);
        let anc = c.allocate_qubit().unwrap();
        assert_eq!(anc, QubitId(2));
        assert_eq!(c.num_qubits(), 3);
        assert!(c.push(Gate::not(anc)).is_ok());
    }

    #[test]
    fn stats_histogram() {
        let mut c = Circuit::new(6);
        c.push(Gate::not(QubitId(0))).unwrap();
        c.push(Gate::cnot(QubitId(0), QubitId(1)).unwrap()).unwrap();
        c.push(Gate::toffoli(QubitId(0), QubitId(1), QubitId(2)).unwrap())
            .unwrap();
        c.push(Gate::fredkin(QubitId(0), QubitId(1), QubitId(2)).unwrap())
            .unwrap();
        c.push(Gate::mct(vec![QubitId(0), QubitId(1), QubitId(2)], QubitId(3)).unwrap())
            .unwrap();
        let s = c.stats();
        assert_eq!(
            (s.one_qubit, s.cnot, s.toffoli, s.fredkin, s.mct, s.mcf),
            (1, 1, 1, 1, 1, 0)
        );
        assert_eq!(s.total(), 5);
    }

    #[test]
    fn ft_circuit_validates() {
        let mut ft = FtCircuit::new(2);
        assert!(ft.push_cnot(QubitId(0), QubitId(1)).is_ok());
        assert!(matches!(
            ft.push_cnot(QubitId(1), QubitId(1)),
            Err(CircuitError::DuplicateOperand { .. })
        ));
        assert!(matches!(
            ft.push_one_qubit(OneQubitKind::H, QubitId(5)),
            Err(CircuitError::QubitOutOfRange { .. })
        ));
    }

    #[test]
    fn ft_counts() {
        let mut ft = FtCircuit::new(3);
        ft.push_cnot(QubitId(0), QubitId(1)).unwrap();
        ft.push_cnot(QubitId(1), QubitId(2)).unwrap();
        ft.push_one_qubit(OneQubitKind::T, QubitId(0)).unwrap();
        ft.push_one_qubit(OneQubitKind::T, QubitId(1)).unwrap();
        ft.push_one_qubit(OneQubitKind::H, QubitId(2)).unwrap();
        assert_eq!(ft.cnot_count(), 2);
        let counts = ft.one_qubit_counts();
        assert_eq!(counts[OneQubitKind::T.index()], 2);
        assert_eq!(counts[OneQubitKind::H.index()], 1);
        assert_eq!(counts[OneQubitKind::X.index()], 0);
    }

    #[test]
    fn names() {
        let mut c = Circuit::with_name(1, "demo");
        assert_eq!(c.name(), Some("demo"));
        c.set_name("other");
        assert_eq!(c.name(), Some("other"));
        let mut ft = FtCircuit::new(1);
        assert_eq!(ft.name(), None);
        ft.set_name("ft");
        assert_eq!(ft.name(), Some("ft"));
    }
}
