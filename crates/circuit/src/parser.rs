//! A plain-text circuit format, read and write.
//!
//! LEQA and QSPR "share the same parsers for parsing the inputs" (§4.1);
//! this module is that shared parser. The format is line-based:
//!
//! ```text
//! # ham3-style example
//! .name demo
//! .qubits 3
//! h 0
//! t 1
//! tdg 1
//! cnot 0 1
//! toffoli 0 1 2
//! fredkin 0 1 2
//! mct 0 1 2 3        # last operand is the target
//! mcf 0 1 : 2 3      # controls : swapped pair
//! ```
//!
//! Blank lines and `#` comments are ignored. Qubit indices are 0-based.

use leqa_fabric::OneQubitKind;

use crate::{Circuit, CircuitError, Gate, QubitId};

/// Parses a circuit from the text format.
///
/// # Errors
///
/// Returns [`CircuitError::Parse`] with a 1-based line number for malformed
/// input, and the underlying validation error (wrapped as a parse error) for
/// semantically invalid gates.
///
/// # Examples
///
/// ```
/// use leqa_circuit::parser;
///
/// # fn main() -> Result<(), leqa_circuit::CircuitError> {
/// let c = parser::parse(".qubits 2\ncnot 0 1\n")?;
/// assert_eq!(c.num_qubits(), 2);
/// assert_eq!(c.gates().len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse(text: &str) -> Result<Circuit, CircuitError> {
    let mut circuit: Option<Circuit> = None;
    let mut name: Option<String> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let head = tokens.next().expect("non-empty line has a token");
        let rest: Vec<&str> = tokens.collect();

        match head {
            ".name" => {
                name = Some(rest.join(" "));
            }
            ".qubits" => {
                let n = parse_count(&rest, line_no)?;
                let mut c = Circuit::new(n);
                if let Some(n) = name.take() {
                    c.set_name(n);
                }
                circuit = Some(c);
            }
            _ => {
                let c = circuit.as_mut().ok_or_else(|| CircuitError::Parse {
                    line: line_no,
                    message: "gate before `.qubits` declaration".into(),
                })?;
                let gate = parse_gate(head, &rest, line_no)?;
                c.push(gate).map_err(|e| CircuitError::Parse {
                    line: line_no,
                    message: e.to_string(),
                })?;
            }
        }
    }

    circuit.ok_or(CircuitError::Parse {
        line: 0,
        message: "missing `.qubits` declaration".into(),
    })
}

fn parse_count(rest: &[&str], line: usize) -> Result<u32, CircuitError> {
    if rest.len() != 1 {
        return Err(CircuitError::Parse {
            line,
            message: "`.qubits` takes exactly one argument".into(),
        });
    }
    rest[0].parse().map_err(|_| CircuitError::Parse {
        line,
        message: format!("invalid qubit count `{}`", rest[0]),
    })
}

fn parse_qubits(rest: &[&str], line: usize) -> Result<Vec<QubitId>, CircuitError> {
    rest.iter()
        .map(|t| {
            t.parse::<u32>()
                .map(QubitId)
                .map_err(|_| CircuitError::Parse {
                    line,
                    message: format!("invalid qubit index `{t}`"),
                })
        })
        .collect()
}

fn arity_error(head: &str, want: usize, got: usize, line: usize) -> CircuitError {
    CircuitError::Parse {
        line,
        message: format!("`{head}` takes {want} operand(s), got {got}"),
    }
}

fn wrap(line: usize) -> impl Fn(CircuitError) -> CircuitError {
    move |e| CircuitError::Parse {
        line,
        message: e.to_string(),
    }
}

fn parse_gate(head: &str, rest: &[&str], line: usize) -> Result<Gate, CircuitError> {
    let one_qubit = |kind: OneQubitKind| -> Result<Gate, CircuitError> {
        let qs = parse_qubits(rest, line)?;
        if qs.len() != 1 {
            return Err(arity_error(head, 1, qs.len(), line));
        }
        Ok(Gate::one_qubit(kind, qs[0]))
    };

    match head.to_ascii_lowercase().as_str() {
        "h" => one_qubit(OneQubitKind::H),
        "t" => one_qubit(OneQubitKind::T),
        "tdg" | "t+" => one_qubit(OneQubitKind::Tdg),
        "s" => one_qubit(OneQubitKind::S),
        "sdg" | "s+" => one_qubit(OneQubitKind::Sdg),
        "x" | "not" => one_qubit(OneQubitKind::X),
        "y" => one_qubit(OneQubitKind::Y),
        "z" => one_qubit(OneQubitKind::Z),
        "cnot" => {
            let qs = parse_qubits(rest, line)?;
            if qs.len() != 2 {
                return Err(arity_error(head, 2, qs.len(), line));
            }
            Gate::cnot(qs[0], qs[1]).map_err(wrap(line))
        }
        "toffoli" => {
            let qs = parse_qubits(rest, line)?;
            if qs.len() != 3 {
                return Err(arity_error(head, 3, qs.len(), line));
            }
            Gate::toffoli(qs[0], qs[1], qs[2]).map_err(wrap(line))
        }
        "fredkin" => {
            let qs = parse_qubits(rest, line)?;
            if qs.len() != 3 {
                return Err(arity_error(head, 3, qs.len(), line));
            }
            Gate::fredkin(qs[0], qs[1], qs[2]).map_err(wrap(line))
        }
        "mct" => {
            let qs = parse_qubits(rest, line)?;
            if qs.len() < 2 {
                return Err(arity_error(head, 2, qs.len(), line));
            }
            let (target, controls) = qs.split_last().expect("checked length");
            Gate::mct(controls.to_vec(), *target).map_err(wrap(line))
        }
        "mcf" => {
            let sep = rest
                .iter()
                .position(|&t| t == ":")
                .ok_or(CircuitError::Parse {
                    line,
                    message: "`mcf` needs `controls : a b`".into(),
                })?;
            let controls = parse_qubits(&rest[..sep], line)?;
            let targets = parse_qubits(&rest[sep + 1..], line)?;
            if targets.len() != 2 {
                return Err(CircuitError::Parse {
                    line,
                    message: "`mcf` needs exactly two swapped wires".into(),
                });
            }
            Gate::mcf(controls, targets[0], targets[1]).map_err(wrap(line))
        }
        other => Err(CircuitError::Parse {
            line,
            message: format!("unknown gate `{other}`"),
        }),
    }
}

/// Renders a circuit back to the text format; `parse(&write(c))` round-trips.
pub fn write(circuit: &Circuit) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if let Some(name) = circuit.name() {
        let _ = writeln!(out, ".name {name}");
    }
    let _ = writeln!(out, ".qubits {}", circuit.num_qubits());
    for gate in circuit.gates() {
        match gate {
            Gate::OneQubit { kind, target } => {
                let mnemonic = match kind {
                    OneQubitKind::Tdg => "tdg",
                    OneQubitKind::Sdg => "sdg",
                    k => {
                        let _ = writeln!(out, "{} {}", k.mnemonic().to_ascii_lowercase(), target.0);
                        continue;
                    }
                };
                let _ = writeln!(out, "{mnemonic} {}", target.0);
            }
            Gate::Cnot { control, target } => {
                let _ = writeln!(out, "cnot {} {}", control.0, target.0);
            }
            Gate::Toffoli { c1, c2, target } => {
                let _ = writeln!(out, "toffoli {} {} {}", c1.0, c2.0, target.0);
            }
            Gate::Fredkin { control, a, b } => {
                let _ = writeln!(out, "fredkin {} {} {}", control.0, a.0, b.0);
            }
            Gate::Mct { controls, target } => {
                let list: Vec<String> = controls.iter().map(|q| q.0.to_string()).collect();
                let _ = writeln!(out, "mct {} {}", list.join(" "), target.0);
            }
            Gate::Mcf { controls, a, b } => {
                let list: Vec<String> = controls.iter().map(|q| q.0.to_string()).collect();
                let _ = writeln!(out, "mcf {} : {} {}", list.join(" "), a.0, b.0);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_gate_forms() {
        let text = "\
# full alphabet
.name alphabet
.qubits 6
h 0
t 1
tdg 2
s 3
sdg 4
x 5
y 0
z 1
not 2
cnot 0 1
toffoli 0 1 2
fredkin 0 1 2
mct 0 1 2 3
mcf 0 1 : 2 3
";
        let c = parse(text).unwrap();
        assert_eq!(c.name(), Some("alphabet"));
        assert_eq!(c.num_qubits(), 6);
        assert_eq!(c.gates().len(), 14);
    }

    #[test]
    fn roundtrip() {
        let text = "\
.name rt
.qubits 5
tdg 0
sdg 1
cnot 0 1
toffoli 0 1 2
fredkin 2 3 4
mct 0 1 2 4
mcf 0 1 : 3 4
";
        let c = parse(text).unwrap();
        let c2 = parse(&write(&c)).unwrap();
        assert_eq!(c, c2);
    }

    #[test]
    fn error_has_line_number() {
        let err = parse(".qubits 2\nbogus 0\n").unwrap_err();
        assert!(matches!(err, CircuitError::Parse { line: 2, .. }));
    }

    #[test]
    fn gate_before_header_is_rejected() {
        let err = parse("cnot 0 1\n").unwrap_err();
        assert!(matches!(err, CircuitError::Parse { line: 1, .. }));
    }

    #[test]
    fn missing_header_is_rejected() {
        let err = parse("# nothing\n").unwrap_err();
        assert!(matches!(err, CircuitError::Parse { line: 0, .. }));
    }

    #[test]
    fn out_of_range_is_a_parse_error_with_location() {
        let err = parse(".qubits 2\ncnot 0 5\n").unwrap_err();
        match err {
            CircuitError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("out of range"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn arity_errors() {
        assert!(parse(".qubits 3\ncnot 0\n").is_err());
        assert!(parse(".qubits 3\ntoffoli 0 1\n").is_err());
        assert!(parse(".qubits 3\nh 0 1\n").is_err());
        assert!(parse(".qubits 3\nmcf 0 1 2\n").is_err()); // missing `:`
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let c = parse("\n# hi\n.qubits 1\n\nx 0 # inline\n").unwrap();
        assert_eq!(c.gates().len(), 1);
    }
}
