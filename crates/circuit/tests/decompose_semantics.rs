//! Semantic preservation of the first decomposition pass, verified
//! exhaustively: `to_toffoli_circuit` must compute the same Boolean
//! function as its input on every basis state, with every ancilla
//! returned to 0 (the uncomputation guarantee of the Nielsen–Chuang
//! ladder).

use proptest::prelude::*;

use leqa_circuit::decompose::to_toffoli_circuit;
use leqa_circuit::{classical, Circuit, Gate, QubitId};

fn q(i: u32) -> QubitId {
    QubitId(i)
}

/// Checks input/output equivalence on every basis state of the original
/// wires, and that ancillas end clean.
fn assert_equivalent(original: &Circuit) {
    let lowered = to_toffoli_circuit(original).expect("lowers cleanly");
    let n = original.num_qubits();
    assert!(n <= 10, "exhaustive check caps at 2^10 states");
    for input in 0u64..(1 << n) {
        let bits: Vec<bool> = (0..n).map(|i| input >> i & 1 == 1).collect();
        let want = classical::apply(original, &bits).expect("classical");
        let got = classical::apply(&lowered, &bits).expect("classical");
        assert_eq!(&got[..n as usize], &want[..], "state {input:b} diverged");
        for (i, &anc) in got[n as usize..].iter().enumerate() {
            assert!(!anc, "ancilla {i} not restored on input {input:b}");
        }
    }
}

#[test]
fn mct_ladders_are_exact() {
    for controls in 3..=6u32 {
        let mut c = Circuit::new(controls + 1);
        c.push(Gate::mct((0..controls).map(q).collect(), q(controls)).unwrap())
            .unwrap();
        assert_equivalent(&c);
    }
}

#[test]
fn fredkin_triple_is_exact() {
    let mut c = Circuit::new(3);
    c.push(Gate::fredkin(q(0), q(1), q(2)).unwrap()).unwrap();
    assert_equivalent(&c);
}

#[test]
fn mcf_expansion_is_exact() {
    for controls in 2..=4u32 {
        let mut c = Circuit::new(controls + 2);
        c.push(Gate::mcf((0..controls).map(q).collect(), q(controls), q(controls + 1)).unwrap())
            .unwrap();
        assert_equivalent(&c);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_reversible_circuits_are_preserved(seed in 0u64..10_000) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let wires = rng.gen_range(5..9u32);
        let mut c = Circuit::new(wires);
        for _ in 0..rng.gen_range(1..12usize) {
            let mut picks: Vec<u32> = (0..wires).collect();
            // Partial shuffle for operand selection.
            for i in 0..picks.len() {
                let j = rng.gen_range(i..picks.len());
                picks.swap(i, j);
            }
            let gate = match rng.gen_range(0..5u8) {
                0 => Gate::not(q(picks[0])),
                1 => Gate::cnot(q(picks[0]), q(picks[1])).unwrap(),
                2 => Gate::toffoli(q(picks[0]), q(picks[1]), q(picks[2])).unwrap(),
                3 => Gate::fredkin(q(picks[0]), q(picks[1]), q(picks[2])).unwrap(),
                _ => {
                    let k = rng.gen_range(3..=(wires - 1).min(4)) as usize;
                    Gate::mct(
                        picks[..k].iter().map(|&i| q(i)).collect(),
                        q(picks[k]),
                    )
                    .unwrap()
                }
            };
            c.push(gate).unwrap();
        }
        let lowered = to_toffoli_circuit(&c).expect("lowers");
        // Spot-check 16 random basis states rather than all 2^wires.
        for _ in 0..16 {
            let input: u64 = rng.gen_range(0..(1u64 << wires));
            let bits: Vec<bool> = (0..wires).map(|i| input >> i & 1 == 1).collect();
            let want = classical::apply(&c, &bits).expect("classical");
            let got = classical::apply(&lowered, &bits).expect("classical");
            prop_assert_eq!(&got[..wires as usize], &want[..]);
            for &anc in &got[wires as usize..] {
                prop_assert!(!anc, "ancilla left dirty");
            }
        }
    }
}
