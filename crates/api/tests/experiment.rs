//! The experiment engine's acceptance contract: NDJSON cell rows must be
//! **bit-identical** to an equivalent serial loop of single-cell
//! [`Session::estimate`] calls — the sweep-engine amortisation and the
//! grid bookkeeping change the cost, never the bytes.

use leqa_api::json::Json;
use leqa_api::{
    EstimateRequest, ExperimentMode, FabricEntry, ParamVariant, ProgramSpec, ScenarioSpec, Session,
};

/// The row bytes an equivalent serial loop would produce for one cell:
/// same keys, same order, values straight from an independent
/// `session.estimate` call.
fn serial_row(
    cell: u64,
    workload: &str,
    params: &str,
    router: &str,
    movement: &str,
    side: u32,
    session: &Session,
) -> String {
    let estimate = session
        .estimate(&EstimateRequest::new(ProgramSpec::bench(workload)).with_fabric(side, side))
        .ok();
    let fit = estimate.is_some();
    let opt = |v: Option<f64>| v.map(Json::Num).unwrap_or(Json::Null);
    Json::obj(vec![
        ("schema_version", Json::num(1u32)),
        ("op", Json::str("experiment_cell")),
        ("cell", Json::Num(cell as f64)),
        ("workload", Json::str(workload)),
        ("params", Json::str(params)),
        ("router", Json::str(router)),
        ("movement", Json::str(movement)),
        ("scheduler", Json::str("greedy")),
        ("side", Json::num(side)),
        ("fit", Json::Bool(fit)),
        ("latency_us", opt(estimate.as_ref().map(|e| e.latency_us))),
        (
            "l_cnot_avg_us",
            opt(estimate.as_ref().map(|e| e.l_cnot_avg_us)),
        ),
        ("d_uncong_us", opt(estimate.as_ref().map(|e| e.d_uncong_us))),
        (
            "avg_zone_area",
            opt(estimate.as_ref().map(|e| e.avg_zone_area)),
        ),
        (
            "zone_side",
            estimate
                .as_ref()
                .map(|e| Json::num(e.zone_side))
                .unwrap_or(Json::Null),
        ),
        (
            "critical_cnots",
            estimate
                .as_ref()
                .map(|e| Json::Num(e.critical_cnots as f64))
                .unwrap_or(Json::Null),
        ),
    ])
    .encode()
}

/// The acceptance grid: 3 workloads × 10 fabric sides × 2 routers.
fn acceptance_spec() -> ScenarioSpec {
    ScenarioSpec::new(
        ["qft_8", "8bitadder", "random_10_80_7"],
        [FabricEntry::Range {
            min: 10,
            max: 55,
            step: 5,
        }],
    )
    .with_routers([qspr::RouterStrategy::Xy, qspr::RouterStrategy::Yx])
}

#[test]
fn ndjson_is_bit_identical_to_a_serial_estimate_loop() {
    let session = Session::builder().build().unwrap();
    let response = session.batch_experiment(&acceptance_spec()).unwrap();
    assert_eq!(response.rows.len(), 60);

    // The serial reference runs on its own session so cache state cannot
    // leak between the two executions.
    let reference = Session::builder().build().unwrap();
    let sides: Vec<u32> = (10..=55).step_by(5).collect();
    let mut cell = 0u64;
    let mut expected = Vec::new();
    for workload in ["qft_8", "8bitadder", "random_10_80_7"] {
        for router in ["xy", "yx"] {
            for &side in &sides {
                expected.push(serial_row(
                    cell, workload, "default", router, "home", side, &reference,
                ));
                cell += 1;
            }
        }
    }

    for (row, expected) in response.rows.iter().zip(&expected) {
        let actual = row.to_json(response.select).encode();
        assert_eq!(&actual, expected, "cell {}", row.cell);
    }
}

#[test]
fn unfit_cells_match_the_serial_loop_too() {
    // ham15 (146 qubits) does not fit 10x10: both executions must emit
    // the same all-null row bytes.
    let session = Session::builder().build().unwrap();
    let spec = ScenarioSpec::new(["ham15"], [FabricEntry::Side(10), FabricEntry::Side(60)]);
    let response = session.batch_experiment(&spec).unwrap();

    let reference = Session::builder().build().unwrap();
    for (i, &side) in [10u32, 60].iter().enumerate() {
        let expected = serial_row(i as u64, "ham15", "default", "xy", "home", side, &reference);
        assert_eq!(response.rows[i].to_json(response.select).encode(), expected);
    }
    assert!(!response.rows[0].fit);
    assert!(response.rows[1].fit);
}

#[test]
fn param_variants_match_serial_loops_on_matching_sessions() {
    let session = Session::builder().build().unwrap();
    let fast = ParamVariant::base("fast")
        .with_t_move_us(50.0)
        .with_qubit_speed(0.002);
    let spec = ScenarioSpec::new(
        ["qft_8"],
        [FabricEntry::Range {
            min: 10,
            max: 30,
            step: 10,
        }],
    )
    .with_params([ParamVariant::base("default"), fast.clone()]);
    let response = session.batch_experiment(&spec).unwrap();
    assert_eq!(response.rows.len(), 6);

    // Serial reference: one session per variant, built with the variant's
    // parameters — exactly what the runner derives internally.
    let base = Session::builder().build().unwrap();
    let fast_params = fast.apply(base.params()).unwrap();
    let fast_session = Session::builder().params(fast_params).build().unwrap();

    let mut cell = 0u64;
    for (name, reference) in [("default", &base), ("fast", &fast_session)] {
        for side in [10u32, 20, 30] {
            let expected = serial_row(cell, "qft_8", name, "xy", "home", side, reference);
            assert_eq!(
                response.rows[cell as usize]
                    .to_json(response.select)
                    .encode(),
                expected,
                "variant {name}, side {side}"
            );
            cell += 1;
        }
    }

    // The fast variant genuinely changes the numbers.
    let default_latency = response.rows[0].metrics.primary_latency_us().unwrap();
    let fast_latency = response.rows[3].metrics.primary_latency_us().unwrap();
    assert!(fast_latency < default_latency);
}

#[test]
fn summary_argmin_agrees_with_the_rows() {
    let session = Session::builder().build().unwrap();
    let response = session.batch_experiment(&acceptance_spec()).unwrap();
    for agg in &response.summary.workloads {
        let best = response
            .rows
            .iter()
            .filter(|r| r.workload == agg.workload)
            .filter_map(|r| r.metrics.primary_latency_us().map(|l| (r, l)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("every acceptance workload fits somewhere");
        assert_eq!(agg.min_latency_us, Some(best.1));
        assert_eq!(agg.argmin_cell, Some(best.0.cell));
        assert_eq!(agg.argmin_side, Some(best.0.side));
        let worst = response
            .rows
            .iter()
            .filter(|r| r.workload == agg.workload)
            .filter_map(|r| r.metrics.primary_latency_us())
            .max_by(f64::total_cmp)
            .unwrap();
        assert_eq!(agg.max_latency_us, Some(worst));
    }
    assert_eq!(response.summary.cells, 60);
    // 3 distinct programs: exactly 3 misses, every other load a hit.
    assert_eq!(response.summary.cache.cache_misses, 3);
    assert_eq!(response.summary.cache.profile_builds, 3);
}

#[test]
fn compare_mode_rows_match_single_compare_requests() {
    // Compare cells must agree with the compare endpoint when the
    // router/movement variants are the defaults.
    let session = Session::builder().build().unwrap();
    let spec = ScenarioSpec::new(["random_8_40_7"], [FabricEntry::Side(8)])
        .with_mode(ExperimentMode::Compare);
    let response = session.batch_experiment(&spec).unwrap();
    let row = &response.rows[0];
    let direct = session
        .compare(
            &leqa_api::CompareRequest::new(ProgramSpec::bench("random_8_40_7")).with_fabric(8, 8),
        )
        .unwrap();
    let leqa_api::CellMetrics::Compare {
        actual_us,
        estimated_us,
        error_pct,
    } = &row.metrics
    else {
        panic!("compare metrics expected");
    };
    assert_eq!(*actual_us, Some(direct.actual_us));
    assert_eq!(*estimated_us, Some(direct.estimated_us));
    assert_eq!(*error_pct, direct.error_pct);
}
