//! Chaos soak: a retrying client drives hundreds of requests through a
//! three-replica shard whose replicas misbehave under a deterministic
//! fault plan (delays, dropped connections, torn frames, flipped bytes,
//! periodic replica kills — and, on the read side, requests that are
//! swallowed, torn or corrupted before the engine sees them). The
//! supervisor restarts killed replicas
//! warm from a shared profile snapshot store. The client — modelled on
//! `leqa-client`'s retry loop: transient-kind retries, deadline-bounded
//! reads, seeded-jitter exponential backoff — must converge on every
//! request with a reply **byte-identical** to a direct [`Session`],
//! with zero client-visible failures.
//!
//! `zones` and `sweep` are used because their replies carry no
//! cache-dependent fields, so byte-identity is strict however the work
//! lands across cold, warm and restarted replicas.

use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use leqa_api::{
    json, ErrorFrame, ErrorKind, FaultPlan, ProgramSpec, Request, Server, ServerConfig, Session,
    Shard, SweepRequest, ZonesRequest,
};
use leqa_fabric::SplitMix64;

const BENCHES: [&str; 4] = ["qft_4", "qft_8", "random_6_40", "random_5_30"];
const REQUESTS: usize = 520;
const MAX_ATTEMPTS: usize = 40;

fn request_line(i: usize) -> String {
    let bench = BENCHES[i % BENCHES.len()];
    let req = if i.is_multiple_of(2) {
        Request::Zones(ZonesRequest::new(ProgramSpec::bench(bench)).with_limit(4))
    } else {
        Request::Sweep(SweepRequest::new(ProgramSpec::bench(bench), [20, 40]))
    };
    req.to_json().encode()
}

fn expected_replies(session: &Session) -> Vec<String> {
    (0..REQUESTS)
        .map(|i| {
            let line = request_line(i);
            let req = Request::from_json(&json::parse(&line).unwrap()).unwrap();
            session.execute(&req).unwrap().to_json().encode()
        })
        .collect()
}

/// A line-mode client with `leqa-client`-style robustness: reconnects on
/// transport failures, rejects corrupt (unparseable) replies, retries
/// retryable error kinds, and backs off with seeded deterministic
/// jitter.
struct RetryClient {
    addr: SocketAddr,
    conn: Option<BufReader<TcpStream>>,
    rng: SplitMix64,
    deadline: Duration,
}

enum Attempt {
    Reply(String),
    Retry(&'static str),
}

impl RetryClient {
    fn new(addr: SocketAddr, seed: u64) -> RetryClient {
        RetryClient {
            addr,
            conn: None,
            rng: SplitMix64::new(seed),
            deadline: Duration::from_secs(10),
        }
    }

    /// One attempt: write the line, read one reply line under the
    /// deadline, classify it. The connection is taken out of `self` and
    /// only put back if the attempt ends with it in a reusable state.
    fn attempt(&mut self, line: &str) -> Attempt {
        let mut conn = match self.conn.take() {
            Some(conn) => conn,
            None => {
                let Ok(stream) = TcpStream::connect_timeout(&self.addr, self.deadline) else {
                    return Attempt::Retry("connect failed");
                };
                if stream.set_nodelay(true).is_err()
                    || stream
                        .set_read_timeout(Some(Duration::from_millis(50)))
                        .is_err()
                {
                    return Attempt::Retry("socket setup failed");
                }
                BufReader::new(stream)
            }
        };
        let stream = conn.get_mut();
        if stream.write_all(line.as_bytes()).is_err()
            || stream.write_all(b"\n").is_err()
            || stream.flush().is_err()
        {
            return Attempt::Retry("write failed");
        }
        // Deadline-bounded read of one reply line, tolerating the read
        // timeout ticks the poll-style socket produces.
        let start = Instant::now();
        let mut reply = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            if start.elapsed() > self.deadline {
                return Attempt::Retry("deadline exceeded");
            }
            match conn.read(&mut byte) {
                Ok(0) => {
                    // EOF: dropped connection, torn line, or a replica
                    // kill mid-reply.
                    return Attempt::Retry("connection lost");
                }
                Ok(_) => {
                    if byte[0] == b'\n' {
                        break;
                    }
                    reply.push(byte[0]);
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut
                        || e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    return Attempt::Retry("read failed");
                }
            }
        }
        // Corrupt replies (flipped bytes are invalid UTF-8; torn lines
        // are unparseable) are indistinguishable from line-framing
        // damage: drop the connection and retry.
        let Ok(text) = String::from_utf8(reply) else {
            return Attempt::Retry("corrupt reply (not UTF-8)");
        };
        let Ok(doc) = json::parse(&text) else {
            return Attempt::Retry("corrupt reply (not JSON)");
        };
        if let Ok(frame) = ErrorFrame::from_json(&doc) {
            let kind = frame.error.kind();
            if matches!(kind, ErrorKind::Unavailable | ErrorKind::Overloaded) {
                // The line was fully framed, so the connection is
                // reusable; the fleet just needs a moment.
                self.conn = Some(conn);
                return Attempt::Retry("retryable error frame");
            }
            if kind == ErrorKind::Json {
                // Every request this soak sends is valid JSON, so a
                // `json`-kind frame means the *request* was torn or
                // corrupted on the wire (read-side chaos). The server
                // closes after answering one; reconnect and retry.
                return Attempt::Retry("request corrupted in flight");
            }
        }
        self.conn = Some(conn);
        Attempt::Reply(text)
    }

    /// Jittered exponential backoff before retry `attempt` (0-based),
    /// seeded so the soak is reproducible.
    fn backoff(&mut self, attempt: usize) {
        let base = 2u64.saturating_pow(attempt.min(6) as u32);
        let jitter = (self.rng.next_f64() * 4.0) as u64;
        std::thread::sleep(Duration::from_millis((base + jitter).min(200)));
    }
}

#[test]
fn chaos_soak_converges_byte_identically() {
    let dir = std::env::temp_dir().join(format!("leqa-chaos-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let config = ServerConfig::new().read_poll_ms(10);
    let store_dir = dir.clone();
    let chaotic_server = move |seed: u64| -> Server {
        let plan = FaultPlan::parse(&format!(
            "seed={seed},delay=1:0.05,drop=0.03,truncate=0.03,flip=0.03,kill=150,\
             rdrop=0.03,rtruncate=0.03,rflip=0.03"
        ))
        .expect("valid plan");
        let session = Session::builder()
            .cache_dir(&store_dir)
            .build()
            .expect("chaotic session");
        Server::with_chaos(session, config, plan)
    };

    let shard = Shard::new();
    shard.set_read_poll_ms(10);
    for seed in 1..=3u64 {
        shard
            .spawn_replica(chaotic_server(seed))
            .expect("replica spawns");
    }
    // Restarted replicas are chaotic too (fresh seeds), warm from the
    // shared snapshot store; the budget comfortably covers the planned
    // kill schedule but is still bounded.
    let restarts = std::sync::atomic::AtomicU64::new(100);
    shard.supervise(
        move || {
            let seed = restarts.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Ok(chaotic_server(seed))
        },
        64,
    );

    let bound = shard.bind("127.0.0.1:0").expect("bind");
    let addr = bound.local_addr();
    let handle = std::thread::spawn(move || bound.run());

    let direct = Session::builder().build().expect("direct session");
    let expected = expected_replies(&direct);

    let mut client = RetryClient::new(addr, 0xC0FFEE);
    let mut retried = 0usize;
    for (i, want) in expected.iter().enumerate() {
        let line = request_line(i);
        let mut attempts_used = 1;
        let got = loop {
            match client.attempt(&line) {
                Attempt::Reply(reply) => break reply,
                Attempt::Retry(why) => {
                    retried += 1;
                    attempts_used += 1;
                    assert!(
                        attempts_used <= MAX_ATTEMPTS,
                        "request {i} did not converge (last: {why})"
                    );
                    client.backoff(attempts_used - 2);
                }
            }
        };
        assert_eq!(&got, want, "request {i} must be byte-identical");
    }
    assert!(
        retried > 0,
        "the fault plan should have forced at least one retry across {REQUESTS} requests"
    );

    shard.shutdown();
    handle.join().expect("no panic").expect("clean exit");
    let _ = std::fs::remove_dir_all(&dir);
}
