//! The shared-state contract of [`Session`]: `Send + Sync`, `&self`
//! endpoints hammered from many threads with byte-identical responses,
//! coherent atomic cache accounting, and batch/serial bit-identity.

use leqa_api::{
    CompareRequest, EstimateRequest, MapRequest, ProgramSpec, Request, Session, SweepRequest,
    ZonesRequest,
};

/// The `Send + Sync` contract is part of the public API: a concurrent
/// service shares one `Session` across its worker threads.
#[test]
fn session_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Session>();
    assert_send_sync::<leqa_api::ProgramHandle>();
}

fn mixed_requests() -> Vec<Request> {
    vec![
        Request::Estimate(EstimateRequest::new(ProgramSpec::bench("8bitadder"))),
        Request::Estimate(EstimateRequest::new(ProgramSpec::bench("qft_8"))),
        Request::Zones(ZonesRequest::new(ProgramSpec::bench("8bitadder")).with_limit(3)),
        Request::Sweep(SweepRequest::new(ProgramSpec::bench("qft_8"), [4, 10, 20])),
        Request::Compare(CompareRequest::new(ProgramSpec::bench("8bitadder")).with_fabric(12, 12)),
        Request::Map(MapRequest::new(ProgramSpec::bench("qft_8")).with_trace_limit(5)),
        Request::Estimate(EstimateRequest::new(ProgramSpec::source(
            ".qubits 3\ncnot 0 1\nh 2\ncnot 1 2\n",
        ))),
    ]
}

/// Distinct programs named by [`mixed_requests`].
const DISTINCT_PROGRAMS: u64 = 3;

/// Encodes a response slot the way a service would put it on the wire.
fn wire(slot: &Result<leqa_api::Response, leqa_api::LeqaError>) -> String {
    match slot {
        Ok(resp) => resp.to_json().encode(),
        Err(e) => format!("error: {e}"),
    }
}

#[test]
fn hammered_session_matches_the_serial_run_byte_for_byte() {
    let session = Session::builder().build().unwrap();
    let requests = mixed_requests();

    // Warm the cache once so every later load is a deterministic hit
    // (first-load `profile_cached` flags depend on arrival order under
    // true concurrency, by design).
    for req in &requests {
        session.load(req.program()).unwrap();
    }
    let warm = session.cache_stats();
    assert_eq!(warm.cache_misses, DISTINCT_PROGRAMS);
    assert_eq!(warm.cache_hits + warm.cache_misses, warm.loads);

    // The serial reference run, on the same session.
    let expected: Vec<String> = requests
        .iter()
        .map(|req| wire(&session.execute(req)))
        .collect();

    // Hammer: N threads share the session and each replays the whole
    // mixed set several times.
    const THREADS: usize = 8;
    const ROUNDS: usize = 3;
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let session = &session;
            let requests = &requests;
            let expected = &expected;
            scope.spawn(move || {
                for _ in 0..ROUNDS {
                    for (req, want) in requests.iter().zip(expected) {
                        let got = wire(&session.execute(req));
                        assert_eq!(&got, want, "concurrent response diverged");
                    }
                }
            });
        }
    });

    // Accounting stayed coherent under fire: every load was counted
    // exactly once as a hit or a miss, no load re-lowered a program.
    let stats = session.cache_stats();
    assert_eq!(stats.cache_hits + stats.cache_misses, stats.loads);
    assert_eq!(stats.cache_misses, DISTINCT_PROGRAMS);
    // One load per request in the warm pass, the serial pass, and every
    // hammer round.
    let total_loads = (requests.len() as u64) * (2 + (THREADS * ROUNDS) as u64);
    assert_eq!(stats.loads, total_loads);
    // Profiles are exactly-once per program no matter how many threads
    // raced (`map` never builds one, so at most DISTINCT_PROGRAMS).
    assert!(stats.profile_builds <= DISTINCT_PROGRAMS);
}

#[test]
fn concurrent_first_loads_build_each_profile_once() {
    // No pre-warm: threads race on cold programs. Responses may disagree
    // on `profile_cached` (by design), but the cache must stay coherent:
    // one miss per distinct program, everything else hits.
    let session = Session::builder().build().unwrap();
    let req = EstimateRequest::new(ProgramSpec::bench("qft_8"));
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let session = &session;
            let req = &req;
            scope.spawn(move || {
                let resp = session.estimate(req).unwrap();
                assert!(resp.latency_us > 0.0);
            });
        }
    });
    let stats = session.cache_stats();
    assert_eq!(stats.cache_hits + stats.cache_misses, stats.loads);
    assert_eq!(stats.loads, 8);
    assert!(stats.cache_misses >= 1, "someone had to lower the program");
    assert_eq!(
        stats.profile_builds, 1,
        "OnceLock keeps profiles exactly-once"
    );
}

#[test]
fn batch_is_bit_identical_to_the_serial_order() {
    let requests = mixed_requests();

    // Serial reference: a fresh session executing request by request,
    // with the batch's per-slot error context applied.
    let serial_session = Session::builder().build().unwrap();
    let serial: Vec<Result<leqa_api::Response, leqa_api::LeqaError>> = requests
        .iter()
        .enumerate()
        .map(|(i, req)| {
            serial_session
                .execute(req)
                .map_err(|e| e.context(format!("batch request {i}")))
        })
        .collect();

    let batch_session = Session::builder().build().unwrap();
    let batch = batch_session.batch(&requests);

    assert_eq!(batch.results.len(), serial.len());
    for (got, want) in batch.results.iter().zip(&serial) {
        assert_eq!(
            wire(got),
            wire(want),
            "wire bytes must match the serial order"
        );
    }
    // Including the cache accounting.
    assert_eq!(batch_session.cache_stats(), serial_session.cache_stats());

    // A second identical batch is all hits, and still byte-stable.
    let again = batch_session.batch(&requests);
    let stats = batch_session.cache_stats();
    assert_eq!(stats.cache_hits + stats.cache_misses, stats.loads);
    assert_eq!(stats.cache_misses, DISTINCT_PROGRAMS);
    for (slot, first) in again.results.iter().zip(&batch.results) {
        match (slot, first) {
            (Ok(a), Ok(b)) => {
                let mut a = a.to_json().encode();
                let mut b = b.to_json().encode();
                // Only the cache flag may differ between a cold and a
                // warm batch.
                a = a.replace("\"profile_cached\":false", "\"profile_cached\":true");
                b = b.replace("\"profile_cached\":false", "\"profile_cached\":true");
                assert_eq!(a, b);
            }
            other => panic!("unexpected slots: {other:?}"),
        }
    }
}

#[test]
fn clear_cache_is_safe_under_concurrent_loads() {
    // Smoke: loads racing a cache clear must neither deadlock nor
    // corrupt accounting (hits + misses == loads throughout).
    let session = Session::builder().build().unwrap();
    let req = EstimateRequest::new(ProgramSpec::bench("qft_8"));
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let session = &session;
            let req = &req;
            scope.spawn(move || {
                for _ in 0..5 {
                    session.estimate(req).unwrap();
                }
            });
        }
        let session = &session;
        scope.spawn(move || {
            for _ in 0..10 {
                session.clear_cache();
            }
        });
    });
    let stats = session.cache_stats();
    assert_eq!(stats.cache_hits + stats.cache_misses, stats.loads);
    assert_eq!(stats.loads, 20);
}
