//! Integration tests of the `frame1` binary protocol: upgrade
//! negotiation, pipelined out-of-order completion, byte-identity with
//! NDJSON/direct-session replies, framing-violation handling, and
//! tag-carrying admission refusals (ISSUE 6 acceptance bar).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;

use leqa_api::{
    json, write_frame, ControlFrame, ErrorFrame, ErrorKind, EstimateRequest, FrameDecoder,
    FrameProto, LeqaError, ProgramSpec, Request, Server, ServerConfig, Session, StatsResponse,
    UpgradeAck, MAX_FRAME_PAYLOAD,
};

fn start(config: ServerConfig) -> (Server, SocketAddr, JoinHandle<Result<(), LeqaError>>) {
    let server = Server::with_config(Session::builder().build().expect("default session"), config);
    let bound = server.bind("127.0.0.1:0").expect("bind loopback");
    let addr = bound.local_addr();
    let handle = std::thread::spawn(move || bound.run());
    (server, addr, handle)
}

fn estimate_line(name: &str) -> String {
    Request::Estimate(EstimateRequest::new(ProgramSpec::bench(name)))
        .to_json()
        .encode()
}

/// A `frame1` protocol client: performs the upgrade handshake on
/// connect, then sends and receives tagged frames.
struct FrameClient {
    stream: TcpStream,
    decoder: FrameDecoder,
}

impl FrameClient {
    fn connect(addr: SocketAddr) -> FrameClient {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let upgrade = ControlFrame::Upgrade(FrameProto::Frame1).to_json().encode();
        stream.write_all(upgrade.as_bytes()).expect("send upgrade");
        stream.write_all(b"\n").expect("send newline");
        stream.flush().expect("flush");
        // Read the NDJSON ack byte by byte: a buffered reader could
        // swallow the start of the frame stream.
        let mut ack = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            assert_eq!(stream.read(&mut byte).expect("read ack"), 1, "EOF in ack");
            if byte[0] == b'\n' {
                break;
            }
            ack.push(byte[0]);
        }
        let ack = String::from_utf8(ack).expect("utf8 ack");
        let ack = UpgradeAck::from_json(&json::parse(&ack).expect("ack json")).expect("ack frame");
        assert_eq!(ack.proto, FrameProto::Frame1);
        FrameClient {
            stream,
            decoder: FrameDecoder::new(),
        }
    }

    fn send(&mut self, tag: u32, payload: &str) {
        write_frame(&mut self.stream, tag, payload.as_bytes()).expect("send frame");
        self.stream.flush().expect("flush");
    }

    fn recv(&mut self) -> (u32, String) {
        let mut buf = [0u8; 16 * 1024];
        loop {
            if let Some((tag, payload)) = self.decoder.next().expect("well-formed frame") {
                return (tag, String::from_utf8(payload).expect("utf8 payload"));
            }
            let n = self.stream.read(&mut buf).expect("read");
            assert!(n > 0, "server closed the connection unexpectedly");
            self.decoder.push(&buf[..n]);
        }
    }
}

fn shutdown_via(addr: SocketAddr) {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    writeln!(writer, "{}", ControlFrame::Shutdown.to_json().encode()).expect("send");
    writer.flush().expect("flush");
    let mut ack = String::new();
    reader.read_line(&mut ack).expect("read ack");
    assert!(ack.contains("\"op\":\"shutdown\""), "ack: {ack}");
}

/// The tentpole contract: many tagged requests in flight at once, each
/// reply matched to its request by tag — in whatever order the replies
/// complete — and every payload byte-identical to a direct session.
#[test]
fn pipelined_frames_complete_out_of_order_with_byte_identical_payloads() {
    let (_server, addr, handle) = start(ServerConfig::new());
    let mut client = FrameClient::connect(addr);

    // Distinct programs with distinct costs under non-sequential tags.
    let requests: Vec<(u32, String)> = [
        (701, "qft_24"),
        (9, "qft_8"),
        (u32::MAX, "8bitadder"),
        (42, "qft_16"),
    ]
    .into_iter()
    .map(|(tag, name)| (tag, estimate_line(name)))
    .collect();

    // Fire everything before reading anything: all four are in flight.
    for (tag, line) in &requests {
        client.send(*tag, line);
    }
    let mut replies = std::collections::HashMap::new();
    let mut arrival = Vec::new();
    for _ in 0..requests.len() {
        let (tag, payload) = client.recv();
        arrival.push(tag);
        assert!(
            replies.insert(tag, payload).is_none(),
            "duplicate tag {tag}"
        );
    }
    // Second wave after the cache is provably warm (tags may repeat once
    // the earlier use completed): the repeat must take the cached path.
    client.send(0, &estimate_line("qft_8"));
    let (tag, warm_reply) = client.recv();
    assert_eq!(tag, 0);
    replies.insert(0, warm_reply);
    arrival.push(0);

    // Expected bytes: the same request sequence against a direct session.
    let direct = Session::builder().build().unwrap();
    let cold: std::collections::HashMap<&str, String> = ["qft_24", "qft_8", "8bitadder", "qft_16"]
        .into_iter()
        .map(|name| {
            let reply = direct
                .execute(&Request::Estimate(EstimateRequest::new(
                    ProgramSpec::bench(name),
                )))
                .unwrap()
                .to_json()
                .encode();
            (name, reply)
        })
        .collect();
    let warm_qft8 = direct
        .execute(&Request::Estimate(EstimateRequest::new(
            ProgramSpec::bench("qft_8"),
        )))
        .unwrap()
        .to_json()
        .encode();

    assert_eq!(replies[&701], cold["qft_24"]);
    assert_eq!(replies[&9], cold["qft_8"]);
    assert_eq!(replies[&u32::MAX], cold["8bitadder"]);
    assert_eq!(replies[&42], cold["qft_16"]);
    assert_eq!(
        replies[&0], warm_qft8,
        "repeat is served from the warm cache"
    );
    assert_eq!(arrival.len(), 5, "one reply per request: {arrival:?}");

    // Control frames work on the frame transport too: stats counts the
    // five estimates and the byte traffic in both directions.
    client.send(7, &ControlFrame::Stats.to_json().encode());
    let (tag, payload) = client.recv();
    assert_eq!(tag, 7);
    let stats = StatsResponse::from_json(&json::parse(&payload).unwrap()).unwrap();
    assert_eq!(stats.estimate, 5, "{payload}");
    assert!(stats.bytes_in > 0 && stats.bytes_out > 0, "{payload}");

    shutdown_via(addr);
    handle.join().expect("no panic").expect("clean run");
}

/// Framing violations are protocol-fatal: one typed error frame (tag 0
/// when the offending header never arrived), then the connection closes.
#[test]
fn truncated_frame_yields_a_typed_error_then_close() {
    let (_server, addr, handle) = start(ServerConfig::new());
    let mut client = FrameClient::connect(addr);

    // Half a header, then EOF on the write half.
    client.stream.write_all(&[1, 2, 3]).expect("partial header");
    client.stream.flush().expect("flush");
    client
        .stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");

    let (tag, payload) = client.recv();
    assert_eq!(tag, 0, "no decodable header, so the error frame uses tag 0");
    let frame = ErrorFrame::from_json(&json::parse(&payload).unwrap()).expect("error frame");
    assert_eq!(frame.error.kind(), ErrorKind::Json);
    assert!(payload.contains("mid-frame"), "{payload}");

    shutdown_via(addr);
    handle.join().expect("no panic").expect("clean run");
}

/// An oversized length prefix is refused before any allocation, with the
/// error frame carrying the offending frame's tag.
#[test]
fn oversized_frame_is_refused_with_its_tag() {
    let (_server, addr, handle) = start(ServerConfig::new());
    let mut client = FrameClient::connect(addr);

    let mut header = Vec::new();
    header.extend_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
    header.extend_from_slice(&513u32.to_le_bytes());
    client.stream.write_all(&header).expect("send header");
    client.stream.flush().expect("flush");

    let (tag, payload) = client.recv();
    assert_eq!(tag, 513, "error frame routes back to the offending tag");
    let frame = ErrorFrame::from_json(&json::parse(&payload).unwrap()).expect("error frame");
    assert_eq!(frame.error.kind(), ErrorKind::Json);
    assert!(payload.contains("exceeds"), "{payload}");

    shutdown_via(addr);
    handle.join().expect("no panic").expect("clean run");
}

/// Saturating `--max-inflight` in frame mode refuses the excess frame
/// with an `overloaded` error frame carrying **that frame's tag**, so a
/// pipelining client knows exactly which request to retry. Deterministic
/// via the FIFO gate (the hog blocks inside its program load).
#[test]
#[cfg(unix)]
fn overloaded_refusal_carries_the_offending_tag() {
    let (_server, addr, handle) = start(ServerConfig::new().max_inflight(1));

    let dir = std::env::temp_dir().join(format!("leqa-frames-overload-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let fifo = dir.join("gate.qc");
    let status = std::process::Command::new("mkfifo")
        .arg(&fifo)
        .status()
        .expect("mkfifo runs");
    assert!(status.success(), "mkfifo failed");

    let mut client = FrameClient::connect(addr);
    let hog_line = Request::Estimate(EstimateRequest::new(ProgramSpec::path(
        fifo.to_str().expect("utf8 path"),
    )))
    .to_json()
    .encode();
    client.send(11, &hog_line);

    // Control frames bypass admission: poll stats until the hog provably
    // holds the slot (blocked reading the FIFO).
    let stats_line = ControlFrame::Stats.to_json().encode();
    loop {
        client.send(1, &stats_line);
        let (tag, payload) = client.recv();
        assert_eq!(tag, 1);
        let stats = StatsResponse::from_json(&json::parse(&payload).unwrap()).unwrap();
        if stats.inflight >= 1 {
            assert_eq!(stats.frames_in_flight, 1, "{payload}");
            break;
        }
        std::thread::yield_now();
    }

    // Saturated: the refusal is an error frame tagged 77, not 11.
    client.send(77, &estimate_line("qft_8"));
    let (tag, payload) = client.recv();
    assert_eq!(tag, 77, "refusal routes to the refused request");
    let frame = ErrorFrame::from_json(&json::parse(&payload).unwrap()).expect("error frame");
    assert_eq!(frame.error.kind(), ErrorKind::Overloaded);
    assert_eq!(frame.error.exit_code(), 9);

    // Release the gate: the hog's reply arrives under its own tag.
    std::fs::write(&fifo, ".qubits 2\ncnot 0 1\nh 0\n").expect("feed the fifo");
    let (tag, payload) = client.recv();
    assert_eq!(tag, 11);
    assert!(
        payload.starts_with("{\"schema_version\":1,\"op\":\"estimate\""),
        "hog reply: {payload}"
    );

    // Recovery: the refused tag can be retried and now succeeds.
    client.send(77, &estimate_line("qft_8"));
    let (tag, payload) = client.recv();
    assert_eq!(tag, 77);
    assert!(
        payload.starts_with("{\"schema_version\":1,\"op\":\"estimate\""),
        "retried reply: {payload}"
    );

    shutdown_via(addr);
    handle.join().expect("no panic").expect("clean run");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A second upgrade on an already-upgraded connection is refused with a
/// typed error (and the connection keeps working).
#[test]
fn double_upgrade_is_refused() {
    let (_server, addr, handle) = start(ServerConfig::new());
    let mut client = FrameClient::connect(addr);

    client.send(
        3,
        &ControlFrame::Upgrade(FrameProto::Frame1).to_json().encode(),
    );
    let (tag, payload) = client.recv();
    assert_eq!(tag, 3);
    let frame = ErrorFrame::from_json(&json::parse(&payload).unwrap()).expect("error frame");
    assert_eq!(frame.error.kind(), ErrorKind::Json);
    assert!(payload.contains("already upgraded"), "{payload}");

    client.send(4, &estimate_line("qft_8"));
    let (tag, payload) = client.recv();
    assert_eq!(tag, 4);
    assert!(payload.contains("\"op\":\"estimate\""), "{payload}");

    shutdown_via(addr);
    handle.join().expect("no panic").expect("clean run");
}
