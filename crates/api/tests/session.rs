//! Integration tests of the [`Session`] façade: endpoint parity with the
//! engine crates, profile-cache accounting, batch semantics, and the
//! error taxonomy end to end.

use leqa_api::{
    BatchResponse, CompareRequest, ErrorKind, EstimateRequest, MapRequest, ProgramSpec, Request,
    Response, Session, SweepRequest, ZonesRequest,
};

fn session() -> Session {
    Session::builder().build().expect("default session builds")
}

#[test]
fn estimate_matches_the_engine_bit_for_bit() {
    use leqa::Estimator;
    use leqa_circuit::{decompose::lower_to_ft, Qodg};
    use leqa_fabric::{FabricDims, PhysicalParams};

    let s = session();
    let resp = s
        .estimate(&EstimateRequest::new(ProgramSpec::bench("8bitadder")))
        .unwrap();

    let circuit = leqa_workloads::circuit_by_name("8bitadder").unwrap();
    let qodg = Qodg::from_ft_circuit(&lower_to_ft(&circuit).unwrap());
    let direct = Estimator::new(FabricDims::dac13(), PhysicalParams::dac13())
        .estimate(&qodg)
        .unwrap();

    assert_eq!(resp.latency_us, direct.latency.as_f64());
    assert_eq!(resp.l_cnot_avg_us, direct.l_cnot_avg.as_f64());
    assert_eq!(resp.esq, direct.esq);
    assert_eq!(resp.critical_cnots, direct.critical.cnot_count);
    assert_eq!(resp.program.qubits, 24);
    assert_eq!(resp.program.ops, 822);
    assert!(!resp.profile_cached);
}

#[test]
fn repeat_requests_hit_the_profile_cache() {
    let s = session();
    let req = EstimateRequest::new(ProgramSpec::bench("8bitadder"));
    let first = s.estimate(&req).unwrap();
    let second = s.estimate(&req).unwrap();
    assert!(!first.profile_cached);
    assert!(second.profile_cached);
    assert_eq!(first.latency_us, second.latency_us);
    assert_eq!(s.cache_stats().profile_builds, 1);
    assert_eq!(s.cache_stats().cache_hits, 1);
}

#[test]
fn cache_keys_by_content_not_by_spec() {
    // The same circuit through `bench` and `source` shares one profile.
    let s = session();
    let via_bench = s
        .estimate(&EstimateRequest::new(ProgramSpec::bench("8bitadder")))
        .unwrap();
    let text = s
        .load(&ProgramSpec::bench("8bitadder"))
        .unwrap()
        .source()
        .to_string();
    let via_source = s
        .estimate(&EstimateRequest::new(ProgramSpec::source(text)))
        .unwrap();
    assert!(via_source.profile_cached);
    assert_eq!(via_bench.latency_us, via_source.latency_us);
    assert_eq!(s.cache_stats().profile_builds, 1);
}

#[test]
fn cache_hits_keep_the_requesting_specs_label() {
    // Regression: a cache hit must not echo the label of whichever spec
    // first populated the cache — each response is labelled by the spec
    // the current request named.
    let s = session();
    let via_source = s
        .load(&ProgramSpec::source(".qubits 2\ncnot 0 1\n"))
        .unwrap();
    assert_eq!(via_source.label(), "<inline>");
    let via_path = {
        let dir = std::env::temp_dir().join("leqa-api-label-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.qc");
        std::fs::write(&path, ".qubits 2\ncnot 0 1\n").unwrap();
        s.load(&ProgramSpec::path(path.to_string_lossy().into_owned()))
            .unwrap()
    };
    // Same content → cache hit, but the label follows the new spec.
    assert_eq!(s.cache_stats().cache_hits, 1);
    assert!(
        via_path.label().ends_with("tiny.qc"),
        "{}",
        via_path.label()
    );
    let resp = s
        .estimate(&EstimateRequest::new(ProgramSpec::source(
            ".qubits 2\ncnot 0 1\n",
        )))
        .unwrap();
    assert!(resp.profile_cached);
    assert_eq!(resp.program.label, "<inline>");
}

#[test]
fn profiles_are_lazy_map_never_builds_one() {
    // `map` and `gen` never touch the presence-zone model, so the profile
    // pass must not run for them.
    let s = session();
    s.map(&MapRequest::new(ProgramSpec::bench("8bitadder")))
        .unwrap();
    assert_eq!(s.cache_stats().profile_builds, 0);
    // The first estimator-side request forces it, exactly once.
    s.estimate(&EstimateRequest::new(ProgramSpec::bench("8bitadder")))
        .unwrap();
    s.zones(&ZonesRequest::new(ProgramSpec::bench("8bitadder")))
        .unwrap();
    assert_eq!(s.cache_stats().profile_builds, 1);
}

#[test]
fn batch_builds_each_profile_exactly_once() {
    // The acceptance criterion: a batch naming N programs (with repeats)
    // builds each ProgramProfile exactly once; every further use is a
    // cache hit.
    let s = session();
    let a = || ProgramSpec::bench("8bitadder");
    let b = || ProgramSpec::bench("qft_8");
    let requests = vec![
        Request::Estimate(EstimateRequest::new(a())),
        Request::Estimate(EstimateRequest::new(b())),
        Request::Estimate(EstimateRequest::new(a())),
        Request::Zones(ZonesRequest::new(a()).with_limit(3)),
        Request::Sweep(SweepRequest::new(b(), [10, 20, 60])),
    ];
    let batch = s.batch(&requests);
    assert_eq!(batch.results.len(), 5);
    for slot in &batch.results {
        assert!(slot.is_ok(), "{slot:?}");
    }
    let stats = s.cache_stats();
    assert_eq!(stats.profile_builds, 2, "two distinct programs");
    assert_eq!(stats.cache_hits, 3, "three repeat namings");
}

#[test]
fn batch_matches_individual_calls_and_isolates_failures() {
    let requests = vec![
        Request::Estimate(EstimateRequest::new(ProgramSpec::bench("8bitadder"))),
        Request::Estimate(EstimateRequest::new(ProgramSpec::bench("no-such-bench"))),
        Request::Compare(CompareRequest::new(ProgramSpec::bench("qft_8")).with_fabric(12, 12)),
        // Fits errors stay per-slot too: 24 qubits cannot fit 2x2.
        Request::Estimate(EstimateRequest::new(ProgramSpec::bench("8bitadder")).with_fabric(2, 2)),
    ];
    let batch = session().batch(&requests);

    let serial = session();
    match (&batch.results[0], serial.execute(&requests[0])) {
        (Ok(Response::Estimate(a)), Ok(Response::Estimate(b))) => {
            assert_eq!(a.latency_us, b.latency_us);
        }
        other => panic!("unexpected: {other:?}"),
    }
    match &batch.results[1] {
        Err(e) => {
            assert_eq!(e.kind(), ErrorKind::Usage);
            assert!(e.to_string().contains("batch request 1"), "{e}");
        }
        ok => panic!("expected usage error, got {ok:?}"),
    }
    match (&batch.results[2], serial.execute(&requests[2])) {
        (Ok(Response::Compare(a)), Ok(Response::Compare(b))) => {
            assert_eq!(a.actual_us, b.actual_us);
            assert_eq!(a.estimated_us, b.estimated_us);
        }
        other => panic!("unexpected: {other:?}"),
    }
    match &batch.results[3] {
        Err(e) => assert_eq!(e.kind(), ErrorKind::Estimate),
        ok => panic!("expected estimate error, got {ok:?}"),
    }

    // The batch round-trips through its JSON envelope.
    let wire = batch.to_json().encode();
    let back = BatchResponse::from_json(&leqa_api::json::parse(&wire).unwrap()).unwrap();
    assert_eq!(back, batch);
}

#[test]
fn sweep_matches_the_sweep_engine() {
    let s = session();
    let resp = s
        .sweep(&SweepRequest::new(
            ProgramSpec::bench("8bitadder"),
            [4, 10, 60],
        ))
        .unwrap();
    assert_eq!(resp.points.len(), 3);
    // 24 qubits: 4x4 = 16 ULBs is too small.
    assert_eq!(resp.points[0].latency_us, None);
    assert!(resp.points[1].latency_us.is_some());
    assert_eq!(resp.optimal_side, Some(60));
}

#[test]
fn zones_limit_semantics() {
    let s = session();
    let all = s
        .zones(&ZonesRequest::new(ProgramSpec::bench("8bitadder")))
        .unwrap();
    assert_eq!(all.rows.len() as u64, all.total_rows);
    let limited = s
        .zones(&ZonesRequest::new(ProgramSpec::bench("8bitadder")).with_limit(2))
        .unwrap();
    assert_eq!(limited.rows.len(), 2);
    assert_eq!(limited.total_rows, all.total_rows);
    // Strongest first.
    assert!(limited.rows[0].strength >= limited.rows[1].strength);
    // limit 0 == no limit.
    let zero = s
        .zones(&ZonesRequest::new(ProgramSpec::bench("8bitadder")).with_limit(0))
        .unwrap();
    assert_eq!(zero.rows.len() as u64, zero.total_rows);
}

#[test]
fn map_and_compare_agree_on_the_actual_latency() {
    let s = session();
    let spec = || ProgramSpec::bench("8bitadder");
    let map = s.map(&MapRequest::new(spec()).with_trace_limit(3)).unwrap();
    let cmp = s.compare(&CompareRequest::new(spec())).unwrap();
    assert_eq!(map.latency_us, cmp.actual_us);
    assert!(map.trace.as_deref().unwrap().contains("dist"));
    let err = cmp.error_pct.expect("nonzero actual");
    assert!(err >= 0.0);
}

#[test]
fn error_taxonomy_end_to_end() {
    let s = session();

    let usage = s
        .estimate(&EstimateRequest::new(ProgramSpec::bench("nope")))
        .unwrap_err();
    assert_eq!(usage.kind(), ErrorKind::Usage);
    assert_eq!(usage.exit_code(), 2);

    let io = s
        .estimate(&EstimateRequest::new(ProgramSpec::path(
            "/nonexistent/x.qc",
        )))
        .unwrap_err();
    assert_eq!(io.kind(), ErrorKind::Io);
    assert!(io.to_string().contains("reading `/nonexistent/x.qc`"));

    let parse = s
        .estimate(&EstimateRequest::new(ProgramSpec::source("frobnicate 1 2")))
        .unwrap_err();
    assert_eq!(parse.kind(), ErrorKind::Parse);

    let map = s
        .map(&MapRequest::new(ProgramSpec::bench("8bitadder")).with_fabric(2, 2))
        .unwrap_err();
    assert_eq!(map.kind(), ErrorKind::Map);

    let invalid = s
        .estimate(&EstimateRequest::new(ProgramSpec::bench("8bitadder")).with_fabric(0, 5))
        .unwrap_err();
    assert_eq!(invalid.kind(), ErrorKind::Invalid);
}

#[test]
fn builder_rejects_invalid_options() {
    let err = Session::builder()
        .options(leqa::EstimatorOptions {
            max_esq_terms: 0,
            ..Default::default()
        })
        .build()
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Invalid);
}

#[test]
fn clear_cache_forces_a_rebuild() {
    let s = session();
    let req = EstimateRequest::new(ProgramSpec::bench("qft_8"));
    s.estimate(&req).unwrap();
    s.clear_cache();
    let resp = s.estimate(&req).unwrap();
    assert!(!resp.profile_cached);
    assert_eq!(s.cache_stats().profile_builds, 2);
}

// ── Streaming path ───────────────────────────────────────────────────────

/// A threshold-0 session streams every streamable workload; the response
/// must be byte-identical to the materialized one (same floats, same
/// summary), because the paper's numbers cannot depend on *how* they were
/// computed.
#[test]
fn streamed_estimate_is_byte_identical_to_materialized() {
    let streaming = Session::builder().streaming_threshold(0).build().unwrap();
    let materialized = session();
    assert_eq!(materialized.streaming_threshold(), 1_000_000);

    let req = EstimateRequest::new(ProgramSpec::bench("shor_16_2"));
    let streamed = streaming.estimate(&req).unwrap();
    let direct = materialized.estimate(&req).unwrap();

    assert_eq!(streamed.latency_us, direct.latency_us);
    assert_eq!(streamed.l_cnot_avg_us, direct.l_cnot_avg_us);
    assert_eq!(streamed.l_one_qubit_avg_us, direct.l_one_qubit_avg_us);
    assert_eq!(streamed.d_uncong_us, direct.d_uncong_us);
    assert_eq!(streamed.avg_zone_area, direct.avg_zone_area);
    assert_eq!(streamed.zone_side, direct.zone_side);
    assert_eq!(streamed.esq, direct.esq);
    assert_eq!(streamed.critical_cnots, direct.critical_cnots);
    assert_eq!(streamed.critical_one_qubit, direct.critical_one_qubit);
    assert_eq!(streamed.program.label, direct.program.label);
    assert_eq!(streamed.program.qubits, direct.program.qubits);
    assert_eq!(streamed.program.ops, direct.program.ops);
}

/// Streamed programs get the same cache accounting as materialized ones:
/// first request misses and builds, the repeat hits without a rebuild,
/// and `clear_cache` evicts the stream entry too.
#[test]
fn streamed_estimates_share_the_cache_discipline() {
    let s = Session::builder().streaming_threshold(0).build().unwrap();
    let req = EstimateRequest::new(ProgramSpec::bench("shor_12_2"));

    let first = s.estimate(&req).unwrap();
    let second = s.estimate(&req).unwrap();
    assert!(!first.profile_cached);
    assert!(second.profile_cached);
    assert_eq!(first.latency_us, second.latency_us);
    assert_eq!(s.cache_stats().profile_builds, 1);
    assert_eq!(s.cache_stats().cache_hits, 1);
    assert_eq!(s.cache_stats().cache_misses, 1);

    s.clear_cache();
    let third = s.estimate(&req).unwrap();
    assert!(!third.profile_cached);
    assert_eq!(s.cache_stats().profile_builds, 2);
}

/// Below the threshold the materialized path serves streamable names —
/// the default-session behavior for every small `shor_N`.
#[test]
fn small_streams_stay_on_the_materialized_path() {
    let s = Session::builder()
        .streaming_threshold(u64::MAX)
        .build()
        .unwrap();
    let resp = s
        .estimate(&EstimateRequest::new(ProgramSpec::bench("shor_8")))
        .unwrap();
    // The materialized path loads through the sharded program cache.
    assert!(!resp.profile_cached);
    assert_eq!(s.cache_stats().cache_misses, 1);
}

/// `shor_0` and parameter overflows are *invalid* requests (a recognized
/// family with out-of-range parameters), not unknown names — the typed
/// distinction clients branch on.
#[test]
fn invalid_shor_parameters_get_a_typed_error() {
    let s = session();
    for name in ["shor_0", &format!("shor_{}_{}", u32::MAX, u32::MAX)] {
        let err = s
            .estimate(&EstimateRequest::new(ProgramSpec::bench(name)))
            .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Invalid, "{name}: {err}");
    }
    // Out-of-grammar spellings stay Usage ("unknown benchmark").
    let err = s
        .estimate(&EstimateRequest::new(ProgramSpec::bench("shor_x")))
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Usage, "{err}");
}
