//! Integration tests of the persistent service daemon: real TCP
//! sockets, concurrent clients, admission control, graceful shutdown.
//!
//! The acceptance bar (ISSUE 5): concurrent TCP clients receive
//! responses **byte-identical** to direct [`Session`] calls, and a
//! saturated inflight cap yields `overloaded` error frames followed by
//! successful requests once the load drains.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;

use leqa_api::{
    json, BatchRequest, CompareRequest, ControlFrame, ErrorFrame, ErrorKind, EstimateRequest,
    LeqaError, MapRequest, ProgramSpec, Request, Server, ServerConfig, Session, StatsResponse,
    SweepRequest, ZonesRequest,
};

/// Binds a fresh server on a loopback port and runs its accept loop on
/// a background thread.
fn start(config: ServerConfig) -> (Server, SocketAddr, JoinHandle<Result<(), LeqaError>>) {
    let server = Server::with_config(Session::builder().build().expect("default session"), config);
    let bound = server.bind("127.0.0.1:0").expect("bind loopback");
    let addr = bound.local_addr();
    let handle = std::thread::spawn(move || bound.run());
    (server, addr, handle)
}

/// A line-oriented protocol client.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    /// Sends one line and reads the one reply line (newline stripped).
    fn roundtrip(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
        self.writer.flush().expect("flush");
        self.read_line()
    }

    fn read_line(&mut self) -> String {
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply).expect("read reply");
        assert!(n > 0, "server closed the connection unexpectedly");
        reply.trim_end_matches('\n').to_string()
    }
}

fn shutdown_via(addr: SocketAddr) {
    let mut client = Client::connect(addr);
    let ack = client.roundtrip(&ControlFrame::Shutdown.to_json().encode());
    assert!(ack.contains("\"op\":\"shutdown\""), "ack: {ack}");
}

/// The request mix one concurrent client sends, over its own distinct
/// program so `profile_cached` flags are deterministic under races.
fn client_mix(program: &str) -> Vec<Request> {
    let spec = ProgramSpec::bench(program);
    vec![
        Request::Estimate(EstimateRequest::new(spec.clone())),
        // Repeat: the second estimate must report `profile_cached`.
        Request::Estimate(EstimateRequest::new(spec.clone())),
        Request::Sweep(SweepRequest::new(spec.clone(), [10, 20, 40])),
        Request::Zones(ZonesRequest::new(spec.clone()).with_limit(5)),
        Request::Compare(CompareRequest::new(spec.clone()).with_fabric(40, 40)),
        Request::Map(MapRequest::new(spec).with_fabric(40, 40)),
    ]
}

#[test]
fn concurrent_tcp_clients_get_replies_byte_identical_to_direct_sessions() {
    let (_server, addr, handle) = start(ServerConfig::new());
    let programs = ["qft_8", "qft_16", "qft_24", "8bitadder"];

    let replies: Vec<Vec<String>> = std::thread::scope(|scope| {
        let workers: Vec<_> = programs
            .iter()
            .map(|program| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr);
                    client_mix(program)
                        .iter()
                        .map(|req| client.roundtrip(&req.to_json().encode()))
                        .collect::<Vec<String>>()
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("client"))
            .collect()
    });

    // Expected bytes: the same sequence against a fresh direct session
    // per client (each client used its own program, so per-client cache
    // history is independent of interleaving).
    for (program, got) in programs.iter().zip(&replies) {
        let direct = Session::builder().build().unwrap();
        for (req, reply) in client_mix(program).iter().zip(got) {
            let expected = direct.execute(req).expect("direct call").to_json().encode();
            assert_eq!(reply, &expected, "program {program}, request {req:?}");
        }
    }

    shutdown_via(addr);
    handle.join().expect("no panic").expect("clean run");
}

#[test]
fn batch_and_experiment_frames_are_byte_identical_to_direct_calls() {
    let (_server, addr, handle) = start(ServerConfig::new());
    let direct = Session::builder().build().unwrap();
    let mut client = Client::connect(addr);

    let batch = BatchRequest::new([
        Request::Estimate(EstimateRequest::new(ProgramSpec::bench("qft_8"))),
        Request::Estimate(EstimateRequest::new(ProgramSpec::bench("qft_8"))),
        Request::Estimate(EstimateRequest::new(ProgramSpec::bench("nope"))),
        Request::Zones(ZonesRequest::new(ProgramSpec::bench("qft_16")).with_limit(3)),
    ]);
    let reply = client.roundtrip(&batch.to_json().encode());
    let expected = direct.batch(&batch.requests).to_json().encode();
    assert_eq!(reply, expected);

    // The experiment frame rides the same session state (cache deltas in
    // the summary match because both sides ran the batch first).
    let spec = leqa_api::ScenarioSpec::new(
        ["qft_8", "qft_16"],
        [
            leqa_api::FabricEntry::Side(20),
            leqa_api::FabricEntry::Side(40),
        ],
    );
    let reply = client.roundtrip(&spec.to_json().encode());
    let expected = direct
        .batch_experiment(&spec)
        .expect("experiment runs")
        .to_json()
        .encode();
    assert_eq!(reply, expected);

    shutdown_via(addr);
    handle.join().expect("no panic").expect("clean run");
}

/// Saturates the single inflight slot **deterministically**: the hog's
/// `estimate` names a FIFO path, so the server blocks inside the
/// program load (holding the slot) until this test writes the circuit —
/// no timing assumptions anywhere.
#[test]
#[cfg(unix)]
fn saturated_inflight_cap_yields_overloaded_then_recovers() {
    let (_server, addr, handle) = start(ServerConfig::new().max_inflight(1));

    let dir = std::env::temp_dir().join(format!("leqa-server-overload-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let fifo = dir.join("gate.qc");
    let status = std::process::Command::new("mkfifo")
        .arg(&fifo)
        .status()
        .expect("mkfifo runs");
    assert!(status.success(), "mkfifo failed");

    let hog_line = Request::Estimate(EstimateRequest::new(ProgramSpec::path(
        fifo.to_str().expect("utf8 path"),
    )))
    .to_json()
    .encode();
    let hog = std::thread::spawn(move || {
        let mut client = Client::connect(addr);
        client.roundtrip(&hog_line)
    });

    // Control frames bypass admission control: poll stats until the hog
    // provably holds the slot (it is blocked reading the FIFO, so the
    // slot cannot be released before we write the circuit below).
    let mut probe = Client::connect(addr);
    let stats_line = ControlFrame::Stats.to_json().encode();
    loop {
        let reply = probe.roundtrip(&stats_line);
        let stats = StatsResponse::from_json(&json::parse(&reply).unwrap()).unwrap();
        if stats.inflight >= 1 {
            break;
        }
        std::thread::yield_now();
    }

    // Saturated: a work frame is refused with the typed, retryable kind.
    let estimate = Request::Estimate(EstimateRequest::new(ProgramSpec::bench("qft_8")))
        .to_json()
        .encode();
    let reply = probe.roundtrip(&estimate);
    let frame = ErrorFrame::from_json(&json::parse(&reply).unwrap()).expect("error frame");
    assert_eq!(frame.error.kind(), ErrorKind::Overloaded);
    assert_eq!(frame.error.exit_code(), 9);

    // Release the gate: the hog's load unblocks and completes normally.
    std::fs::write(&fifo, ".qubits 2\ncnot 0 1\nh 0\n").expect("feed the fifo");
    let hog_reply = hog.join().expect("hog client");
    assert!(
        hog_reply.starts_with("{\"schema_version\":1,\"op\":\"estimate\""),
        "hog reply: {hog_reply}"
    );

    // Recovery: the refused request now succeeds.
    let reply = probe.roundtrip(&estimate);
    assert!(
        reply.starts_with("{\"schema_version\":1,\"op\":\"estimate\""),
        "recovered reply: {reply}"
    );

    let reply = probe.roundtrip(&stats_line);
    let stats = StatsResponse::from_json(&json::parse(&reply).unwrap()).unwrap();
    assert!(stats.overloaded >= 1, "stats recorded the refusal");
    assert_eq!(stats.inflight, 0, "all permits released");

    shutdown_via(addr);
    handle.join().expect("no panic").expect("clean run");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn connection_cap_refuses_with_one_overloaded_frame() {
    let (_server, addr, handle) = start(ServerConfig::new().max_connections(1));

    let mut first = Client::connect(addr);
    // A roundtrip guarantees the first connection's thread is live
    // before the second connection arrives.
    let reply = first.roundtrip(&ControlFrame::Stats.to_json().encode());
    assert!(reply.contains("\"op\":\"stats\""));

    let mut refused = Client::connect(addr);
    let reply = refused.read_line();
    let frame = ErrorFrame::from_json(&json::parse(&reply).unwrap()).expect("error frame");
    assert_eq!(frame.error.kind(), ErrorKind::Overloaded);
    assert!(frame.error.to_string().contains("connections"));

    shutdown_via_open_client(&mut first);
    handle.join().expect("no panic").expect("clean run");
}

/// Shuts down through an already-open connection (a second connection
/// would be refused by the cap).
fn shutdown_via_open_client(client: &mut Client) {
    let ack = client.roundtrip(&ControlFrame::Shutdown.to_json().encode());
    assert!(ack.contains("\"op\":\"shutdown\""), "ack: {ack}");
}
