//! Keeps the human-facing error/exit-code tables in `API.md` and
//! `SERVER.md` in sync with the canonical taxonomy ([`ErrorKind::ALL`]
//! and [`LeqaError::exit_code`]): the markdown is parsed and compared
//! row-for-row, so adding a kind without documenting it (or documenting
//! a code the code base does not emit) fails the build.

use std::collections::BTreeMap;
use std::path::Path;

use leqa_api::{ErrorKind, LeqaError};

/// Extracts `(kind name, exit code)` rows from every markdown table in
/// `text` whose first cell is a backticked word and whose last cell is
/// an integer — exactly the shape of the error/exit-code tables.
fn parse_error_rows(text: &str) -> BTreeMap<String, u8> {
    let mut rows = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        let Some(first) = cells.first() else { continue };
        let Some(last) = cells.last() else { continue };
        let Some(name) = first.strip_prefix('`').and_then(|s| s.strip_suffix('`')) else {
            continue;
        };
        let Ok(code) = last.parse::<u8>() else {
            continue;
        };
        let previous = rows.insert(name.to_string(), code);
        assert!(previous.is_none(), "duplicate error-table row for `{name}`");
    }
    rows
}

fn canonical() -> BTreeMap<String, u8> {
    ErrorKind::ALL
        .iter()
        .map(|&kind| {
            (
                kind.name().to_string(),
                LeqaError::new(kind, "x").exit_code(),
            )
        })
        .collect()
}

fn doc(path: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(path);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

#[test]
fn api_md_error_table_matches_the_taxonomy() {
    let rows = parse_error_rows(&doc("API.md"));
    assert_eq!(
        rows,
        canonical(),
        "API.md's error/exit-code table drifted from ErrorKind::ALL"
    );
}

#[test]
fn server_md_error_table_matches_the_taxonomy() {
    let rows = parse_error_rows(&doc("SERVER.md"));
    assert_eq!(
        rows,
        canonical(),
        "SERVER.md's error/exit-code table drifted from ErrorKind::ALL"
    );
}

#[test]
fn the_parser_sees_through_the_markdown_shape() {
    // A regression guard for the parser itself: header rows, separator
    // rows and non-error tables must not produce rows.
    let sample = "\
| kind | meaning | exit code |\n\
|---|---|---|\n\
| `usage` | malformed request | 2 |\n\
| `io` | unreadable input | 3 |\n\
| endpoint | runs |\n\
| `batch` | everything | fan-out |\n";
    let rows = parse_error_rows(sample);
    assert_eq!(rows.len(), 2);
    assert_eq!(rows["usage"], 2);
    assert_eq!(rows["io"], 3);
}
