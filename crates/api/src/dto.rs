//! The request/response DTOs of the service surface.
//!
//! Plain structs with hand-rolled JSON codecs (see [`crate::json`]); every
//! envelope carries [`SCHEMA_VERSION`] so clients can detect incompatible
//! servers, and every `from_json` rejects versions it does not speak.
//! Requests are built through `new` + `with_*` builder methods because the
//! structs are `#[non_exhaustive]` — fields can be added without breaking
//! callers.

use qspr::{MovementModel, PlacementStrategy, RouterStrategy, SchedulerStrategy};

use crate::error::{ErrorKind, LeqaError};
use crate::json::Json;

/// Version of the wire schema spoken by this build (see `API.md`).
pub const SCHEMA_VERSION: u64 = 1;

/// Checks an envelope's `schema_version` field.
pub(crate) fn check_schema_version(value: &Json) -> Result<(), LeqaError> {
    match value.get("schema_version").and_then(Json::as_u64) {
        Some(SCHEMA_VERSION) => Ok(()),
        Some(other) => Err(LeqaError::new(
            ErrorKind::Json,
            format!("unsupported schema_version {other} (this build speaks {SCHEMA_VERSION})"),
        )),
        None => Err(LeqaError::new(
            ErrorKind::Json,
            "missing numeric `schema_version` field",
        )),
    }
}

pub(crate) fn field<'a>(value: &'a Json, key: &str, what: &str) -> Result<&'a Json, LeqaError> {
    value
        .get(key)
        .ok_or_else(|| LeqaError::new(ErrorKind::Json, format!("{what}: missing field `{key}`")))
}

pub(crate) fn str_field(value: &Json, key: &str, what: &str) -> Result<String, LeqaError> {
    field(value, key, what)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| LeqaError::new(ErrorKind::Json, format!("{what}: `{key}` must be a string")))
}

pub(crate) fn u64_field(value: &Json, key: &str, what: &str) -> Result<u64, LeqaError> {
    field(value, key, what)?.as_u64().ok_or_else(|| {
        LeqaError::new(
            ErrorKind::Json,
            format!("{what}: `{key}` must be a non-negative integer"),
        )
    })
}

pub(crate) fn f64_field(value: &Json, key: &str, what: &str) -> Result<f64, LeqaError> {
    field(value, key, what)?
        .as_f64()
        .ok_or_else(|| LeqaError::new(ErrorKind::Json, format!("{what}: `{key}` must be a number")))
}

/// Optional number: absent or `null` is `None`; any other non-number is a
/// typed error, exactly like the required-field accessors.
pub(crate) fn opt_f64(value: &Json, key: &str, what: &str) -> Result<Option<f64>, LeqaError> {
    match value.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_f64().map(Some).ok_or_else(|| {
            LeqaError::new(
                ErrorKind::Json,
                format!("{what}: `{key}` must be a number or null"),
            )
        }),
    }
}

/// Optional unsigned integer: absent or `null` is `None`; any other
/// non-integer is a typed error, like the required-field accessors.
pub(crate) fn opt_u64(value: &Json, key: &str, what: &str) -> Result<Option<u64>, LeqaError> {
    match value.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            LeqaError::new(
                ErrorKind::Json,
                format!("{what}: `{key}` must be a non-negative integer or null"),
            )
        }),
    }
}

/// Like [`opt_u64`], additionally requiring the value to fit in `u32`.
pub(crate) fn opt_u32(value: &Json, key: &str, what: &str) -> Result<Option<u32>, LeqaError> {
    opt_u64(value, key, what)?
        .map(|n| {
            u32::try_from(n).map_err(|_| {
                LeqaError::new(
                    ErrorKind::Json,
                    format!("{what}: `{key}` out of range for u32"),
                )
            })
        })
        .transpose()
}

pub(crate) fn json_opt_num(v: Option<f64>) -> Json {
    v.map(Json::Num).unwrap_or(Json::Null)
}

// ── Program specification ────────────────────────────────────────────────

/// How a request names the program to operate on.
///
/// `#[non_exhaustive]`: future sources (registries, URLs) may be added;
/// match with a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProgramSpec {
    /// A named workload: a Table 2/3 suite benchmark or a parametric
    /// generator name like `qft_64` (see
    /// [`leqa_workloads::circuit_by_name`]).
    Bench {
        /// The workload name.
        name: String,
    },
    /// A circuit file on disk in the shared `.qc` text format.
    Path {
        /// Path to the file.
        path: String,
    },
    /// Inline circuit text in the shared `.qc` format.
    Source {
        /// The circuit text.
        text: String,
    },
}

impl ProgramSpec {
    /// A named workload.
    #[must_use]
    pub fn bench(name: impl Into<String>) -> Self {
        ProgramSpec::Bench { name: name.into() }
    }

    /// A circuit file on disk.
    #[must_use]
    pub fn path(path: impl Into<String>) -> Self {
        ProgramSpec::Path { path: path.into() }
    }

    /// Inline circuit text.
    #[must_use]
    pub fn source(text: impl Into<String>) -> Self {
        ProgramSpec::Source { text: text.into() }
    }

    /// Serializes the spec (one single-key object, keyed by source kind).
    #[must_use]
    pub fn to_json(&self) -> Json {
        match self {
            ProgramSpec::Bench { name } => Json::obj(vec![("bench", Json::str(name))]),
            ProgramSpec::Path { path } => Json::obj(vec![("path", Json::str(path))]),
            ProgramSpec::Source { text } => Json::obj(vec![("source", Json::str(text))]),
        }
    }

    /// Decodes a spec serialized by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Json`] when none of the known source keys is present.
    pub fn from_json(value: &Json) -> Result<Self, LeqaError> {
        if let Some(name) = value.get("bench").and_then(Json::as_str) {
            Ok(ProgramSpec::bench(name))
        } else if let Some(path) = value.get("path").and_then(Json::as_str) {
            Ok(ProgramSpec::path(path))
        } else if let Some(text) = value.get("source").and_then(Json::as_str) {
            Ok(ProgramSpec::source(text))
        } else {
            Err(LeqaError::new(
                ErrorKind::Json,
                "program spec needs a `bench`, `path` or `source` string",
            ))
        }
    }
}

/// A fabric size on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricSpec {
    /// ULB columns.
    pub width: u32,
    /// ULB rows.
    pub height: u32,
}

impl FabricSpec {
    /// Creates a spec (validated against fabric rules at execution time).
    #[must_use]
    pub fn new(width: u32, height: u32) -> Self {
        FabricSpec { width, height }
    }

    /// Serializes the spec.
    #[must_use]
    pub fn to_json(self) -> Json {
        Json::obj(vec![
            ("width", Json::num(self.width)),
            ("height", Json::num(self.height)),
        ])
    }

    /// Decodes a spec.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Json`] on missing/ill-typed fields.
    pub fn from_json(value: &Json) -> Result<Self, LeqaError> {
        let width = u64_field(value, "width", "fabric")?;
        let height = u64_field(value, "height", "fabric")?;
        let to_u32 = |n: u64, what: &str| {
            u32::try_from(n)
                .map_err(|_| LeqaError::new(ErrorKind::Json, format!("fabric {what} out of range")))
        };
        Ok(FabricSpec {
            width: to_u32(width, "width")?,
            height: to_u32(height, "height")?,
        })
    }

    fn opt_from_json(value: &Json, key: &str) -> Result<Option<Self>, LeqaError> {
        match value.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => FabricSpec::from_json(v).map(Some),
        }
    }
}

// ── Requests ─────────────────────────────────────────────────────────────

/// Request: run Algorithm 1 on one program.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct EstimateRequest {
    /// The program to estimate.
    pub program: ProgramSpec,
    /// Per-request fabric override (session fabric when `None`).
    pub fabric: Option<FabricSpec>,
}

impl EstimateRequest {
    /// Creates a request for the session's configured fabric.
    #[must_use]
    pub fn new(program: ProgramSpec) -> Self {
        EstimateRequest {
            program,
            fabric: None,
        }
    }

    /// Overrides the fabric for this request only.
    #[must_use]
    pub fn with_fabric(mut self, width: u32, height: u32) -> Self {
        self.fabric = Some(FabricSpec::new(width, height));
        self
    }

    /// Serializes the request envelope.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::num(SCHEMA_VERSION as u32)),
            ("op", Json::str("estimate")),
            ("program", self.program.to_json()),
            (
                "fabric",
                self.fabric.map(FabricSpec::to_json).unwrap_or(Json::Null),
            ),
        ])
    }

    /// Decodes a request envelope.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Json`] on schema-version mismatch or shape errors.
    pub fn from_json(value: &Json) -> Result<Self, LeqaError> {
        check_schema_version(value)?;
        Ok(EstimateRequest {
            program: ProgramSpec::from_json(field(value, "program", "estimate request")?)?,
            fabric: FabricSpec::opt_from_json(value, "fabric")?,
        })
    }
}

/// Request: estimate one program across candidate square fabrics.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SweepRequest {
    /// The program to sweep.
    pub program: ProgramSpec,
    /// Candidate square fabric sides.
    pub sizes: Vec<u32>,
}

impl SweepRequest {
    /// Creates a sweep over the given square fabric sides.
    #[must_use]
    pub fn new(program: ProgramSpec, sizes: impl IntoIterator<Item = u32>) -> Self {
        SweepRequest {
            program,
            sizes: sizes.into_iter().collect(),
        }
    }

    /// Serializes the request envelope.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::num(SCHEMA_VERSION as u32)),
            ("op", Json::str("sweep")),
            ("program", self.program.to_json()),
            (
                "sizes",
                Json::Arr(self.sizes.iter().map(|&s| Json::num(s)).collect()),
            ),
        ])
    }

    /// Decodes a request envelope.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Json`] on schema-version mismatch or shape errors.
    pub fn from_json(value: &Json) -> Result<Self, LeqaError> {
        check_schema_version(value)?;
        let sizes = field(value, "sizes", "sweep request")?
            .as_arr()
            .ok_or_else(|| LeqaError::new(ErrorKind::Json, "sweep `sizes` must be an array"))?
            .iter()
            .map(|s| {
                s.as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| {
                        LeqaError::new(ErrorKind::Json, "sweep sizes must be u32 integers")
                    })
            })
            .collect::<Result<_, _>>()?;
        Ok(SweepRequest {
            program: ProgramSpec::from_json(field(value, "program", "sweep request")?)?,
            sizes,
        })
    }
}

/// Request: the per-qubit presence-zone report.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ZonesRequest {
    /// The program to report on.
    pub program: ProgramSpec,
    /// Row limit (strongest qubits first); `None` or `Some(0)` = all rows.
    pub limit: Option<u64>,
}

impl ZonesRequest {
    /// Creates a request returning every row.
    #[must_use]
    pub fn new(program: ProgramSpec) -> Self {
        ZonesRequest {
            program,
            limit: None,
        }
    }

    /// Bounds the row count (strongest qubits first).
    #[must_use]
    pub fn with_limit(mut self, limit: u64) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Serializes the request envelope.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::num(SCHEMA_VERSION as u32)),
            ("op", Json::str("zones")),
            ("program", self.program.to_json()),
            (
                "limit",
                self.limit
                    .map(|l| Json::Num(l as f64))
                    .unwrap_or(Json::Null),
            ),
        ])
    }

    /// Decodes a request envelope.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Json`] on schema-version mismatch or shape errors.
    pub fn from_json(value: &Json) -> Result<Self, LeqaError> {
        check_schema_version(value)?;
        let limit = match value.get("limit") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| {
                LeqaError::new(
                    ErrorKind::Json,
                    "zones `limit` must be a non-negative integer",
                )
            })?),
        };
        Ok(ZonesRequest {
            program: ProgramSpec::from_json(field(value, "program", "zones request")?)?,
            limit,
        })
    }
}

/// Request: the Table 2 experiment — detailed QSPR mapping next to the
/// LEQA estimate, with the relative error.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct CompareRequest {
    /// The program to compare on.
    pub program: ProgramSpec,
    /// Per-request fabric override (session fabric when `None`).
    pub fabric: Option<FabricSpec>,
}

impl CompareRequest {
    /// Creates a request for the session's configured fabric.
    #[must_use]
    pub fn new(program: ProgramSpec) -> Self {
        CompareRequest {
            program,
            fabric: None,
        }
    }

    /// Overrides the fabric for this request only.
    #[must_use]
    pub fn with_fabric(mut self, width: u32, height: u32) -> Self {
        self.fabric = Some(FabricSpec::new(width, height));
        self
    }

    /// Serializes the request envelope.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::num(SCHEMA_VERSION as u32)),
            ("op", Json::str("compare")),
            ("program", self.program.to_json()),
            (
                "fabric",
                self.fabric.map(FabricSpec::to_json).unwrap_or(Json::Null),
            ),
        ])
    }

    /// Decodes a request envelope.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Json`] on schema-version mismatch or shape errors.
    pub fn from_json(value: &Json) -> Result<Self, LeqaError> {
        check_schema_version(value)?;
        Ok(CompareRequest {
            program: ProgramSpec::from_json(field(value, "program", "compare request")?)?,
            fabric: FabricSpec::opt_from_json(value, "fabric")?,
        })
    }
}

/// Request: run the detailed QSPR mapper (the baseline tool).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct MapRequest {
    /// The program to map.
    pub program: ProgramSpec,
    /// Per-request fabric override (session fabric when `None`).
    pub fabric: Option<FabricSpec>,
    /// Longest-running-operation trace rows to include (0 = no trace).
    pub trace_limit: u64,
    /// Initial placement strategy (wire names: `cluster|rowmajor|random`).
    pub placement: PlacementStrategy,
    /// Routing discipline (wire names: `xy|yx|adaptive`).
    pub router: RouterStrategy,
    /// Movement model (wire names: `home|drift`).
    pub movement: MovementModel,
    /// Scheduling engine (wire names: `greedy|mobility`).
    pub scheduler: SchedulerStrategy,
    /// Pass-pipeline spec (`dce|dce:LO-HI|partition:K`, comma-separated);
    /// `None` runs no pipeline.
    pub passes: Option<String>,
}

pub(crate) fn placement_name(p: PlacementStrategy) -> &'static str {
    match p {
        PlacementStrategy::IigCluster => "cluster",
        PlacementStrategy::RowMajor => "rowmajor",
        PlacementStrategy::Random => "random",
    }
}

pub(crate) fn placement_from_name(name: &str) -> Option<PlacementStrategy> {
    Some(match name {
        "cluster" => PlacementStrategy::IigCluster,
        "rowmajor" => PlacementStrategy::RowMajor,
        "random" => PlacementStrategy::Random,
        _ => return None,
    })
}

pub(crate) fn router_name(r: RouterStrategy) -> &'static str {
    match r {
        RouterStrategy::Xy => "xy",
        RouterStrategy::Yx => "yx",
        RouterStrategy::Adaptive => "adaptive",
    }
}

pub(crate) fn router_from_name(name: &str) -> Option<RouterStrategy> {
    Some(match name {
        "xy" => RouterStrategy::Xy,
        "yx" => RouterStrategy::Yx,
        "adaptive" => RouterStrategy::Adaptive,
        _ => return None,
    })
}

pub(crate) fn movement_name(m: MovementModel) -> &'static str {
    match m {
        MovementModel::HomeBased => "home",
        MovementModel::Drift => "drift",
    }
}

pub(crate) fn movement_from_name(name: &str) -> Option<MovementModel> {
    Some(match name {
        "home" => MovementModel::HomeBased,
        "drift" => MovementModel::Drift,
        _ => return None,
    })
}

pub(crate) fn scheduler_name(s: SchedulerStrategy) -> &'static str {
    match s {
        SchedulerStrategy::Greedy => "greedy",
        SchedulerStrategy::Mobility => "mobility",
    }
}

pub(crate) fn scheduler_from_name(name: &str) -> Option<SchedulerStrategy> {
    Some(match name {
        "greedy" => SchedulerStrategy::Greedy,
        "mobility" => SchedulerStrategy::Mobility,
        _ => return None,
    })
}

impl MapRequest {
    /// Creates a request for the session's configured fabric, default
    /// mapper strategies, no trace.
    #[must_use]
    pub fn new(program: ProgramSpec) -> Self {
        MapRequest {
            program,
            fabric: None,
            trace_limit: 0,
            placement: PlacementStrategy::default(),
            router: RouterStrategy::default(),
            movement: MovementModel::default(),
            scheduler: SchedulerStrategy::default(),
            passes: None,
        }
    }

    /// Overrides the fabric for this request only.
    #[must_use]
    pub fn with_fabric(mut self, width: u32, height: u32) -> Self {
        self.fabric = Some(FabricSpec::new(width, height));
        self
    }

    /// Includes the N longest-running operations in the response.
    #[must_use]
    pub fn with_trace_limit(mut self, rows: u64) -> Self {
        self.trace_limit = rows;
        self
    }

    /// Sets the initial placement strategy.
    #[must_use]
    pub fn with_placement(mut self, placement: PlacementStrategy) -> Self {
        self.placement = placement;
        self
    }

    /// Sets the routing discipline.
    #[must_use]
    pub fn with_router(mut self, router: RouterStrategy) -> Self {
        self.router = router;
        self
    }

    /// Sets the movement model.
    #[must_use]
    pub fn with_movement(mut self, movement: MovementModel) -> Self {
        self.movement = movement;
        self
    }

    /// Sets the scheduling engine.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: SchedulerStrategy) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Runs a pass pipeline before mapping (spec syntax:
    /// `dce|dce:LO-HI|partition:K`, comma-separated).
    #[must_use]
    pub fn with_passes(mut self, spec: impl Into<String>) -> Self {
        self.passes = Some(spec.into());
        self
    }

    /// Serializes the request envelope.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::num(SCHEMA_VERSION as u32)),
            ("op", Json::str("map")),
            ("program", self.program.to_json()),
            (
                "fabric",
                self.fabric.map(FabricSpec::to_json).unwrap_or(Json::Null),
            ),
            ("trace_limit", Json::Num(self.trace_limit as f64)),
            ("placement", Json::str(placement_name(self.placement))),
            ("router", Json::str(router_name(self.router))),
            ("movement", Json::str(movement_name(self.movement))),
            ("scheduler", Json::str(scheduler_name(self.scheduler))),
            (
                "passes",
                self.passes.as_deref().map(Json::str).unwrap_or(Json::Null),
            ),
        ])
    }

    /// Decodes a request envelope. Strategy fields are optional and
    /// default like [`new`](Self::new).
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Json`] on schema-version mismatch or shape errors.
    pub fn from_json(value: &Json) -> Result<Self, LeqaError> {
        check_schema_version(value)?;
        let trace_limit = match value.get("trace_limit") {
            None | Some(Json::Null) => 0,
            Some(v) => v.as_u64().ok_or_else(|| {
                LeqaError::new(
                    ErrorKind::Json,
                    "map `trace_limit` must be a non-negative integer",
                )
            })?,
        };
        fn strategy<T>(
            value: &Json,
            key: &str,
            parse: impl Fn(&str) -> Option<T>,
            default: T,
        ) -> Result<T, LeqaError> {
            match value.get(key).and_then(Json::as_str) {
                None => Ok(default),
                Some(name) => parse(name).ok_or_else(|| {
                    LeqaError::new(ErrorKind::Json, format!("unknown {key} `{name}`"))
                }),
            }
        }
        Ok(MapRequest {
            program: ProgramSpec::from_json(field(value, "program", "map request")?)?,
            fabric: FabricSpec::opt_from_json(value, "fabric")?,
            trace_limit,
            placement: strategy(value, "placement", placement_from_name, Default::default())?,
            router: strategy(value, "router", router_from_name, Default::default())?,
            movement: strategy(value, "movement", movement_from_name, Default::default())?,
            scheduler: strategy(value, "scheduler", scheduler_from_name, Default::default())?,
            passes: value
                .get("passes")
                .and_then(Json::as_str)
                .map(str::to_string),
        })
    }
}

/// Any request, tagged by its `op` field on the wire.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Request {
    /// [`EstimateRequest`].
    Estimate(EstimateRequest),
    /// [`SweepRequest`].
    Sweep(SweepRequest),
    /// [`ZonesRequest`].
    Zones(ZonesRequest),
    /// [`CompareRequest`].
    Compare(CompareRequest),
    /// [`MapRequest`].
    Map(MapRequest),
}

impl Request {
    /// The program the request names.
    #[must_use]
    pub fn program(&self) -> &ProgramSpec {
        match self {
            Request::Estimate(r) => &r.program,
            Request::Sweep(r) => &r.program,
            Request::Zones(r) => &r.program,
            Request::Compare(r) => &r.program,
            Request::Map(r) => &r.program,
        }
    }

    /// Serializes the request envelope.
    #[must_use]
    pub fn to_json(&self) -> Json {
        match self {
            Request::Estimate(r) => r.to_json(),
            Request::Sweep(r) => r.to_json(),
            Request::Zones(r) => r.to_json(),
            Request::Compare(r) => r.to_json(),
            Request::Map(r) => r.to_json(),
        }
    }

    /// Decodes any request by its `op` tag.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Json`] for unknown ops or shape errors.
    pub fn from_json(value: &Json) -> Result<Self, LeqaError> {
        check_schema_version(value)?;
        match str_field(value, "op", "request")?.as_str() {
            "estimate" => EstimateRequest::from_json(value).map(Request::Estimate),
            "sweep" => SweepRequest::from_json(value).map(Request::Sweep),
            "zones" => ZonesRequest::from_json(value).map(Request::Zones),
            "compare" => CompareRequest::from_json(value).map(Request::Compare),
            "map" => MapRequest::from_json(value).map(Request::Map),
            other => Err(LeqaError::new(
                ErrorKind::Json,
                format!("unknown request op `{other}`"),
            )),
        }
    }
}

// ── Responses ────────────────────────────────────────────────────────────

/// The program identity echoed in every response.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct ProgramSummary {
    /// Display label (benchmark name, `.name` header, or file path).
    pub label: String,
    /// Logical qubits.
    pub qubits: u64,
    /// Fault-tolerant operations.
    pub ops: u64,
}

impl ProgramSummary {
    pub(crate) fn to_json(&self) -> Json {
        Json::obj(vec![
            ("label", Json::str(&self.label)),
            ("qubits", Json::Num(self.qubits as f64)),
            ("ops", Json::Num(self.ops as f64)),
        ])
    }

    pub(crate) fn from_json(value: &Json) -> Result<Self, LeqaError> {
        Ok(ProgramSummary {
            label: str_field(value, "label", "program summary")?,
            qubits: u64_field(value, "qubits", "program summary")?,
            ops: u64_field(value, "ops", "program summary")?,
        })
    }
}

/// Response to an [`EstimateRequest`]: Eq. 1 plus every intermediate the
/// paper names.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct EstimateResponse {
    /// The program estimated.
    pub program: ProgramSummary,
    /// The fabric used.
    pub fabric: FabricSpec,
    /// `D` (Eq. 1) in microseconds.
    pub latency_us: f64,
    /// `L_CNOT^avg` (Eq. 2) in microseconds.
    pub l_cnot_avg_us: f64,
    /// `L_g^avg = 2·T_move` in microseconds.
    pub l_one_qubit_avg_us: f64,
    /// `d_uncong` (Eq. 12) in microseconds.
    pub d_uncong_us: f64,
    /// `B` (Eq. 7), 0 when no CNOTs exist.
    pub avg_zone_area: f64,
    /// The integer zone side of Eq. 5.
    pub zone_side: u32,
    /// `E[S_q]` terms (Eq. 4).
    pub esq: Vec<f64>,
    /// CNOTs on the routing-aware critical path.
    pub critical_cnots: u64,
    /// One-qubit ops on the routing-aware critical path.
    pub critical_one_qubit: u64,
    /// Whether the session served the program profile from its cache.
    pub profile_cached: bool,
}

impl EstimateResponse {
    /// Serializes the response envelope.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::num(SCHEMA_VERSION as u32)),
            ("op", Json::str("estimate")),
            ("program", self.program.to_json()),
            ("fabric", self.fabric.to_json()),
            ("latency_us", Json::Num(self.latency_us)),
            ("l_cnot_avg_us", Json::Num(self.l_cnot_avg_us)),
            ("l_one_qubit_avg_us", Json::Num(self.l_one_qubit_avg_us)),
            ("d_uncong_us", Json::Num(self.d_uncong_us)),
            ("avg_zone_area", Json::Num(self.avg_zone_area)),
            ("zone_side", Json::num(self.zone_side)),
            (
                "esq",
                Json::Arr(self.esq.iter().map(|&e| Json::Num(e)).collect()),
            ),
            ("critical_cnots", Json::Num(self.critical_cnots as f64)),
            (
                "critical_one_qubit",
                Json::Num(self.critical_one_qubit as f64),
            ),
            ("profile_cached", Json::Bool(self.profile_cached)),
        ])
    }

    /// Decodes a response envelope.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Json`] on schema-version mismatch or shape errors.
    pub fn from_json(value: &Json) -> Result<Self, LeqaError> {
        check_schema_version(value)?;
        let what = "estimate response";
        Ok(EstimateResponse {
            program: ProgramSummary::from_json(field(value, "program", what)?)?,
            fabric: FabricSpec::from_json(field(value, "fabric", what)?)?,
            latency_us: f64_field(value, "latency_us", what)?,
            l_cnot_avg_us: f64_field(value, "l_cnot_avg_us", what)?,
            l_one_qubit_avg_us: f64_field(value, "l_one_qubit_avg_us", what)?,
            d_uncong_us: f64_field(value, "d_uncong_us", what)?,
            avg_zone_area: f64_field(value, "avg_zone_area", what)?,
            zone_side: u64_field(value, "zone_side", what)?
                .try_into()
                .map_err(|_| LeqaError::new(ErrorKind::Json, "zone_side out of range"))?,
            esq: field(value, "esq", what)?
                .as_arr()
                .ok_or_else(|| LeqaError::new(ErrorKind::Json, "esq must be an array"))?
                .iter()
                .map(|e| {
                    e.as_f64()
                        .ok_or_else(|| LeqaError::new(ErrorKind::Json, "esq terms must be numbers"))
                })
                .collect::<Result<_, _>>()?,
            critical_cnots: u64_field(value, "critical_cnots", what)?,
            critical_one_qubit: u64_field(value, "critical_one_qubit", what)?,
            profile_cached: field(value, "profile_cached", what)?
                .as_bool()
                .ok_or_else(|| {
                    LeqaError::new(ErrorKind::Json, "profile_cached must be a boolean")
                })?,
        })
    }
}

/// One candidate of a sweep response.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SweepPointDto {
    /// Candidate side (square fabrics).
    pub side: u32,
    /// `L_CNOT^avg` in microseconds; `None` when the program did not fit.
    pub l_cnot_avg_us: Option<f64>,
    /// Eq. 1 latency in microseconds; `None` when the program did not fit.
    pub latency_us: Option<f64>,
}

impl SweepPointDto {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("side", Json::num(self.side)),
            ("l_cnot_avg_us", json_opt_num(self.l_cnot_avg_us)),
            ("latency_us", json_opt_num(self.latency_us)),
        ])
    }

    fn from_json(value: &Json) -> Result<Self, LeqaError> {
        Ok(SweepPointDto {
            side: u64_field(value, "side", "sweep point")?
                .try_into()
                .map_err(|_| LeqaError::new(ErrorKind::Json, "sweep side out of range"))?,
            l_cnot_avg_us: opt_f64(value, "l_cnot_avg_us", "sweep point")?,
            latency_us: opt_f64(value, "latency_us", "sweep point")?,
        })
    }
}

/// Response to a [`SweepRequest`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SweepResponse {
    /// The program swept.
    pub program: ProgramSummary,
    /// One point per requested size, in request order.
    pub points: Vec<SweepPointDto>,
    /// The latency-minimal fitting side, if any candidate fits.
    pub optimal_side: Option<u32>,
}

impl SweepResponse {
    /// Serializes the response envelope.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::num(SCHEMA_VERSION as u32)),
            ("op", Json::str("sweep")),
            ("program", self.program.to_json()),
            (
                "points",
                Json::Arr(self.points.iter().map(SweepPointDto::to_json).collect()),
            ),
            (
                "optimal_side",
                self.optimal_side.map(Json::num).unwrap_or(Json::Null),
            ),
        ])
    }

    /// Decodes a response envelope.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Json`] on schema-version mismatch or shape errors.
    pub fn from_json(value: &Json) -> Result<Self, LeqaError> {
        check_schema_version(value)?;
        let what = "sweep response";
        Ok(SweepResponse {
            program: ProgramSummary::from_json(field(value, "program", what)?)?,
            points: field(value, "points", what)?
                .as_arr()
                .ok_or_else(|| LeqaError::new(ErrorKind::Json, "points must be an array"))?
                .iter()
                .map(SweepPointDto::from_json)
                .collect::<Result<_, _>>()?,
            optimal_side: match value.get("optimal_side") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_u64().and_then(|n| u32::try_from(n).ok()).ok_or_else(
                    || LeqaError::new(ErrorKind::Json, "optimal_side must be a u32"),
                )?),
            },
        })
    }
}

/// One row of a zones response (§3.1–3.2 per-qubit quantities).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ZoneRowDto {
    /// The qubit index.
    pub qubit: u32,
    /// `M_i`: IIG degree.
    pub degree: u64,
    /// Total two-qubit ops involving this qubit.
    pub strength: u64,
    /// `B_i` (Eq. 6).
    pub zone_area: f64,
    /// `E[l_ham,i]` (Eq. 15).
    pub expected_path: f64,
    /// `d_uncong,i` (Eq. 16) in microseconds.
    pub uncongested_delay_us: f64,
}

impl ZoneRowDto {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("qubit", Json::num(self.qubit)),
            ("degree", Json::Num(self.degree as f64)),
            ("strength", Json::Num(self.strength as f64)),
            ("zone_area", Json::Num(self.zone_area)),
            ("expected_path", Json::Num(self.expected_path)),
            ("uncongested_delay_us", Json::Num(self.uncongested_delay_us)),
        ])
    }

    fn from_json(value: &Json) -> Result<Self, LeqaError> {
        let what = "zone row";
        Ok(ZoneRowDto {
            qubit: u64_field(value, "qubit", what)?
                .try_into()
                .map_err(|_| LeqaError::new(ErrorKind::Json, "qubit index out of range"))?,
            degree: u64_field(value, "degree", what)?,
            strength: u64_field(value, "strength", what)?,
            zone_area: f64_field(value, "zone_area", what)?,
            expected_path: f64_field(value, "expected_path", what)?,
            uncongested_delay_us: f64_field(value, "uncongested_delay_us", what)?,
        })
    }
}

/// Response to a [`ZonesRequest`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ZonesResponse {
    /// The program reported on.
    pub program: ProgramSummary,
    /// The session fabric (the report itself is fabric-independent).
    pub fabric: FabricSpec,
    /// Rows, strongest qubits first, truncated to the request's limit.
    pub rows: Vec<ZoneRowDto>,
    /// Total rows before truncation (= logical qubits).
    pub total_rows: u64,
}

impl ZonesResponse {
    /// Serializes the response envelope.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::num(SCHEMA_VERSION as u32)),
            ("op", Json::str("zones")),
            ("program", self.program.to_json()),
            ("fabric", self.fabric.to_json()),
            (
                "rows",
                Json::Arr(self.rows.iter().map(ZoneRowDto::to_json).collect()),
            ),
            ("total_rows", Json::Num(self.total_rows as f64)),
        ])
    }

    /// Decodes a response envelope.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Json`] on schema-version mismatch or shape errors.
    pub fn from_json(value: &Json) -> Result<Self, LeqaError> {
        check_schema_version(value)?;
        let what = "zones response";
        Ok(ZonesResponse {
            program: ProgramSummary::from_json(field(value, "program", what)?)?,
            fabric: FabricSpec::from_json(field(value, "fabric", what)?)?,
            rows: field(value, "rows", what)?
                .as_arr()
                .ok_or_else(|| LeqaError::new(ErrorKind::Json, "rows must be an array"))?
                .iter()
                .map(ZoneRowDto::from_json)
                .collect::<Result<_, _>>()?,
            total_rows: u64_field(value, "total_rows", what)?,
        })
    }
}

/// Response to a [`CompareRequest`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct CompareResponse {
    /// The program compared.
    pub program: ProgramSummary,
    /// The fabric used.
    pub fabric: FabricSpec,
    /// QSPR's detailed-schedule latency in microseconds.
    pub actual_us: f64,
    /// LEQA's estimate in microseconds.
    pub estimated_us: f64,
    /// `|est − actual| / actual` in percent; `None` when actual is 0.
    pub error_pct: Option<f64>,
}

impl CompareResponse {
    /// Serializes the response envelope.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::num(SCHEMA_VERSION as u32)),
            ("op", Json::str("compare")),
            ("program", self.program.to_json()),
            ("fabric", self.fabric.to_json()),
            ("actual_us", Json::Num(self.actual_us)),
            ("estimated_us", Json::Num(self.estimated_us)),
            ("error_pct", json_opt_num(self.error_pct)),
        ])
    }

    /// Decodes a response envelope.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Json`] on schema-version mismatch or shape errors.
    pub fn from_json(value: &Json) -> Result<Self, LeqaError> {
        check_schema_version(value)?;
        let what = "compare response";
        Ok(CompareResponse {
            program: ProgramSummary::from_json(field(value, "program", what)?)?,
            fabric: FabricSpec::from_json(field(value, "fabric", what)?)?,
            actual_us: f64_field(value, "actual_us", what)?,
            estimated_us: f64_field(value, "estimated_us", what)?,
            error_pct: opt_f64(value, "error_pct", what)?,
        })
    }
}

/// Response to a [`MapRequest`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct MapResponse {
    /// The program mapped.
    pub program: ProgramSummary,
    /// The fabric used.
    pub fabric: FabricSpec,
    /// The detailed schedule's latency in microseconds.
    pub latency_us: f64,
    /// CNOTs routed.
    pub cnot_ops: u64,
    /// Average CNOT routing distance in hops.
    pub avg_cnot_distance: f64,
    /// Congestion wait summed over qubits, in microseconds.
    pub congestion_wait_us: f64,
    /// Traversals through the busiest channel.
    pub max_channel_load: u64,
    /// Preformatted longest-running-operation rows (when requested).
    pub trace: Option<String>,
}

impl MapResponse {
    /// Serializes the response envelope.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::num(SCHEMA_VERSION as u32)),
            ("op", Json::str("map")),
            ("program", self.program.to_json()),
            ("fabric", self.fabric.to_json()),
            ("latency_us", Json::Num(self.latency_us)),
            ("cnot_ops", Json::Num(self.cnot_ops as f64)),
            ("avg_cnot_distance", Json::Num(self.avg_cnot_distance)),
            ("congestion_wait_us", Json::Num(self.congestion_wait_us)),
            ("max_channel_load", Json::Num(self.max_channel_load as f64)),
            (
                "trace",
                self.trace.as_deref().map(Json::str).unwrap_or(Json::Null),
            ),
        ])
    }

    /// Decodes a response envelope.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Json`] on schema-version mismatch or shape errors.
    pub fn from_json(value: &Json) -> Result<Self, LeqaError> {
        check_schema_version(value)?;
        let what = "map response";
        Ok(MapResponse {
            program: ProgramSummary::from_json(field(value, "program", what)?)?,
            fabric: FabricSpec::from_json(field(value, "fabric", what)?)?,
            latency_us: f64_field(value, "latency_us", what)?,
            cnot_ops: u64_field(value, "cnot_ops", what)?,
            avg_cnot_distance: f64_field(value, "avg_cnot_distance", what)?,
            congestion_wait_us: f64_field(value, "congestion_wait_us", what)?,
            max_channel_load: u64_field(value, "max_channel_load", what)?,
            trace: match value.get("trace") {
                None | Some(Json::Null) => None,
                Some(v) => Some(
                    v.as_str()
                        .ok_or_else(|| LeqaError::new(ErrorKind::Json, "trace must be a string"))?
                        .to_string(),
                ),
            },
        })
    }
}

/// Any response, tagged by its `op` field on the wire.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Response {
    /// [`EstimateResponse`].
    Estimate(EstimateResponse),
    /// [`SweepResponse`].
    Sweep(SweepResponse),
    /// [`ZonesResponse`].
    Zones(ZonesResponse),
    /// [`CompareResponse`].
    Compare(CompareResponse),
    /// [`MapResponse`].
    Map(MapResponse),
}

impl Response {
    /// Serializes the response envelope.
    #[must_use]
    pub fn to_json(&self) -> Json {
        match self {
            Response::Estimate(r) => r.to_json(),
            Response::Sweep(r) => r.to_json(),
            Response::Zones(r) => r.to_json(),
            Response::Compare(r) => r.to_json(),
            Response::Map(r) => r.to_json(),
        }
    }

    /// Decodes any response by its `op` tag.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Json`] for unknown ops or shape errors.
    pub fn from_json(value: &Json) -> Result<Self, LeqaError> {
        check_schema_version(value)?;
        match str_field(value, "op", "response")?.as_str() {
            "estimate" => EstimateResponse::from_json(value).map(Response::Estimate),
            "sweep" => SweepResponse::from_json(value).map(Response::Sweep),
            "zones" => ZonesResponse::from_json(value).map(Response::Zones),
            "compare" => CompareResponse::from_json(value).map(Response::Compare),
            "map" => MapResponse::from_json(value).map(Response::Map),
            other => Err(LeqaError::new(
                ErrorKind::Json,
                format!("unknown response op `{other}`"),
            )),
        }
    }
}

/// Response to a batch: one slot per request, order preserved, failures
/// carried inline so one bad request cannot sink its batch-mates.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct BatchResponse {
    /// Per-request outcomes, in request order.
    pub results: Vec<Result<Response, LeqaError>>,
}

impl BatchResponse {
    /// Serializes the batch envelope: each slot is `{"ok": …}` or
    /// `{"err": …}`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::num(SCHEMA_VERSION as u32)),
            ("op", Json::str("batch")),
            (
                "results",
                Json::Arr(
                    self.results
                        .iter()
                        .map(|slot| match slot {
                            Ok(resp) => Json::obj(vec![("ok", resp.to_json())]),
                            Err(e) => Json::obj(vec![("err", e.to_json())]),
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Decodes a batch envelope.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Json`] on schema-version mismatch or shape errors.
    pub fn from_json(value: &Json) -> Result<Self, LeqaError> {
        check_schema_version(value)?;
        let results = field(value, "results", "batch response")?
            .as_arr()
            .ok_or_else(|| LeqaError::new(ErrorKind::Json, "batch results must be an array"))?
            .iter()
            .map(|slot| {
                if let Some(ok) = slot.get("ok") {
                    Response::from_json(ok).map(Ok)
                } else if let Some(err) = slot.get("err") {
                    LeqaError::from_json(err).map(Err)
                } else {
                    Err(LeqaError::new(
                        ErrorKind::Json,
                        "batch slots must be `{\"ok\": …}` or `{\"err\": …}`",
                    ))
                }
            })
            .collect::<Result<_, _>>()?;
        Ok(BatchResponse { results })
    }
}

// ── Server frames ────────────────────────────────────────────────────────
//
// The persistent daemon (`crate::server`, wire reference in `SERVER.md`)
// speaks newline-delimited JSON. Work frames reuse the [`Request`]
// envelopes above plus the [`BatchRequest`] envelope; operators steer the
// daemon with [`ControlFrame`] lines and read [`StatsResponse`] /
// [`ShutdownAck`] / [`ErrorFrame`] replies.

/// Request: execute a batch of requests as one wire frame
/// (`{"op":"batch","requests":[…]}`); the reply is the
/// [`BatchResponse`] envelope, byte-identical to a direct
/// [`Session::batch`](crate::Session::batch) call.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct BatchRequest {
    /// The requests, executed as one deduplicated batch.
    pub requests: Vec<Request>,
}

impl BatchRequest {
    /// Creates a batch frame.
    #[must_use]
    pub fn new(requests: impl IntoIterator<Item = Request>) -> Self {
        BatchRequest {
            requests: requests.into_iter().collect(),
        }
    }

    /// Serializes the request envelope.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::num(SCHEMA_VERSION as u32)),
            ("op", Json::str("batch")),
            (
                "requests",
                Json::Arr(self.requests.iter().map(Request::to_json).collect()),
            ),
        ])
    }

    /// Decodes a request envelope.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Json`] on schema-version mismatch or shape errors.
    pub fn from_json(value: &Json) -> Result<Self, LeqaError> {
        check_schema_version(value)?;
        Ok(BatchRequest {
            requests: field(value, "requests", "batch request")?
                .as_arr()
                .ok_or_else(|| {
                    LeqaError::new(ErrorKind::Json, "batch `requests` must be an array")
                })?
                .iter()
                .map(Request::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

/// An operator control line (`{"cmd":"…"}`): steers the daemon instead
/// of running an estimator endpoint. Control frames carry no
/// `schema_version` and bypass admission control — they must stay
/// answerable when the service is saturated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ControlFrame {
    /// `{"cmd":"stats"}` — reply with a [`StatsResponse`] snapshot.
    Stats,
    /// `{"cmd":"shutdown"}` — acknowledge with a [`ShutdownAck`], stop
    /// accepting work, drain in-flight requests, and exit.
    Shutdown,
    /// `{"cmd":"upgrade","proto":"frame1"}` — acknowledge with an
    /// [`UpgradeAck`] line, then switch this connection to the named
    /// binary framing (see [`crate::frame`]). TCP connections only.
    Upgrade(FrameProto),
}

/// Wire protocols a connection can upgrade to (see
/// [`ControlFrame::Upgrade`]). Today there is exactly one; the enum
/// keeps the negotiation forward-compatible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameProto {
    /// `[u32 len][u32 tag][JSON payload]` little-endian framing
    /// ([`crate::frame`]).
    Frame1,
}

impl FrameProto {
    /// The wire name of the protocol.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FrameProto::Frame1 => crate::frame::FRAME1,
        }
    }
}

impl ControlFrame {
    /// The wire name of the command.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ControlFrame::Stats => "stats",
            ControlFrame::Shutdown => "shutdown",
            ControlFrame::Upgrade(_) => "upgrade",
        }
    }

    /// Serializes the control line.
    #[must_use]
    pub fn to_json(self) -> Json {
        let mut entries = vec![("cmd", Json::str(self.name()))];
        if let ControlFrame::Upgrade(proto) = self {
            entries.push(("proto", Json::str(proto.name())));
        }
        Json::obj(entries)
    }

    /// Decodes a control line (any object with a `cmd` key).
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Json`] when `cmd` is missing or names no known
    /// command, or when an `upgrade` names no known protocol.
    pub fn from_json(value: &Json) -> Result<Self, LeqaError> {
        match str_field(value, "cmd", "control frame")?.as_str() {
            "stats" => Ok(ControlFrame::Stats),
            "shutdown" => Ok(ControlFrame::Shutdown),
            "upgrade" => match str_field(value, "proto", "upgrade frame")?.as_str() {
                crate::frame::FRAME1 => Ok(ControlFrame::Upgrade(FrameProto::Frame1)),
                other => Err(LeqaError::new(
                    ErrorKind::Json,
                    format!("unknown upgrade protocol `{other}` (frame1)"),
                )),
            },
            other => Err(LeqaError::new(
                ErrorKind::Json,
                format!("unknown control command `{other}` (stats|shutdown|upgrade)"),
            )),
        }
    }
}

/// Reply to `{"cmd":"stats"}`: the daemon's atomic counters. Every field
/// is a monotone counter or an instantaneous gauge — deliberately no
/// wall-clock timestamps, so scripted sessions stay byte-stable
/// (`uptime_ticks` counts protocol lines processed instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct StatsResponse {
    /// Connections accepted since startup (stdio counts as one).
    pub connections: u64,
    /// Connections currently open (gauge).
    pub active_connections: u64,
    /// Work frames currently executing (gauge; bounded by
    /// `--max-inflight` when set).
    pub inflight: u64,
    /// `estimate` frames served.
    pub estimate: u64,
    /// `sweep` frames served.
    pub sweep: u64,
    /// `zones` frames served.
    pub zones: u64,
    /// `compare` frames served.
    pub compare: u64,
    /// `map` frames served.
    pub map: u64,
    /// `batch` frames served (each counts once, however many slots).
    pub batch: u64,
    /// `experiment` frames served.
    pub experiment: u64,
    /// Error frames written for reasons other than admission control.
    pub errors: u64,
    /// Admission-control refusals (`overloaded` kind): work frames
    /// refused at the inflight cap or while draining, plus whole
    /// connections refused at the connection cap.
    pub overloaded: u64,
    /// Transport bytes read from clients (NDJSON lines and binary
    /// frames alike). Additive in schema v1: absent on pre-frame
    /// daemons, decoded as 0.
    pub bytes_in: u64,
    /// Transport bytes written to clients (additive, see `bytes_in`).
    pub bytes_out: u64,
    /// Binary frames decoded but not yet answered (gauge; 0 on NDJSON
    /// connections, where the line loop never holds more than one).
    pub frames_in_flight: u64,
    /// Profiles served from the on-disk snapshot store instead of being
    /// rebuilt (`--cache-dir`; additive in schema v1 — absent on older
    /// daemons, decoded as 0).
    pub store_hits: u64,
    /// Snapshot-store lookups that missed (no file, stale, or corrupt)
    /// and fell back to a rebuild (additive, see `store_hits`).
    pub store_misses: u64,
    /// Dead replicas the shard front-end's supervisor restarted
    /// (additive; always 0 on a plain daemon).
    pub replicas_restarted: u64,
    /// Session cache counters at snapshot time (see
    /// [`CacheStats`](crate::CacheStats)).
    pub cache: crate::session::CacheStats,
    /// Protocol lines processed since startup — the daemon's monotone
    /// clock (no wall time on the wire).
    pub uptime_ticks: u64,
}

impl StatsResponse {
    /// Serializes the stats envelope.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::num(SCHEMA_VERSION as u32)),
            ("op", Json::str("stats")),
            ("connections", Json::Num(self.connections as f64)),
            (
                "active_connections",
                Json::Num(self.active_connections as f64),
            ),
            ("inflight", Json::Num(self.inflight as f64)),
            (
                "requests",
                Json::obj(vec![
                    ("estimate", Json::Num(self.estimate as f64)),
                    ("sweep", Json::Num(self.sweep as f64)),
                    ("zones", Json::Num(self.zones as f64)),
                    ("compare", Json::Num(self.compare as f64)),
                    ("map", Json::Num(self.map as f64)),
                    ("batch", Json::Num(self.batch as f64)),
                    ("experiment", Json::Num(self.experiment as f64)),
                ]),
            ),
            ("errors", Json::Num(self.errors as f64)),
            ("overloaded", Json::Num(self.overloaded as f64)),
            ("bytes_in", Json::Num(self.bytes_in as f64)),
            ("bytes_out", Json::Num(self.bytes_out as f64)),
            ("frames_in_flight", Json::Num(self.frames_in_flight as f64)),
            ("store_hits", Json::Num(self.store_hits as f64)),
            ("store_misses", Json::Num(self.store_misses as f64)),
            (
                "replicas_restarted",
                Json::Num(self.replicas_restarted as f64),
            ),
            (
                "cache",
                Json::obj(vec![
                    (
                        "profile_builds",
                        Json::Num(self.cache.profile_builds as f64),
                    ),
                    ("cache_hits", Json::Num(self.cache.cache_hits as f64)),
                    ("cache_misses", Json::Num(self.cache.cache_misses as f64)),
                    ("loads", Json::Num(self.cache.loads as f64)),
                ]),
            ),
            ("uptime_ticks", Json::Num(self.uptime_ticks as f64)),
        ])
    }

    /// Decodes a stats envelope.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Json`] on schema-version mismatch or shape errors.
    pub fn from_json(value: &Json) -> Result<Self, LeqaError> {
        check_schema_version(value)?;
        let what = "stats response";
        let requests = field(value, "requests", what)?;
        let cache = field(value, "cache", what)?;
        Ok(StatsResponse {
            connections: u64_field(value, "connections", what)?,
            active_connections: u64_field(value, "active_connections", what)?,
            inflight: u64_field(value, "inflight", what)?,
            estimate: u64_field(requests, "estimate", what)?,
            sweep: u64_field(requests, "sweep", what)?,
            zones: u64_field(requests, "zones", what)?,
            compare: u64_field(requests, "compare", what)?,
            map: u64_field(requests, "map", what)?,
            batch: u64_field(requests, "batch", what)?,
            experiment: u64_field(requests, "experiment", what)?,
            errors: u64_field(value, "errors", what)?,
            overloaded: u64_field(value, "overloaded", what)?,
            // Additive in schema v1: pre-frame daemons omit these.
            bytes_in: opt_u64(value, "bytes_in", what)?.unwrap_or(0),
            bytes_out: opt_u64(value, "bytes_out", what)?.unwrap_or(0),
            frames_in_flight: opt_u64(value, "frames_in_flight", what)?.unwrap_or(0),
            store_hits: opt_u64(value, "store_hits", what)?.unwrap_or(0),
            store_misses: opt_u64(value, "store_misses", what)?.unwrap_or(0),
            replicas_restarted: opt_u64(value, "replicas_restarted", what)?.unwrap_or(0),
            cache: crate::session::CacheStats {
                profile_builds: u64_field(cache, "profile_builds", what)?,
                cache_hits: u64_field(cache, "cache_hits", what)?,
                cache_misses: u64_field(cache, "cache_misses", what)?,
                loads: u64_field(cache, "loads", what)?,
            },
            uptime_ticks: u64_field(value, "uptime_ticks", what)?,
        })
    }

    /// Accumulates another snapshot into this one — the shard front-end
    /// (`leqa shard`) answers `{"cmd":"stats"}` with the sum over its
    /// replicas. Counters and gauges both add; a summed gauge reads as
    /// "across the fleet".
    pub fn merge(&mut self, other: &StatsResponse) {
        self.connections += other.connections;
        self.active_connections += other.active_connections;
        self.inflight += other.inflight;
        self.estimate += other.estimate;
        self.sweep += other.sweep;
        self.zones += other.zones;
        self.compare += other.compare;
        self.map += other.map;
        self.batch += other.batch;
        self.experiment += other.experiment;
        self.errors += other.errors;
        self.overloaded += other.overloaded;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.frames_in_flight += other.frames_in_flight;
        self.store_hits += other.store_hits;
        self.store_misses += other.store_misses;
        self.replicas_restarted += other.replicas_restarted;
        self.cache.profile_builds += other.cache.profile_builds;
        self.cache.cache_hits += other.cache.cache_hits;
        self.cache.cache_misses += other.cache.cache_misses;
        self.cache.loads += other.cache.loads;
        self.uptime_ticks += other.uptime_ticks;
    }
}

/// Reply to `{"cmd":"upgrade","proto":…}`: the last NDJSON line on this
/// connection — every byte after it speaks the acknowledged framing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct UpgradeAck {
    /// The protocol now in effect.
    pub proto: FrameProto,
}

impl UpgradeAck {
    /// Serializes the acknowledgement envelope.
    #[must_use]
    pub fn to_json(self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::num(SCHEMA_VERSION as u32)),
            ("op", Json::str("upgrade")),
            ("proto", Json::str(self.proto.name())),
        ])
    }

    /// Decodes an acknowledgement envelope.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Json`] on schema-version mismatch, a wrong `op`, or
    /// an unknown protocol name.
    pub fn from_json(value: &Json) -> Result<Self, LeqaError> {
        check_schema_version(value)?;
        match field(value, "op", "upgrade ack")?.as_str() {
            Some("upgrade") => match str_field(value, "proto", "upgrade ack")?.as_str() {
                crate::frame::FRAME1 => Ok(UpgradeAck {
                    proto: FrameProto::Frame1,
                }),
                other => Err(LeqaError::new(
                    ErrorKind::Json,
                    format!("unknown upgrade protocol `{other}` in ack"),
                )),
            },
            _ => Err(LeqaError::new(
                ErrorKind::Json,
                "upgrade ack must carry op `upgrade`",
            )),
        }
    }
}

/// Reply to `{"cmd":"shutdown"}`: the daemon stopped accepting work and
/// is draining in-flight requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct ShutdownAck;

impl ShutdownAck {
    /// Serializes the acknowledgement envelope.
    #[must_use]
    pub fn to_json(self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::num(SCHEMA_VERSION as u32)),
            ("op", Json::str("shutdown")),
            ("draining", Json::Bool(true)),
        ])
    }

    /// Decodes an acknowledgement envelope.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Json`] on schema-version mismatch or shape errors.
    pub fn from_json(value: &Json) -> Result<Self, LeqaError> {
        check_schema_version(value)?;
        match field(value, "op", "shutdown ack")?.as_str() {
            Some("shutdown") => Ok(ShutdownAck),
            _ => Err(LeqaError::new(
                ErrorKind::Json,
                "shutdown ack must carry op `shutdown`",
            )),
        }
    }
}

/// A failed frame's reply: the one envelope the daemon writes when a
/// line could not produce its normal response
/// (`{"op":"error","error":{…}}`). The connection survives; only the
/// failing line is answered with it.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ErrorFrame {
    /// What went wrong (kind + message + context chain).
    pub error: LeqaError,
}

impl ErrorFrame {
    /// Wraps an error for the wire.
    #[must_use]
    pub fn new(error: LeqaError) -> Self {
        ErrorFrame { error }
    }

    /// Serializes the error envelope.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::num(SCHEMA_VERSION as u32)),
            ("op", Json::str("error")),
            ("error", self.error.to_json()),
        ])
    }

    /// Decodes an error envelope.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Json`] on schema-version mismatch or shape errors.
    pub fn from_json(value: &Json) -> Result<Self, LeqaError> {
        check_schema_version(value)?;
        Ok(ErrorFrame {
            error: LeqaError::from_json(field(value, "error", "error frame")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use proptest::prelude::*;

    fn rt_request(req: &Request) {
        let text = req.to_json().encode();
        let back = Request::from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(&back, req, "wire text: {text}");
    }

    #[test]
    fn program_specs_round_trip() {
        for spec in [
            ProgramSpec::bench("gf2^16mult"),
            ProgramSpec::path("/tmp/a b\".qc"),
            ProgramSpec::source(".qubits 2\ncnot 0 1\n"),
        ] {
            let back = ProgramSpec::from_json(&parse(&spec.to_json().encode()).unwrap()).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn requests_round_trip() {
        rt_request(&Request::Estimate(
            EstimateRequest::new(ProgramSpec::bench("qft_8")).with_fabric(40, 30),
        ));
        rt_request(&Request::Estimate(EstimateRequest::new(
            ProgramSpec::source("x"),
        )));
        rt_request(&Request::Sweep(SweepRequest::new(
            ProgramSpec::bench("8bitadder"),
            [10, 20, 60],
        )));
        rt_request(&Request::Zones(
            ZonesRequest::new(ProgramSpec::bench("ham15")).with_limit(5),
        ));
        rt_request(&Request::Compare(
            CompareRequest::new(ProgramSpec::path("c.qc")).with_fabric(8, 8),
        ));
        rt_request(&Request::Map(
            MapRequest::new(ProgramSpec::bench("8bitadder"))
                .with_fabric(12, 12)
                .with_trace_limit(3),
        ));
    }

    #[test]
    fn schema_version_is_enforced() {
        let req = EstimateRequest::new(ProgramSpec::bench("x")).to_json();
        let mut text = req.encode();
        text = text.replace("\"schema_version\":1", "\"schema_version\":999");
        let err = EstimateRequest::from_json(&parse(&text).unwrap()).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Json);
        assert!(err.to_string().contains("unsupported schema_version 999"));
    }

    #[test]
    fn ill_typed_optional_fields_are_rejected_not_nulled() {
        // Regression: a corrupted producer writing strings where optional
        // numbers belong must raise a Json error, not silently decode to
        // None (which reads as "program did not fit" / "actual was 0").
        let sweep = parse(
            r#"{"schema_version":1,"op":"sweep","program":{"label":"p","qubits":1,"ops":1},
                "points":[{"side":60,"l_cnot_avg_us":"312.5","latency_us":"1.2e6"}],
                "optimal_side":null}"#,
        )
        .unwrap();
        let err = SweepResponse::from_json(&sweep).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Json);
        assert!(err.to_string().contains("l_cnot_avg_us"), "{err}");

        let cmp = parse(
            r#"{"schema_version":1,"op":"compare","program":{"label":"p","qubits":1,"ops":1},
                "fabric":{"width":60,"height":60},"actual_us":1,"estimated_us":2,
                "error_pct":"oops"}"#,
        )
        .unwrap();
        let err = CompareResponse::from_json(&cmp).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Json);
        assert!(err.to_string().contains("error_pct"), "{err}");
    }

    #[test]
    fn unknown_op_is_rejected() {
        let doc = parse(r#"{"schema_version":1,"op":"frobnicate"}"#).unwrap();
        assert!(Request::from_json(&doc).is_err());
        assert!(Response::from_json(&doc).is_err());
    }

    #[test]
    fn batch_request_round_trips() {
        let req = BatchRequest::new([
            Request::Estimate(EstimateRequest::new(ProgramSpec::bench("qft_8"))),
            Request::Zones(ZonesRequest::new(ProgramSpec::source("x")).with_limit(3)),
        ]);
        let text = req.to_json().encode();
        assert!(text.starts_with("{\"schema_version\":1,\"op\":\"batch\",\"requests\":["));
        let back = BatchRequest::from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn control_frames_round_trip_and_reject_unknown_commands() {
        for frame in [ControlFrame::Stats, ControlFrame::Shutdown] {
            let back = ControlFrame::from_json(&parse(&frame.to_json().encode()).unwrap()).unwrap();
            assert_eq!(back, frame);
        }
        assert_eq!(
            ControlFrame::from_json(&parse(r#"{"cmd":"stats"}"#).unwrap()).unwrap(),
            ControlFrame::Stats
        );
        let err = ControlFrame::from_json(&parse(r#"{"cmd":"reboot"}"#).unwrap()).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Json);
    }

    #[test]
    fn upgrade_control_frame_and_ack_round_trip() {
        let frame = ControlFrame::Upgrade(FrameProto::Frame1);
        let text = frame.to_json().encode();
        assert_eq!(text, "{\"cmd\":\"upgrade\",\"proto\":\"frame1\"}");
        assert_eq!(
            ControlFrame::from_json(&parse(&text).unwrap()).unwrap(),
            frame
        );
        let err = ControlFrame::from_json(&parse(r#"{"cmd":"upgrade","proto":"frame9"}"#).unwrap())
            .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Json);
        // A bare upgrade without a protocol is malformed.
        assert!(ControlFrame::from_json(&parse(r#"{"cmd":"upgrade"}"#).unwrap()).is_err());

        let ack = UpgradeAck {
            proto: FrameProto::Frame1,
        };
        let text = ack.to_json().encode();
        assert_eq!(
            text,
            "{\"schema_version\":1,\"op\":\"upgrade\",\"proto\":\"frame1\"}"
        );
        assert_eq!(UpgradeAck::from_json(&parse(&text).unwrap()).unwrap(), ack);
    }

    #[test]
    fn stats_response_round_trips_byte_stably() {
        let stats = StatsResponse {
            connections: 3,
            active_connections: 1,
            inflight: 2,
            estimate: 10,
            sweep: 1,
            zones: 2,
            compare: 3,
            map: 4,
            batch: 5,
            experiment: 6,
            errors: 7,
            overloaded: 8,
            bytes_in: 4096,
            bytes_out: 8192,
            frames_in_flight: 3,
            store_hits: 4,
            store_misses: 1,
            replicas_restarted: 2,
            cache: crate::session::CacheStats {
                profile_builds: 2,
                cache_hits: 9,
                cache_misses: 2,
                loads: 11,
            },
            uptime_ticks: 42,
        };
        let text = stats.to_json().encode();
        assert!(text.starts_with("{\"schema_version\":1,\"op\":\"stats\",\"connections\":3,"));
        assert!(text.contains("\"requests\":{\"estimate\":10,"));
        assert!(text.contains("\"cache\":{\"profile_builds\":2,"));
        assert!(
            !text.contains("timestamp") && !text.contains("wall"),
            "no wall-clock on the wire: {text}"
        );
        assert!(text.contains("\"bytes_in\":4096,\"bytes_out\":8192,\"frames_in_flight\":3,"));
        assert!(text.contains(
            "\"frames_in_flight\":3,\"store_hits\":4,\"store_misses\":1,\
             \"replicas_restarted\":2,\"cache\":{"
        ));
        let back = StatsResponse::from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn stats_decode_tolerates_pre_frame_snapshots_and_merge_sums() {
        // A PR-5-era daemon omits the byte counters; decode as zero.
        let old = "{\"schema_version\":1,\"op\":\"stats\",\"connections\":1,\
                   \"active_connections\":0,\"inflight\":0,\
                   \"requests\":{\"estimate\":2,\"sweep\":0,\"zones\":0,\"compare\":0,\
                   \"map\":0,\"batch\":0,\"experiment\":0},\
                   \"errors\":0,\"overloaded\":0,\
                   \"cache\":{\"profile_builds\":1,\"cache_hits\":1,\"cache_misses\":1,\"loads\":2},\
                   \"uptime_ticks\":3}";
        let a = StatsResponse::from_json(&parse(old).unwrap()).unwrap();
        assert_eq!(a.bytes_in, 0);
        assert_eq!(a.frames_in_flight, 0);

        let mut total = a;
        let mut b = a;
        b.bytes_in = 100;
        b.estimate = 5;
        total.merge(&b);
        assert_eq!(total.connections, 2);
        assert_eq!(total.estimate, 7);
        assert_eq!(total.bytes_in, 100);
        assert_eq!(total.cache.loads, 4);
        assert_eq!(total.uptime_ticks, 6);
    }

    #[test]
    fn shutdown_ack_and_error_frame_round_trip() {
        let ack = ShutdownAck;
        assert_eq!(
            ack.to_json().encode(),
            "{\"schema_version\":1,\"op\":\"shutdown\",\"draining\":true}"
        );
        ShutdownAck::from_json(&parse(&ack.to_json().encode()).unwrap()).unwrap();

        let frame = ErrorFrame::new(
            LeqaError::new(ErrorKind::Overloaded, "server at capacity").context("request 7"),
        );
        let text = frame.to_json().encode();
        assert!(text.starts_with(
            "{\"schema_version\":1,\"op\":\"error\",\"error\":{\"kind\":\"overloaded\""
        ));
        let back = ErrorFrame::from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back, frame);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn requests_roundtrip_for_arbitrary_parameters(
            w in 1u32..500, h in 1u32..500,
            terms in 1u64..64,
            sides in 1usize..10,
            base in 2u32..100,
            trace in 0u64..50,
            strategy in 0u32..3,
            spec_kind in 0u32..3,
        ) {
            let spec = match spec_kind {
                0 => ProgramSpec::bench(format!("qft_{base}")),
                1 => ProgramSpec::path(format!("/tmp/{base}/c d\".qc")),
                _ => ProgramSpec::source(format!(".qubits {base}\ncnot 0 1\n")),
            };
            let requests = [
                Request::Estimate(EstimateRequest::new(spec.clone()).with_fabric(w, h)),
                Request::Sweep(SweepRequest::new(
                    spec.clone(),
                    (0..sides).map(|i| base + i as u32),
                )),
                Request::Zones(ZonesRequest::new(spec.clone()).with_limit(terms)),
                Request::Compare(CompareRequest::new(spec.clone()).with_fabric(h, w)),
                Request::Map(
                    MapRequest::new(spec)
                        .with_trace_limit(trace)
                        .with_placement(match strategy {
                            0 => PlacementStrategy::IigCluster,
                            1 => PlacementStrategy::RowMajor,
                            _ => PlacementStrategy::Random,
                        })
                        .with_router(match strategy {
                            0 => RouterStrategy::Xy,
                            1 => RouterStrategy::Yx,
                            _ => RouterStrategy::Adaptive,
                        })
                        .with_movement(if strategy == 0 {
                            MovementModel::HomeBased
                        } else {
                            MovementModel::Drift
                        }),
                ),
            ];
            for req in requests {
                let back = Request::from_json(&parse(&req.to_json().encode()).unwrap()).unwrap();
                prop_assert_eq!(back, req);
            }
        }

        #[test]
        fn estimate_response_roundtrips(
            qubits in 0u32..5000,
            ops in 0u64..100_000,
            w in 1u32..200, h in 1u32..200,
            latency in 0.0f64..1e12,
            l_cnot in 0.0f64..1e9,
            d_uncong in 0.0f64..1e9,
            zone in 0.0f64..4000.0,
            side in 0u32..64,
            esq_len in 0usize..24,
            cnots in 0u64..1_000_000,
            ones in 0u64..1_000_000,
            cached in 0u32..2,
        ) {
            let resp = EstimateResponse {
                program: ProgramSummary {
                    label: format!("prog-{qubits}"),
                    qubits: qubits as u64,
                    ops,
                },
                fabric: FabricSpec::new(w, h),
                latency_us: latency,
                l_cnot_avg_us: l_cnot,
                l_one_qubit_avg_us: 200.0,
                d_uncong_us: d_uncong,
                avg_zone_area: zone,
                zone_side: side,
                esq: (0..esq_len).map(|i| 1.0 / (i as f64 + 1.5)).collect(),
                critical_cnots: cnots,
                critical_one_qubit: ones,
                profile_cached: cached == 1,
            };
            let back = EstimateResponse::from_json(
                &parse(&resp.to_json().encode()).unwrap(),
            ).unwrap();
            prop_assert_eq!(back, resp);
        }

        #[test]
        fn sweep_response_roundtrips(
            sides in 1usize..12,
            base in 4u32..80,
            latency in 1.0f64..1e9,
        ) {
            let points: Vec<SweepPointDto> = (0..sides)
                .map(|i| SweepPointDto {
                    side: base + i as u32,
                    l_cnot_avg_us: if i % 3 == 0 { None } else { Some(latency / (i as f64 + 1.0)) },
                    latency_us: if i % 3 == 0 { None } else { Some(latency * (i as f64 + 1.0)) },
                })
                .collect();
            let resp = SweepResponse {
                program: ProgramSummary { label: "p".into(), qubits: 9, ops: 99 },
                optimal_side: points.iter().find(|p| p.latency_us.is_some()).map(|p| p.side),
                points,
            };
            let back = SweepResponse::from_json(&parse(&resp.to_json().encode()).unwrap()).unwrap();
            prop_assert_eq!(back, resp);
        }

        #[test]
        fn zones_response_roundtrips(rows in 0usize..20, seedq in 0u32..1000) {
            let rows: Vec<ZoneRowDto> = (0..rows)
                .map(|i| ZoneRowDto {
                    qubit: seedq + i as u32,
                    degree: i as u64,
                    strength: (i * 2) as u64,
                    zone_area: i as f64 + 0.25,
                    expected_path: i as f64 / 3.0,
                    uncongested_delay_us: i as f64 * 7.5,
                })
                .collect();
            let resp = ZonesResponse {
                program: ProgramSummary { label: "z".into(), qubits: 3, ops: 4 },
                fabric: FabricSpec::new(60, 60),
                total_rows: rows.len() as u64 + 2,
                rows,
            };
            let back = ZonesResponse::from_json(&parse(&resp.to_json().encode()).unwrap()).unwrap();
            prop_assert_eq!(back, resp);
        }

        #[test]
        fn compare_response_roundtrips(actual in 0.0f64..1e12, est in 0.0f64..1e12) {
            let resp = CompareResponse {
                program: ProgramSummary { label: "c".into(), qubits: 2, ops: 3 },
                fabric: FabricSpec::new(60, 60),
                actual_us: actual,
                estimated_us: est,
                error_pct: (actual > 0.0).then(|| 100.0 * (est - actual).abs() / actual),
            };
            let back =
                CompareResponse::from_json(&parse(&resp.to_json().encode()).unwrap()).unwrap();
            prop_assert_eq!(back, resp);
        }

        #[test]
        fn map_response_roundtrips(
            latency in 0.0f64..1e12,
            cnots in 0u64..1_000_000,
            load in 0u64..100_000,
            with_trace in 0u32..2,
        ) {
            let resp = MapResponse {
                program: ProgramSummary { label: "m".into(), qubits: 5, ops: 6 },
                fabric: FabricSpec::new(10, 12),
                latency_us: latency,
                cnot_ops: cnots,
                avg_cnot_distance: latency.sqrt(),
                congestion_wait_us: latency / 2.0,
                max_channel_load: load,
                trace: (with_trace == 1).then(|| "op  dist\ncnot  7\n".to_string()),
            };
            let back = MapResponse::from_json(&parse(&resp.to_json().encode()).unwrap()).unwrap();
            prop_assert_eq!(back, resp);
        }

        #[test]
        fn batch_response_roundtrips(slots in 0usize..8) {
            let results: Vec<Result<Response, LeqaError>> = (0..slots)
                .map(|i| {
                    if i % 2 == 0 {
                        Ok(Response::Compare(CompareResponse {
                            program: ProgramSummary {
                                label: format!("b{i}"),
                                qubits: i as u64,
                                ops: i as u64 * 3,
                            },
                            fabric: FabricSpec::new(6, 6),
                            actual_us: i as f64,
                            estimated_us: i as f64 * 1.5,
                            error_pct: None,
                        }))
                    } else {
                        Err(LeqaError::new(ErrorKind::Estimate, format!("slot {i}"))
                            .context("batch"))
                    }
                })
                .collect();
            let resp = BatchResponse { results };
            let back =
                BatchResponse::from_json(&parse(&resp.to_json().encode()).unwrap()).unwrap();
            prop_assert_eq!(back, resp);
        }
    }
}
