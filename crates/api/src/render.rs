//! Human-readable rendering of responses.
//!
//! The CLI's `--format text` output lives here, next to the DTOs it
//! formats, so the commands in `leqa-cli` stay pure adapters: build a
//! request, run it through a [`Session`](crate::Session), render. The
//! layouts are byte-compatible with the pre-API CLI output (asserted by
//! the CLI's unit tests).

use std::fmt::Write as _;

use crate::dto::{
    CompareResponse, EstimateResponse, MapResponse, ProgramSummary, Response, SweepResponse,
    ZonesResponse,
};
use crate::FabricSpec;

/// The standard program header line.
#[must_use]
pub fn header(program: &ProgramSummary, fabric: FabricSpec) -> String {
    format!(
        "{}: {} logical qubits, {} FT ops on a {}x{} fabric\n",
        program.label, program.qubits, program.ops, fabric.width, fabric.height
    )
}

/// Renders an estimate with every intermediate, as `leqa estimate` prints
/// it.
#[must_use]
pub fn estimate_text(resp: &EstimateResponse) -> String {
    let mut out = header(&resp.program, resp.fabric);
    let _ = writeln!(
        out,
        "estimated latency:  {:.6} s",
        resp.latency_us / 1_000_000.0
    );
    let _ = writeln!(out, "  L_CNOT^avg:       {:.1} µs", resp.l_cnot_avg_us);
    let _ = writeln!(out, "  L_g^avg:          {:.1} µs", resp.l_one_qubit_avg_us);
    let _ = writeln!(out, "  d_uncong:         {:.1} µs", resp.d_uncong_us);
    let _ = writeln!(out, "  avg zone area B:  {:.2}", resp.avg_zone_area);
    let _ = writeln!(out, "  zone side:        {}", resp.zone_side);
    let _ = writeln!(
        out,
        "  critical path:    {} CNOT + {} one-qubit ops",
        resp.critical_cnots, resp.critical_one_qubit
    );
    out
}

/// Renders a sweep table with the optimum, as `leqa sweep` prints it.
#[must_use]
pub fn sweep_text(resp: &SweepResponse) -> String {
    let mut out = format!(
        "{}: fabric-size sweep ({} qubits, {} ops)\n",
        resp.program.label, resp.program.qubits, resp.program.ops
    );
    let _ = writeln!(
        out,
        "{:>9} {:>12} {:>14}",
        "fabric", "L_CNOT(µs)", "latency(s)"
    );
    let mut optimal_latency = None;
    for point in &resp.points {
        let side = point.side;
        match (point.l_cnot_avg_us, point.latency_us) {
            (Some(l_cnot), Some(latency_us)) => {
                let latency = latency_us / 1_000_000.0;
                let _ = writeln!(out, "{side:>6}x{side:<2} {l_cnot:>12.1} {latency:>14.6}");
                if resp.optimal_side == Some(side) {
                    optimal_latency = Some(latency);
                }
            }
            _ => {
                let _ = writeln!(out, "{side:>6}x{side:<2} (too small)");
            }
        }
    }
    if let (Some(side), Some(latency)) = (resp.optimal_side, optimal_latency) {
        let _ = writeln!(out, "optimal: {side}x{side} at {latency:.6} s");
    }
    out
}

/// Renders the per-qubit zone table, as `leqa zones` prints it (same
/// layout as [`leqa::report::format_report`]).
#[must_use]
pub fn zones_text(resp: &ZonesResponse) -> String {
    let mut out = header(&resp.program, resp.fabric);
    let _ = writeln!(
        out,
        "{:>6} {:>5} {:>9} {:>8} {:>10} {:>14}",
        "qubit", "M_i", "strength", "B_i", "E[l_ham]", "d_uncong(µs)"
    );
    for z in &resp.rows {
        let _ = writeln!(
            out,
            "{:>6} {:>5} {:>9} {:>8.1} {:>10.3} {:>14.1}",
            format!("q{}", z.qubit),
            z.degree,
            z.strength,
            z.zone_area,
            z.expected_path,
            z.uncongested_delay_us
        );
    }
    out
}

/// Renders the Table 2 comparison, as `leqa compare` prints it.
#[must_use]
pub fn compare_text(resp: &CompareResponse) -> String {
    let mut out = header(&resp.program, resp.fabric);
    let _ = writeln!(
        out,
        "actual (QSPR):      {:.6} s",
        resp.actual_us / 1_000_000.0
    );
    let _ = writeln!(
        out,
        "estimated (LEQA):   {:.6} s",
        resp.estimated_us / 1_000_000.0
    );
    if let Some(err) = resp.error_pct {
        let _ = writeln!(out, "absolute error:     {err:.2} %");
    }
    out
}

/// Renders the mapper statistics (and optional trace), as `leqa map`
/// prints them.
#[must_use]
pub fn map_text(resp: &MapResponse) -> String {
    let mut out = header(&resp.program, resp.fabric);
    let _ = writeln!(
        out,
        "actual latency:     {:.6} s",
        resp.latency_us / 1_000_000.0
    );
    let _ = writeln!(out, "  CNOTs routed:     {}", resp.cnot_ops);
    let _ = writeln!(
        out,
        "  avg CNOT distance:{:.2} hops",
        resp.avg_cnot_distance
    );
    let _ = writeln!(
        out,
        "  congestion wait:  {:.6} s (summed over qubits)",
        resp.congestion_wait_us / 1_000_000.0
    );
    let _ = writeln!(
        out,
        "  busiest channel:  {} traversals",
        resp.max_channel_load
    );
    if let Some(trace) = &resp.trace {
        let _ = writeln!(out, "\nlongest-running operations:");
        out.push_str(trace);
    }
    out
}

/// Renders the one-line grid description shared by the run header and
/// the CLI's `--dry-run` output.
#[must_use]
pub fn experiment_plan_text(plan: &crate::ExperimentPlan) -> String {
    let mut line = format!(
        "{} cells ({} workloads × {} params × {} routers × {} movements × {} schedulers × {} sides), mode {}",
        plan.cells,
        plan.workloads.len(),
        plan.params.len(),
        plan.routers.len(),
        plan.movements.len(),
        plan.schedulers.len(),
        plan.sides.len(),
        plan.mode.name(),
    );
    if let Some(mc) = &plan.montecarlo {
        let _ = write!(
            line,
            " ({} densities × {} trials)",
            mc.densities.len(),
            mc.trials
        );
    }
    line
}

/// Renders the table header of an experiment run, as `leqa experiment`
/// prints it.
#[must_use]
pub fn experiment_header_text(plan: &crate::ExperimentPlan) -> String {
    let mut out = format!("experiment: {}\n", experiment_plan_text(plan));
    let _ = writeln!(
        out,
        "{:>5} {:<18} {:<10} {:>8} {:>5} {:>8} {:>6} {:>14}",
        "cell", "workload", "params", "router", "move", "sched", "side", "latency(s)"
    );
    out
}

/// Renders one experiment cell row, as `leqa experiment` prints it.
#[must_use]
pub fn experiment_cell_text(row: &crate::CellRow) -> String {
    use crate::dto::{movement_name, router_name, scheduler_name};
    let latency = match row.metrics.primary_latency_us() {
        Some(us) => format!("{:>14.6}", us / 1_000_000.0),
        // An unroutable Monte Carlo trial *fit* the fabric; the defects
        // severed it. Everything else without a latency was too small.
        None if matches!(
            row.metrics,
            crate::CellMetrics::MonteCarlo {
                routable: Some(false),
                ..
            }
        ) =>
        {
            format!("{:>14}", "(unroutable)")
        }
        None => format!("{:>14}", "(too small)"),
    };
    format!(
        "{:>5} {:<18} {:<10} {:>8} {:>5} {:>8} {:>6} {latency}\n",
        row.cell,
        row.workload,
        row.params,
        router_name(row.router),
        movement_name(row.movement),
        scheduler_name(row.scheduler),
        row.side,
    )
}

/// Renders the experiment summary block, as `leqa experiment` prints it.
#[must_use]
pub fn experiment_summary_text(summary: &crate::ExperimentSummary) -> String {
    let mut out = format!(
        "\nsummary: {} cells, {} fit\n",
        summary.cells, summary.fit_cells
    );
    for w in &summary.workloads {
        match (w.min_latency_us, w.max_latency_us, w.argmin_side) {
            (Some(min), Some(max), Some(side)) => {
                let _ = writeln!(
                    out,
                    "  {:<18} min {:.6} s at {side}x{side}, max {:.6} s ({} fitting cells)",
                    w.workload,
                    min / 1_000_000.0,
                    max / 1_000_000.0,
                    w.fit_cells
                );
            }
            _ => {
                let _ = writeln!(out, "  {:<18} no fitting cells", w.workload);
            }
        }
    }
    if let Some(mc) = &summary.montecarlo {
        let _ = writeln!(out, "yield:");
        for d in &mc.densities {
            let rate = match (d.routability, d.ci_low, d.ci_high) {
                (Some(r), Some(lo), Some(hi)) => {
                    format!(
                        "{:>5.1}% routable (95% CI {:.1}%–{:.1}%)",
                        100.0 * r,
                        100.0 * lo,
                        100.0 * hi
                    )
                }
                _ => "no fitting trials".to_string(),
            };
            let p50 = match d.p50_latency_us {
                Some(us) => format!(", p50 {:.6} s", us / 1_000_000.0),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "  density {:<6} {rate}{p50}  ({} trials)",
                d.density, d.trials
            );
        }
        match (mc.critical_density, mc.critical_ci_low, mc.critical_ci_high) {
            (Some(crit), Some(lo), Some(hi)) => {
                let _ = writeln!(
                    out,
                    "critical density (50% routability): {crit:.4} (95% CI {lo:.4}–{hi:.4})"
                );
            }
            _ => {
                let _ = writeln!(out, "critical density: not bracketed by the sweep");
            }
        }
    }
    let c = &summary.cache;
    let _ = writeln!(
        out,
        "cache: {} loads ({} hits, {} misses), {} profiles built",
        c.loads, c.cache_hits, c.cache_misses, c.profile_builds
    );
    out
}

/// Renders any response in its command's text layout.
#[must_use]
pub fn response_text(resp: &Response) -> String {
    match resp {
        Response::Estimate(r) => estimate_text(r),
        Response::Sweep(r) => sweep_text(r),
        Response::Zones(r) => zones_text(r),
        Response::Compare(r) => compare_text(r),
        Response::Map(r) => map_text(r),
    }
}
