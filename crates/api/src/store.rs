//! Disk-backed, content-addressed [`ProfileData`] snapshot store.
//!
//! A [`ProfileStore`] persists the expensive program-dependent half of
//! Algorithm 1 (the IIG plus Eq. 7/Eq. 12 precomputation) across process
//! restarts: a daemon started with `leqa serve --cache-dir DIR` — or a
//! shard replica re-spawned by the supervisor — comes up *warm*, serving
//! its first request for a previously-seen program without re-running
//! the profile passes.
//!
//! # Codec
//!
//! Snapshots use a hand-rolled binary codec (dependency-free, like the
//! [`json`](crate::json) module): a fixed magic + version header, the
//! canonical circuit text, the IIG's unique weighted edge list, and a
//! trailing FNV-1a checksum over every preceding byte. The profile
//! scalars (zone average, uncongested-delay terms) are *not* stored —
//! they are recomputed from the decoded IIG by
//! [`ProfileData::with_iig`], which is deterministic, so a loaded
//! snapshot is bit-identical to the profile the original process built.
//!
//! All integers are little-endian:
//!
//! ```text
//! magic      8 bytes   "LEQAPROF"
//! version    u32       1
//! source_len u32       canonical circuit text length
//! source     [u8]      canonical circuit text (UTF-8)
//! num_qubits u32
//! edge_count u32
//! edges      edge_count × (u32 lo, u32 hi, u64 weight)
//! checksum   u64       FNV-1a over every byte above
//! ```
//!
//! # Safety discipline
//!
//! The store reuses the session cache's lookup-verify contract: the file
//! name is the FNV-1a hash of the canonical source, and a load verifies
//! *both* the checksum and that the stored source matches the requesting
//! source — a hash collision or a stale file yields a typed
//! [`SnapshotError`], never some other program's profile. Writes go to a
//! temporary file first and are atomically renamed into place, so a
//! crash mid-write leaves either the old snapshot or none, never a torn
//! one. Corrupt snapshots are a *miss*, not a failure: the session
//! recomputes the profile and overwrites the bad file.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use leqa::ProfileData;
use leqa_circuit::Iig;

use crate::error::{ErrorKind, LeqaError};
use crate::session::fnv1a;

/// The 8-byte magic prefix of every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"LEQAPROF";

/// Snapshot codec version (bumped on incompatible layout changes; a
/// mismatch is a typed rejection, never a misparse).
pub const SNAPSHOT_VERSION: u32 = 1;

/// File extension of snapshot files inside the store directory.
pub const SNAPSHOT_EXT: &str = "leqa-snap";

/// Why a snapshot failed to load or save. Every variant is a *recoverable*
/// condition: the session treats any load error as a store miss and
/// recomputes the profile.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// No snapshot exists for the requested program.
    Missing,
    /// The underlying filesystem operation failed.
    Io(String),
    /// The file is too short to hold the header and checksum.
    Truncated,
    /// The magic prefix is wrong — not a snapshot file.
    BadMagic,
    /// The codec version is one this build does not speak.
    BadVersion(u32),
    /// The trailing FNV-1a checksum does not match the content.
    ChecksumMismatch,
    /// The structure decoded but its contents are inconsistent
    /// (lengths disagree, edge endpoints out of range, bad UTF-8…).
    Malformed(String),
    /// The snapshot decoded cleanly but stores a *different* program
    /// than the one requested (stale file or FNV collision).
    SourceMismatch,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Missing => write!(f, "no snapshot on disk"),
            SnapshotError::Io(msg) => write!(f, "snapshot I/O failed: {msg}"),
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a profile snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (expected {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Malformed(msg) => write!(f, "malformed snapshot: {msg}"),
            SnapshotError::SourceMismatch => {
                write!(
                    f,
                    "snapshot stores a different program (stale or hash collision)"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<SnapshotError> for LeqaError {
    fn from(err: SnapshotError) -> Self {
        LeqaError::new(ErrorKind::Io, err.to_string())
    }
}

/// Serializes one program's snapshot: canonical source + IIG edge list,
/// framed by the magic/version header and the trailing checksum.
///
/// The scalars derived from the IIG are recomputed at load time, so this
/// is the *complete* persistent form of a [`ProfileData`].
#[must_use]
pub fn encode_snapshot(source: &str, data: &ProfileData) -> Vec<u8> {
    let iig = data.iig();
    let edges: Vec<(u32, u32, u64)> = iig.edges().collect();
    let mut bytes = Vec::with_capacity(32 + source.len() + edges.len() * 16);
    bytes.extend_from_slice(SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&(source.len() as u32).to_le_bytes());
    bytes.extend_from_slice(source.as_bytes());
    bytes.extend_from_slice(&iig.num_qubits().to_le_bytes());
    bytes.extend_from_slice(&(edges.len() as u32).to_le_bytes());
    for (lo, hi, w) in edges {
        bytes.extend_from_slice(&lo.to_le_bytes());
        bytes.extend_from_slice(&hi.to_le_bytes());
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    let checksum = fnv1a(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes
}

/// Decodes a snapshot back into its canonical source and the rebuilt
/// [`ProfileData`] (bit-identical to the one that was encoded).
///
/// # Errors
///
/// Any [`SnapshotError`] variant except `Missing`/`Io`: truncation, bad
/// magic, unsupported version, checksum mismatch, or structural
/// inconsistency. Never panics on arbitrary input.
pub fn decode_snapshot(bytes: &[u8]) -> Result<(String, ProfileData), SnapshotError> {
    // Checksum first: everything else may be garbage.
    if bytes.len() < SNAPSHOT_MAGIC.len() + 8 {
        return Err(SnapshotError::Truncated);
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
    if fnv1a(body) != stored {
        return Err(SnapshotError::ChecksumMismatch);
    }

    let mut cursor = Reader { body, pos: 0 };
    let magic = cursor.take(SNAPSHOT_MAGIC.len())?;
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = cursor.u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let source_len = cursor.u32()? as usize;
    let source_bytes = cursor.take(source_len)?;
    let source = std::str::from_utf8(source_bytes)
        .map_err(|_| SnapshotError::Malformed("source is not UTF-8".into()))?
        .to_string();
    let num_qubits = cursor.u32()?;
    let edge_count = cursor.u32()? as usize;
    // 16 bytes per edge; guard the multiplication against crafted counts.
    if cursor.remaining() != edge_count.saturating_mul(16) {
        return Err(SnapshotError::Malformed(format!(
            "edge arena holds {} bytes, expected {} for {edge_count} edges",
            cursor.remaining(),
            edge_count.saturating_mul(16),
        )));
    }
    let mut edges = Vec::with_capacity(edge_count);
    for _ in 0..edge_count {
        let lo = cursor.u32()?;
        let hi = cursor.u32()?;
        let w = cursor.u64()?;
        edges.push((lo, hi, w));
    }
    let iig = Iig::from_weighted_edges(num_qubits, edges)
        .map_err(|e| SnapshotError::Malformed(e.to_string()))?;
    Ok((source, ProfileData::with_iig(iig)))
}

/// Bounded little-endian reader over the checksummed body.
struct Reader<'a> {
    body: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.body.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let slice = &self.body[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

/// Process-unique suffix counter for temporary files, so concurrent
/// saves of the same program never clobber each other's partial writes.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A directory of content-addressed profile snapshots.
///
/// Each program's snapshot lives at `DIR/<fnv1a(source):016x>.leqa-snap`.
/// The store is safe to share between threads and between processes:
/// writes are atomic (tmp + rename) and loads verify content before
/// trusting it.
///
/// # Examples
///
/// ```
/// use leqa_api::store::ProfileStore;
/// use leqa_api::{ProgramSpec, Session};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dir = std::env::temp_dir().join(format!("leqa-store-doc-{}", std::process::id()));
/// let warm = Session::builder().cache_dir(&dir).build()?;
/// warm.load(&ProgramSpec::bench("qft_4"))?.profile_data();
///
/// // A later process (here: a second session) comes up warm.
/// let restarted = Session::builder().cache_dir(&dir).build()?;
/// restarted.load(&ProgramSpec::bench("qft_4"))?.profile_data();
/// assert_eq!(restarted.cache_stats().profile_builds, 0);
/// assert_eq!(restarted.store_stats().store_hits, 1);
/// # std::fs::remove_dir_all(&dir)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ProfileStore {
    dir: PathBuf,
}

impl ProfileStore {
    /// Opens (creating if necessary) the snapshot directory.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, SnapshotError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| SnapshotError::Io(format!("creating `{}`: {e}", dir.display())))?;
        Ok(ProfileStore { dir })
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The snapshot path for a program's canonical source text.
    #[must_use]
    pub fn path_for(&self, source: &str) -> PathBuf {
        self.dir
            .join(format!("{:016x}.{SNAPSHOT_EXT}", fnv1a(source.as_bytes())))
    }

    /// Loads the snapshot for `source`, verifying the checksum and that
    /// the stored program *is* `source` (lookup-verify: a stale file or
    /// hash collision is rejected, never served).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Missing`] when no file exists; any other variant
    /// when the file exists but cannot be trusted. Callers treat every
    /// error as a miss and recompute.
    pub fn load(&self, source: &str) -> Result<ProfileData, SnapshotError> {
        let path = self.path_for(source);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(SnapshotError::Missing)
            }
            Err(e) => {
                return Err(SnapshotError::Io(format!(
                    "reading `{}`: {e}",
                    path.display()
                )))
            }
        };
        let (stored_source, data) = decode_snapshot(&bytes)?;
        if stored_source != source {
            return Err(SnapshotError::SourceMismatch);
        }
        Ok(data)
    }

    /// Persists the snapshot for `source` atomically: the encoded bytes
    /// go to a temporary file in the same directory, then a rename moves
    /// them into place, so readers only ever observe complete snapshots.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] when writing or renaming fails. Sessions
    /// treat save failures as best-effort (a cold restart, not a request
    /// failure).
    pub fn save(&self, source: &str, data: &ProfileData) -> Result<(), SnapshotError> {
        let path = self.path_for(source);
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let bytes = encode_snapshot(source, data);
        std::fs::write(&tmp, &bytes)
            .map_err(|e| SnapshotError::Io(format!("writing `{}`: {e}", tmp.display())))?;
        std::fs::rename(&tmp, &path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            SnapshotError::Io(format!("renaming into `{}`: {e}", path.display()))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leqa_circuit::{FtCircuit, Qodg, QubitId};
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn sample_profile() -> (String, ProfileData) {
        let mut ft = FtCircuit::new(5);
        for i in 1..5 {
            ft.push_cnot(QubitId(0), QubitId(i)).unwrap();
        }
        ft.push_cnot(QubitId(1), QubitId(2)).unwrap();
        let qodg = Qodg::from_ft_circuit(&ft);
        (".qubits 5\n".to_string(), ProfileData::new(&qodg))
    }

    fn tmp_store(tag: &str) -> ProfileStore {
        let dir =
            std::env::temp_dir().join(format!("leqa-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ProfileStore::open(dir).unwrap()
    }

    fn assert_same_profile(a: &ProfileData, b: &ProfileData) {
        assert_eq!(a.iig().num_qubits(), b.iig().num_qubits());
        assert_eq!(a.iig().total_weight(), b.iig().total_weight());
        assert_eq!(
            a.iig().edges().collect::<Vec<_>>(),
            b.iig().edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn codec_round_trips() {
        let (source, data) = sample_profile();
        let bytes = encode_snapshot(&source, &data);
        let (decoded_source, decoded) = decode_snapshot(&bytes).unwrap();
        assert_eq!(decoded_source, source);
        assert_same_profile(&data, &decoded);
    }

    #[test]
    fn store_round_trips_and_misses() {
        let store = tmp_store("roundtrip");
        let (source, data) = sample_profile();
        assert!(matches!(store.load(&source), Err(SnapshotError::Missing)));
        store.save(&source, &data).unwrap();
        let loaded = store.load(&source).unwrap();
        assert_same_profile(&data, &loaded);
        // A different program misses even though a file exists.
        assert!(matches!(
            store.load(".qubits 2\n"),
            Err(SnapshotError::Missing)
        ));
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn stale_snapshot_is_rejected_by_source_verify() {
        let store = tmp_store("stale");
        let (source, data) = sample_profile();
        // Simulate a collision/stale file: the snapshot under `source`'s
        // name stores a different program.
        let bytes = encode_snapshot("other program", &data);
        std::fs::write(store.path_for(&source), bytes).unwrap();
        assert!(matches!(
            store.load(&source),
            Err(SnapshotError::SourceMismatch)
        ));
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The codec round-trips arbitrary profiles, and re-encoding the
        /// decoded profile is byte-identical — the snapshot form is
        /// canonical, so warm-started replicas serve the same bytes the
        /// original process would have.
        #[test]
        fn codec_round_trips_arbitrary_profiles(
            qubits in 3u32..24,
            links in 1usize..64,
            seed in 0u64..u64::MAX,
        ) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut ft = FtCircuit::new(qubits);
            for _ in 0..links {
                let a = rng.gen_range(0..qubits);
                let b = rng.gen_range(0..qubits);
                if a != b {
                    ft.push_cnot(QubitId(a), QubitId(b)).unwrap();
                }
            }
            let qodg = Qodg::from_ft_circuit(&ft);
            let data = ProfileData::new(&qodg);
            let source = format!(".qubits {qubits} # variant {seed}\n");
            let bytes = encode_snapshot(&source, &data);
            let (decoded_source, decoded) = decode_snapshot(&bytes).unwrap();
            prop_assert_eq!(&decoded_source, &source);
            prop_assert_eq!(encode_snapshot(&decoded_source, &decoded), bytes);
        }

        /// Corruption fuzz with arbitrary XOR masks (the exhaustive test
        /// below covers the 0x01/0x80 masks at every offset): any single
        /// damaged byte must surface as a typed error, never a panic and
        /// never a silently-wrong profile.
        #[test]
        fn random_single_byte_corruption_is_always_rejected(
            at in 0usize..1 << 20,
            mask in 1u8..=255,
        ) {
            let (source, data) = sample_profile();
            let mut bytes = encode_snapshot(&source, &data);
            let idx = at % bytes.len();
            bytes[idx] ^= mask;
            prop_assert!(decode_snapshot(&bytes).is_err(), "byte {idx} mask {mask:#x}");
        }
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let (source, data) = sample_profile();
        let bytes = encode_snapshot(&source, &data);
        for i in 0..bytes.len() {
            for bit in [0x01u8, 0x80] {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= bit;
                let result = decode_snapshot(&corrupt);
                assert!(
                    result.is_err(),
                    "flip of byte {i} (bit mask {bit:#x}) must be rejected"
                );
            }
        }
    }

    #[test]
    fn truncations_are_rejected() {
        let (source, data) = sample_profile();
        let bytes = encode_snapshot(&source, &data);
        for len in 0..bytes.len() {
            assert!(
                decode_snapshot(&bytes[..len]).is_err(),
                "prefix of {len} bytes must be rejected"
            );
        }
    }

    #[test]
    fn wrong_magic_and_version_are_typed() {
        let (source, data) = sample_profile();
        let mut bytes = encode_snapshot(&source, &data);
        bytes[0] = b'X';
        let fixed = reseal(&bytes);
        assert!(matches!(
            decode_snapshot(&fixed),
            Err(SnapshotError::BadMagic)
        ));

        let mut bytes = encode_snapshot(&source, &data);
        bytes[8] = 99;
        let fixed = reseal(&bytes);
        assert!(matches!(
            decode_snapshot(&fixed),
            Err(SnapshotError::BadVersion(99))
        ));
    }

    /// Recomputes the trailing checksum after tampering with the body —
    /// used to reach the structural checks behind the checksum gate.
    fn reseal(bytes: &[u8]) -> Vec<u8> {
        let body = &bytes[..bytes.len() - 8];
        let mut out = body.to_vec();
        out.extend_from_slice(&fnv1a(body).to_le_bytes());
        out
    }
}
