//! Deterministic fault injection for the serving stack.
//!
//! A [`FaultPlan`] declares, per reply event, a seeded probability of
//! transport misbehaviour — extra latency, a dropped connection, a
//! truncated frame, a flipped payload byte — plus a periodic replica
//! kill. The plan is *deterministic*: event `n` under seed `s` always
//! makes the same decision ([`SplitMix64`]-derived, the same generator
//! family as the seeded defect maps), so a chaos soak that fails
//! reproduces exactly from its spec string.
//!
//! Injection is strictly opt-in (`leqa serve --chaos SPEC`,
//! `leqa shard --chaos SPEC`): a server without an injector runs the
//! exact byte-stable paths every prior PR pinned. With one, faults are
//! applied at the transport write layer only — the session underneath
//! still computes correct replies, so a retrying client converges on
//! answers byte-identical to a direct [`Session`](crate::Session).
//!
//! # Spec grammar
//!
//! Comma-separated `key=value` entries, all optional:
//!
//! ```text
//! seed=N            decision seed (default 0)
//! delay=MS:RATE     sleep MS milliseconds before a reply, with
//!                   probability RATE (bare `delay=MS` means rate 1)
//! drop=RATE         close the connection instead of replying
//! truncate=RATE     write a torn prefix of the reply, then close
//! flip=RATE         corrupt one payload byte (high-bit flip —
//!                   detectably, as invalid UTF-8), then deliver
//! kill=N            every Nth reply event kills the whole replica
//!                   (graceful-shutdown path, as a crash would)
//! rdrop=RATE        swallow a *request read* and close the connection
//!                   before the engine ever sees the line
//! rtruncate=RATE    read only a torn prefix of a request (the rest of
//!                   the line is lost with the connection)
//! rflip=RATE        corrupt one inbound request byte (high-bit flip)
//! ```
//!
//! Example: `seed=7,delay=5:0.2,drop=0.05,truncate=0.05,flip=0.05,kill=100`.
//! The `drop`/`truncate`/`flip` rates partition one uniform draw, so
//! their sum must stay ≤ 1; the read-side `rdrop`/`rtruncate`/`rflip`
//! rates partition a second, independent draw with the same ≤ 1 rule.
//! Read-side decisions are salted so the inbound fault sequence is
//! independent of the reply-side one under the same seed.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use leqa_fabric::SplitMix64;

use crate::error::LeqaError;

/// A declarative, seeded fault-injection plan (see the [module
/// docs](self) for the spec grammar).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct FaultPlan {
    /// Decision seed: the same seed replays the same fault sequence.
    pub seed: u64,
    /// Injected latency per delayed reply.
    pub delay_ms: u64,
    /// Probability a reply is delayed by [`delay_ms`](Self::delay_ms).
    pub delay_rate: f64,
    /// Probability a reply is swallowed and the connection closed.
    pub drop_rate: f64,
    /// Probability a reply is written as a torn prefix, then closed.
    pub truncate_rate: f64,
    /// Probability one payload byte of a reply is flipped.
    pub flip_rate: f64,
    /// Kill the replica on every Nth reply event (`0` = never).
    pub kill_every: u64,
    /// Probability a request read is swallowed and the connection closed
    /// before the engine sees the line.
    pub rdrop_rate: f64,
    /// Probability a request line is read as a torn prefix, the rest
    /// lost with the connection.
    pub rtruncate_rate: f64,
    /// Probability one inbound request byte is flipped.
    pub rflip_rate: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            delay_ms: 0,
            delay_rate: 0.0,
            drop_rate: 0.0,
            truncate_rate: 0.0,
            flip_rate: 0.0,
            kill_every: 0,
            rdrop_rate: 0.0,
            rtruncate_rate: 0.0,
            rflip_rate: 0.0,
        }
    }
}

impl FaultPlan {
    /// Parses the `--chaos` spec grammar (see the [module docs](self)).
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Usage`](crate::ErrorKind::Usage) for unknown keys,
    /// unparseable numbers, rates outside `[0, 1]`, or
    /// `drop + truncate + flip > 1`.
    pub fn parse(spec: &str) -> Result<FaultPlan, LeqaError> {
        let mut plan = FaultPlan::default();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, value) = entry.split_once('=').ok_or_else(|| {
                LeqaError::usage(format!("chaos entry `{entry}` is not `key=value`"))
            })?;
            match key {
                "seed" => plan.seed = parse_u64(key, value)?,
                "kill" => plan.kill_every = parse_u64(key, value)?,
                "delay" => match value.split_once(':') {
                    None => {
                        plan.delay_ms = parse_u64(key, value)?;
                        plan.delay_rate = 1.0;
                    }
                    Some((ms, rate)) => {
                        plan.delay_ms = parse_u64(key, ms)?;
                        plan.delay_rate = parse_rate(key, rate)?;
                    }
                },
                "drop" => plan.drop_rate = parse_rate(key, value)?,
                "truncate" => plan.truncate_rate = parse_rate(key, value)?,
                "flip" => plan.flip_rate = parse_rate(key, value)?,
                "rdrop" => plan.rdrop_rate = parse_rate(key, value)?,
                "rtruncate" => plan.rtruncate_rate = parse_rate(key, value)?,
                "rflip" => plan.rflip_rate = parse_rate(key, value)?,
                other => {
                    return Err(LeqaError::usage(format!(
                        "unknown chaos key `{other}` \
                         (seed|delay|drop|truncate|flip|kill|rdrop|rtruncate|rflip)"
                    )))
                }
            }
        }
        if plan.drop_rate + plan.truncate_rate + plan.flip_rate > 1.0 {
            return Err(LeqaError::usage(
                "chaos rates drop+truncate+flip must sum to at most 1",
            ));
        }
        if plan.rdrop_rate + plan.rtruncate_rate + plan.rflip_rate > 1.0 {
            return Err(LeqaError::usage(
                "chaos rates rdrop+rtruncate+rflip must sum to at most 1",
            ));
        }
        Ok(plan)
    }

    /// Re-encodes the plan as a spec string [`parse`](Self::parse)
    /// accepts (field order is fixed; defaults are omitted).
    #[must_use]
    pub fn spec(&self) -> String {
        let mut parts = vec![format!("seed={}", self.seed)];
        if self.delay_rate > 0.0 && self.delay_ms > 0 {
            parts.push(format!("delay={}:{}", self.delay_ms, self.delay_rate));
        }
        if self.drop_rate > 0.0 {
            parts.push(format!("drop={}", self.drop_rate));
        }
        if self.truncate_rate > 0.0 {
            parts.push(format!("truncate={}", self.truncate_rate));
        }
        if self.flip_rate > 0.0 {
            parts.push(format!("flip={}", self.flip_rate));
        }
        if self.kill_every > 0 {
            parts.push(format!("kill={}", self.kill_every));
        }
        if self.rdrop_rate > 0.0 {
            parts.push(format!("rdrop={}", self.rdrop_rate));
        }
        if self.rtruncate_rate > 0.0 {
            parts.push(format!("rtruncate={}", self.rtruncate_rate));
        }
        if self.rflip_rate > 0.0 {
            parts.push(format!("rflip={}", self.rflip_rate));
        }
        parts.join(",")
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.spec())
    }
}

fn parse_u64(key: &str, value: &str) -> Result<u64, LeqaError> {
    value
        .parse()
        .map_err(|_| LeqaError::usage(format!("chaos `{key}` needs an integer, got `{value}`")))
}

fn parse_rate(key: &str, value: &str) -> Result<f64, LeqaError> {
    let rate: f64 = value.parse().map_err(|_| {
        LeqaError::usage(format!(
            "chaos `{key}` needs a rate in [0, 1], got `{value}`"
        ))
    })?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(LeqaError::usage(format!(
            "chaos `{key}` rate {rate} is outside [0, 1]"
        )));
    }
    Ok(rate)
}

/// What the injector decided for one reply event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultAction {
    /// Deliver the reply normally.
    Deliver,
    /// Close the connection without writing the reply.
    DropConnection,
    /// Write only the given number of bytes of the framed reply, then
    /// close the connection (a torn write, as a crash mid-flush would
    /// leave).
    Truncate,
    /// Flip the high bit of the payload byte at the given index (mod
    /// payload length), then deliver. On the protocol's ASCII JSON the
    /// result is invalid UTF-8, so the corruption is always detectable
    /// — the client must notice and retry.
    FlipByte(usize),
    /// Kill the whole replica (graceful-shutdown path) without writing
    /// the reply.
    KillReplica,
}

/// What the injector decided for one *request read* event — corruption
/// on the inbound half of the wire, before the engine sees the line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReadFaultAction {
    /// Hand the request to the engine unharmed.
    Deliver,
    /// Swallow the request and close the connection (the engine never
    /// sees it; the client observes a lost connection and must retry).
    DropRequest,
    /// Read only a torn prefix of the request line; the rest is lost
    /// with the connection, as a peer crash mid-write would leave.
    Truncate,
    /// Flip the high bit of the inbound byte at the given index (mod
    /// line length). On the protocol's ASCII JSON the result is invalid
    /// UTF-8, so the damage is detectable at the framing layer.
    FlipByte(usize),
}

/// One reply event's complete decision: an optional injected delay plus
/// the delivery action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct FaultDecision {
    /// Sleep this long before acting (None = no injected latency).
    pub delay: Option<Duration>,
    /// How (whether) to deliver the reply.
    pub action: FaultAction,
}

impl FaultDecision {
    /// The no-fault decision (what an injector-less server always does).
    #[must_use]
    pub fn deliver() -> Self {
        FaultDecision {
            delay: None,
            action: FaultAction::Deliver,
        }
    }
}

/// A [`FaultPlan`] bound to a monotone event counter: each reply event
/// draws its decision from `SplitMix64(mix(seed, n))`, so the sequence
/// of decisions is a pure function of `(seed, event index)`.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    events: AtomicU64,
    reads: AtomicU64,
}

/// Salt folded into the plan seed for read-side decisions, so the
/// inbound fault sequence is independent of the reply-side one under the
/// same seed (the two counters advance independently anyway; the salt
/// keeps even event `n`'s draws uncorrelated).
const READ_SALT: u64 = 0x5245_4144_5245_4144; // "READREAD"

impl FaultInjector {
    /// Binds a plan to fresh event counters.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            events: AtomicU64::new(0),
            reads: AtomicU64::new(0),
        }
    }

    /// The plan this injector executes.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Reply events decided so far.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// Draws the next reply event's decision (advances the counter).
    #[must_use]
    pub fn next_decision(&self) -> FaultDecision {
        let n = self.events.fetch_add(1, Ordering::Relaxed) + 1;
        self.decision_for(n)
    }

    /// The decision for event `n` (1-based) — pure, so tests and replays
    /// can audit a sequence without consuming the counter.
    #[must_use]
    pub fn decision_for(&self, n: u64) -> FaultDecision {
        let plan = &self.plan;
        if plan.kill_every > 0 && n.is_multiple_of(plan.kill_every) {
            return FaultDecision {
                delay: None,
                action: FaultAction::KillReplica,
            };
        }
        let mut rng = SplitMix64::new(SplitMix64::mix(plan.seed, n));
        let delay = (plan.delay_ms > 0 && rng.next_f64() < plan.delay_rate)
            .then(|| Duration::from_millis(plan.delay_ms));
        let draw = rng.next_f64();
        let action = if draw < plan.drop_rate {
            FaultAction::DropConnection
        } else if draw < plan.drop_rate + plan.truncate_rate {
            FaultAction::Truncate
        } else if draw < plan.drop_rate + plan.truncate_rate + plan.flip_rate {
            FaultAction::FlipByte(rng.next_u64() as usize)
        } else {
            FaultAction::Deliver
        };
        FaultDecision { delay, action }
    }

    /// Request-read events decided so far.
    #[must_use]
    pub fn read_events(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Draws the next request-read event's decision (advances the read
    /// counter, which is independent of the reply counter).
    #[must_use]
    pub fn next_read_decision(&self) -> ReadFaultAction {
        let n = self.reads.fetch_add(1, Ordering::Relaxed) + 1;
        self.read_decision_for(n)
    }

    /// The read decision for event `n` (1-based) — pure, like
    /// [`decision_for`](Self::decision_for).
    #[must_use]
    pub fn read_decision_for(&self, n: u64) -> ReadFaultAction {
        let plan = &self.plan;
        let mut rng = SplitMix64::new(SplitMix64::mix(plan.seed ^ READ_SALT, n));
        let draw = rng.next_f64();
        if draw < plan.rdrop_rate {
            ReadFaultAction::DropRequest
        } else if draw < plan.rdrop_rate + plan.rtruncate_rate {
            ReadFaultAction::Truncate
        } else if draw < plan.rdrop_rate + plan.rtruncate_rate + plan.rflip_rate {
            ReadFaultAction::FlipByte(rng.next_u64() as usize)
        } else {
            ReadFaultAction::Deliver
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_parse() {
        let plan = FaultPlan::parse("seed=7,delay=5:0.25,drop=0.1,truncate=0.1,flip=0.1,kill=100")
            .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.delay_ms, 5);
        assert_eq!(plan.delay_rate, 0.25);
        assert_eq!(plan.drop_rate, 0.1);
        assert_eq!(plan.truncate_rate, 0.1);
        assert_eq!(plan.flip_rate, 0.1);
        assert_eq!(plan.kill_every, 100);
        assert_eq!(FaultPlan::parse(&plan.spec()).unwrap(), plan);
    }

    #[test]
    fn bare_delay_means_always() {
        let plan = FaultPlan::parse("delay=3").unwrap();
        assert_eq!(plan.delay_ms, 3);
        assert_eq!(plan.delay_rate, 1.0);
    }

    #[test]
    fn bad_specs_are_usage_errors() {
        for spec in [
            "nope=1",
            "delay",
            "drop=2",
            "drop=-0.5",
            "flip=abc",
            "seed=abc",
            "drop=0.5,truncate=0.4,flip=0.2",
        ] {
            let err = FaultPlan::parse(spec).unwrap_err();
            assert_eq!(err.kind(), crate::ErrorKind::Usage, "spec `{spec}`");
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let plan = FaultPlan::parse("seed=1,delay=2:0.3,drop=0.2,truncate=0.2,flip=0.2").unwrap();
        let a = FaultInjector::new(plan);
        let b = FaultInjector::new(plan);
        let seq_a: Vec<FaultDecision> = (0..64).map(|_| a.next_decision()).collect();
        let seq_b: Vec<FaultDecision> = (0..64).map(|_| b.next_decision()).collect();
        assert_eq!(seq_a, seq_b, "same seed, same sequence");

        let other = FaultInjector::new(FaultPlan { seed: 2, ..plan });
        let seq_c: Vec<FaultDecision> = (0..64).map(|_| other.next_decision()).collect();
        assert_ne!(seq_a, seq_c, "different seed, different sequence");
    }

    #[test]
    fn kill_fires_exactly_on_schedule() {
        let plan = FaultPlan::parse("kill=5").unwrap();
        let injector = FaultInjector::new(plan);
        for n in 1..=20u64 {
            let decision = injector.next_decision();
            if n % 5 == 0 {
                assert_eq!(decision.action, FaultAction::KillReplica, "event {n}");
            } else {
                assert_eq!(decision.action, FaultAction::Deliver, "event {n}");
            }
        }
        assert_eq!(injector.events(), 20);
    }

    #[test]
    fn empty_plan_always_delivers() {
        let injector = FaultInjector::new(FaultPlan::parse("").unwrap());
        for _ in 0..32 {
            assert_eq!(injector.next_decision(), FaultDecision::deliver());
        }
    }

    #[test]
    fn read_spec_round_trips_and_validates() {
        let plan = FaultPlan::parse("seed=3,rdrop=0.1,rtruncate=0.2,rflip=0.3").unwrap();
        assert_eq!(plan.rdrop_rate, 0.1);
        assert_eq!(plan.rtruncate_rate, 0.2);
        assert_eq!(plan.rflip_rate, 0.3);
        assert_eq!(FaultPlan::parse(&plan.spec()).unwrap(), plan);
        // The read rates partition their own draw, separately from the
        // write rates: each sum is validated on its own.
        assert!(FaultPlan::parse("rdrop=0.5,rtruncate=0.4,rflip=0.2").is_err());
        assert!(FaultPlan::parse("drop=0.9,rdrop=0.9").is_ok());
    }

    #[test]
    fn read_decisions_are_deterministic_and_independent_of_writes() {
        // Symmetric rates, same seed: the read sequence must replay
        // exactly, and must NOT mirror the write sequence (the salt
        // decorrelates the two draws).
        let plan = FaultPlan::parse(
            "seed=1,drop=0.2,truncate=0.2,flip=0.2,rdrop=0.2,rtruncate=0.2,rflip=0.2",
        )
        .unwrap();
        let injector = FaultInjector::new(plan);
        let replay = FaultInjector::new(plan);
        let reads: Vec<ReadFaultAction> = (1..=64).map(|n| injector.read_decision_for(n)).collect();
        let again: Vec<ReadFaultAction> = (1..=64).map(|n| replay.read_decision_for(n)).collect();
        assert_eq!(reads, again, "same seed, same read sequence");

        let mirrored = (1..=64u64).all(|n| {
            let w = injector.decision_for(n).action;
            let r = injector.read_decision_for(n);
            matches!(
                (w, r),
                (FaultAction::Deliver, ReadFaultAction::Deliver)
                    | (FaultAction::DropConnection, ReadFaultAction::DropRequest)
                    | (FaultAction::Truncate, ReadFaultAction::Truncate)
                    | (FaultAction::FlipByte(_), ReadFaultAction::FlipByte(_))
            )
        });
        assert!(!mirrored, "read decisions must not mirror write decisions");
    }

    #[test]
    fn default_plan_never_faults_reads() {
        let injector = FaultInjector::new(FaultPlan::default());
        for _ in 0..32 {
            assert_eq!(injector.next_read_decision(), ReadFaultAction::Deliver);
        }
        assert_eq!(injector.read_events(), 32);
        assert_eq!(
            injector.events(),
            0,
            "read draws never consume reply events"
        );
    }

    #[test]
    fn rates_partition_one_draw() {
        // With drop+truncate+flip = 1 every event misbehaves.
        let plan = FaultPlan::parse("drop=0.4,truncate=0.3,flip=0.3").unwrap();
        let injector = FaultInjector::new(plan);
        for _ in 0..64 {
            assert_ne!(injector.next_decision().action, FaultAction::Deliver);
        }
    }
}
